//! Statement execution: evaluates parsed statements against a [`Database`].
//!
//! The executor compiles every statement once before touching rows: column
//! references resolve to positional slots ([`CExpr::Column`]), literal
//! `LIKE` patterns compile to token matchers, and unknown columns become
//! lazy error nodes (so a bad reference over an empty table still succeeds,
//! exactly like the historical row-at-a-time interpreter). Evaluation then
//! runs against *borrowed* rows — `WHERE` filters single-table scans
//! directly on the frame's columns before any row is materialized, and
//! equi-joins use a hash join keyed on exactly-hashable values with a
//! nested-loop fallback for everything else. Row and group ordering are
//! bit-for-bit identical to the original interpreter.

use crate::ast::*;
use crate::database::{Database, QueryResult};
use crate::error::{Result, SqlError};
use crate::functions::{call_scalar, like_match, LikePattern};
use dataframe::{Column, DataFrame};
use netgraph::AttrValue;
use std::cmp::Ordering;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// Executes a parsed statement against the database.
pub fn execute_statement(db: &mut Database, stmt: &Statement) -> Result<QueryResult> {
    match stmt {
        Statement::Select(s) => Ok(QueryResult::Rows(execute_select(db, s)?)),
        Statement::Update(s) => Ok(QueryResult::Affected(execute_update(db, s)?)),
        Statement::Insert(s) => Ok(QueryResult::Affected(execute_insert(db, s)?)),
        Statement::Delete(s) => Ok(QueryResult::Affected(execute_delete(db, s)?)),
        Statement::Explain(inner) => Ok(QueryResult::Rows(explain_statement(db, inner)?)),
    }
}

// ----------------------------------------------------------------- explain

/// Renders the compiled execution plan of a statement — the `EXPLAIN`
/// output — as a single-column `plan` frame, one line per plan step.
///
/// The plan reflects what the executor will actually do: it compiles the
/// statement against the real table schemas, so a join line says `hash
/// equi-join` exactly when [`equi_key_slots`] recognizes the `ON` clause
/// (the executor still falls back to a nested loop at runtime if a key
/// value is not exactly hashable — see [`ValueKey`]), and a single-table
/// `WHERE` is reported as pushed down to the scan because that is where the
/// compiled predicate runs.
pub fn explain_statement(db: &Database, stmt: &Statement) -> Result<DataFrame> {
    let mut lines = Vec::new();
    explain_lines(db, stmt, &mut lines)?;
    let column: Column = lines
        .iter()
        .map(|l| AttrValue::Str(l.as_str().into()))
        .collect();
    DataFrame::from_columns(vec![("plan".to_string(), column)])
        .map_err(|e| SqlError::Execution(e.to_string()))
}

fn comma_list<T: std::fmt::Display>(items: &[T]) -> String {
    items
        .iter()
        .map(|i| i.to_string())
        .collect::<Vec<_>>()
        .join(", ")
}

fn explain_lines(db: &Database, stmt: &Statement, lines: &mut Vec<String>) -> Result<()> {
    match stmt {
        Statement::Explain(inner) => explain_lines(db, inner, lines)?,
        Statement::Select(s) => {
            lines.push("select".to_string());
            let base = db.table(&s.from.name)?;
            let mut schema = Schema::from_table(base, &s.from);
            lines.push(format!("  scan {}", s.from));
            if s.joins.is_empty() {
                if let Some(pred) = &s.where_clause {
                    lines.push(format!("  where (pushed down to scan): {pred}"));
                }
            } else {
                for join in &s.joins {
                    let right = db.table(&join.table.name)?;
                    let right_schema = Schema::from_table(right, &join.table);
                    let left_width = schema.width();
                    let mut combined = schema;
                    combined.columns.extend(right_schema.columns);
                    let on = compile(&combined, &join.on);
                    let strategy = if equi_key_slots(&on, left_width).is_some() {
                        "hash equi-join"
                    } else {
                        "nested-loop join"
                    };
                    let kind = match join.kind {
                        JoinKind::Inner => "",
                        JoinKind::Left => "left ",
                    };
                    lines.push(format!("  {kind}{strategy} {} ON {}", join.table, join.on));
                    schema = combined;
                }
                if let Some(pred) = &s.where_clause {
                    lines.push(format!("  where (post-join filter): {pred}"));
                }
            }
            let has_aggregates = s.items.iter().any(|i| match i {
                SelectItem::Expr { expr, .. } => expr.contains_aggregate(),
                SelectItem::Wildcard => false,
            }) || s
                .having
                .as_ref()
                .map(Expr::contains_aggregate)
                .unwrap_or(false);
            if !s.group_by.is_empty() {
                lines.push(format!("  group by (hash): {}", comma_list(&s.group_by)));
            } else if has_aggregates {
                lines.push("  aggregate: single group".to_string());
            }
            if let Some(having) = &s.having {
                lines.push(format!("  having: {having}"));
            }
            lines.push(format!("  project: {}", comma_list(&s.items)));
            if s.distinct {
                lines.push("  distinct".to_string());
            }
            if !s.order_by.is_empty() {
                lines.push(format!("  order by: {}", comma_list(&s.order_by)));
            }
            if let Some(limit) = s.limit {
                lines.push(format!("  limit: {limit}"));
            }
        }
        Statement::Update(s) => {
            db.table(&s.table)?;
            lines.push(format!("update {}", s.table));
            for (column, value) in &s.assignments {
                lines.push(format!("  set {column} = {value}"));
            }
            match &s.where_clause {
                Some(pred) => lines.push(format!("  where: {pred}")),
                None => lines.push("  all rows".to_string()),
            }
        }
        Statement::Insert(s) => {
            db.table(&s.table)?;
            lines.push(format!("insert into {}", s.table));
            if s.columns.is_empty() {
                lines.push("  columns: (table order)".to_string());
            } else {
                lines.push(format!("  columns: {}", s.columns.join(", ")));
            }
            lines.push(format!("  values: {} row(s)", s.rows.len()));
        }
        Statement::Delete(s) => {
            db.table(&s.table)?;
            lines.push(format!("delete from {}", s.table));
            match &s.where_clause {
                Some(pred) => lines.push(format!("  where: {pred}")),
                None => lines.push("  all rows".to_string()),
            }
        }
    }
    Ok(())
}

// ------------------------------------------------------------------ schema

/// The column layout of a working row set: `(qualifier, column name)` per
/// position.
#[derive(Debug, Clone)]
struct Schema {
    columns: Vec<(Option<String>, String)>,
}

impl Schema {
    fn from_table(frame: &DataFrame, table: &TableRef) -> Schema {
        let qualifier = table.alias.clone().unwrap_or_else(|| table.name.clone());
        Schema {
            columns: frame
                .column_names()
                .iter()
                .map(|c| (Some(qualifier.clone()), c.to_string()))
                .collect(),
        }
    }

    fn width(&self) -> usize {
        self.columns.len()
    }

    /// Index of the column matching `name` with optional `qualifier`.
    fn resolve(&self, qualifier: Option<&str>, name: &str) -> Result<usize> {
        let matches: Vec<usize> = self
            .columns
            .iter()
            .enumerate()
            .filter(|(_, (q, n))| {
                n == name
                    && qualifier
                        .map(|want| q.as_deref() == Some(want))
                        .unwrap_or(true)
            })
            .map(|(i, _)| i)
            .collect();
        match matches.as_slice() {
            [] => Err(SqlError::UnknownColumn(match qualifier {
                Some(q) => format!("{q}.{name}"),
                None => name.to_string(),
            })),
            [one] => Ok(*one),
            // Ambiguous unqualified reference: prefer the leftmost, which is
            // what the permissive engines the paper targets do in practice.
            [first, ..] => Ok(*first),
        }
    }
}

// --------------------------------------------------------------- row views

/// A borrowed view of one row; the compiled evaluator only reads columns by
/// position, so scans and join probes never materialize rows up front.
trait RowView {
    fn col(&self, idx: usize) -> &AttrValue;
}

/// A materialized row.
struct SliceRow<'a>(&'a [AttrValue]);

impl RowView for SliceRow<'_> {
    #[inline]
    fn col(&self, idx: usize) -> &AttrValue {
        &self.0[idx]
    }
}

/// A row borrowed straight out of a frame's columnar storage.
struct FrameRow<'a> {
    columns: &'a [Column],
    row: usize,
}

impl RowView for FrameRow<'_> {
    #[inline]
    fn col(&self, idx: usize) -> &AttrValue {
        &self.columns[idx].values()[self.row]
    }
}

/// A join candidate: a left row and a right row viewed as one concatenated
/// row, without copying either side.
struct PairRow<'a> {
    left: &'a [AttrValue],
    right: &'a [AttrValue],
}

impl RowView for PairRow<'_> {
    #[inline]
    fn col(&self, idx: usize) -> &AttrValue {
        if idx < self.left.len() {
            &self.left[idx]
        } else {
            &self.right[idx - self.left.len()]
        }
    }
}

// --------------------------------------------------------- compiled exprs

/// An expression compiled against a [`Schema`]: column references are
/// positional slots, literal LIKE patterns are pre-translated, and unknown
/// columns are lazy errors (raised only if the node is ever evaluated,
/// which keeps bad references over empty row sets silent — the historical
/// behavior).
#[derive(Debug, Clone)]
enum CExpr {
    Literal(AttrValue),
    Column(usize),
    /// Unresolvable column reference; errors when evaluated.
    Unknown(String),
    Neg(Box<CExpr>),
    Not(Box<CExpr>),
    Binary {
        left: Box<CExpr>,
        op: BinaryOp,
        right: Box<CExpr>,
    },
    IsNull {
        expr: Box<CExpr>,
        negated: bool,
    },
    InList {
        expr: Box<CExpr>,
        list: Vec<CExpr>,
        negated: bool,
    },
    /// `LIKE` with a literal pattern, compiled once per query.
    LikeCompiled {
        expr: Box<CExpr>,
        pattern: LikePattern,
        negated: bool,
    },
    /// `LIKE` whose pattern is itself computed per row.
    LikeDynamic {
        expr: Box<CExpr>,
        pattern: Box<CExpr>,
        negated: bool,
    },
    Between {
        expr: Box<CExpr>,
        low: Box<CExpr>,
        high: Box<CExpr>,
        negated: bool,
    },
    Function {
        name: String,
        args: Vec<CExpr>,
    },
    Aggregate {
        func: AggregateFunc,
        arg: Option<Box<CExpr>>,
    },
    Case {
        arms: Vec<(CExpr, CExpr)>,
        otherwise: Option<Box<CExpr>>,
    },
}

/// Compiles an expression against a schema. Compilation never fails;
/// unresolvable columns become [`CExpr::Unknown`] nodes.
fn compile(schema: &Schema, expr: &Expr) -> CExpr {
    match expr {
        Expr::Literal(v) => CExpr::Literal(v.clone()),
        Expr::Column { table, name } => match schema.resolve(table.as_deref(), name) {
            Ok(idx) => CExpr::Column(idx),
            Err(_) => CExpr::Unknown(match table {
                Some(q) => format!("{q}.{name}"),
                None => name.clone(),
            }),
        },
        Expr::Neg(inner) => CExpr::Neg(Box::new(compile(schema, inner))),
        Expr::Not(inner) => CExpr::Not(Box::new(compile(schema, inner))),
        Expr::Binary { left, op, right } => CExpr::Binary {
            left: Box::new(compile(schema, left)),
            op: *op,
            right: Box::new(compile(schema, right)),
        },
        Expr::IsNull { expr, negated } => CExpr::IsNull {
            expr: Box::new(compile(schema, expr)),
            negated: *negated,
        },
        Expr::InList {
            expr,
            list,
            negated,
        } => CExpr::InList {
            expr: Box::new(compile(schema, expr)),
            list: list.iter().map(|e| compile(schema, e)).collect(),
            negated: *negated,
        },
        Expr::Like {
            expr,
            pattern,
            negated,
        } => {
            if let Expr::Literal(AttrValue::Str(p)) = pattern.as_ref() {
                CExpr::LikeCompiled {
                    expr: Box::new(compile(schema, expr)),
                    pattern: LikePattern::compile(p),
                    negated: *negated,
                }
            } else {
                CExpr::LikeDynamic {
                    expr: Box::new(compile(schema, expr)),
                    pattern: Box::new(compile(schema, pattern)),
                    negated: *negated,
                }
            }
        }
        Expr::Between {
            expr,
            low,
            high,
            negated,
        } => CExpr::Between {
            expr: Box::new(compile(schema, expr)),
            low: Box::new(compile(schema, low)),
            high: Box::new(compile(schema, high)),
            negated: *negated,
        },
        Expr::Function { name, args } => CExpr::Function {
            name: name.clone(),
            args: args.iter().map(|a| compile(schema, a)).collect(),
        },
        Expr::Aggregate { func, arg } => CExpr::Aggregate {
            func: *func,
            arg: arg.as_ref().map(|a| Box::new(compile(schema, a))),
        },
        Expr::Case { arms, otherwise } => CExpr::Case {
            arms: arms
                .iter()
                .map(|(c, r)| (compile(schema, c), compile(schema, r)))
                .collect(),
            otherwise: otherwise.as_ref().map(|e| Box::new(compile(schema, e))),
        },
    }
}

// --------------------------------------------------------------- evaluation

/// Evaluates a compiled non-aggregate expression against one row view.
fn eval<R: RowView>(row: &R, expr: &CExpr) -> Result<AttrValue> {
    match expr {
        CExpr::Literal(v) => Ok(v.clone()),
        CExpr::Column(idx) => Ok(row.col(*idx).clone()),
        CExpr::Unknown(name) => Err(SqlError::UnknownColumn(name.clone())),
        CExpr::Neg(inner) => {
            let v = eval(row, inner)?;
            match v {
                AttrValue::Int(i) => Ok(AttrValue::Int(-i)),
                AttrValue::Float(f) => Ok(AttrValue::Float(-f)),
                AttrValue::Null => Ok(AttrValue::Null),
                other => Err(SqlError::Type(format!(
                    "cannot negate a {}",
                    other.type_name()
                ))),
            }
        }
        CExpr::Not(inner) => {
            let v = eval(row, inner)?;
            Ok(AttrValue::Bool(!v.is_truthy()))
        }
        CExpr::Binary { left, op, right } => {
            let l = eval(row, left)?;
            let r = eval(row, right)?;
            eval_binary(&l, *op, &r)
        }
        CExpr::IsNull { expr, negated } => {
            let v = eval(row, expr)?;
            Ok(AttrValue::Bool(v.is_null() != *negated))
        }
        CExpr::InList {
            expr,
            list,
            negated,
        } => {
            let v = eval(row, expr)?;
            let mut found = false;
            for item in list {
                if eval(row, item)?.approx_eq(&v) {
                    found = true;
                    break;
                }
            }
            Ok(AttrValue::Bool(found != *negated))
        }
        CExpr::LikeCompiled {
            expr,
            pattern,
            negated,
        } => {
            let v = eval(row, expr)?;
            match v.as_str() {
                Some(text) => Ok(AttrValue::Bool(pattern.matches(text) != *negated)),
                None => Ok(AttrValue::Bool(false)),
            }
        }
        CExpr::LikeDynamic {
            expr,
            pattern,
            negated,
        } => {
            let v = eval(row, expr)?;
            let p = eval(row, pattern)?;
            match (v.as_str(), p.as_str()) {
                (Some(text), Some(pat)) => Ok(AttrValue::Bool(like_match(text, pat) != *negated)),
                _ => Ok(AttrValue::Bool(false)),
            }
        }
        CExpr::Between {
            expr,
            low,
            high,
            negated,
        } => {
            let v = eval(row, expr)?;
            let lo = eval(row, low)?;
            let hi = eval(row, high)?;
            let inside = matches!(
                v.partial_cmp_value(&lo),
                Some(Ordering::Greater | Ordering::Equal)
            ) && matches!(
                v.partial_cmp_value(&hi),
                Some(Ordering::Less | Ordering::Equal)
            );
            Ok(AttrValue::Bool(inside != *negated))
        }
        CExpr::Function { name, args } => {
            let values: Vec<AttrValue> =
                args.iter().map(|a| eval(row, a)).collect::<Result<_>>()?;
            call_scalar(name, &values)
        }
        CExpr::Aggregate { func, .. } => Err(SqlError::Execution(format!(
            "aggregate {} used outside of an aggregating query",
            func.name()
        ))),
        CExpr::Case { arms, otherwise } => {
            for (cond, result) in arms {
                if eval(row, cond)?.is_truthy() {
                    return eval(row, result);
                }
            }
            match otherwise {
                Some(e) => eval(row, e),
                None => Ok(AttrValue::Null),
            }
        }
    }
}

/// Evaluates a compiled expression over a *group* of rows, computing
/// aggregates over the whole group and non-aggregate parts on the group's
/// first row.
fn eval_group(rows: &[Vec<AttrValue>], group: &[usize], expr: &CExpr) -> Result<AttrValue> {
    match expr {
        CExpr::Aggregate { func, arg } => {
            let mut values: Vec<AttrValue> = Vec::with_capacity(group.len());
            for &row_idx in group {
                match arg {
                    Some(a) => values.push(eval(&SliceRow(&rows[row_idx]), a)?),
                    None => values.push(AttrValue::Int(1)),
                }
            }
            eval_aggregate(*func, &values)
        }
        CExpr::Binary { left, op, right } => {
            let l = eval_group(rows, group, left)?;
            let r = eval_group(rows, group, right)?;
            eval_binary(&l, *op, &r)
        }
        CExpr::Neg(inner) => {
            let v = eval_group(rows, group, inner)?;
            match v {
                AttrValue::Int(i) => Ok(AttrValue::Int(-i)),
                AttrValue::Float(f) => Ok(AttrValue::Float(-f)),
                other => Ok(other),
            }
        }
        CExpr::Not(inner) => Ok(AttrValue::Bool(
            !eval_group(rows, group, inner)?.is_truthy(),
        )),
        CExpr::Function { name, args } => {
            let values: Vec<AttrValue> = args
                .iter()
                .map(|a| eval_group(rows, group, a))
                .collect::<Result<_>>()?;
            call_scalar(name, &values)
        }
        CExpr::Case { arms, otherwise } => {
            for (cond, result) in arms {
                if eval_group(rows, group, cond)?.is_truthy() {
                    return eval_group(rows, group, result);
                }
            }
            match otherwise {
                Some(e) => eval_group(rows, group, e),
                None => Ok(AttrValue::Null),
            }
        }
        // Everything else is evaluated against the group's first row.
        other => match group.first() {
            Some(&row_idx) => eval(&SliceRow(&rows[row_idx]), other),
            None => Ok(AttrValue::Null),
        },
    }
}

fn eval_aggregate(func: AggregateFunc, values: &[AttrValue]) -> Result<AttrValue> {
    let numeric: Vec<f64> = values.iter().filter_map(AttrValue::as_f64).collect();
    Ok(match func {
        AggregateFunc::Count => {
            AttrValue::Int(values.iter().filter(|v| !v.is_null()).count() as i64)
        }
        AggregateFunc::Sum => AttrValue::Float(numeric.iter().sum()),
        AggregateFunc::Avg => {
            if numeric.is_empty() {
                AttrValue::Null
            } else {
                AttrValue::Float(numeric.iter().sum::<f64>() / numeric.len() as f64)
            }
        }
        AggregateFunc::Min => min_max_value(values, Ordering::Less),
        AggregateFunc::Max => min_max_value(values, Ordering::Greater),
    })
}

fn min_max_value(values: &[AttrValue], keep: Ordering) -> AttrValue {
    let mut best: Option<&AttrValue> = None;
    for v in values.iter().filter(|v| !v.is_null()) {
        best = match best {
            None => Some(v),
            Some(b) => {
                if v.partial_cmp_value(b) == Some(keep) {
                    Some(v)
                } else {
                    Some(b)
                }
            }
        };
    }
    best.cloned().unwrap_or(AttrValue::Null)
}

fn eval_binary(l: &AttrValue, op: BinaryOp, r: &AttrValue) -> Result<AttrValue> {
    use BinaryOp::*;
    match op {
        And => return Ok(AttrValue::Bool(l.is_truthy() && r.is_truthy())),
        Or => return Ok(AttrValue::Bool(l.is_truthy() || r.is_truthy())),
        Eq => return Ok(AttrValue::Bool(l.approx_eq(r))),
        NotEq => return Ok(AttrValue::Bool(!l.approx_eq(r))),
        Lt | LtEq | Gt | GtEq => {
            let ord = l.partial_cmp_value(r);
            let result = matches!(
                (op, ord),
                (Lt, Some(Ordering::Less))
                    | (LtEq, Some(Ordering::Less | Ordering::Equal))
                    | (Gt, Some(Ordering::Greater))
                    | (GtEq, Some(Ordering::Greater | Ordering::Equal))
            );
            return Ok(AttrValue::Bool(result));
        }
        _ => {}
    }
    // Arithmetic. String + string concatenates; NULL propagates.
    if l.is_null() || r.is_null() {
        return Ok(AttrValue::Null);
    }
    if op == Add {
        if let (Some(a), Some(b)) = (l.as_str(), r.as_str()) {
            return Ok(AttrValue::Str(format!("{a}{b}").into()));
        }
    }
    let (a, b) = match (l.as_f64(), r.as_f64()) {
        (Some(a), Some(b)) => (a, b),
        _ => {
            return Err(SqlError::Type(format!(
                "cannot apply arithmetic to {} and {}",
                l.type_name(),
                r.type_name()
            )))
        }
    };
    let result = match op {
        Add => a + b,
        Sub => a - b,
        Mul => a * b,
        Div => {
            if b == 0.0 {
                return Err(SqlError::Execution("division by zero".to_string()));
            }
            a / b
        }
        Mod => {
            if b == 0.0 {
                return Err(SqlError::Execution("modulo by zero".to_string()));
            }
            a % b
        }
        _ => unreachable!("comparisons handled above"),
    };
    // Keep integer results integral when both operands were integers.
    if matches!((l, r), (AttrValue::Int(_), AttrValue::Int(_)))
        && result.fract() == 0.0
        && matches!(op, Add | Sub | Mul | Mod)
    {
        Ok(AttrValue::Int(result as i64))
    } else {
        Ok(AttrValue::Float(result))
    }
}

// ---------------------------------------------------------------- hash keys

/// An exactly-hashable stand-in for an [`AttrValue`] used as a join or
/// grouping key. Within this domain, key equality coincides *exactly* with
/// [`AttrValue::approx_eq`]:
///
/// * `Null`, `Bool` and `Str` compare exactly in both schemes;
/// * numeric values map to their integer value, but only when integral and
///   `|v| < 10^9` — beyond that, `approx_eq`'s relative tolerance of
///   `1e-9 * |v|` reaches 1.0 and *distinct* integers start comparing
///   equal, which a hash key cannot express.
///
/// Values outside the domain (non-integral floats, huge integers, lists)
/// return `None` and force the caller onto the comparison-based slow path,
/// keeping results identical to the historical executor.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum ValueKey {
    Null,
    Bool(bool),
    Int(i64),
    Str(Arc<str>),
}

fn value_key(v: &AttrValue) -> Option<ValueKey> {
    const MAX_EXACT: i64 = 1_000_000_000;
    match v {
        AttrValue::Null => Some(ValueKey::Null),
        AttrValue::Bool(b) => Some(ValueKey::Bool(*b)),
        AttrValue::Int(_) | AttrValue::Float(_) => match v.as_i64() {
            // Range check rather than `abs()`: `i64::MIN.abs()` overflows.
            Some(i) if -MAX_EXACT < i && i < MAX_EXACT => Some(ValueKey::Int(i)),
            _ => None,
        },
        AttrValue::Str(s) => Some(ValueKey::Str(Arc::clone(s))),
        AttrValue::List(_) => None,
    }
}

// ------------------------------------------------------------------- select

fn execute_select(db: &Database, stmt: &SelectStmt) -> Result<DataFrame> {
    // FROM: resolve the base table; with no joins, the WHERE predicate is
    // evaluated against borrowed frame rows and only survivors materialize.
    let base = db.table(&stmt.from.name)?;
    let mut schema = Schema::from_table(base, &stmt.from);
    let mut rows: Vec<Vec<AttrValue>>;
    if stmt.joins.is_empty() {
        let pred = stmt.where_clause.as_ref().map(|p| compile(&schema, p));
        let columns = base.columns();
        rows = Vec::new();
        for i in 0..base.n_rows() {
            let view = FrameRow { columns, row: i };
            if let Some(pred) = &pred {
                if !eval(&view, pred)?.is_truthy() {
                    continue;
                }
            }
            rows.push(columns.iter().map(|c| c.values()[i].clone()).collect());
        }
    } else {
        rows = materialize_rows(base);
        for join in &stmt.joins {
            (schema, rows) = apply_join(db, schema, rows, join)?;
        }
        if let Some(pred) = &stmt.where_clause {
            let pred = compile(&schema, pred);
            let mut kept = Vec::with_capacity(rows.len());
            for row in rows {
                if eval(&SliceRow(&row), &pred)?.is_truthy() {
                    kept.push(row);
                }
            }
            rows = kept;
        }
    }

    let has_aggregates = stmt.items.iter().any(|i| match i {
        SelectItem::Expr { expr, .. } => expr.contains_aggregate(),
        SelectItem::Wildcard => false,
    }) || stmt
        .having
        .as_ref()
        .map(Expr::contains_aggregate)
        .unwrap_or(false);

    let (mut out, order_map): (DataFrame, OrderMap) = if !stmt.group_by.is_empty() || has_aggregates
    {
        project_grouped(&schema, &rows, stmt)?
    } else {
        project_rows(&schema, &rows, stmt)?
    };

    // DISTINCT: first occurrence wins, order preserved.
    if stmt.distinct {
        let mut seen: HashSet<String> = HashSet::new();
        let mut keep: Vec<usize> = Vec::new();
        for i in 0..out.n_rows() {
            let key = out
                .row(i)
                .expect("in range")
                .iter()
                .map(|v| format!("{}:{v}", v.type_name()))
                .collect::<Vec<_>>()
                .join("\u{1f}");
            if seen.insert(key) {
                keep.push(i);
            }
        }
        out = out.take(&keep).expect("indices valid");
    }

    // ORDER BY: keys may reference output aliases or source columns.
    if !stmt.order_by.is_empty() {
        let compiled_keys: Vec<CExpr> = stmt
            .order_by
            .iter()
            .map(|key| compile(&schema, &key.expr))
            .collect();
        let null_row = vec![AttrValue::Null; schema.width()];
        let mut indices: Vec<usize> = (0..out.n_rows()).collect();
        let mut keys: Vec<Vec<AttrValue>> = Vec::with_capacity(out.n_rows());
        for i in 0..out.n_rows() {
            let mut row_keys = Vec::new();
            for (key, ckey) in stmt.order_by.iter().zip(&compiled_keys) {
                row_keys.push(order_key_value(
                    &out, &rows, &order_map, &null_row, i, &key.expr, ckey,
                )?);
            }
            keys.push(row_keys);
        }
        indices.sort_by(|&a, &b| {
            for (k, spec) in stmt.order_by.iter().enumerate() {
                let ord = keys[a][k]
                    .partial_cmp_value(&keys[b][k])
                    .unwrap_or(Ordering::Equal);
                let ord = if spec.ascending { ord } else { ord.reverse() };
                if ord != Ordering::Equal {
                    return ord;
                }
            }
            Ordering::Equal
        });
        out = out.take(&indices).expect("indices valid");
    }

    // LIMIT.
    if let Some(limit) = stmt.limit {
        out = out.head(limit);
    }
    Ok(out)
}

fn materialize_rows(frame: &DataFrame) -> Vec<Vec<AttrValue>> {
    let columns = frame.columns();
    (0..frame.n_rows())
        .map(|i| columns.iter().map(|c| c.values()[i].clone()).collect())
        .collect()
}

/// How output rows map back to source rows for ORDER BY resolution.
///
/// Deliberately *not* re-indexed when DISTINCT drops output rows: the
/// historical interpreter resolved post-DISTINCT output rows against
/// pre-DISTINCT source indices (its `order_rows` was never filtered), and
/// golden-log parity pins that behavior, quirk included. A non-output
/// ORDER BY key combined with DISTINCT can therefore read a dropped
/// duplicate's source row — exactly as it always did.
enum OrderMap {
    /// Output row `i` came from source row `i` (ungrouped projection).
    Identity,
    /// Output row `i` came from the group whose first source row is at the
    /// given index (`None` for the synthetic empty group of an implicit
    /// aggregation over zero rows).
    FirstRows(Vec<Option<usize>>),
}

/// Resolves one ORDER BY key for output row `i`: an expression naming an
/// output column uses the projected value, anything else is evaluated
/// against the source row that produced this output row.
#[allow(clippy::too_many_arguments)]
fn order_key_value(
    out: &DataFrame,
    rows: &[Vec<AttrValue>],
    order_map: &OrderMap,
    null_row: &[AttrValue],
    i: usize,
    expr: &Expr,
    compiled: &CExpr,
) -> Result<AttrValue> {
    if let Expr::Column { table: None, name } = expr {
        if out.has_column(name) {
            return Ok(out.value(i, name).expect("in range").clone());
        }
    }
    let source: Option<&[AttrValue]> = match order_map {
        OrderMap::Identity => rows.get(i).map(Vec::as_slice),
        OrderMap::FirstRows(firsts) => match firsts.get(i) {
            Some(Some(idx)) => Some(rows[*idx].as_slice()),
            Some(None) => Some(null_row),
            None => None,
        },
    };
    match source {
        Some(row) => eval(&SliceRow(row), compiled),
        None => Err(SqlError::Execution(
            "ORDER BY expression cannot be resolved".to_string(),
        )),
    }
}

// -------------------------------------------------------------------- joins

fn apply_join(
    db: &Database,
    left_schema: Schema,
    left_rows: Vec<Vec<AttrValue>>,
    join: &Join,
) -> Result<(Schema, Vec<Vec<AttrValue>>)> {
    let right_frame = db.table(&join.table.name)?;
    let right_schema = Schema::from_table(right_frame, &join.table);
    let right_rows = materialize_rows(right_frame);
    let left_width = left_schema.width();
    let right_width = right_schema.width();
    let mut combined = left_schema;
    combined.columns.extend(right_schema.columns);

    let on = compile(&combined, &join.on);

    // Hash fast path for `left.col = right.col` when every key value is
    // exactly hashable (see [`ValueKey`]); otherwise nested loop.
    if let Some((left_key, right_key)) = equi_key_slots(&on, left_width) {
        let left_keys: Option<Vec<ValueKey>> = left_rows
            .iter()
            .map(|row| value_key(&row[left_key]))
            .collect();
        let right_keys: Option<Vec<ValueKey>> = right_rows
            .iter()
            .map(|row| value_key(&row[right_key - left_width]))
            .collect();
        if let (Some(left_keys), Some(right_keys)) = (left_keys, right_keys) {
            let mut table: HashMap<&ValueKey, Vec<usize>> = HashMap::new();
            for (idx, key) in right_keys.iter().enumerate() {
                table.entry(key).or_default().push(idx);
            }
            let mut rows = Vec::new();
            for (lrow, lkey) in left_rows.iter().zip(&left_keys) {
                let matches = table.get(lkey).map(Vec::as_slice).unwrap_or(&[]);
                for &ridx in matches {
                    let mut candidate = lrow.clone();
                    candidate.extend(right_rows[ridx].iter().cloned());
                    rows.push(candidate);
                }
                if matches.is_empty() && join.kind == JoinKind::Left {
                    let mut candidate = lrow.clone();
                    candidate.extend(std::iter::repeat(AttrValue::Null).take(right_width));
                    rows.push(candidate);
                }
            }
            return Ok((combined, rows));
        }
    }

    // Nested loop: probe every pair through a borrowed pair view and clone
    // only matching candidates.
    let mut rows = Vec::new();
    for lrow in &left_rows {
        let mut matched = false;
        for rrow in &right_rows {
            let view = PairRow {
                left: lrow,
                right: rrow,
            };
            if eval(&view, &on)?.is_truthy() {
                let mut candidate = lrow.clone();
                candidate.extend(rrow.iter().cloned());
                rows.push(candidate);
                matched = true;
            }
        }
        if !matched && join.kind == JoinKind::Left {
            let mut candidate = lrow.clone();
            candidate.extend(std::iter::repeat(AttrValue::Null).take(right_width));
            rows.push(candidate);
        }
    }
    Ok((combined, rows))
}

/// Recognizes a compiled `ON` clause of the shape `col_a = col_b` with one
/// slot on each side of the join, returning `(left slot, right slot)`.
fn equi_key_slots(on: &CExpr, left_width: usize) -> Option<(usize, usize)> {
    if let CExpr::Binary { left, op, right } = on {
        if *op == BinaryOp::Eq {
            if let (CExpr::Column(a), CExpr::Column(b)) = (left.as_ref(), right.as_ref()) {
                let (a, b) = (*a, *b);
                if a < left_width && b >= left_width {
                    return Some((a, b));
                }
                if b < left_width && a >= left_width {
                    return Some((b, a));
                }
            }
        }
    }
    None
}

// --------------------------------------------------------------- projection

/// Projection without grouping: one output row per input row.
fn project_rows(
    schema: &Schema,
    rows: &[Vec<AttrValue>],
    stmt: &SelectStmt,
) -> Result<(DataFrame, OrderMap)> {
    let (names, exprs) = projection_list(schema, stmt)?;
    let compiled: Vec<CExpr> = exprs.iter().map(|e| compile(schema, e)).collect();
    let mut columns: Vec<Column> = names.iter().map(|_| Column::new()).collect();
    for row in rows {
        let view = SliceRow(row);
        for (i, expr) in compiled.iter().enumerate() {
            columns[i].push(eval(&view, expr)?);
        }
    }
    let frame = build_frame(names, columns)?;
    Ok((frame, OrderMap::Identity))
}

/// Projection with grouping (explicit GROUP BY or implicit single-group
/// aggregation).
fn project_grouped(
    schema: &Schema,
    rows: &[Vec<AttrValue>],
    stmt: &SelectStmt,
) -> Result<(DataFrame, OrderMap)> {
    // Partition row indices by the GROUP BY key values, in first-seen
    // order. When every key value is exactly hashable the partition runs
    // through a hash map; otherwise it falls back to the historical
    // first-match comparison scan (identical grouping either way — see
    // [`ValueKey`]).
    let mut groups: Vec<(Vec<AttrValue>, Vec<usize>)> = Vec::new();
    if stmt.group_by.is_empty() {
        groups.push((Vec::new(), (0..rows.len()).collect()));
    } else {
        let compiled_keys: Vec<CExpr> = stmt.group_by.iter().map(|e| compile(schema, e)).collect();
        let mut row_keys: Vec<Vec<AttrValue>> = Vec::with_capacity(rows.len());
        for row in rows {
            let view = SliceRow(row);
            row_keys.push(
                compiled_keys
                    .iter()
                    .map(|e| eval(&view, e))
                    .collect::<Result<_>>()?,
            );
        }
        let hashable: Option<Vec<Vec<ValueKey>>> = row_keys
            .iter()
            .map(|key| key.iter().map(value_key).collect())
            .collect();
        match hashable {
            Some(hash_keys) => {
                let mut index: HashMap<&[ValueKey], usize> = HashMap::new();
                for (idx, (key, hkey)) in row_keys.iter().zip(&hash_keys).enumerate() {
                    match index.get(hkey.as_slice()) {
                        Some(&g) => groups[g].1.push(idx),
                        None => {
                            index.insert(hkey.as_slice(), groups.len());
                            groups.push((key.clone(), vec![idx]));
                        }
                    }
                }
            }
            None => {
                for (idx, key) in row_keys.iter().enumerate() {
                    match groups.iter_mut().find(|(k, _)| {
                        k.iter().zip(key).all(|(a, b)| a.approx_eq(b)) && k.len() == key.len()
                    }) {
                        Some((_, members)) => members.push(idx),
                        None => groups.push((key.clone(), vec![idx])),
                    }
                }
            }
        }
    }

    // HAVING.
    if let Some(having) = &stmt.having {
        let having = compile(schema, having);
        groups.retain(|(_, members)| {
            eval_group(rows, members, &having)
                .map(|v| v.is_truthy())
                .unwrap_or(false)
        });
    }

    let (names, exprs) = projection_list(schema, stmt)?;
    let compiled: Vec<CExpr> = exprs.iter().map(|e| compile(schema, e)).collect();
    let mut columns: Vec<Column> = names.iter().map(|_| Column::new()).collect();
    let mut firsts = Vec::with_capacity(groups.len());
    for (_, members) in &groups {
        for (i, expr) in compiled.iter().enumerate() {
            columns[i].push(eval_group(rows, members, expr)?);
        }
        firsts.push(members.first().copied());
    }
    let frame = build_frame(names, columns)?;
    Ok((frame, OrderMap::FirstRows(firsts)))
}

/// Expands the projection list into `(output name, expression)` pairs.
fn projection_list(schema: &Schema, stmt: &SelectStmt) -> Result<(Vec<String>, Vec<Expr>)> {
    let mut names = Vec::new();
    let mut exprs = Vec::new();
    for item in &stmt.items {
        match item {
            SelectItem::Wildcard => {
                for (qualifier, name) in &schema.columns {
                    // Use the bare name unless it would collide with an
                    // earlier output column.
                    let out_name = if names.contains(name) {
                        format!("{}.{}", qualifier.clone().unwrap_or_default(), name)
                    } else {
                        name.clone()
                    };
                    names.push(out_name);
                    exprs.push(Expr::Column {
                        table: qualifier.clone(),
                        name: name.clone(),
                    });
                }
            }
            SelectItem::Expr { expr, alias } => {
                let name = alias.clone().unwrap_or_else(|| expr.default_name());
                names.push(name);
                exprs.push(expr.clone());
            }
        }
    }
    Ok((names, exprs))
}

fn build_frame(names: Vec<String>, columns: Vec<Column>) -> Result<DataFrame> {
    let mut unique_names: Vec<String> = Vec::with_capacity(names.len());
    for name in names {
        let mut candidate = name.clone();
        let mut suffix = 1;
        while unique_names.contains(&candidate) {
            candidate = format!("{name}_{suffix}");
            suffix += 1;
        }
        unique_names.push(candidate);
    }
    DataFrame::from_columns(unique_names.into_iter().zip(columns).collect())
        .map_err(|e| SqlError::Execution(e.to_string()))
}

// ---------------------------------------------------------------- mutations

fn execute_update(db: &mut Database, stmt: &UpdateStmt) -> Result<usize> {
    let table_ref = TableRef {
        name: stmt.table.clone(),
        alias: None,
    };
    let frame = db.table(&stmt.table)?;
    let schema = Schema::from_table(frame, &table_ref);
    let pred = stmt.where_clause.as_ref().map(|p| compile(&schema, p));
    let assignments: Vec<(String, CExpr)> = stmt
        .assignments
        .iter()
        .map(|(col, expr)| (col.clone(), compile(&schema, expr)))
        .collect();
    // Determine which rows match and the new values before mutating,
    // evaluating against borrowed frame rows.
    let columns = frame.columns();
    let mut updates: Vec<(usize, Vec<(String, AttrValue)>)> = Vec::new();
    for idx in 0..frame.n_rows() {
        let view = FrameRow { columns, row: idx };
        let matches = match &pred {
            Some(pred) => eval(&view, pred)?.is_truthy(),
            None => true,
        };
        if matches {
            let mut assigned = Vec::new();
            for (col, expr) in &assignments {
                assigned.push((col.clone(), eval(&view, expr)?));
            }
            updates.push((idx, assigned));
        }
    }
    let affected = updates.len();
    let frame = db.table_mut(&stmt.table)?;
    for (row, assignments) in updates {
        for (col, value) in assignments {
            if !frame.has_column(&col) {
                return Err(SqlError::UnknownColumn(col));
            }
            frame
                .set_value(row, &col, value)
                .map_err(|e| SqlError::Execution(e.to_string()))?;
        }
    }
    Ok(affected)
}

fn execute_insert(db: &mut Database, stmt: &InsertStmt) -> Result<usize> {
    // Literal-only row evaluation (no row context).
    let empty_schema = Schema { columns: vec![] };
    let frame = db.table(&stmt.table)?;
    let target_columns: Vec<String> = if stmt.columns.is_empty() {
        frame.column_names().iter().map(|s| s.to_string()).collect()
    } else {
        stmt.columns.clone()
    };
    for col in &target_columns {
        if !frame.has_column(col) {
            return Err(SqlError::UnknownColumn(col.clone()));
        }
    }
    let table_column_names: Vec<String> =
        frame.column_names().iter().map(|s| s.to_string()).collect();
    let mut new_rows = Vec::new();
    for row_exprs in &stmt.rows {
        if row_exprs.len() != target_columns.len() {
            return Err(SqlError::Execution(format!(
                "INSERT supplies {} values for {} columns",
                row_exprs.len(),
                target_columns.len()
            )));
        }
        let mut by_name: Vec<(String, AttrValue)> = Vec::new();
        for (col, expr) in target_columns.iter().zip(row_exprs) {
            let compiled = compile(&empty_schema, expr);
            by_name.push((col.clone(), eval(&SliceRow(&[]), &compiled)?));
        }
        // Fill unspecified columns with NULL, in table order.
        let full_row: Vec<AttrValue> = table_column_names
            .iter()
            .map(|c| {
                by_name
                    .iter()
                    .find(|(name, _)| name == c)
                    .map(|(_, v)| v.clone())
                    .unwrap_or(AttrValue::Null)
            })
            .collect();
        new_rows.push(full_row);
    }
    let affected = new_rows.len();
    let frame = db.table_mut(&stmt.table)?;
    for row in new_rows {
        frame
            .push_row(row)
            .map_err(|e| SqlError::Execution(e.to_string()))?;
    }
    Ok(affected)
}

fn execute_delete(db: &mut Database, stmt: &DeleteStmt) -> Result<usize> {
    let table_ref = TableRef {
        name: stmt.table.clone(),
        alias: None,
    };
    let frame = db.table(&stmt.table)?;
    let schema = Schema::from_table(frame, &table_ref);
    let pred = stmt.where_clause.as_ref().map(|p| compile(&schema, p));
    let columns = frame.columns();
    let total = frame.n_rows();
    let mut keep = Vec::new();
    for idx in 0..total {
        let view = FrameRow { columns, row: idx };
        let matches = match &pred {
            Some(pred) => eval(&view, pred)?.is_truthy(),
            None => true,
        };
        if !matches {
            keep.push(idx);
        }
    }
    let affected = total - keep.len();
    let frame = db.table_mut(&stmt.table)?;
    *frame = frame
        .take(&keep)
        .map_err(|e| SqlError::Execution(e.to_string()))?;
    Ok(affected)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataframe::Column;

    fn test_db() -> Database {
        let mut db = Database::new();
        db.create_table(
            "nodes",
            DataFrame::from_columns(vec![
                (
                    "id".to_string(),
                    Column::from_values(["10.0.1.1", "10.0.2.2", "10.1.3.3", "10.1.4.4"]),
                ),
                (
                    "role".to_string(),
                    Column::from_values(["core", "edge", "edge", "leaf"]),
                ),
            ])
            .unwrap(),
        );
        db.create_table(
            "edges",
            DataFrame::from_columns(vec![
                (
                    "source".to_string(),
                    Column::from_values(["10.0.1.1", "10.0.1.1", "10.0.2.2", "10.1.3.3"]),
                ),
                (
                    "target".to_string(),
                    Column::from_values(["10.0.2.2", "10.1.3.3", "10.1.3.3", "10.1.4.4"]),
                ),
                (
                    "bytes".to_string(),
                    Column::from_values([100i64, 200, 300, 400]),
                ),
                ("packets".to_string(), Column::from_values([1i64, 2, 3, 4])),
            ])
            .unwrap(),
        );
        db
    }

    fn select(db: &mut Database, sql: &str) -> DataFrame {
        db.execute(sql).unwrap().rows().unwrap().clone()
    }

    #[test]
    fn select_star_and_where() {
        let mut db = test_db();
        let all = select(&mut db, "SELECT * FROM edges");
        assert_eq!(all.n_rows(), 4);
        assert_eq!(
            all.column_names(),
            vec!["source", "target", "bytes", "packets"]
        );
        let heavy = select(
            &mut db,
            "SELECT source, bytes FROM edges WHERE bytes >= 300",
        );
        assert_eq!(heavy.n_rows(), 2);
    }

    #[test]
    fn arithmetic_and_alias() {
        let mut db = test_db();
        let out = select(
            &mut db,
            "SELECT bytes * 2 AS double_bytes FROM edges WHERE packets = 1",
        );
        assert_eq!(out.value(0, "double_bytes").unwrap(), &AttrValue::Int(200));
    }

    #[test]
    fn aggregate_without_group_by() {
        let mut db = test_db();
        let out = select(
            &mut db,
            "SELECT COUNT(*) AS n, SUM(bytes) AS total, AVG(bytes) AS mean FROM edges",
        );
        assert_eq!(out.n_rows(), 1);
        assert_eq!(out.value(0, "n").unwrap(), &AttrValue::Int(4));
        assert_eq!(out.value(0, "total").unwrap(), &AttrValue::Float(1000.0));
        assert_eq!(out.value(0, "mean").unwrap(), &AttrValue::Float(250.0));
    }

    #[test]
    fn group_by_having_order_limit() {
        let mut db = test_db();
        let out = select(
            &mut db,
            "SELECT source, SUM(bytes) AS total FROM edges GROUP BY source \
             HAVING SUM(bytes) > 250 ORDER BY total DESC LIMIT 1",
        );
        assert_eq!(out.n_rows(), 1);
        assert_eq!(out.value(0, "source").unwrap().as_str(), Some("10.1.3.3"));
        assert_eq!(out.value(0, "total").unwrap(), &AttrValue::Float(400.0));
    }

    #[test]
    fn join_inner_and_left() {
        let mut db = test_db();
        let inner = select(
            &mut db,
            "SELECT e.source, n.role FROM edges e JOIN nodes n ON e.source = n.id",
        );
        assert_eq!(inner.n_rows(), 4);
        assert_eq!(inner.value(0, "role").unwrap().as_str(), Some("core"));

        db.execute("DELETE FROM nodes WHERE id = '10.0.2.2'")
            .unwrap();
        let left = select(
            &mut db,
            "SELECT e.source, n.role FROM edges e LEFT JOIN nodes n ON e.source = n.id",
        );
        assert_eq!(left.n_rows(), 4);
        assert!(left.value(2, "role").unwrap().is_null());
    }

    #[test]
    fn distinct_and_in_and_like() {
        let mut db = test_db();
        let d = select(&mut db, "SELECT DISTINCT source FROM edges");
        assert_eq!(d.n_rows(), 3);
        let i = select(
            &mut db,
            "SELECT * FROM nodes WHERE role IN ('core', 'leaf')",
        );
        assert_eq!(i.n_rows(), 2);
        let l = select(&mut db, "SELECT * FROM nodes WHERE id LIKE '10.0%'");
        assert_eq!(l.n_rows(), 2);
    }

    #[test]
    fn case_expression_and_functions() {
        let mut db = test_db();
        let out = select(
            &mut db,
            "SELECT id, CASE WHEN id LIKE '10.0%' THEN 'prod' ELSE 'lab' END AS env, \
             IP_PREFIX(id, 2) AS prefix FROM nodes ORDER BY id",
        );
        assert_eq!(out.value(0, "env").unwrap().as_str(), Some("prod"));
        assert_eq!(out.value(3, "env").unwrap().as_str(), Some("lab"));
        assert_eq!(out.value(0, "prefix").unwrap().as_str(), Some("10.0"));
    }

    #[test]
    fn update_insert_delete_cycle() {
        let mut db = test_db();
        let n = db
            .execute("UPDATE nodes SET role = 'spine' WHERE id LIKE '10.1%'")
            .unwrap()
            .affected()
            .unwrap();
        assert_eq!(n, 2);
        let spines = select(&mut db, "SELECT * FROM nodes WHERE role = 'spine'");
        assert_eq!(spines.n_rows(), 2);

        let n = db
            .execute("INSERT INTO nodes (id, role) VALUES ('10.9.9.9', 'core')")
            .unwrap()
            .affected()
            .unwrap();
        assert_eq!(n, 1);
        assert_eq!(db.table("nodes").unwrap().n_rows(), 5);

        let n = db
            .execute("DELETE FROM nodes WHERE role = 'spine'")
            .unwrap()
            .affected()
            .unwrap();
        assert_eq!(n, 2);
        assert_eq!(db.table("nodes").unwrap().n_rows(), 3);
    }

    #[test]
    fn unknown_column_table_and_function_errors() {
        let mut db = test_db();
        assert!(matches!(
            db.execute("SELECT nope FROM nodes"),
            Err(SqlError::UnknownColumn(_))
        ));
        assert!(matches!(
            db.execute("SELECT * FROM ghosts"),
            Err(SqlError::UnknownTable(_))
        ));
        assert!(matches!(
            db.execute("SELECT FROBNICATE(id) FROM nodes"),
            Err(SqlError::UnknownFunction(_))
        ));
        assert!(matches!(
            db.execute("UPDATE nodes SET ghost = 1"),
            Err(SqlError::UnknownColumn(_))
        ));
    }

    #[test]
    fn division_by_zero_is_an_execution_error() {
        let mut db = test_db();
        assert!(matches!(
            db.execute("SELECT bytes / 0 FROM edges"),
            Err(SqlError::Execution(_))
        ));
    }

    #[test]
    fn order_by_source_column_not_in_projection() {
        let mut db = test_db();
        let out = select(&mut db, "SELECT source FROM edges ORDER BY bytes DESC");
        assert_eq!(out.value(0, "source").unwrap().as_str(), Some("10.1.3.3"));
    }

    #[test]
    fn string_concatenation_with_plus() {
        let mut db = test_db();
        let out = select(&mut db, "SELECT id + ':' + role AS tag FROM nodes LIMIT 1");
        assert_eq!(out.value(0, "tag").unwrap().as_str(), Some("10.0.1.1:core"));
    }

    #[test]
    fn between_and_is_null() {
        let mut db = test_db();
        let b = select(
            &mut db,
            "SELECT * FROM edges WHERE bytes BETWEEN 150 AND 350",
        );
        assert_eq!(b.n_rows(), 2);
        db.execute("INSERT INTO nodes (id) VALUES ('10.5.5.5')")
            .unwrap();
        let n = select(&mut db, "SELECT * FROM nodes WHERE role IS NULL");
        assert_eq!(n.n_rows(), 1);
        let nn = select(&mut db, "SELECT * FROM nodes WHERE role IS NOT NULL");
        assert_eq!(nn.n_rows(), 4);
    }

    #[test]
    fn implicit_group_aggregate_on_empty_table() {
        let mut db = Database::new();
        db.create_table(
            "t",
            DataFrame::from_columns(vec![("x".to_string(), Column::new())]).unwrap(),
        );
        let out = select(&mut db, "SELECT COUNT(*) AS n, SUM(x) AS s FROM t");
        assert_eq!(out.value(0, "n").unwrap(), &AttrValue::Int(0));
        assert_eq!(out.value(0, "s").unwrap(), &AttrValue::Float(0.0));
    }

    // ------------------------------------------------ compiled-path tests

    #[test]
    fn unknown_column_over_empty_table_stays_lazy() {
        // The historical row-at-a-time interpreter only resolved columns
        // while evaluating rows, so a bad reference over an empty table
        // succeeded. The compiled executor must preserve that.
        let mut db = Database::new();
        db.create_table(
            "t",
            DataFrame::from_columns(vec![("x".to_string(), Column::new())]).unwrap(),
        );
        let out = select(&mut db, "SELECT ghost FROM t");
        assert_eq!(out.n_rows(), 0);
        assert_eq!(out.column_names(), vec!["ghost"]);
        let out = select(&mut db, "SELECT x FROM t WHERE ghost > 1");
        assert_eq!(out.n_rows(), 0);
        // With rows present the same references error.
        db.execute("INSERT INTO t (x) VALUES (1)").unwrap();
        assert!(matches!(
            db.execute("SELECT ghost FROM t"),
            Err(SqlError::UnknownColumn(_))
        ));
        assert!(matches!(
            db.execute("SELECT x FROM t WHERE ghost > 1"),
            Err(SqlError::UnknownColumn(_))
        ));
    }

    #[test]
    fn hash_join_matches_nested_loop_on_null_and_cross_type_keys() {
        // NULL = NULL is *true* under approx_eq, and Int 3 matches Float
        // 3.0; the hash path must reproduce both.
        let mut db = Database::new();
        db.create_table(
            "a",
            DataFrame::from_columns(vec![(
                "k".to_string(),
                Column::from_iter(vec![
                    AttrValue::from("x"),
                    AttrValue::Null,
                    AttrValue::Int(3),
                ]),
            )])
            .unwrap(),
        );
        db.create_table(
            "b",
            DataFrame::from_columns(vec![
                (
                    "k".to_string(),
                    Column::from_iter(vec![
                        AttrValue::Null,
                        AttrValue::Float(3.0),
                        AttrValue::from("x"),
                    ]),
                ),
                ("tag".to_string(), Column::from_values(["n", "three", "ex"])),
            ])
            .unwrap(),
        );
        let out = select(&mut db, "SELECT a.k, b.tag FROM a JOIN b ON a.k = b.k");
        assert_eq!(out.n_rows(), 3);
        // Left order preserved: "x" row first, then NULL, then 3.
        assert_eq!(out.value(0, "tag").unwrap().as_str(), Some("ex"));
        assert_eq!(out.value(1, "tag").unwrap().as_str(), Some("n"));
        assert_eq!(out.value(2, "tag").unwrap().as_str(), Some("three"));
    }

    #[test]
    fn non_equi_join_still_works() {
        let mut db = test_db();
        let out = select(
            &mut db,
            "SELECT e.source FROM edges e JOIN nodes n ON e.bytes > 250 AND e.source = n.id",
        );
        assert_eq!(out.n_rows(), 2);
    }

    #[test]
    fn join_on_huge_integers_falls_back_to_comparison() {
        // |key| >= 1e9 leaves the exactly-hashable domain (approx_eq's
        // relative tolerance starts merging distinct integers there), so
        // the executor must take the nested-loop path and agree with
        // approx_eq semantics.
        let mut db = Database::new();
        let big = 10_000_000_000i64;
        db.create_table(
            "a",
            DataFrame::from_columns(vec![(
                "k".to_string(),
                Column::from_values([big, big + 1, 7]),
            )])
            .unwrap(),
        );
        db.create_table(
            "b",
            DataFrame::from_columns(vec![("k".to_string(), Column::from_values([big, 7]))])
                .unwrap(),
        );
        let out = select(&mut db, "SELECT a.k FROM a JOIN b ON a.k = b.k");
        // big matches big, big+1 matches big (within approx_eq tolerance at
        // this magnitude!), and 7 matches 7.
        assert_eq!(out.n_rows(), 3);
    }

    #[test]
    fn group_by_mixed_numeric_types_groups_together() {
        let mut db = Database::new();
        db.create_table(
            "t",
            DataFrame::from_columns(vec![
                (
                    "k".to_string(),
                    Column::from_iter(vec![
                        AttrValue::Int(1),
                        AttrValue::Float(1.0),
                        AttrValue::Int(2),
                    ]),
                ),
                ("v".to_string(), Column::from_values([10i64, 20, 30])),
            ])
            .unwrap(),
        );
        let out = select(&mut db, "SELECT k, COUNT(*) AS n FROM t GROUP BY k");
        assert_eq!(out.n_rows(), 2);
        assert_eq!(out.value(0, "n").unwrap(), &AttrValue::Int(2));
        assert_eq!(out.value(1, "n").unwrap(), &AttrValue::Int(1));
    }

    #[test]
    fn group_by_non_integral_floats_uses_comparison_path() {
        let mut db = Database::new();
        db.create_table(
            "t",
            DataFrame::from_columns(vec![(
                "k".to_string(),
                Column::from_iter(vec![
                    AttrValue::Float(0.5),
                    AttrValue::Float(0.5),
                    AttrValue::Float(1.5),
                ]),
            )])
            .unwrap(),
        );
        let out = select(&mut db, "SELECT k, COUNT(*) AS n FROM t GROUP BY k");
        assert_eq!(out.n_rows(), 2);
        assert_eq!(out.value(0, "n").unwrap(), &AttrValue::Int(2));
    }

    #[test]
    fn like_literal_and_dynamic_patterns_agree() {
        let mut db = test_db();
        let literal = select(&mut db, "SELECT id FROM nodes WHERE id LIKE '10.0%'");
        // Dynamic pattern: computed per row, goes through the memo cache.
        let dynamic = select(
            &mut db,
            "SELECT id FROM nodes WHERE id LIKE CONCAT('10.0', '%')",
        );
        assert_eq!(literal.n_rows(), dynamic.n_rows());
        assert_eq!(literal.n_rows(), 2);
    }
}
