//! Error type for the SQL engine.
//!
//! The variants deliberately mirror the failure modes the NeMoEval error
//! classifier distinguishes (Table 5 of the paper): a malformed statement is
//! a syntax error, a reference to a non-existent column is an "imaginary
//! attribute", an unknown function is an "imaginary function", and so on.

use std::fmt;

/// Errors raised while lexing, parsing or executing SQL.
#[derive(Debug, Clone, PartialEq)]
pub enum SqlError {
    /// The statement text could not be tokenized.
    Lex {
        /// Byte offset of the offending character.
        position: usize,
        /// Human-readable description.
        message: String,
    },
    /// The token stream does not form a valid statement.
    Parse {
        /// Index of the offending token.
        position: usize,
        /// Human-readable description.
        message: String,
    },
    /// A table name was referenced that does not exist in the database.
    UnknownTable(String),
    /// A column name was referenced that does not exist in scope.
    UnknownColumn(String),
    /// A scalar or aggregate function name is not recognized.
    UnknownFunction(String),
    /// A function or operator received the wrong number of arguments.
    Arity {
        /// The function or operator.
        what: String,
        /// Expected argument count description (e.g. "2").
        expected: String,
        /// Actual argument count.
        actual: usize,
    },
    /// A value had the wrong type for an operation.
    Type(String),
    /// Any other runtime failure (division by zero, bad LIMIT, ...).
    Execution(String),
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqlError::Lex { position, message } => {
                write!(f, "SQL syntax error at byte {position}: {message}")
            }
            SqlError::Parse { position, message } => {
                write!(f, "SQL syntax error near token {position}: {message}")
            }
            SqlError::UnknownTable(t) => write!(f, "no such table: {t}"),
            SqlError::UnknownColumn(c) => write!(f, "no such column: {c}"),
            SqlError::UnknownFunction(name) => write!(f, "no such function: {name}"),
            SqlError::Arity {
                what,
                expected,
                actual,
            } => write!(f, "{what} expects {expected} argument(s), got {actual}"),
            SqlError::Type(msg) => write!(f, "type error: {msg}"),
            SqlError::Execution(msg) => write!(f, "execution error: {msg}"),
        }
    }
}

impl std::error::Error for SqlError {}

impl SqlError {
    /// True when the error is a lexical or grammatical problem (as opposed
    /// to a semantic/runtime one). Used by the error classifier.
    pub fn is_syntax(&self) -> bool {
        matches!(self, SqlError::Lex { .. } | SqlError::Parse { .. })
    }
}

/// Result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, SqlError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_descriptive() {
        assert!(SqlError::UnknownTable("nodes".into())
            .to_string()
            .contains("nodes"));
        assert!(SqlError::Lex {
            position: 4,
            message: "bad char".into()
        }
        .to_string()
        .contains("syntax"));
        assert_eq!(
            SqlError::Arity {
                what: "SUBSTR".into(),
                expected: "2 or 3".into(),
                actual: 1
            }
            .to_string(),
            "SUBSTR expects 2 or 3 argument(s), got 1"
        );
    }

    #[test]
    fn is_syntax_distinguishes_parse_errors() {
        assert!(SqlError::Parse {
            position: 0,
            message: "x".into()
        }
        .is_syntax());
        assert!(!SqlError::UnknownColumn("c".into()).is_syntax());
    }
}
