//! Recursive-descent parser producing [`Statement`]s from a token stream.

use crate::ast::*;
use crate::error::{Result, SqlError};
use crate::lexer::tokenize;
use crate::token::{Token, TokenKind};
use netgraph::AttrValue;

/// Parses one SQL statement (a trailing semicolon is allowed).
pub fn parse_statement(sql: &str) -> Result<Statement> {
    let mut stmts = parse_statements(sql)?;
    match stmts.len() {
        1 => Ok(stmts.remove(0)),
        0 => Err(SqlError::Parse {
            position: 0,
            message: "empty statement".to_string(),
        }),
        n => Err(SqlError::Parse {
            position: 0,
            message: format!("expected a single statement, found {n}"),
        }),
    }
}

/// Parses a semicolon-separated script into a list of statements.
pub fn parse_statements(sql: &str) -> Result<Vec<Statement>> {
    let tokens = tokenize(sql)?;
    let mut parser = Parser { tokens, pos: 0 };
    let mut out = Vec::new();
    loop {
        while parser.eat_symbol(&TokenKind::Semicolon) {}
        if parser.at_eof() {
            break;
        }
        out.push(parser.statement()?);
    }
    Ok(out)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos.min(self.tokens.len() - 1)].kind
    }

    fn at_eof(&self) -> bool {
        matches!(self.peek(), TokenKind::Eof)
    }

    fn advance(&mut self) -> TokenKind {
        let kind = self.tokens[self.pos.min(self.tokens.len() - 1)]
            .kind
            .clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        kind
    }

    fn error<T>(&self, message: impl Into<String>) -> Result<T> {
        Err(SqlError::Parse {
            position: self.pos,
            message: message.into(),
        })
    }

    fn is_keyword(&self, word: &str) -> bool {
        matches!(self.peek(), TokenKind::Keyword(k) if k == word)
    }

    fn eat_keyword(&mut self, word: &str) -> bool {
        if self.is_keyword(word) {
            self.advance();
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, word: &str) -> Result<()> {
        if self.eat_keyword(word) {
            Ok(())
        } else {
            self.error(format!("expected {word}, found {}", self.peek()))
        }
    }

    fn eat_symbol(&mut self, kind: &TokenKind) -> bool {
        if self.peek() == kind {
            self.advance();
            true
        } else {
            false
        }
    }

    fn expect_symbol(&mut self, kind: &TokenKind) -> Result<()> {
        if self.eat_symbol(kind) {
            Ok(())
        } else {
            self.error(format!("expected {kind}, found {}", self.peek()))
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.peek().clone() {
            TokenKind::Ident(name) => {
                self.advance();
                Ok(name)
            }
            other => self.error(format!("expected identifier, found {other}")),
        }
    }

    // ---------------------------------------------------------- statements

    fn statement(&mut self) -> Result<Statement> {
        match self.peek().clone() {
            TokenKind::Keyword(k) if k == "SELECT" => Ok(Statement::Select(self.select()?)),
            TokenKind::Keyword(k) if k == "UPDATE" => Ok(Statement::Update(self.update()?)),
            TokenKind::Keyword(k) if k == "INSERT" => Ok(Statement::Insert(self.insert()?)),
            TokenKind::Keyword(k) if k == "DELETE" => Ok(Statement::Delete(self.delete()?)),
            TokenKind::Keyword(k) if k == "EXPLAIN" => {
                self.advance();
                if self.is_keyword("EXPLAIN") {
                    return self.error("EXPLAIN cannot be nested");
                }
                Ok(Statement::Explain(Box::new(self.statement()?)))
            }
            other => self.error(format!("expected a statement, found {other}")),
        }
    }

    fn select(&mut self) -> Result<SelectStmt> {
        self.expect_keyword("SELECT")?;
        let distinct = self.eat_keyword("DISTINCT");
        let mut items = vec![self.select_item()?];
        while self.eat_symbol(&TokenKind::Comma) {
            items.push(self.select_item()?);
        }
        self.expect_keyword("FROM")?;
        let from = self.table_ref()?;

        let mut joins = Vec::new();
        loop {
            let kind = if self.eat_keyword("LEFT") {
                self.expect_keyword("JOIN")?;
                JoinKind::Left
            } else if self.eat_keyword("INNER") {
                self.expect_keyword("JOIN")?;
                JoinKind::Inner
            } else if self.eat_keyword("JOIN") {
                JoinKind::Inner
            } else {
                break;
            };
            let table = self.table_ref()?;
            self.expect_keyword("ON")?;
            let on = self.expr()?;
            joins.push(Join { kind, table, on });
        }

        let where_clause = if self.eat_keyword("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };

        let mut group_by = Vec::new();
        if self.eat_keyword("GROUP") {
            self.expect_keyword("BY")?;
            group_by.push(self.expr()?);
            while self.eat_symbol(&TokenKind::Comma) {
                group_by.push(self.expr()?);
            }
        }

        let having = if self.eat_keyword("HAVING") {
            Some(self.expr()?)
        } else {
            None
        };

        let mut order_by = Vec::new();
        if self.eat_keyword("ORDER") {
            self.expect_keyword("BY")?;
            loop {
                let expr = self.expr()?;
                let ascending = if self.eat_keyword("DESC") {
                    false
                } else {
                    self.eat_keyword("ASC");
                    true
                };
                order_by.push(OrderKey { expr, ascending });
                if !self.eat_symbol(&TokenKind::Comma) {
                    break;
                }
            }
        }

        let limit = if self.eat_keyword("LIMIT") {
            match self.advance() {
                TokenKind::Number(n) if n >= 0.0 && n.fract() == 0.0 => Some(n as usize),
                other => {
                    return self.error(format!(
                        "LIMIT expects a non-negative integer, found {other}"
                    ))
                }
            }
        } else {
            None
        };

        Ok(SelectStmt {
            distinct,
            items,
            from,
            joins,
            where_clause,
            group_by,
            having,
            order_by,
            limit,
        })
    }

    fn select_item(&mut self) -> Result<SelectItem> {
        if self.eat_symbol(&TokenKind::Star) {
            return Ok(SelectItem::Wildcard);
        }
        let expr = self.expr()?;
        let alias = if self.eat_keyword("AS") {
            Some(self.ident()?)
        } else if let TokenKind::Ident(name) = self.peek().clone() {
            // Bare alias (SELECT bytes total FROM ...).
            self.advance();
            Some(name)
        } else {
            None
        };
        Ok(SelectItem::Expr { expr, alias })
    }

    fn table_ref(&mut self) -> Result<TableRef> {
        let name = self.ident()?;
        let alias = if self.eat_keyword("AS") {
            Some(self.ident()?)
        } else if let TokenKind::Ident(a) = self.peek().clone() {
            self.advance();
            Some(a)
        } else {
            None
        };
        Ok(TableRef { name, alias })
    }

    fn update(&mut self) -> Result<UpdateStmt> {
        self.expect_keyword("UPDATE")?;
        let table = self.ident()?;
        self.expect_keyword("SET")?;
        let mut assignments = Vec::new();
        loop {
            let col = self.ident()?;
            self.expect_symbol(&TokenKind::Eq)?;
            let value = self.expr()?;
            assignments.push((col, value));
            if !self.eat_symbol(&TokenKind::Comma) {
                break;
            }
        }
        let where_clause = if self.eat_keyword("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(UpdateStmt {
            table,
            assignments,
            where_clause,
        })
    }

    fn insert(&mut self) -> Result<InsertStmt> {
        self.expect_keyword("INSERT")?;
        self.expect_keyword("INTO")?;
        let table = self.ident()?;
        let mut columns = Vec::new();
        if self.eat_symbol(&TokenKind::LParen) {
            loop {
                columns.push(self.ident()?);
                if !self.eat_symbol(&TokenKind::Comma) {
                    break;
                }
            }
            self.expect_symbol(&TokenKind::RParen)?;
        }
        self.expect_keyword("VALUES")?;
        let mut rows = Vec::new();
        loop {
            self.expect_symbol(&TokenKind::LParen)?;
            let mut row = Vec::new();
            loop {
                row.push(self.expr()?);
                if !self.eat_symbol(&TokenKind::Comma) {
                    break;
                }
            }
            self.expect_symbol(&TokenKind::RParen)?;
            rows.push(row);
            if !self.eat_symbol(&TokenKind::Comma) {
                break;
            }
        }
        Ok(InsertStmt {
            table,
            columns,
            rows,
        })
    }

    fn delete(&mut self) -> Result<DeleteStmt> {
        self.expect_keyword("DELETE")?;
        self.expect_keyword("FROM")?;
        let table = self.ident()?;
        let where_clause = if self.eat_keyword("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(DeleteStmt {
            table,
            where_clause,
        })
    }

    // --------------------------------------------------------- expressions
    //
    // Precedence (lowest first): OR, AND, NOT, comparison / IN / LIKE /
    // BETWEEN / IS, additive, multiplicative, unary minus, primary.

    fn expr(&mut self) -> Result<Expr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr> {
        let mut left = self.and_expr()?;
        while self.eat_keyword("OR") {
            let right = self.and_expr()?;
            left = Expr::Binary {
                left: Box::new(left),
                op: BinaryOp::Or,
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<Expr> {
        let mut left = self.not_expr()?;
        while self.eat_keyword("AND") {
            let right = self.not_expr()?;
            left = Expr::Binary {
                left: Box::new(left),
                op: BinaryOp::And,
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> Result<Expr> {
        if self.eat_keyword("NOT") {
            Ok(Expr::Not(Box::new(self.not_expr()?)))
        } else {
            self.comparison()
        }
    }

    fn comparison(&mut self) -> Result<Expr> {
        let left = self.additive()?;

        // IS [NOT] NULL
        if self.eat_keyword("IS") {
            let negated = self.eat_keyword("NOT");
            self.expect_keyword("NULL")?;
            return Ok(Expr::IsNull {
                expr: Box::new(left),
                negated,
            });
        }

        // [NOT] IN / LIKE / BETWEEN
        let negated = self.eat_keyword("NOT");
        if self.eat_keyword("IN") {
            self.expect_symbol(&TokenKind::LParen)?;
            let mut list = Vec::new();
            loop {
                list.push(self.expr()?);
                if !self.eat_symbol(&TokenKind::Comma) {
                    break;
                }
            }
            self.expect_symbol(&TokenKind::RParen)?;
            return Ok(Expr::InList {
                expr: Box::new(left),
                list,
                negated,
            });
        }
        if self.eat_keyword("LIKE") {
            let pattern = self.additive()?;
            return Ok(Expr::Like {
                expr: Box::new(left),
                pattern: Box::new(pattern),
                negated,
            });
        }
        if self.eat_keyword("BETWEEN") {
            let low = self.additive()?;
            self.expect_keyword("AND")?;
            let high = self.additive()?;
            return Ok(Expr::Between {
                expr: Box::new(left),
                low: Box::new(low),
                high: Box::new(high),
                negated,
            });
        }
        if negated {
            return self.error("expected IN, LIKE or BETWEEN after NOT");
        }

        let op = match self.peek() {
            TokenKind::Eq => Some(BinaryOp::Eq),
            TokenKind::NotEq => Some(BinaryOp::NotEq),
            TokenKind::Lt => Some(BinaryOp::Lt),
            TokenKind::LtEq => Some(BinaryOp::LtEq),
            TokenKind::Gt => Some(BinaryOp::Gt),
            TokenKind::GtEq => Some(BinaryOp::GtEq),
            _ => None,
        };
        if let Some(op) = op {
            self.advance();
            let right = self.additive()?;
            return Ok(Expr::Binary {
                left: Box::new(left),
                op,
                right: Box::new(right),
            });
        }
        Ok(left)
    }

    fn additive(&mut self) -> Result<Expr> {
        let mut left = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                TokenKind::Plus => BinaryOp::Add,
                TokenKind::Minus => BinaryOp::Sub,
                _ => break,
            };
            self.advance();
            let right = self.multiplicative()?;
            left = Expr::Binary {
                left: Box::new(left),
                op,
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn multiplicative(&mut self) -> Result<Expr> {
        let mut left = self.unary()?;
        loop {
            let op = match self.peek() {
                TokenKind::Star => BinaryOp::Mul,
                TokenKind::Slash => BinaryOp::Div,
                TokenKind::Percent => BinaryOp::Mod,
                _ => break,
            };
            self.advance();
            let right = self.unary()?;
            left = Expr::Binary {
                left: Box::new(left),
                op,
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn unary(&mut self) -> Result<Expr> {
        if self.eat_symbol(&TokenKind::Minus) {
            return Ok(Expr::Neg(Box::new(self.unary()?)));
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr> {
        match self.peek().clone() {
            TokenKind::Number(n) => {
                self.advance();
                let value = if n.fract() == 0.0 && n.abs() < 1e15 {
                    AttrValue::Int(n as i64)
                } else {
                    AttrValue::Float(n)
                };
                Ok(Expr::Literal(value))
            }
            TokenKind::Str(s) => {
                self.advance();
                Ok(Expr::Literal(AttrValue::Str(s.into())))
            }
            TokenKind::Keyword(k) if k == "NULL" => {
                self.advance();
                Ok(Expr::Literal(AttrValue::Null))
            }
            TokenKind::Keyword(k) if k == "TRUE" => {
                self.advance();
                Ok(Expr::Literal(AttrValue::Bool(true)))
            }
            TokenKind::Keyword(k) if k == "FALSE" => {
                self.advance();
                Ok(Expr::Literal(AttrValue::Bool(false)))
            }
            TokenKind::Keyword(k) if k == "CASE" => self.case_expr(),
            TokenKind::LParen => {
                self.advance();
                let inner = self.expr()?;
                self.expect_symbol(&TokenKind::RParen)?;
                Ok(inner)
            }
            TokenKind::Ident(name) => {
                self.advance();
                // Function or aggregate call.
                if self.eat_symbol(&TokenKind::LParen) {
                    return self.call(name);
                }
                // Qualified column (table.column).
                if self.eat_symbol(&TokenKind::Dot) {
                    let column = match self.advance() {
                        TokenKind::Ident(c) => c,
                        TokenKind::Star => {
                            return self.error("qualified wildcards (t.*) are not supported")
                        }
                        other => {
                            return self
                                .error(format!("expected column name after '.', found {other}"))
                        }
                    };
                    return Ok(Expr::Column {
                        table: Some(name),
                        name: column,
                    });
                }
                Ok(Expr::Column { table: None, name })
            }
            other => self.error(format!("unexpected token {other} in expression")),
        }
    }

    fn call(&mut self, name: String) -> Result<Expr> {
        // Aggregate with `*` argument: COUNT(*).
        if let Some(func) = AggregateFunc::parse(&name) {
            if self.eat_symbol(&TokenKind::Star) {
                self.expect_symbol(&TokenKind::RParen)?;
                return Ok(Expr::Aggregate { func, arg: None });
            }
            let arg = self.expr()?;
            self.expect_symbol(&TokenKind::RParen)?;
            return Ok(Expr::Aggregate {
                func,
                arg: Some(Box::new(arg)),
            });
        }
        let mut args = Vec::new();
        if !self.eat_symbol(&TokenKind::RParen) {
            loop {
                args.push(self.expr()?);
                if !self.eat_symbol(&TokenKind::Comma) {
                    break;
                }
            }
            self.expect_symbol(&TokenKind::RParen)?;
        }
        Ok(Expr::Function {
            name: name.to_ascii_uppercase(),
            args,
        })
    }

    fn case_expr(&mut self) -> Result<Expr> {
        self.expect_keyword("CASE")?;
        let mut arms = Vec::new();
        while self.eat_keyword("WHEN") {
            let cond = self.expr()?;
            self.expect_keyword("THEN")?;
            let result = self.expr()?;
            arms.push((cond, result));
        }
        if arms.is_empty() {
            return self.error("CASE requires at least one WHEN arm");
        }
        let otherwise = if self.eat_keyword("ELSE") {
            Some(Box::new(self.expr()?))
        } else {
            None
        };
        self.expect_keyword("END")?;
        Ok(Expr::Case { arms, otherwise })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_select_with_all_clauses() {
        let sql = "SELECT prefix, SUM(bytes) AS total FROM edges \
                   WHERE bytes > 100 GROUP BY prefix HAVING SUM(bytes) > 500 \
                   ORDER BY total DESC LIMIT 5";
        let stmt = parse_statement(sql).unwrap();
        let Statement::Select(s) = stmt else {
            panic!("expected select")
        };
        assert_eq!(s.items.len(), 2);
        assert!(s.where_clause.is_some());
        assert_eq!(s.group_by.len(), 1);
        assert!(s.having.is_some());
        assert_eq!(s.order_by.len(), 1);
        assert!(!s.order_by[0].ascending);
        assert_eq!(s.limit, Some(5));
    }

    #[test]
    fn parses_join_with_alias() {
        let sql = "SELECT e.source, n.role FROM edges e JOIN nodes AS n ON e.source = n.node";
        let Statement::Select(s) = parse_statement(sql).unwrap() else {
            panic!()
        };
        assert_eq!(s.from.alias.as_deref(), Some("e"));
        assert_eq!(s.joins.len(), 1);
        assert_eq!(s.joins[0].table.alias.as_deref(), Some("n"));
        assert_eq!(s.joins[0].kind, JoinKind::Inner);
    }

    #[test]
    fn parses_left_join() {
        let sql = "SELECT * FROM a LEFT JOIN b ON a.x = b.y";
        let Statement::Select(s) = parse_statement(sql).unwrap() else {
            panic!()
        };
        assert_eq!(s.joins[0].kind, JoinKind::Left);
    }

    #[test]
    fn parses_update_insert_delete() {
        let u = parse_statement("UPDATE nodes SET color = 'red', seen = 1 WHERE id = 'a'").unwrap();
        assert!(matches!(u, Statement::Update(ref s) if s.assignments.len() == 2));

        let i = parse_statement("INSERT INTO nodes (id, bytes) VALUES ('a', 1), ('b', 2)").unwrap();
        let Statement::Insert(ins) = i else { panic!() };
        assert_eq!(ins.columns, vec!["id", "bytes"]);
        assert_eq!(ins.rows.len(), 2);

        let d = parse_statement("DELETE FROM edges WHERE bytes < 10").unwrap();
        assert!(matches!(d, Statement::Delete(ref s) if s.where_clause.is_some()));
    }

    #[test]
    fn parses_in_like_between_is_null() {
        let sql = "SELECT * FROM nodes WHERE ip LIKE '15.76%' AND grp IN (1, 2) \
                   AND bytes BETWEEN 10 AND 20 AND color IS NOT NULL AND role NOT LIKE '%core%'";
        let Statement::Select(s) = parse_statement(sql).unwrap() else {
            panic!()
        };
        let w = s.where_clause.unwrap();
        // Just check it parsed into a conjunction tree without error.
        assert!(matches!(
            w,
            Expr::Binary {
                op: BinaryOp::And,
                ..
            }
        ));
    }

    #[test]
    fn parses_case_expression() {
        let sql = "SELECT CASE WHEN bytes > 10 THEN 'big' ELSE 'small' END AS size FROM edges";
        let Statement::Select(s) = parse_statement(sql).unwrap() else {
            panic!()
        };
        let SelectItem::Expr { expr, alias } = &s.items[0] else {
            panic!()
        };
        assert!(matches!(expr, Expr::Case { .. }));
        assert_eq!(alias.as_deref(), Some("size"));
    }

    #[test]
    fn arithmetic_precedence() {
        let Statement::Select(s) = parse_statement("SELECT 1 + 2 * 3 FROM t").unwrap() else {
            panic!()
        };
        let SelectItem::Expr { expr, .. } = &s.items[0] else {
            panic!()
        };
        // Must parse as 1 + (2 * 3).
        let Expr::Binary { op, right, .. } = expr else {
            panic!()
        };
        assert_eq!(*op, BinaryOp::Add);
        assert!(matches!(
            **right,
            Expr::Binary {
                op: BinaryOp::Mul,
                ..
            }
        ));
    }

    #[test]
    fn parse_statements_splits_on_semicolons() {
        let script = "UPDATE t SET x = 1; SELECT * FROM t;";
        let stmts = parse_statements(script).unwrap();
        assert_eq!(stmts.len(), 2);
    }

    #[test]
    fn syntax_errors_are_reported() {
        assert!(parse_statement("SELECT FROM").is_err());
        assert!(parse_statement("SELEC * FROM t").is_err());
        assert!(parse_statement("SELECT * FROM t WHERE").is_err());
        assert!(parse_statement("UPDATE t SET").is_err());
        assert!(parse_statement("").is_err());
        assert!(parse_statement("SELECT 1 LIMIT 1.5").is_err());
        let err = parse_statement("SELECT * FROM t WHERE a NOT 5").unwrap_err();
        assert!(err.is_syntax());
    }

    #[test]
    fn count_star_and_aggregates() {
        let Statement::Select(s) =
            parse_statement("SELECT COUNT(*), AVG(bytes) FROM edges").unwrap()
        else {
            panic!()
        };
        let SelectItem::Expr { expr, .. } = &s.items[0] else {
            panic!()
        };
        assert!(matches!(
            expr,
            Expr::Aggregate {
                func: AggregateFunc::Count,
                arg: None
            }
        ));
    }
}
