//! The in-memory database: a named collection of tables backed by
//! [`DataFrame`]s.

use crate::error::{Result, SqlError};
use dataframe::DataFrame;
use std::collections::BTreeMap;

/// An in-memory relational database.
///
/// The NeMoEval "SQL approach" represents a network as two tables — `nodes`
/// and `edges` — with the same schemas the pandas backend uses, so a table
/// is simply a named [`DataFrame`].
///
/// ```
/// use sqlengine::Database;
/// use dataframe::{DataFrame, Column};
///
/// let mut db = Database::new();
/// db.create_table("nodes", DataFrame::from_columns(vec![
///     ("id".to_string(), Column::from_values(["a", "b"])),
///     ("bytes".to_string(), Column::from_values([10i64, 20])),
/// ]).unwrap());
/// let result = db.execute("SELECT id FROM nodes WHERE bytes > 15").unwrap();
/// assert_eq!(result.rows().unwrap().n_rows(), 1);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Database {
    tables: BTreeMap<String, DataFrame>,
}

/// The result of executing one statement.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryResult {
    /// A `SELECT` produced a result set.
    Rows(DataFrame),
    /// A mutation (`UPDATE` / `INSERT` / `DELETE`) affected this many rows.
    Affected(usize),
}

impl QueryResult {
    /// The result frame, if this was a `SELECT`.
    pub fn rows(&self) -> Option<&DataFrame> {
        match self {
            QueryResult::Rows(df) => Some(df),
            QueryResult::Affected(_) => None,
        }
    }

    /// The affected-row count, if this was a mutation.
    pub fn affected(&self) -> Option<usize> {
        match self {
            QueryResult::Rows(_) => None,
            QueryResult::Affected(n) => Some(*n),
        }
    }
}

impl Database {
    /// Creates an empty database.
    pub fn new() -> Self {
        Database::default()
    }

    /// Creates (or replaces) a table.
    pub fn create_table(&mut self, name: &str, frame: DataFrame) {
        self.tables.insert(name.to_string(), frame);
    }

    /// Removes a table, returning it if present.
    pub fn drop_table(&mut self, name: &str) -> Option<DataFrame> {
        self.tables.remove(name)
    }

    /// The names of all tables, sorted.
    pub fn table_names(&self) -> Vec<&str> {
        self.tables.keys().map(String::as_str).collect()
    }

    /// Immutable access to a table.
    pub fn table(&self, name: &str) -> Result<&DataFrame> {
        self.tables
            .get(name)
            .ok_or_else(|| SqlError::UnknownTable(name.to_string()))
    }

    /// Mutable access to a table.
    pub fn table_mut(&mut self, name: &str) -> Result<&mut DataFrame> {
        self.tables
            .get_mut(name)
            .ok_or_else(|| SqlError::UnknownTable(name.to_string()))
    }

    /// Parses and executes a single SQL statement.
    pub fn execute(&mut self, sql: &str) -> Result<QueryResult> {
        let stmt = crate::parser::parse_statement(sql)?;
        crate::exec::execute_statement(self, &stmt)
    }

    /// Parses and executes a semicolon-separated script, returning the
    /// result of every statement in order.
    pub fn execute_script(&mut self, sql: &str) -> Result<Vec<QueryResult>> {
        let stmts = crate::parser::parse_statements(sql)?;
        let mut out = Vec::with_capacity(stmts.len());
        for stmt in &stmts {
            out.push(crate::exec::execute_statement(self, stmt)?);
        }
        Ok(out)
    }

    /// True when both databases contain the same tables with approximately
    /// equal contents (row order insensitive). This is the state comparison
    /// the NeMoEval evaluator uses for the SQL backend.
    pub fn approx_eq(&self, other: &Database) -> bool {
        self.tables.len() == other.tables.len()
            && self.tables.iter().all(|(name, frame)| {
                other
                    .tables
                    .get(name)
                    .map(|o| frame.approx_eq_unordered(o))
                    .unwrap_or(false)
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataframe::Column;

    fn db() -> Database {
        let mut db = Database::new();
        db.create_table(
            "nodes",
            DataFrame::from_columns(vec![
                ("id".to_string(), Column::from_values(["a", "b", "c"])),
                ("bytes".to_string(), Column::from_values([5i64, 10, 15])),
            ])
            .unwrap(),
        );
        db
    }

    #[test]
    fn create_and_lookup_tables() {
        let mut d = db();
        assert_eq!(d.table_names(), vec!["nodes"]);
        assert!(d.table("nodes").is_ok());
        assert!(matches!(d.table("edges"), Err(SqlError::UnknownTable(_))));
        assert!(d.drop_table("nodes").is_some());
        assert!(d.drop_table("nodes").is_none());
    }

    #[test]
    fn execute_round_trip() {
        let mut d = db();
        let r = d.execute("SELECT id FROM nodes WHERE bytes >= 10").unwrap();
        assert_eq!(r.rows().unwrap().n_rows(), 2);
        let r = d
            .execute("UPDATE nodes SET bytes = 0 WHERE id = 'a'")
            .unwrap();
        assert_eq!(r.affected(), Some(1));
    }

    #[test]
    fn execute_script_returns_all_results() {
        let mut d = db();
        let results = d
            .execute_script("UPDATE nodes SET bytes = 1; SELECT COUNT(*) FROM nodes;")
            .unwrap();
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].affected(), Some(3));
        assert!(results[1].rows().is_some());
    }

    #[test]
    fn approx_eq_is_order_insensitive() {
        let a = db();
        let mut b = db();
        assert!(a.approx_eq(&b));
        b.execute("UPDATE nodes SET bytes = 99 WHERE id = 'a'")
            .unwrap();
        assert!(!a.approx_eq(&b));
        let mut c = db();
        c.create_table("extra", DataFrame::new());
        assert!(!a.approx_eq(&c));
    }
}
