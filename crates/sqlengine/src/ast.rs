//! Abstract syntax tree for the SQL dialect.

use netgraph::AttrValue;

/// A full SQL statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// `SELECT ... FROM ...`
    Select(SelectStmt),
    /// `UPDATE table SET col = expr, ... [WHERE ...]`
    Update(UpdateStmt),
    /// `INSERT INTO table (cols) VALUES (...), (...)`
    Insert(InsertStmt),
    /// `DELETE FROM table [WHERE ...]`
    Delete(DeleteStmt),
    /// `EXPLAIN <stmt>` — pretty-prints the compiled plan instead of
    /// executing the inner statement.
    Explain(Box<Statement>),
}

/// A `SELECT` statement.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectStmt {
    /// Whether `DISTINCT` was specified.
    pub distinct: bool,
    /// The projection list.
    pub items: Vec<SelectItem>,
    /// The base table and optional alias.
    pub from: TableRef,
    /// `JOIN` clauses in order.
    pub joins: Vec<Join>,
    /// `WHERE` predicate.
    pub where_clause: Option<Expr>,
    /// `GROUP BY` expressions.
    pub group_by: Vec<Expr>,
    /// `HAVING` predicate (only valid with `GROUP BY`).
    pub having: Option<Expr>,
    /// `ORDER BY` keys.
    pub order_by: Vec<OrderKey>,
    /// `LIMIT` row count.
    pub limit: Option<usize>,
}

/// One element of a projection list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`
    Wildcard,
    /// `expr [AS alias]`
    Expr {
        /// The projected expression.
        expr: Expr,
        /// Optional output column name.
        alias: Option<String>,
    },
}

/// A table reference with an optional alias (`nodes AS n`).
#[derive(Debug, Clone, PartialEq)]
pub struct TableRef {
    /// The table name as written.
    pub name: String,
    /// Optional alias used to qualify columns.
    pub alias: Option<String>,
}

/// The join flavors supported.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinKind {
    /// `[INNER] JOIN`
    Inner,
    /// `LEFT JOIN`
    Left,
}

/// A `JOIN ... ON ...` clause.
#[derive(Debug, Clone, PartialEq)]
pub struct Join {
    /// Inner or left.
    pub kind: JoinKind,
    /// The joined table.
    pub table: TableRef,
    /// The `ON` predicate.
    pub on: Expr,
}

/// One `ORDER BY` key.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderKey {
    /// The sort expression.
    pub expr: Expr,
    /// True for ascending (the default).
    pub ascending: bool,
}

/// An `UPDATE` statement.
#[derive(Debug, Clone, PartialEq)]
pub struct UpdateStmt {
    /// The target table.
    pub table: String,
    /// `(column, new value expression)` assignments.
    pub assignments: Vec<(String, Expr)>,
    /// Optional row filter.
    pub where_clause: Option<Expr>,
}

/// An `INSERT` statement.
#[derive(Debug, Clone, PartialEq)]
pub struct InsertStmt {
    /// The target table.
    pub table: String,
    /// Column names; empty means "all columns in table order".
    pub columns: Vec<String>,
    /// One expression list per inserted row.
    pub rows: Vec<Vec<Expr>>,
}

/// A `DELETE` statement.
#[derive(Debug, Clone, PartialEq)]
pub struct DeleteStmt {
    /// The target table.
    pub table: String,
    /// Optional row filter; `None` deletes every row.
    pub where_clause: Option<Expr>,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinaryOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
    /// `=`
    Eq,
    /// `!=` / `<>`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    LtEq,
    /// `>`
    Gt,
    /// `>=`
    GtEq,
    /// `AND`
    And,
    /// `OR`
    Or,
}

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggregateFunc {
    /// `COUNT(expr)` or `COUNT(*)`
    Count,
    /// `SUM(expr)`
    Sum,
    /// `AVG(expr)`
    Avg,
    /// `MIN(expr)`
    Min,
    /// `MAX(expr)`
    Max,
}

impl AggregateFunc {
    /// Parses an aggregate function name (case-insensitive).
    pub fn parse(name: &str) -> Option<AggregateFunc> {
        match name.to_ascii_uppercase().as_str() {
            "COUNT" => Some(AggregateFunc::Count),
            "SUM" => Some(AggregateFunc::Sum),
            "AVG" => Some(AggregateFunc::Avg),
            "MIN" => Some(AggregateFunc::Min),
            "MAX" => Some(AggregateFunc::Max),
            _ => None,
        }
    }

    /// The canonical uppercase name.
    pub fn name(&self) -> &'static str {
        match self {
            AggregateFunc::Count => "COUNT",
            AggregateFunc::Sum => "SUM",
            AggregateFunc::Avg => "AVG",
            AggregateFunc::Min => "MIN",
            AggregateFunc::Max => "MAX",
        }
    }
}

/// An expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A literal value.
    Literal(AttrValue),
    /// A column reference, optionally qualified with a table or alias name.
    Column {
        /// Table or alias qualifier.
        table: Option<String>,
        /// Column name.
        name: String,
    },
    /// A unary negation (`-expr`).
    Neg(Box<Expr>),
    /// A logical negation (`NOT expr`).
    Not(Box<Expr>),
    /// A binary operation.
    Binary {
        /// Left operand.
        left: Box<Expr>,
        /// The operator.
        op: BinaryOp,
        /// Right operand.
        right: Box<Expr>,
    },
    /// `expr IS NULL` / `expr IS NOT NULL`
    IsNull {
        /// The tested expression.
        expr: Box<Expr>,
        /// True for `IS NOT NULL`.
        negated: bool,
    },
    /// `expr [NOT] IN (v1, v2, ...)`
    InList {
        /// The tested expression.
        expr: Box<Expr>,
        /// The candidate values.
        list: Vec<Expr>,
        /// True for `NOT IN`.
        negated: bool,
    },
    /// `expr [NOT] LIKE pattern` (SQL `%`/`_` wildcards).
    Like {
        /// The tested expression.
        expr: Box<Expr>,
        /// The pattern expression (usually a string literal).
        pattern: Box<Expr>,
        /// True for `NOT LIKE`.
        negated: bool,
    },
    /// `expr BETWEEN low AND high`
    Between {
        /// The tested expression.
        expr: Box<Expr>,
        /// Lower bound (inclusive).
        low: Box<Expr>,
        /// Upper bound (inclusive).
        high: Box<Expr>,
        /// True for `NOT BETWEEN`.
        negated: bool,
    },
    /// A scalar function call (`LENGTH`, `SUBSTR`, `UPPER`, ...).
    Function {
        /// Function name, uppercase.
        name: String,
        /// Argument expressions.
        args: Vec<Expr>,
    },
    /// An aggregate call (`SUM(bytes)`, `COUNT(*)`).
    Aggregate {
        /// Which aggregate.
        func: AggregateFunc,
        /// The aggregated expression; `None` means `*` (only for COUNT).
        arg: Option<Box<Expr>>,
    },
    /// `CASE WHEN cond THEN value ... [ELSE value] END`
    Case {
        /// `(condition, result)` arms in order.
        arms: Vec<(Expr, Expr)>,
        /// Optional `ELSE` result.
        otherwise: Option<Box<Expr>>,
    },
}

impl Expr {
    /// True when the expression (or any sub-expression) contains an
    /// aggregate call. Used to decide whether a `SELECT` without `GROUP BY`
    /// is an implicit single-group aggregation.
    pub fn contains_aggregate(&self) -> bool {
        match self {
            Expr::Aggregate { .. } => true,
            Expr::Literal(_) | Expr::Column { .. } => false,
            Expr::Neg(e) | Expr::Not(e) => e.contains_aggregate(),
            Expr::Binary { left, right, .. } => {
                left.contains_aggregate() || right.contains_aggregate()
            }
            Expr::IsNull { expr, .. } => expr.contains_aggregate(),
            Expr::InList { expr, list, .. } => {
                expr.contains_aggregate() || list.iter().any(Expr::contains_aggregate)
            }
            Expr::Like { expr, pattern, .. } => {
                expr.contains_aggregate() || pattern.contains_aggregate()
            }
            Expr::Between {
                expr, low, high, ..
            } => expr.contains_aggregate() || low.contains_aggregate() || high.contains_aggregate(),
            Expr::Function { args, .. } => args.iter().any(Expr::contains_aggregate),
            Expr::Case { arms, otherwise } => {
                arms.iter()
                    .any(|(c, r)| c.contains_aggregate() || r.contains_aggregate())
                    || otherwise
                        .as_ref()
                        .map(|e| e.contains_aggregate())
                        .unwrap_or(false)
            }
        }
    }

    /// A display name for an unaliased projection of this expression,
    /// mirroring the loose conventions of real engines (`SUM(bytes)`,
    /// `count`, the column name, ...).
    pub fn default_name(&self) -> String {
        match self {
            Expr::Column { name, .. } => name.clone(),
            Expr::Aggregate { func, arg } => match arg {
                Some(a) => format!("{}({})", func.name(), a.default_name()),
                None => format!("{}(*)", func.name()),
            },
            Expr::Function { name, .. } => name.to_ascii_lowercase(),
            Expr::Literal(v) => v.to_string(),
            _ => "expr".to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contains_aggregate_walks_subtrees() {
        let agg = Expr::Aggregate {
            func: AggregateFunc::Sum,
            arg: Some(Box::new(Expr::Column {
                table: None,
                name: "bytes".into(),
            })),
        };
        let wrapped = Expr::Binary {
            left: Box::new(agg),
            op: BinaryOp::Div,
            right: Box::new(Expr::Literal(AttrValue::Int(2))),
        };
        assert!(wrapped.contains_aggregate());
        let plain = Expr::Column {
            table: None,
            name: "bytes".into(),
        };
        assert!(!plain.contains_aggregate());
    }

    #[test]
    fn default_names() {
        let col = Expr::Column {
            table: Some("n".into()),
            name: "bytes".into(),
        };
        assert_eq!(col.default_name(), "bytes");
        let agg = Expr::Aggregate {
            func: AggregateFunc::Count,
            arg: None,
        };
        assert_eq!(agg.default_name(), "COUNT(*)");
    }

    #[test]
    fn aggregate_parse() {
        assert_eq!(AggregateFunc::parse("avg"), Some(AggregateFunc::Avg));
        assert_eq!(AggregateFunc::parse("median"), None);
    }
}
