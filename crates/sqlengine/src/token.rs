//! Token model for the SQL lexer.

use std::fmt;

/// A single lexical token plus the byte offset where it starts (used in
/// error messages).
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token kind and payload.
    pub kind: TokenKind,
    /// Byte offset of the first character of the token in the input.
    pub offset: usize,
}

/// The kinds of token the SQL dialect understands.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// A keyword (`SELECT`, `FROM`, ...). Stored uppercase.
    Keyword(String),
    /// An identifier: table, column or alias name. Case preserved.
    Ident(String),
    /// A numeric literal.
    Number(f64),
    /// A single-quoted string literal (quotes removed, '' unescaped).
    Str(String),
    /// `*`
    Star,
    /// `,`
    Comma,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `.`
    Dot,
    /// `;`
    Semicolon,
    /// `=`
    Eq,
    /// `!=` or `<>`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    LtEq,
    /// `>`
    Gt,
    /// `>=`
    GtEq,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// End of input.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Keyword(k) => write!(f, "{k}"),
            TokenKind::Ident(i) => write!(f, "{i}"),
            TokenKind::Number(n) => write!(f, "{n}"),
            TokenKind::Str(s) => write!(f, "'{s}'"),
            TokenKind::Star => write!(f, "*"),
            TokenKind::Comma => write!(f, ","),
            TokenKind::LParen => write!(f, "("),
            TokenKind::RParen => write!(f, ")"),
            TokenKind::Dot => write!(f, "."),
            TokenKind::Semicolon => write!(f, ";"),
            TokenKind::Eq => write!(f, "="),
            TokenKind::NotEq => write!(f, "!="),
            TokenKind::Lt => write!(f, "<"),
            TokenKind::LtEq => write!(f, "<="),
            TokenKind::Gt => write!(f, ">"),
            TokenKind::GtEq => write!(f, ">="),
            TokenKind::Plus => write!(f, "+"),
            TokenKind::Minus => write!(f, "-"),
            TokenKind::Slash => write!(f, "/"),
            TokenKind::Percent => write!(f, "%"),
            TokenKind::Eof => write!(f, "<eof>"),
        }
    }
}

/// The reserved words of the dialect. Identifiers matching one of these
/// (case-insensitively) lex as [`TokenKind::Keyword`].
pub const KEYWORDS: &[&str] = &[
    "SELECT", "DISTINCT", "FROM", "WHERE", "GROUP", "BY", "HAVING", "ORDER", "ASC", "DESC",
    "LIMIT", "OFFSET", "AS", "AND", "OR", "NOT", "NULL", "TRUE", "FALSE", "IN", "LIKE", "BETWEEN",
    "IS", "JOIN", "INNER", "LEFT", "ON", "UPDATE", "SET", "INSERT", "INTO", "VALUES", "DELETE",
    "CREATE", "TABLE", "CASE", "WHEN", "THEN", "ELSE", "END", "EXPLAIN",
];

/// True if `word` is a reserved keyword (case-insensitive).
pub fn is_keyword(word: &str) -> bool {
    KEYWORDS.iter().any(|k| k.eq_ignore_ascii_case(word))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_lookup_is_case_insensitive() {
        assert!(is_keyword("select"));
        assert!(is_keyword("SELECT"));
        assert!(is_keyword("Between"));
        assert!(!is_keyword("bytes"));
    }

    #[test]
    fn display_round_trips_simple_tokens() {
        assert_eq!(TokenKind::Star.to_string(), "*");
        assert_eq!(TokenKind::Str("a'b".into()).to_string(), "'a'b'");
        assert_eq!(TokenKind::Keyword("SELECT".into()).to_string(), "SELECT");
    }
}
