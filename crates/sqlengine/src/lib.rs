//! # sqlengine
//!
//! A small in-memory SQL engine: the execution substrate for the "SQL
//! approach" of the NeMoEval reproduction. The network is stored as two
//! tables (`nodes`, `edges`), the LLM-generated artifact is SQL text, and
//! this crate lexes, parses and executes that text for real — so syntax
//! errors, references to imaginary columns, wrong function arguments and
//! bad arithmetic all surface as the distinct error kinds the benchmark's
//! error classifier needs.
//!
//! Supported dialect (a practical subset of SQLite-flavoured SQL):
//!
//! * `SELECT [DISTINCT] ... FROM t [AS a] [[LEFT] JOIN u ON ...] [WHERE ...]`
//!   `[GROUP BY ...] [HAVING ...] [ORDER BY ... [ASC|DESC]] [LIMIT n]`
//! * Aggregates `COUNT(*) / COUNT / SUM / AVG / MIN / MAX`
//! * Scalar functions `LENGTH, UPPER, LOWER, TRIM, SUBSTR, REPLACE, INSTR,
//!   ABS, ROUND, COALESCE, CONCAT, CAST_INT, SPLIT_PART, IP_PREFIX`
//! * `LIKE` / `IN` / `BETWEEN` / `IS [NOT] NULL` / `CASE WHEN`
//! * `UPDATE ... SET ... [WHERE ...]`, `INSERT INTO ... VALUES ...`,
//!   `DELETE FROM ... [WHERE ...]`
//! * `EXPLAIN <stmt>` — returns the compiled plan (scan vs hash equi-join
//!   vs nested loop, pushed-down `WHERE`, grouping and ordering steps) as a
//!   one-column `plan` result set instead of executing the statement
//!
//! ```
//! use sqlengine::Database;
//! use dataframe::{DataFrame, Column};
//!
//! let mut db = Database::new();
//! db.create_table("edges", DataFrame::from_columns(vec![
//!     ("source".to_string(), Column::from_values(["a", "a", "b"])),
//!     ("bytes".to_string(), Column::from_values([10i64, 20, 30])),
//! ]).unwrap());
//! let top = db.execute(
//!     "SELECT source, SUM(bytes) AS total FROM edges GROUP BY source ORDER BY total DESC LIMIT 1"
//! ).unwrap();
//! assert_eq!(top.rows().unwrap().value(0, "source").unwrap().as_str(), Some("a"));
//! ```

#![warn(missing_docs)]

pub mod ast;
mod database;
mod display;
mod error;
mod exec;
pub mod functions;
mod lexer;
mod parser;
mod token;

pub use database::{Database, QueryResult};
pub use error::{Result, SqlError};
pub use exec::{execute_statement, explain_statement};
pub use lexer::tokenize;
pub use parser::{parse_statement, parse_statements};
pub use token::{Token, TokenKind};
