//! Converts SQL text into a token stream.

use crate::error::{Result, SqlError};
use crate::token::{is_keyword, Token, TokenKind};

/// Tokenizes a SQL statement. Comments (`-- ...` to end of line) and
/// whitespace are skipped. The returned stream always ends with a single
/// [`TokenKind::Eof`] token.
pub fn tokenize(input: &str) -> Result<Vec<Token>> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            c if c.is_whitespace() => {
                i += 1;
            }
            '-' if bytes.get(i + 1) == Some(&b'-') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '\'' => {
                let (s, next) = lex_string(input, i)?;
                tokens.push(Token {
                    kind: TokenKind::Str(s),
                    offset: i,
                });
                i = next;
            }
            '"' => {
                // Double-quoted identifiers.
                let (s, next) = lex_quoted_ident(input, i)?;
                tokens.push(Token {
                    kind: TokenKind::Ident(s),
                    offset: i,
                });
                i = next;
            }
            c if c.is_ascii_digit() => {
                let (n, next) = lex_number(input, i)?;
                tokens.push(Token {
                    kind: TokenKind::Number(n),
                    offset: i,
                });
                i = next;
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                let word = &input[start..i];
                let kind = if is_keyword(word) {
                    TokenKind::Keyword(word.to_ascii_uppercase())
                } else {
                    TokenKind::Ident(word.to_string())
                };
                tokens.push(Token {
                    kind,
                    offset: start,
                });
            }
            _ => {
                let (kind, width) = lex_symbol(bytes, i)?;
                tokens.push(Token { kind, offset: i });
                i += width;
            }
        }
    }
    tokens.push(Token {
        kind: TokenKind::Eof,
        offset: input.len(),
    });
    Ok(tokens)
}

fn lex_string(input: &str, start: usize) -> Result<(String, usize)> {
    let bytes = input.as_bytes();
    let mut out = String::new();
    let mut i = start + 1;
    while i < bytes.len() {
        if bytes[i] == b'\'' {
            if bytes.get(i + 1) == Some(&b'\'') {
                out.push('\'');
                i += 2;
            } else {
                return Ok((out, i + 1));
            }
        } else {
            out.push(bytes[i] as char);
            i += 1;
        }
    }
    Err(SqlError::Lex {
        position: start,
        message: "unterminated string literal".to_string(),
    })
}

fn lex_quoted_ident(input: &str, start: usize) -> Result<(String, usize)> {
    let bytes = input.as_bytes();
    let mut out = String::new();
    let mut i = start + 1;
    while i < bytes.len() {
        if bytes[i] == b'"' {
            return Ok((out, i + 1));
        }
        out.push(bytes[i] as char);
        i += 1;
    }
    Err(SqlError::Lex {
        position: start,
        message: "unterminated quoted identifier".to_string(),
    })
}

fn lex_number(input: &str, start: usize) -> Result<(f64, usize)> {
    let bytes = input.as_bytes();
    let mut i = start;
    let mut saw_dot = false;
    while i < bytes.len() {
        match bytes[i] {
            b'0'..=b'9' => i += 1,
            b'.' if !saw_dot => {
                saw_dot = true;
                i += 1;
            }
            _ => break,
        }
    }
    input[start..i]
        .parse::<f64>()
        .map(|n| (n, i))
        .map_err(|_| SqlError::Lex {
            position: start,
            message: format!("invalid numeric literal '{}'", &input[start..i]),
        })
}

fn lex_symbol(bytes: &[u8], i: usize) -> Result<(TokenKind, usize)> {
    let two = |a: u8, b: u8| bytes[i] == a && bytes.get(i + 1) == Some(&b);
    if two(b'!', b'=') {
        return Ok((TokenKind::NotEq, 2));
    }
    if two(b'<', b'>') {
        return Ok((TokenKind::NotEq, 2));
    }
    if two(b'<', b'=') {
        return Ok((TokenKind::LtEq, 2));
    }
    if two(b'>', b'=') {
        return Ok((TokenKind::GtEq, 2));
    }
    let kind = match bytes[i] {
        b'*' => TokenKind::Star,
        b',' => TokenKind::Comma,
        b'(' => TokenKind::LParen,
        b')' => TokenKind::RParen,
        b'.' => TokenKind::Dot,
        b';' => TokenKind::Semicolon,
        b'=' => TokenKind::Eq,
        b'<' => TokenKind::Lt,
        b'>' => TokenKind::Gt,
        b'+' => TokenKind::Plus,
        b'-' => TokenKind::Minus,
        b'/' => TokenKind::Slash,
        b'%' => TokenKind::Percent,
        other => {
            return Err(SqlError::Lex {
                position: i,
                message: format!("unexpected character '{}'", other as char),
            })
        }
    };
    Ok((kind, 1))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(sql: &str) -> Vec<TokenKind> {
        tokenize(sql).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_a_simple_select() {
        let k = kinds("SELECT * FROM nodes WHERE bytes >= 10.5");
        assert_eq!(k[0], TokenKind::Keyword("SELECT".into()));
        assert_eq!(k[1], TokenKind::Star);
        assert_eq!(k[3], TokenKind::Ident("nodes".into()));
        assert_eq!(k[6], TokenKind::GtEq);
        assert_eq!(k[7], TokenKind::Number(10.5));
        assert_eq!(*k.last().unwrap(), TokenKind::Eof);
    }

    #[test]
    fn keywords_are_case_insensitive_identifiers_preserve_case() {
        let k = kinds("select Bytes from Nodes");
        assert_eq!(k[0], TokenKind::Keyword("SELECT".into()));
        assert_eq!(k[1], TokenKind::Ident("Bytes".into()));
        assert_eq!(k[3], TokenKind::Ident("Nodes".into()));
    }

    #[test]
    fn string_literals_unescape_doubled_quotes() {
        let k = kinds("SELECT 'it''s'");
        assert_eq!(k[1], TokenKind::Str("it's".into()));
    }

    #[test]
    fn quoted_identifiers() {
        let k = kinds("SELECT \"weird name\" FROM t");
        assert_eq!(k[1], TokenKind::Ident("weird name".into()));
    }

    #[test]
    fn comments_are_skipped() {
        let k = kinds("SELECT 1 -- trailing comment\n, 2");
        assert_eq!(k[1], TokenKind::Number(1.0));
        assert_eq!(k[2], TokenKind::Comma);
        assert_eq!(k[3], TokenKind::Number(2.0));
    }

    #[test]
    fn two_character_operators() {
        let k = kinds("a != b <> c <= d >= e");
        assert_eq!(k[1], TokenKind::NotEq);
        assert_eq!(k[3], TokenKind::NotEq);
        assert_eq!(k[5], TokenKind::LtEq);
        assert_eq!(k[7], TokenKind::GtEq);
    }

    #[test]
    fn unterminated_string_is_a_lex_error() {
        let err = tokenize("SELECT 'oops").unwrap_err();
        assert!(err.is_syntax());
        assert!(err.to_string().contains("unterminated"));
    }

    #[test]
    fn stray_character_is_a_lex_error() {
        assert!(tokenize("SELECT #").is_err());
    }
}
