//! Scalar functions and the `LIKE` pattern matcher.

use crate::error::{Result, SqlError};
use netgraph::AttrValue;

/// Evaluates a scalar function call. `name` must already be uppercase (the
/// parser normalizes it).
///
/// Unknown names produce [`SqlError::UnknownFunction`] — the "imaginary
/// function" failure mode injected by the simulated LLM.
pub fn call_scalar(name: &str, args: &[AttrValue]) -> Result<AttrValue> {
    let arity = |expected: &str, ok: bool| -> Result<()> {
        if ok {
            Ok(())
        } else {
            Err(SqlError::Arity {
                what: name.to_string(),
                expected: expected.to_string(),
                actual: args.len(),
            })
        }
    };
    match name {
        "LENGTH" | "LEN" => {
            arity("1", args.len() == 1)?;
            match &args[0] {
                AttrValue::Str(s) => Ok(AttrValue::Int(s.chars().count() as i64)),
                AttrValue::List(v) => Ok(AttrValue::Int(v.len() as i64)),
                AttrValue::Null => Ok(AttrValue::Null),
                other => Err(SqlError::Type(format!(
                    "LENGTH expects a string, got {}",
                    other.type_name()
                ))),
            }
        }
        "UPPER" => {
            arity("1", args.len() == 1)?;
            string_map(name, &args[0], |s| s.to_ascii_uppercase())
        }
        "LOWER" => {
            arity("1", args.len() == 1)?;
            string_map(name, &args[0], |s| s.to_ascii_lowercase())
        }
        "TRIM" => {
            arity("1", args.len() == 1)?;
            string_map(name, &args[0], |s| s.trim().to_string())
        }
        "SUBSTR" | "SUBSTRING" => {
            arity("2 or 3", args.len() == 2 || args.len() == 3)?;
            let s = expect_str(name, &args[0])?;
            // SQL SUBSTR is 1-based; a length of 0 or a start past the end
            // yields an empty string.
            let start = expect_int(name, &args[1])?.max(1) as usize - 1;
            let chars: Vec<char> = s.chars().collect();
            let len = if args.len() == 3 {
                expect_int(name, &args[2])?.max(0) as usize
            } else {
                chars.len().saturating_sub(start)
            };
            let out: String = chars.iter().skip(start).take(len).collect();
            Ok(AttrValue::Str(out.into()))
        }
        "REPLACE" => {
            arity("3", args.len() == 3)?;
            let s = expect_str(name, &args[0])?;
            let from = expect_str(name, &args[1])?;
            let to = expect_str(name, &args[2])?;
            Ok(AttrValue::Str(s.replace(&from, &to).into()))
        }
        "INSTR" => {
            arity("2", args.len() == 2)?;
            let s = expect_str(name, &args[0])?;
            let needle = expect_str(name, &args[1])?;
            // 1-based position, 0 when absent (SQLite semantics).
            Ok(AttrValue::Int(
                s.find(&needle).map(|i| i as i64 + 1).unwrap_or(0),
            ))
        }
        "ABS" => {
            arity("1", args.len() == 1)?;
            match &args[0] {
                AttrValue::Int(i) => Ok(AttrValue::Int(i.abs())),
                AttrValue::Float(f) => Ok(AttrValue::Float(f.abs())),
                AttrValue::Null => Ok(AttrValue::Null),
                other => Err(SqlError::Type(format!(
                    "ABS expects a number, got {}",
                    other.type_name()
                ))),
            }
        }
        "ROUND" => {
            arity("1 or 2", args.len() == 1 || args.len() == 2)?;
            let v = expect_num(name, &args[0])?;
            let digits = if args.len() == 2 {
                expect_int(name, &args[1])?
            } else {
                0
            };
            let factor = 10f64.powi(digits as i32);
            Ok(AttrValue::Float((v * factor).round() / factor))
        }
        "CAST_INT" => {
            arity("1", args.len() == 1)?;
            match &args[0] {
                AttrValue::Int(i) => Ok(AttrValue::Int(*i)),
                AttrValue::Float(f) => Ok(AttrValue::Int(*f as i64)),
                AttrValue::Str(s) => s
                    .trim()
                    .parse::<i64>()
                    .map(AttrValue::Int)
                    .map_err(|_| SqlError::Type(format!("cannot cast '{s}' to integer"))),
                AttrValue::Null => Ok(AttrValue::Null),
                other => Err(SqlError::Type(format!(
                    "cannot cast {} to integer",
                    other.type_name()
                ))),
            }
        }
        "COALESCE" => {
            arity("at least 1", !args.is_empty())?;
            Ok(args
                .iter()
                .find(|v| !v.is_null())
                .cloned()
                .unwrap_or(AttrValue::Null))
        }
        "CONCAT" => {
            let mut out = String::new();
            for a in args {
                if !a.is_null() {
                    out.push_str(&a.to_string());
                }
            }
            Ok(AttrValue::Str(out.into()))
        }
        "SPLIT_PART" => {
            // SPLIT_PART(string, delimiter, index) — 1-based, used by golden
            // SQL to derive IP prefixes ("10.0.3.7", ".", 1) -> "10".
            arity("3", args.len() == 3)?;
            let s = expect_str(name, &args[0])?;
            let delim = expect_str(name, &args[1])?;
            let idx = expect_int(name, &args[2])?;
            if idx < 1 {
                return Err(SqlError::Execution(
                    "SPLIT_PART index must be >= 1".to_string(),
                ));
            }
            let part = s
                .split(delim.as_str())
                .nth(idx as usize - 1)
                .unwrap_or("")
                .to_string();
            Ok(AttrValue::Str(part.into()))
        }
        "IP_PREFIX" => {
            // IP_PREFIX(address, octets) — keeps the first `octets` dotted
            // groups of an IPv4 address ("10.76.3.9", 2) -> "10.76".
            arity("2", args.len() == 2)?;
            let s = expect_str(name, &args[0])?;
            let octets = expect_int(name, &args[1])?.clamp(1, 4) as usize;
            let prefix: Vec<&str> = s.split('.').take(octets).collect();
            Ok(AttrValue::Str(prefix.join(".").into()))
        }
        other => Err(SqlError::UnknownFunction(other.to_string())),
    }
}

fn string_map<F: Fn(&str) -> String>(name: &str, v: &AttrValue, f: F) -> Result<AttrValue> {
    match v {
        AttrValue::Str(s) => Ok(AttrValue::Str(f(s).into())),
        AttrValue::Null => Ok(AttrValue::Null),
        other => Err(SqlError::Type(format!(
            "{name} expects a string, got {}",
            other.type_name()
        ))),
    }
}

fn expect_str(name: &str, v: &AttrValue) -> Result<String> {
    v.as_str()
        .map(|s| s.to_string())
        .ok_or_else(|| SqlError::Type(format!("{name} expects a string, got {}", v.type_name())))
}

fn expect_num(name: &str, v: &AttrValue) -> Result<f64> {
    v.as_f64()
        .ok_or_else(|| SqlError::Type(format!("{name} expects a number, got {}", v.type_name())))
}

fn expect_int(name: &str, v: &AttrValue) -> Result<i64> {
    v.as_i64()
        .ok_or_else(|| SqlError::Type(format!("{name} expects an integer, got {}", v.type_name())))
}

/// A compiled SQL `LIKE` pattern: `%` matches any run of characters, `_`
/// matches one character; matching is case-sensitive.
///
/// Compiling translates the pattern string into a token vector once;
/// [`LikePattern::matches`] is then an iterative two-pointer scan with
/// backtracking to the most recent `%` — O(text × pattern) worst case
/// instead of the exponential naive recursion, and no per-call pattern
/// translation. The executor precompiles literal patterns at query-compile
/// time; dynamic patterns go through a per-thread memo cache inside
/// [`like_match`].
#[derive(Debug, Clone, PartialEq)]
pub struct LikePattern {
    tokens: Vec<LikeTok>,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum LikeTok {
    /// `%` — any run of characters, including empty.
    AnyRun,
    /// `_` — exactly one character.
    AnyOne,
    /// A literal character.
    Lit(char),
}

impl LikePattern {
    /// Translates a pattern string into its compiled form.
    pub fn compile(pattern: &str) -> LikePattern {
        LikePattern {
            tokens: pattern
                .chars()
                .map(|c| match c {
                    '%' => LikeTok::AnyRun,
                    '_' => LikeTok::AnyOne,
                    c => LikeTok::Lit(c),
                })
                .collect(),
        }
    }

    /// True when `text` matches the pattern.
    pub fn matches(&self, text: &str) -> bool {
        let t: Vec<char> = text.chars().collect();
        let p = &self.tokens;
        let (mut ti, mut pi) = (0usize, 0usize);
        // Most recent `%`: (pattern position after it, text position it
        // currently swallows up to).
        let mut retry: Option<(usize, usize)> = None;
        while ti < t.len() {
            match p.get(pi) {
                Some(LikeTok::AnyRun) => {
                    retry = Some((pi + 1, ti));
                    pi += 1;
                }
                Some(LikeTok::AnyOne) => {
                    ti += 1;
                    pi += 1;
                }
                Some(LikeTok::Lit(c)) if *c == t[ti] => {
                    ti += 1;
                    pi += 1;
                }
                _ => match retry {
                    // Let the last `%` swallow one more character.
                    Some((rp, rt)) if rt < t.len() => {
                        retry = Some((rp, rt + 1));
                        pi = rp;
                        ti = rt + 1;
                    }
                    _ => return false,
                },
            }
        }
        // Text consumed; only trailing `%` tokens may remain.
        p[pi..].iter().all(|tok| *tok == LikeTok::AnyRun)
    }
}

/// SQL `LIKE` matching through a per-thread memo of compiled patterns, so
/// repeated predicates (the common case: one pattern probed against every
/// row) are translated once instead of once per row.
pub fn like_match(text: &str, pattern: &str) -> bool {
    use std::cell::RefCell;
    use std::collections::HashMap;
    thread_local! {
        static CACHE: RefCell<HashMap<String, LikePattern>> = RefCell::new(HashMap::new());
    }
    CACHE.with(|cache| {
        let mut cache = cache.borrow_mut();
        // Hit path first, with no owned-key allocation.
        if let Some(compiled) = cache.get(pattern) {
            return compiled.matches(text);
        }
        // Bound the memo so adversarial dynamic patterns cannot grow it
        // without limit; queries use a handful of patterns in practice.
        if cache.len() > 256 {
            cache.clear();
        }
        let compiled = LikePattern::compile(pattern);
        let verdict = compiled.matches(text);
        cache.insert(pattern.to_string(), compiled);
        verdict
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &str) -> AttrValue {
        AttrValue::Str(v.into())
    }

    #[test]
    fn string_functions() {
        assert_eq!(
            call_scalar("LENGTH", &[s("abcd")]).unwrap(),
            AttrValue::Int(4)
        );
        assert_eq!(call_scalar("UPPER", &[s("ab")]).unwrap(), s("AB"));
        assert_eq!(call_scalar("LOWER", &[s("AB")]).unwrap(), s("ab"));
        assert_eq!(call_scalar("TRIM", &[s("  x ")]).unwrap(), s("x"));
        assert_eq!(
            call_scalar(
                "SUBSTR",
                &[s("10.76.3.9"), AttrValue::Int(1), AttrValue::Int(5)]
            )
            .unwrap(),
            s("10.76")
        );
        assert_eq!(
            call_scalar("REPLACE", &[s("a-b"), s("-"), s(":")]).unwrap(),
            s("a:b")
        );
        assert_eq!(
            call_scalar("INSTR", &[s("10.76.3.9"), s(".")]).unwrap(),
            AttrValue::Int(3)
        );
        assert_eq!(
            call_scalar("CONCAT", &[s("a"), AttrValue::Null, AttrValue::Int(3)]).unwrap(),
            s("a3")
        );
    }

    #[test]
    fn numeric_functions() {
        assert_eq!(
            call_scalar("ABS", &[AttrValue::Int(-4)]).unwrap(),
            AttrValue::Int(4)
        );
        assert_eq!(
            call_scalar("ROUND", &[AttrValue::Float(2.34567), AttrValue::Int(2)]).unwrap(),
            AttrValue::Float(2.35)
        );
        assert_eq!(
            call_scalar("CAST_INT", &[s("42")]).unwrap(),
            AttrValue::Int(42)
        );
        assert!(call_scalar("CAST_INT", &[s("4x")]).is_err());
    }

    #[test]
    fn network_helpers() {
        assert_eq!(
            call_scalar("SPLIT_PART", &[s("10.76.3.9"), s("."), AttrValue::Int(2)]).unwrap(),
            s("76")
        );
        assert_eq!(
            call_scalar("IP_PREFIX", &[s("10.76.3.9"), AttrValue::Int(2)]).unwrap(),
            s("10.76")
        );
        assert_eq!(
            call_scalar("IP_PREFIX", &[s("10.76.3.9"), AttrValue::Int(9)]).unwrap(),
            s("10.76.3.9")
        );
    }

    #[test]
    fn coalesce_picks_first_non_null() {
        assert_eq!(
            call_scalar(
                "COALESCE",
                &[AttrValue::Null, AttrValue::Int(2), AttrValue::Int(3)]
            )
            .unwrap(),
            AttrValue::Int(2)
        );
        assert_eq!(
            call_scalar("COALESCE", &[AttrValue::Null]).unwrap(),
            AttrValue::Null
        );
    }

    #[test]
    fn null_propagation_and_errors() {
        assert_eq!(
            call_scalar("UPPER", &[AttrValue::Null]).unwrap(),
            AttrValue::Null
        );
        assert!(call_scalar("UPPER", &[AttrValue::Int(2)]).is_err());
        assert!(matches!(
            call_scalar("FROBNICATE", &[]),
            Err(SqlError::UnknownFunction(_))
        ));
        assert!(matches!(
            call_scalar("LENGTH", &[]),
            Err(SqlError::Arity { .. })
        ));
    }

    #[test]
    fn like_patterns() {
        assert!(like_match("10.76.3.9", "10.76%"));
        assert!(like_match("10.76.3.9", "%.9"));
        assert!(like_match("10.76.3.9", "%76%"));
        assert!(like_match("abc", "a_c"));
        assert!(!like_match("abc", "a_d"));
        assert!(like_match("", "%"));
        assert!(!like_match("abc", ""));
        assert!(like_match("abc", "abc"));
        assert!(!like_match("ABC", "abc"));
    }
}
