//! CSV serialization for frames.
//!
//! Workload generators export node/edge frames as CSV so benchmark runs can
//! be inspected outside the harness; the serving layer's snapshots embed
//! frames in this format and replay them back. The dialect is deliberately
//! small: comma separator, `"`-quoting with doubled quotes, first row is the
//! header.
//!
//! The round trip is **lossless**: string fields are always quoted (so a
//! string that *looks* numeric — `"15.76"`, an address prefix — or an empty
//! string comes back as exactly that string, not a float or a null), and
//! quoted fields are never type-inferred on the way back in. Unquoted
//! fields carry the numeric/bool/null scalars.

use crate::column::Column;
use crate::error::{FrameError, Result};
use crate::frame::DataFrame;
use netgraph::AttrValue;

/// Serializes a frame as CSV with a header row.
///
/// Ints, floats and bools are written unquoted and nulls as empty fields;
/// strings (and list values, via their display form) are always quoted so
/// the reader can reconstruct them verbatim without type inference.
pub fn to_csv(df: &DataFrame) -> String {
    let mut out = String::new();
    let names = df.column_names();
    out.push_str(
        &names
            .iter()
            .map(|n| quote_field(n))
            .collect::<Vec<_>>()
            .join(","),
    );
    out.push('\n');
    out.push_str(&to_csv_rows(df, 0));
    out
}

/// Serializes only the data lines (no header) for rows `from..`, in the
/// exact dialect of [`to_csv`]: for any `from <= n_rows`,
/// `to_csv(df) == header_line + to_csv_rows(df, 0)` and appending
/// `to_csv_rows(df, k)` to the first `k` rows' serialization reproduces the
/// full document byte for byte. This is what lets an incremental snapshot
/// writer reuse the previous snapshot's unchanged prefix and encode only
/// the appended tail.
pub fn to_csv_rows(df: &DataFrame, from: usize) -> String {
    let mut out = String::new();
    let names = df.column_names();
    for row in from..df.n_rows() {
        let fields: Vec<String> = names
            .iter()
            .map(|name| {
                let v = df.value(row, name).expect("in range");
                match v {
                    AttrValue::Null => String::new(),
                    AttrValue::Int(_) | AttrValue::Float(_) | AttrValue::Bool(_) => v.to_string(),
                    _ => quote_field(&v.to_string()),
                }
            })
            .collect();
        out.push_str(&fields.join(","));
        out.push('\n');
    }
    out
}

/// Parses CSV text (first row = header) into a frame.
///
/// Quoted fields are taken as literal strings. Unquoted fields are
/// type-inferred: empty → null, `true`/`false` → bool, integers → int,
/// other numerics → float, everything else → string.
pub fn from_csv(text: &str) -> Result<DataFrame> {
    let mut rows = parse_rows(text)?;
    if rows.is_empty() {
        return Ok(DataFrame::new());
    }
    let header: Vec<String> = rows.remove(0).into_iter().map(|f| f.text).collect();
    let mut columns: Vec<Column> = header.iter().map(|_| Column::new()).collect();
    for (line, row) in rows.iter().enumerate() {
        if row.len() != header.len() {
            return Err(FrameError::Csv(format!(
                "row {} has {} fields, expected {}",
                line + 2,
                row.len(),
                header.len()
            )));
        }
        for (i, field) in row.iter().enumerate() {
            columns[i].push(if field.quoted {
                AttrValue::Str(field.text.as_str().into())
            } else {
                infer_value(&field.text)
            });
        }
    }
    DataFrame::from_columns(header.into_iter().zip(columns).collect())
}

fn quote_field(s: &str) -> String {
    format!("\"{}\"", s.replace('"', "\"\""))
}

fn infer_value(field: &str) -> AttrValue {
    if field.is_empty() {
        return AttrValue::Null;
    }
    match field {
        "true" => return AttrValue::Bool(true),
        "false" => return AttrValue::Bool(false),
        _ => {}
    }
    // Only fields that *look* numeric are parsed as numbers; this keeps
    // strings such as "inf" or "nan" (valid Rust float spellings) as text.
    let looks_numeric = field
        .chars()
        .all(|c| c.is_ascii_digit() || matches!(c, '-' | '+' | '.' | 'e' | 'E'))
        && field.chars().any(|c| c.is_ascii_digit());
    if looks_numeric {
        if let Ok(i) = field.parse::<i64>() {
            return AttrValue::Int(i);
        }
        if let Ok(f) = field.parse::<f64>() {
            return AttrValue::Float(f);
        }
    }
    AttrValue::Str(field.into())
}

/// One raw field: its unescaped text plus whether any part of it was
/// quoted (which suppresses type inference).
struct RawField {
    text: String,
    quoted: bool,
}

/// Splits CSV text into rows of unescaped fields.
fn parse_rows(text: &str) -> Result<Vec<Vec<RawField>>> {
    let mut rows = Vec::new();
    let mut row: Vec<RawField> = Vec::new();
    let mut field = String::new();
    let mut field_quoted = false;
    let mut in_quotes = false;
    let mut chars = text.chars().peekable();
    let mut saw_any = false;
    let take_field = |field: &mut String, quoted: &mut bool| RawField {
        text: std::mem::take(field),
        quoted: std::mem::take(quoted),
    };
    while let Some(c) = chars.next() {
        saw_any = true;
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        field.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                _ => field.push(c),
            }
        } else {
            match c {
                '"' => {
                    in_quotes = true;
                    field_quoted = true;
                }
                ',' => {
                    row.push(take_field(&mut field, &mut field_quoted));
                }
                '\r' => {}
                '\n' => {
                    row.push(take_field(&mut field, &mut field_quoted));
                    rows.push(std::mem::take(&mut row));
                }
                _ => field.push(c),
            }
        }
    }
    if in_quotes {
        return Err(FrameError::Csv("unterminated quoted field".to_string()));
    }
    if saw_any && (!field.is_empty() || field_quoted || !row.is_empty()) {
        row.push(take_field(&mut field, &mut field_quoted));
        rows.push(row);
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DataFrame {
        DataFrame::from_columns(vec![
            (
                "node".to_string(),
                Column::from_values(["a", "b,comma", "c\"quote"]),
            ),
            ("bytes".to_string(), Column::from_values([10i64, 20, 30])),
            (
                "ratio".to_string(),
                Column::from_iter(vec![
                    AttrValue::Float(0.5),
                    AttrValue::Null,
                    AttrValue::Float(1.5),
                ]),
            ),
        ])
        .unwrap()
    }

    #[test]
    fn round_trip_preserves_values() {
        let df = sample();
        let text = to_csv(&df);
        let back = from_csv(&text).unwrap();
        assert_eq!(back.n_rows(), 3);
        assert_eq!(back.value(1, "node").unwrap().as_str(), Some("b,comma"));
        assert_eq!(back.value(2, "node").unwrap().as_str(), Some("c\"quote"));
        assert_eq!(back.value(0, "bytes").unwrap(), &AttrValue::Int(10));
        assert!(back.value(1, "ratio").unwrap().is_null());
        assert_eq!(back.value(2, "ratio").unwrap(), &AttrValue::Float(1.5));
    }

    #[test]
    fn type_inference() {
        let df = from_csv("a,b,c,d\n1,2.5,true,hello\n").unwrap();
        assert_eq!(df.value(0, "a").unwrap(), &AttrValue::Int(1));
        assert_eq!(df.value(0, "b").unwrap(), &AttrValue::Float(2.5));
        assert_eq!(df.value(0, "c").unwrap(), &AttrValue::Bool(true));
        assert_eq!(df.value(0, "d").unwrap().as_str(), Some("hello"));
    }

    #[test]
    fn round_trip_is_lossless_for_tricky_strings() {
        // Strings that look numeric, spell booleans, or are empty must come
        // back as exactly the same strings — the snapshot/replay layer
        // depends on this.
        let df = DataFrame::from_columns(vec![(
            "s".to_string(),
            Column::from_values(["15.76", "true", "", "10"]),
        )])
        .unwrap();
        let back = from_csv(&to_csv(&df)).unwrap();
        for row in 0..df.n_rows() {
            assert_eq!(back.value(row, "s").unwrap(), df.value(row, "s").unwrap());
        }
        // And a second serialization is byte-identical.
        assert_eq!(to_csv(&back), to_csv(&df));
    }

    #[test]
    fn quoted_fields_skip_inference_unquoted_fields_keep_it() {
        let df = from_csv("a,b\n\"123\",123\n").unwrap();
        assert_eq!(df.value(0, "a").unwrap().as_str(), Some("123"));
        assert_eq!(df.value(0, "b").unwrap(), &AttrValue::Int(123));
        // A quoted empty field is an empty string, an unquoted one is null.
        let df = from_csv("a,b\n\"\",\n").unwrap();
        assert_eq!(df.value(0, "a").unwrap().as_str(), Some(""));
        assert!(df.value(0, "b").unwrap().is_null());
    }

    #[test]
    fn tail_rows_splice_onto_a_prefix_byte_identically() {
        let df = sample();
        let full = to_csv(&df);
        for split in 0..=df.n_rows() {
            let prefix = to_csv(&df.head(split));
            let spliced = format!("{prefix}{}", to_csv_rows(&df, split));
            assert_eq!(spliced, full, "split at {split}");
        }
        assert_eq!(to_csv_rows(&df, df.n_rows()), "");
    }

    #[test]
    fn mismatched_row_width_errors() {
        assert!(matches!(from_csv("a,b\n1,2\n3\n"), Err(FrameError::Csv(_))));
    }

    #[test]
    fn unterminated_quote_errors() {
        assert!(from_csv("a\n\"oops\n").is_err());
    }

    #[test]
    fn empty_input_gives_empty_frame() {
        let df = from_csv("").unwrap();
        assert_eq!(df.n_cols(), 0);
        assert_eq!(df.n_rows(), 0);
    }

    #[test]
    fn missing_trailing_newline_still_parses_last_row() {
        let df = from_csv("x\n1\n2").unwrap();
        assert_eq!(df.n_rows(), 2);
    }
}
