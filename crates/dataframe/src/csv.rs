//! CSV serialization for frames.
//!
//! Workload generators export node/edge frames as CSV so benchmark runs can
//! be inspected outside the harness; the reader is used in tests and in the
//! round-trip property checks. The dialect is deliberately small: comma
//! separator, `"`-quoting with doubled quotes, first row is the header.

use crate::column::Column;
use crate::error::{FrameError, Result};
use crate::frame::DataFrame;
use netgraph::AttrValue;

/// Serializes a frame as CSV with a header row.
///
/// Ints and floats are written unquoted; everything else is quoted when it
/// contains a separator, quote or newline. Nulls serialize as empty fields.
pub fn to_csv(df: &DataFrame) -> String {
    let mut out = String::new();
    let names = df.column_names();
    out.push_str(
        &names
            .iter()
            .map(|n| quote_field(n))
            .collect::<Vec<_>>()
            .join(","),
    );
    out.push('\n');
    for row in 0..df.n_rows() {
        let fields: Vec<String> = names
            .iter()
            .map(|name| {
                let v = df.value(row, name).expect("in range");
                match v {
                    AttrValue::Null => String::new(),
                    AttrValue::Int(_) | AttrValue::Float(_) | AttrValue::Bool(_) => v.to_string(),
                    _ => quote_field(&v.to_string()),
                }
            })
            .collect();
        out.push_str(&fields.join(","));
        out.push('\n');
    }
    out
}

/// Parses CSV text (first row = header) into a frame.
///
/// Fields are type-inferred: empty → null, `true`/`false` → bool, integers →
/// int, other numerics → float, everything else → string.
pub fn from_csv(text: &str) -> Result<DataFrame> {
    let mut rows = parse_rows(text)?;
    if rows.is_empty() {
        return Ok(DataFrame::new());
    }
    let header = rows.remove(0);
    let mut columns: Vec<Column> = header.iter().map(|_| Column::new()).collect();
    for (line, row) in rows.iter().enumerate() {
        if row.len() != header.len() {
            return Err(FrameError::Csv(format!(
                "row {} has {} fields, expected {}",
                line + 2,
                row.len(),
                header.len()
            )));
        }
        for (i, field) in row.iter().enumerate() {
            columns[i].push(infer_value(field));
        }
    }
    DataFrame::from_columns(header.into_iter().zip(columns).collect())
}

fn quote_field(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

fn infer_value(field: &str) -> AttrValue {
    if field.is_empty() {
        return AttrValue::Null;
    }
    match field {
        "true" => return AttrValue::Bool(true),
        "false" => return AttrValue::Bool(false),
        _ => {}
    }
    // Only fields that *look* numeric are parsed as numbers; this keeps
    // strings such as "inf" or "nan" (valid Rust float spellings) as text.
    let looks_numeric = field
        .chars()
        .all(|c| c.is_ascii_digit() || matches!(c, '-' | '+' | '.' | 'e' | 'E'))
        && field.chars().any(|c| c.is_ascii_digit());
    if looks_numeric {
        if let Ok(i) = field.parse::<i64>() {
            return AttrValue::Int(i);
        }
        if let Ok(f) = field.parse::<f64>() {
            return AttrValue::Float(f);
        }
    }
    AttrValue::Str(field.into())
}

/// Splits CSV text into rows of unquoted fields.
fn parse_rows(text: &str) -> Result<Vec<Vec<String>>> {
    let mut rows = Vec::new();
    let mut row: Vec<String> = Vec::new();
    let mut field = String::new();
    let mut in_quotes = false;
    let mut chars = text.chars().peekable();
    let mut saw_any = false;
    while let Some(c) = chars.next() {
        saw_any = true;
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        field.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                _ => field.push(c),
            }
        } else {
            match c {
                '"' => in_quotes = true,
                ',' => {
                    row.push(std::mem::take(&mut field));
                }
                '\r' => {}
                '\n' => {
                    row.push(std::mem::take(&mut field));
                    rows.push(std::mem::take(&mut row));
                }
                _ => field.push(c),
            }
        }
    }
    if in_quotes {
        return Err(FrameError::Csv("unterminated quoted field".to_string()));
    }
    if saw_any && (!field.is_empty() || !row.is_empty()) {
        row.push(field);
        rows.push(row);
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DataFrame {
        DataFrame::from_columns(vec![
            (
                "node".to_string(),
                Column::from_values(["a", "b,comma", "c\"quote"]),
            ),
            ("bytes".to_string(), Column::from_values([10i64, 20, 30])),
            (
                "ratio".to_string(),
                Column::from_iter(vec![
                    AttrValue::Float(0.5),
                    AttrValue::Null,
                    AttrValue::Float(1.5),
                ]),
            ),
        ])
        .unwrap()
    }

    #[test]
    fn round_trip_preserves_values() {
        let df = sample();
        let text = to_csv(&df);
        let back = from_csv(&text).unwrap();
        assert_eq!(back.n_rows(), 3);
        assert_eq!(back.value(1, "node").unwrap().as_str(), Some("b,comma"));
        assert_eq!(back.value(2, "node").unwrap().as_str(), Some("c\"quote"));
        assert_eq!(back.value(0, "bytes").unwrap(), &AttrValue::Int(10));
        assert!(back.value(1, "ratio").unwrap().is_null());
        assert_eq!(back.value(2, "ratio").unwrap(), &AttrValue::Float(1.5));
    }

    #[test]
    fn type_inference() {
        let df = from_csv("a,b,c,d\n1,2.5,true,hello\n").unwrap();
        assert_eq!(df.value(0, "a").unwrap(), &AttrValue::Int(1));
        assert_eq!(df.value(0, "b").unwrap(), &AttrValue::Float(2.5));
        assert_eq!(df.value(0, "c").unwrap(), &AttrValue::Bool(true));
        assert_eq!(df.value(0, "d").unwrap().as_str(), Some("hello"));
    }

    #[test]
    fn mismatched_row_width_errors() {
        assert!(matches!(from_csv("a,b\n1,2\n3\n"), Err(FrameError::Csv(_))));
    }

    #[test]
    fn unterminated_quote_errors() {
        assert!(from_csv("a\n\"oops\n").is_err());
    }

    #[test]
    fn empty_input_gives_empty_frame() {
        let df = from_csv("").unwrap();
        assert_eq!(df.n_cols(), 0);
        assert_eq!(df.n_rows(), 0);
    }

    #[test]
    fn missing_trailing_newline_still_parses_last_row() {
        let df = from_csv("x\n1\n2").unwrap();
        assert_eq!(df.n_rows(), 2);
    }
}
