//! The [`DataFrame`] type: an ordered collection of equal-length columns.

use crate::column::Column;
use crate::error::{FrameError, Result};
use crate::ops::{AggFunc, CmpOp, GroupBy};
use netgraph::AttrValue;
use std::fmt;

/// A two-dimensional, column-oriented table of dynamically-typed values.
///
/// Column order is preserved (it matters for display and CSV export) and
/// all columns always have the same number of rows.
///
/// ```
/// use dataframe::{DataFrame, Column};
/// let df = DataFrame::from_columns(vec![
///     ("source".to_string(), Column::from_values(["10.0.1.1", "10.0.1.2"])),
///     ("bytes".to_string(), Column::from_values([1500i64, 800])),
/// ]).unwrap();
/// assert_eq!(df.n_rows(), 2);
/// assert_eq!(df.column("bytes").unwrap().sum().unwrap(), 2300.0);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DataFrame {
    names: Vec<String>,
    columns: Vec<Column>,
}

impl DataFrame {
    /// Creates an empty frame with no columns and no rows.
    pub fn new() -> Self {
        DataFrame::default()
    }

    /// Builds a frame from `(name, column)` pairs.
    ///
    /// Errors on duplicate names or mismatched column lengths.
    pub fn from_columns(cols: Vec<(String, Column)>) -> Result<Self> {
        let mut df = DataFrame::new();
        for (name, col) in cols {
            df.add_column(&name, col)?;
        }
        Ok(df)
    }

    /// Builds a frame from column names and a list of rows.
    ///
    /// Every row must have exactly one value per column.
    pub fn from_rows(names: &[&str], rows: Vec<Vec<AttrValue>>) -> Result<Self> {
        let mut columns: Vec<Column> = names.iter().map(|_| Column::new()).collect();
        for row in rows {
            if row.len() != names.len() {
                return Err(FrameError::LengthMismatch {
                    expected: names.len(),
                    actual: row.len(),
                });
            }
            for (i, v) in row.into_iter().enumerate() {
                columns[i].push(v);
            }
        }
        DataFrame::from_columns(names.iter().map(|n| n.to_string()).zip(columns).collect())
    }

    // -------------------------------------------------------------- shape

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.columns.first().map(Column::len).unwrap_or(0)
    }

    /// Number of columns.
    pub fn n_cols(&self) -> usize {
        self.columns.len()
    }

    /// True when the frame has no rows (it may still have columns).
    pub fn is_empty(&self) -> bool {
        self.n_rows() == 0
    }

    /// Column names in order.
    pub fn column_names(&self) -> Vec<&str> {
        self.names.iter().map(String::as_str).collect()
    }

    /// True if a column with this name exists.
    pub fn has_column(&self, name: &str) -> bool {
        self.names.iter().any(|n| n == name)
    }

    fn column_index(&self, name: &str) -> Result<usize> {
        self.names
            .iter()
            .position(|n| n == name)
            .ok_or_else(|| FrameError::ColumnNotFound(name.to_string()))
    }

    // ------------------------------------------------------------ columns

    /// Immutable access to a column by name.
    pub fn column(&self, name: &str) -> Result<&Column> {
        Ok(&self.columns[self.column_index(name)?])
    }

    /// All columns in order, positionally aligned with
    /// [`DataFrame::column_names`]. This is the zero-copy entry point used
    /// by executors that resolve names to positions once and then walk rows
    /// without materializing them.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Mutable access to a column by name.
    pub fn column_mut(&mut self, name: &str) -> Result<&mut Column> {
        let idx = self.column_index(name)?;
        Ok(&mut self.columns[idx])
    }

    /// Appends a new column. Errors if the name already exists or the length
    /// differs from existing columns.
    pub fn add_column(&mut self, name: &str, column: Column) -> Result<()> {
        if self.has_column(name) {
            return Err(FrameError::DuplicateColumn(name.to_string()));
        }
        if !self.columns.is_empty() && column.len() != self.n_rows() {
            return Err(FrameError::LengthMismatch {
                expected: self.n_rows(),
                actual: column.len(),
            });
        }
        self.names.push(name.to_string());
        self.columns.push(column);
        Ok(())
    }

    /// Inserts or replaces a column (pandas `df["x"] = ...` semantics).
    /// The length must still match when the frame already has rows.
    pub fn set_column(&mut self, name: &str, column: Column) -> Result<()> {
        if !self.columns.is_empty() && column.len() != self.n_rows() {
            return Err(FrameError::LengthMismatch {
                expected: self.n_rows(),
                actual: column.len(),
            });
        }
        match self.column_index(name) {
            Ok(idx) => {
                self.columns[idx] = column;
                Ok(())
            }
            Err(_) => self.add_column(name, column),
        }
    }

    /// Removes a column and returns it.
    pub fn drop_column(&mut self, name: &str) -> Result<Column> {
        let idx = self.column_index(name)?;
        self.names.remove(idx);
        Ok(self.columns.remove(idx))
    }

    /// Renames a column. Errors if the source is missing or the destination
    /// already exists.
    pub fn rename_column(&mut self, from: &str, to: &str) -> Result<()> {
        if self.has_column(to) && from != to {
            return Err(FrameError::DuplicateColumn(to.to_string()));
        }
        let idx = self.column_index(from)?;
        self.names[idx] = to.to_string();
        Ok(())
    }

    /// Returns a new frame containing only the named columns, in the given
    /// order.
    pub fn select(&self, names: &[&str]) -> Result<DataFrame> {
        let mut out = DataFrame::new();
        for &name in names {
            out.add_column(name, self.column(name)?.clone())?;
        }
        Ok(out)
    }

    // --------------------------------------------------------------- rows

    /// Returns row `i` as a vector of values, one per column.
    pub fn row(&self, i: usize) -> Result<Vec<AttrValue>> {
        if i >= self.n_rows() {
            return Err(FrameError::RowOutOfBounds {
                index: i,
                len: self.n_rows(),
            });
        }
        Ok(self
            .columns
            .iter()
            .map(|c| c.get(i).expect("row bounds checked").clone())
            .collect())
    }

    /// The value at `(row, column)`.
    pub fn value(&self, row: usize, column: &str) -> Result<&AttrValue> {
        self.column(column)?.get(row)
    }

    /// Overwrites the value at `(row, column)`.
    pub fn set_value(&mut self, row: usize, column: &str, value: AttrValue) -> Result<()> {
        let n = self.n_rows();
        let col = self.column_mut(column)?;
        if row >= col.len() {
            return Err(FrameError::RowOutOfBounds { index: row, len: n });
        }
        col.set(row, value);
        Ok(())
    }

    /// Appends a row. The number of values must equal the number of columns.
    pub fn push_row(&mut self, row: Vec<AttrValue>) -> Result<()> {
        if row.len() != self.n_cols() {
            return Err(FrameError::LengthMismatch {
                expected: self.n_cols(),
                actual: row.len(),
            });
        }
        for (col, v) in self.columns.iter_mut().zip(row) {
            col.push(v);
        }
        Ok(())
    }

    /// Removes row `row` in place, shifting later rows down one position
    /// and returning the removed values. Unlike [`DataFrame::take`] this
    /// does not rebuild (or clone) the surviving rows — the serving layer's
    /// `RemoveEdge` write path depends on that.
    pub fn remove_row(&mut self, row: usize) -> Result<Vec<AttrValue>> {
        if row >= self.n_rows() {
            return Err(FrameError::RowOutOfBounds {
                index: row,
                len: self.n_rows(),
            });
        }
        Ok(self.columns.iter_mut().map(|col| col.remove(row)).collect())
    }

    /// Returns a new frame containing the rows at `indices`, in that order.
    /// Out-of-range indices error.
    pub fn take(&self, indices: &[usize]) -> Result<DataFrame> {
        for &i in indices {
            if i >= self.n_rows() {
                return Err(FrameError::RowOutOfBounds {
                    index: i,
                    len: self.n_rows(),
                });
            }
        }
        let mut out = DataFrame::new();
        for (name, col) in self.names.iter().zip(&self.columns) {
            let new_col: Column = indices
                .iter()
                .map(|&i| col.get(i).expect("bounds checked").clone())
                .collect();
            out.add_column(name, new_col)?;
        }
        Ok(out)
    }

    /// The first `n` rows (or all rows when the frame is shorter).
    pub fn head(&self, n: usize) -> DataFrame {
        let indices: Vec<usize> = (0..self.n_rows().min(n)).collect();
        self.take(&indices).expect("indices in range")
    }

    // ------------------------------------------------------------ queries

    /// Rows for which `pred(frame, row_index)` returns true.
    pub fn filter_rows<F: Fn(&DataFrame, usize) -> bool>(&self, pred: F) -> DataFrame {
        let indices: Vec<usize> = (0..self.n_rows()).filter(|&i| pred(self, i)).collect();
        self.take(&indices).expect("indices in range")
    }

    /// Rows where `column <op> value` holds (pandas boolean-mask filtering).
    pub fn filter_by(&self, column: &str, op: CmpOp, value: AttrValue) -> Result<DataFrame> {
        let col = self.column(column)?;
        let indices: Vec<usize> = col
            .iter()
            .enumerate()
            .filter(|(_, v)| op.eval(v, &value))
            .map(|(i, _)| i)
            .collect();
        self.take(&indices)
    }

    /// Sorts rows by the given columns. All keys share one `ascending` flag;
    /// ties are broken by original row order (stable sort).
    pub fn sort_values(&self, columns: &[&str], ascending: bool) -> Result<DataFrame> {
        let key_cols: Vec<&Column> = columns
            .iter()
            .map(|c| self.column(c))
            .collect::<Result<_>>()?;
        let mut indices: Vec<usize> = (0..self.n_rows()).collect();
        indices.sort_by(|&a, &b| {
            for col in &key_cols {
                let va = col.get(a).expect("in range");
                let vb = col.get(b).expect("in range");
                let ord = va
                    .partial_cmp_value(vb)
                    .unwrap_or(std::cmp::Ordering::Equal);
                let ord = if ascending { ord } else { ord.reverse() };
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
        self.take(&indices)
    }

    /// Distinct values of a column, in first-occurrence order.
    pub fn unique(&self, column: &str) -> Result<Vec<AttrValue>> {
        let col = self.column(column)?;
        let mut seen: Vec<AttrValue> = Vec::new();
        for v in col.iter() {
            if !seen.iter().any(|s| s == v) {
                seen.push(v.clone());
            }
        }
        Ok(seen)
    }

    /// Groups rows by the given key columns.
    pub fn groupby(&self, keys: &[&str]) -> Result<GroupBy<'_>> {
        GroupBy::new(self, keys)
    }

    /// Convenience: group by `key` and aggregate `value_column` with `func`,
    /// returning a two-column frame `key, <out_name>`.
    pub fn group_agg(
        &self,
        key: &str,
        value_column: &str,
        func: AggFunc,
        out_name: &str,
    ) -> Result<DataFrame> {
        self.groupby(&[key])?.agg(&[(value_column, func, out_name)])
    }

    // ---------------------------------------------------------- comparison

    /// True when both frames have the same columns (same order), same number
    /// of rows, and approximately equal values (numeric tolerance per
    /// [`AttrValue::approx_eq`]). This is the comparison the NeMoEval results
    /// evaluator uses for the pandas backend.
    pub fn approx_eq(&self, other: &DataFrame) -> bool {
        if self.names != other.names || self.n_rows() != other.n_rows() {
            return false;
        }
        self.columns
            .iter()
            .zip(&other.columns)
            .all(|(a, b)| a.iter().zip(b.iter()).all(|(x, y)| x.approx_eq(y)))
    }

    /// Like [`DataFrame::approx_eq`] but insensitive to row order: rows are
    /// compared as multisets. Useful when a query does not specify an
    /// ordering.
    pub fn approx_eq_unordered(&self, other: &DataFrame) -> bool {
        if self.names != other.names || self.n_rows() != other.n_rows() {
            return false;
        }
        let key = |df: &DataFrame, i: usize| -> String {
            df.row(i)
                .expect("in range")
                .iter()
                .map(|v| format!("{}:{v}", v.type_name()))
                .collect::<Vec<_>>()
                .join("\u{1f}")
        };
        let mut a: Vec<String> = (0..self.n_rows()).map(|i| key(self, i)).collect();
        let mut b: Vec<String> = (0..other.n_rows()).map(|i| key(other, i)).collect();
        a.sort();
        b.sort();
        a == b
    }
}

impl fmt::Display for DataFrame {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let widths: Vec<usize> = self
            .names
            .iter()
            .zip(&self.columns)
            .map(|(name, col)| {
                col.iter()
                    .map(|v| v.to_string().len())
                    .chain(std::iter::once(name.len()))
                    .max()
                    .unwrap_or(0)
            })
            .collect();
        for (name, w) in self.names.iter().zip(&widths) {
            write!(f, "{name:>w$}  ", w = w)?;
        }
        writeln!(f)?;
        for i in 0..self.n_rows() {
            for (col, w) in self.columns.iter().zip(&widths) {
                write!(
                    f,
                    "{:>w$}  ",
                    col.get(i).expect("in range").to_string(),
                    w = w
                )?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DataFrame {
        DataFrame::from_columns(vec![
            (
                "node".to_string(),
                Column::from_values(["a", "b", "c", "d"]),
            ),
            (
                "bytes".to_string(),
                Column::from_values([100i64, 2500, 40, 2500]),
            ),
            (
                "prefix".to_string(),
                Column::from_values(["10.0", "10.0", "10.1", "10.1"]),
            ),
        ])
        .unwrap()
    }

    #[test]
    fn construction_and_shape() {
        let df = sample();
        assert_eq!(df.n_rows(), 4);
        assert_eq!(df.n_cols(), 3);
        assert_eq!(df.column_names(), vec!["node", "bytes", "prefix"]);
    }

    #[test]
    fn remove_row_shifts_in_place() {
        let mut df = sample();
        let removed = df.remove_row(1).unwrap();
        assert_eq!(removed[0].as_str(), Some("b"));
        assert_eq!(removed[1], AttrValue::Int(2500));
        assert_eq!(df.n_rows(), 3);
        // Order of the survivors is preserved, matching `take` semantics.
        let expected = sample().take(&[0, 2, 3]).unwrap();
        assert_eq!(df, expected);
        assert!(matches!(
            df.remove_row(3),
            Err(FrameError::RowOutOfBounds { .. })
        ));
        // Removing down to empty works.
        for _ in 0..3 {
            df.remove_row(0).unwrap();
        }
        assert_eq!(df.n_rows(), 0);
    }

    #[test]
    fn from_rows_round_trip() {
        let df = DataFrame::from_rows(
            &["a", "b"],
            vec![
                vec![AttrValue::Int(1), AttrValue::from("x")],
                vec![AttrValue::Int(2), AttrValue::from("y")],
            ],
        )
        .unwrap();
        assert_eq!(df.n_rows(), 2);
        assert_eq!(df.value(1, "b").unwrap().as_str(), Some("y"));
        assert!(DataFrame::from_rows(&["a"], vec![vec![]]).is_err());
    }

    #[test]
    fn duplicate_and_mismatched_columns_rejected() {
        let mut df = sample();
        assert!(matches!(
            df.add_column("node", Column::from_values([1i64, 2, 3, 4])),
            Err(FrameError::DuplicateColumn(_))
        ));
        assert!(matches!(
            df.add_column("short", Column::from_values([1i64])),
            Err(FrameError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn set_column_replaces_or_inserts() {
        let mut df = sample();
        df.set_column("bytes", Column::from_values([1i64, 2, 3, 4]))
            .unwrap();
        assert_eq!(df.column("bytes").unwrap().sum().unwrap(), 10.0);
        df.set_column("label", Column::from_values(["x", "x", "y", "y"]))
            .unwrap();
        assert_eq!(df.n_cols(), 4);
    }

    #[test]
    fn drop_and_rename() {
        let mut df = sample();
        df.rename_column("bytes", "weight").unwrap();
        assert!(df.has_column("weight"));
        assert!(df.rename_column("weight", "node").is_err());
        df.drop_column("weight").unwrap();
        assert_eq!(df.n_cols(), 2);
        assert!(df.drop_column("weight").is_err());
    }

    #[test]
    fn select_projects_columns() {
        let df = sample();
        let p = df.select(&["prefix", "node"]).unwrap();
        assert_eq!(p.column_names(), vec!["prefix", "node"]);
        assert!(df.select(&["nope"]).is_err());
    }

    #[test]
    fn row_and_value_access() {
        let df = sample();
        assert_eq!(df.row(1).unwrap()[1], AttrValue::Int(2500));
        assert!(df.row(9).is_err());
        assert_eq!(df.value(2, "node").unwrap().as_str(), Some("c"));
        assert!(df.value(2, "nope").is_err());
    }

    #[test]
    fn set_value_and_push_row() {
        let mut df = sample();
        df.set_value(0, "bytes", AttrValue::Int(999)).unwrap();
        assert_eq!(df.value(0, "bytes").unwrap(), &AttrValue::Int(999));
        df.push_row(vec![
            AttrValue::from("e"),
            AttrValue::Int(7),
            AttrValue::from("10.2"),
        ])
        .unwrap();
        assert_eq!(df.n_rows(), 5);
        assert!(df.push_row(vec![AttrValue::Null]).is_err());
    }

    #[test]
    fn take_and_head() {
        let df = sample();
        let t = df.take(&[2, 0]).unwrap();
        assert_eq!(t.value(0, "node").unwrap().as_str(), Some("c"));
        assert_eq!(t.value(1, "node").unwrap().as_str(), Some("a"));
        assert!(df.take(&[17]).is_err());
        assert_eq!(df.head(2).n_rows(), 2);
        assert_eq!(df.head(99).n_rows(), 4);
    }

    #[test]
    fn filter_by_comparisons() {
        let df = sample();
        let heavy = df
            .filter_by("bytes", CmpOp::Ge, AttrValue::Int(2500))
            .unwrap();
        assert_eq!(heavy.n_rows(), 2);
        let pref = df
            .filter_by("prefix", CmpOp::Eq, AttrValue::from("10.1"))
            .unwrap();
        assert_eq!(pref.n_rows(), 2);
        assert!(df.filter_by("nope", CmpOp::Eq, AttrValue::Null).is_err());
    }

    #[test]
    fn filter_rows_with_closure() {
        let df = sample();
        let odd = df.filter_rows(|d, i| {
            d.value(i, "bytes")
                .map(|v| v.as_f64().unwrap_or(0.0) < 500.0)
                .unwrap_or(false)
        });
        assert_eq!(odd.n_rows(), 2);
    }

    #[test]
    fn sort_values_stable_and_descending() {
        let df = sample();
        let asc = df.sort_values(&["bytes"], true).unwrap();
        assert_eq!(asc.value(0, "node").unwrap().as_str(), Some("c"));
        let desc = df.sort_values(&["bytes", "node"], false).unwrap();
        assert_eq!(desc.value(0, "node").unwrap().as_str(), Some("d"));
        assert_eq!(desc.value(1, "node").unwrap().as_str(), Some("b"));
        assert!(df.sort_values(&["nope"], true).is_err());
    }

    #[test]
    fn unique_preserves_first_occurrence_order() {
        let df = sample();
        let u = df.unique("prefix").unwrap();
        assert_eq!(u, vec![AttrValue::from("10.0"), AttrValue::from("10.1")]);
    }

    #[test]
    fn group_agg_sums_by_key() {
        let df = sample();
        let g = df
            .group_agg("prefix", "bytes", AggFunc::Sum, "total")
            .unwrap();
        assert_eq!(g.n_rows(), 2);
        let first = g
            .filter_by("prefix", CmpOp::Eq, AttrValue::from("10.0"))
            .unwrap();
        assert_eq!(first.value(0, "total").unwrap().as_f64(), Some(2600.0));
    }

    #[test]
    fn approx_eq_ordered_and_unordered() {
        let df = sample();
        let mut other = sample();
        assert!(df.approx_eq(&other));
        other
            .set_value(0, "bytes", AttrValue::Float(100.0))
            .unwrap();
        assert!(df.approx_eq(&other));
        other.set_value(0, "bytes", AttrValue::Int(5)).unwrap();
        assert!(!df.approx_eq(&other));

        let shuffled = sample().take(&[3, 2, 1, 0]).unwrap();
        assert!(!df.approx_eq(&shuffled));
        assert!(df.approx_eq_unordered(&shuffled));
    }

    #[test]
    fn display_renders_header_and_rows() {
        let s = sample().to_string();
        assert!(s.contains("node"));
        assert!(s.contains("2500"));
        assert_eq!(s.lines().count(), 5);
    }
}
