//! Error type for dataframe operations.

use std::fmt;

/// Errors raised by dataframe construction and manipulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// A column name was referenced that is not present in the frame.
    ColumnNotFound(String),
    /// A row index was out of bounds.
    RowOutOfBounds {
        /// Requested row index.
        index: usize,
        /// Number of rows in the frame.
        len: usize,
    },
    /// Columns of mismatched length were combined.
    LengthMismatch {
        /// Expected number of rows.
        expected: usize,
        /// Number of rows supplied.
        actual: usize,
    },
    /// A column with the same name already exists.
    DuplicateColumn(String),
    /// An aggregation or operation received invalid arguments
    /// (e.g. mean of a non-numeric column).
    InvalidOperation(String),
    /// CSV text could not be parsed.
    Csv(String),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::ColumnNotFound(c) => write!(f, "column '{c}' does not exist"),
            FrameError::RowOutOfBounds { index, len } => {
                write!(f, "row index {index} out of bounds for frame of {len} rows")
            }
            FrameError::LengthMismatch { expected, actual } => {
                write!(
                    f,
                    "column length mismatch: expected {expected} rows, got {actual}"
                )
            }
            FrameError::DuplicateColumn(c) => write!(f, "column '{c}' already exists"),
            FrameError::InvalidOperation(msg) => write!(f, "invalid operation: {msg}"),
            FrameError::Csv(msg) => write!(f, "CSV parse error: {msg}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, FrameError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_descriptive() {
        assert_eq!(
            FrameError::ColumnNotFound("bytes".into()).to_string(),
            "column 'bytes' does not exist"
        );
        assert!(FrameError::RowOutOfBounds { index: 9, len: 3 }
            .to_string()
            .contains("out of bounds"));
    }
}
