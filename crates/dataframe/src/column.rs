//! A single named column of dynamically-typed values.

use crate::error::{FrameError, Result};
use netgraph::AttrValue;

/// The inferred type of a column, used for display and validation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DType {
    /// All values null.
    Null,
    /// Booleans (possibly with nulls).
    Bool,
    /// Integers (possibly with nulls).
    Int,
    /// Floats or a mix of ints and floats (possibly with nulls).
    Float,
    /// Strings (possibly with nulls).
    Str,
    /// Lists or mixed incompatible types.
    Object,
}

/// A column: an ordered sequence of [`AttrValue`]s.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Column {
    values: Vec<AttrValue>,
}

impl Column {
    /// Creates an empty column.
    pub fn new() -> Self {
        Column { values: Vec::new() }
    }

    /// Creates a column from any iterable of values convertible to
    /// [`AttrValue`].
    pub fn from_values<I, V>(values: I) -> Self
    where
        I: IntoIterator<Item = V>,
        V: Into<AttrValue>,
    {
        Column {
            values: values.into_iter().map(Into::into).collect(),
        }
    }

    /// Number of values.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when the column holds no values.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Value at `index`.
    pub fn get(&self, index: usize) -> Result<&AttrValue> {
        self.values.get(index).ok_or(FrameError::RowOutOfBounds {
            index,
            len: self.values.len(),
        })
    }

    /// Appends a value.
    pub fn push(&mut self, value: AttrValue) {
        self.values.push(value);
    }

    /// Overwrites the value at `index`. Panics if out of range (callers check
    /// bounds via the owning frame).
    pub(crate) fn set(&mut self, index: usize, value: AttrValue) {
        self.values[index] = value;
    }

    /// Removes and returns the value at `index`, shifting later values
    /// down. Panics if out of range (callers check bounds via the owning
    /// frame).
    pub(crate) fn remove(&mut self, index: usize) -> AttrValue {
        self.values.remove(index)
    }

    /// Iterator over the values.
    pub fn iter(&self) -> impl Iterator<Item = &AttrValue> {
        self.values.iter()
    }

    /// All values as a slice.
    pub fn values(&self) -> &[AttrValue] {
        &self.values
    }

    /// Infers the column dtype from its values.
    pub fn dtype(&self) -> DType {
        let mut dtype = DType::Null;
        for v in &self.values {
            let this = match v {
                AttrValue::Null => continue,
                AttrValue::Bool(_) => DType::Bool,
                AttrValue::Int(_) => DType::Int,
                AttrValue::Float(_) => DType::Float,
                AttrValue::Str(_) => DType::Str,
                AttrValue::List(_) => DType::Object,
            };
            dtype = match (dtype, this) {
                (DType::Null, t) => t,
                (a, b) if a == b => a,
                (DType::Int, DType::Float) | (DType::Float, DType::Int) => DType::Float,
                _ => DType::Object,
            };
        }
        dtype
    }

    /// Numeric view of the column; nulls and non-numeric values become `None`.
    pub fn as_f64(&self) -> Vec<Option<f64>> {
        self.values.iter().map(AttrValue::as_f64).collect()
    }

    /// Sum of numeric values (nulls skipped). Errors when no value is numeric
    /// and the column is non-empty, which matches pandas raising on
    /// `sum()` over object columns.
    pub fn sum(&self) -> Result<f64> {
        self.numeric_reduce("sum", |vals| vals.iter().sum())
    }

    /// Mean of numeric values (nulls skipped).
    pub fn mean(&self) -> Result<f64> {
        self.numeric_reduce("mean", |vals| vals.iter().sum::<f64>() / vals.len() as f64)
    }

    /// Minimum numeric value.
    pub fn min(&self) -> Result<f64> {
        self.numeric_reduce("min", |vals| {
            vals.iter().cloned().fold(f64::INFINITY, f64::min)
        })
    }

    /// Maximum numeric value.
    pub fn max(&self) -> Result<f64> {
        self.numeric_reduce("max", |vals| {
            vals.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
        })
    }

    /// Number of non-null values.
    pub fn count(&self) -> usize {
        self.values.iter().filter(|v| !v.is_null()).count()
    }

    /// Number of distinct non-null values.
    ///
    /// Dedupes through a hash set over the same canonical
    /// `"<type>:<display>"` key the historical sort-and-dedup used — one
    /// O(n) pass instead of O(n log n) with full-vector sorting (and the
    /// O(n²) `Vec::contains` scan before that).
    pub fn nunique(&self) -> usize {
        self.values
            .iter()
            .filter(|v| !v.is_null())
            .map(|v| format!("{}:{v}", v.type_name()))
            .collect::<std::collections::HashSet<String>>()
            .len()
    }

    fn numeric_reduce<F: Fn(&[f64]) -> f64>(&self, op: &str, f: F) -> Result<f64> {
        let vals: Vec<f64> = self.values.iter().filter_map(AttrValue::as_f64).collect();
        if vals.is_empty() {
            if self.values.iter().all(|v| v.is_null()) && !self.values.is_empty() {
                return Ok(0.0);
            }
            if self.values.is_empty() {
                return Ok(0.0);
            }
            return Err(FrameError::InvalidOperation(format!(
                "cannot compute {op} of a non-numeric column"
            )));
        }
        Ok(f(&vals))
    }
}

impl FromIterator<AttrValue> for Column {
    fn from_iter<T: IntoIterator<Item = AttrValue>>(iter: T) -> Self {
        Column {
            values: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dtype_inference() {
        assert_eq!(Column::from_values([1i64, 2, 3]).dtype(), DType::Int);
        assert_eq!(Column::from_values([1.0, 2.5]).dtype(), DType::Float);
        assert_eq!(
            Column::from_iter(vec![AttrValue::Int(1), AttrValue::Float(2.0)]).dtype(),
            DType::Float
        );
        assert_eq!(Column::from_values(["a", "b"]).dtype(), DType::Str);
        assert_eq!(
            Column::from_iter(vec![AttrValue::Int(1), AttrValue::Str("a".into())]).dtype(),
            DType::Object
        );
        assert_eq!(Column::new().dtype(), DType::Null);
    }

    #[test]
    fn aggregations() {
        let c = Column::from_values([10i64, 20, 30]);
        assert_eq!(c.sum().unwrap(), 60.0);
        assert_eq!(c.mean().unwrap(), 20.0);
        assert_eq!(c.min().unwrap(), 10.0);
        assert_eq!(c.max().unwrap(), 30.0);
        assert_eq!(c.count(), 3);
    }

    #[test]
    fn aggregation_skips_nulls() {
        let c = Column::from_iter(vec![AttrValue::Int(4), AttrValue::Null, AttrValue::Int(6)]);
        assert_eq!(c.sum().unwrap(), 10.0);
        assert_eq!(c.mean().unwrap(), 5.0);
        assert_eq!(c.count(), 2);
    }

    #[test]
    fn sum_of_string_column_errors() {
        let c = Column::from_values(["a", "b"]);
        assert!(c.sum().is_err());
    }

    #[test]
    fn nunique_ignores_nulls_and_type_collisions() {
        let c = Column::from_iter(vec![
            AttrValue::Int(1),
            AttrValue::Int(1),
            AttrValue::Str("1".into()),
            AttrValue::Null,
        ]);
        assert_eq!(c.nunique(), 2);
    }

    #[test]
    fn get_out_of_bounds() {
        let c = Column::from_values([1i64]);
        assert!(c.get(0).is_ok());
        assert!(matches!(c.get(5), Err(FrameError::RowOutOfBounds { .. })));
    }
}
