//! # dataframe
//!
//! A pandas-style columnar dataframe: the execution substrate for the
//! "pandas approach" of the NeMoEval reproduction. The paper represents a
//! network as two frames — a *node frame* (one row per node, columns =
//! attributes) and an *edge frame* (one row per edge with `source`/`target`
//! columns plus attributes) — and the LLM-generated programs filter, sort,
//! group and join those frames.
//!
//! The crate provides
//!
//! * [`Column`] — a single named sequence of dynamically-typed values,
//! * [`DataFrame`] — an ordered collection of equal-length columns with
//!   row/column accessors, filtering, sorting, group-by, joins and
//!   aggregation,
//! * [`ops`] — the comparison operators ([`ops::CmpOp`]), aggregation
//!   functions ([`ops::AggFunc`]), group-by and join implementations,
//! * [`csv`] — a dependency-free CSV reader/writer for frames.
//!
//! Values are [`netgraph::AttrValue`]s so data moves between the graph,
//! dataframe and SQL substrates without conversion loss.
//!
//! ```
//! use dataframe::{DataFrame, Column};
//! use dataframe::ops::CmpOp;
//!
//! let mut df = DataFrame::new();
//! df.add_column("node", Column::from_values(["a", "b", "c"])).unwrap();
//! df.add_column("bytes", Column::from_values([100i64, 2500, 40])).unwrap();
//! let heavy = df.filter_by("bytes", CmpOp::Gt, 50i64.into()).unwrap();
//! assert_eq!(heavy.n_rows(), 2);
//! ```

#![warn(missing_docs)]

mod column;
pub mod csv;
mod error;
mod frame;
pub mod ops;

pub use column::{Column, DType};
pub use error::{FrameError, Result};
pub use frame::DataFrame;
pub use netgraph::AttrValue;
