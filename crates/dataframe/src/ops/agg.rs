//! Aggregation functions applied by group-by and whole-column reductions.

use crate::column::Column;
use crate::error::Result;
use netgraph::AttrValue;

/// An aggregation applied to a column (or a per-group slice of one).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// Sum of numeric values.
    Sum,
    /// Arithmetic mean of numeric values.
    Mean,
    /// Minimum numeric value.
    Min,
    /// Maximum numeric value.
    Max,
    /// Number of non-null values.
    Count,
    /// Number of distinct non-null values.
    Nunique,
    /// The first value in the group (pandas `first`).
    First,
    /// The last value in the group (pandas `last`).
    Last,
}

impl AggFunc {
    /// Applies the aggregation to a column, producing a single value.
    ///
    /// Numeric reductions over non-numeric columns propagate the underlying
    /// error (matching pandas raising on `sum()` of object columns).
    pub fn apply(&self, column: &Column) -> Result<AttrValue> {
        Ok(match self {
            AggFunc::Sum => AttrValue::Float(column.sum()?),
            AggFunc::Mean => AttrValue::Float(column.mean()?),
            AggFunc::Min => AttrValue::Float(column.min()?),
            AggFunc::Max => AttrValue::Float(column.max()?),
            AggFunc::Count => AttrValue::Int(column.count() as i64),
            AggFunc::Nunique => AttrValue::Int(column.nunique() as i64),
            AggFunc::First => column.iter().next().cloned().unwrap_or(AttrValue::Null),
            AggFunc::Last => column.iter().last().cloned().unwrap_or(AttrValue::Null),
        })
    }

    /// Parses the spelling used by SQL (`SUM`, `AVG`, ...) and by the
    /// GraphScript frame bindings (`"sum"`, `"mean"`, ...).
    pub fn parse(text: &str) -> Option<AggFunc> {
        match text.to_ascii_lowercase().as_str() {
            "sum" => Some(AggFunc::Sum),
            "mean" | "avg" | "average" => Some(AggFunc::Mean),
            "min" => Some(AggFunc::Min),
            "max" => Some(AggFunc::Max),
            "count" => Some(AggFunc::Count),
            "nunique" | "count_distinct" => Some(AggFunc::Nunique),
            "first" => Some(AggFunc::First),
            "last" => Some(AggFunc::Last),
            _ => None,
        }
    }

    /// Canonical lowercase name, used when auto-naming output columns.
    pub fn name(&self) -> &'static str {
        match self {
            AggFunc::Sum => "sum",
            AggFunc::Mean => "mean",
            AggFunc::Min => "min",
            AggFunc::Max => "max",
            AggFunc::Count => "count",
            AggFunc::Nunique => "nunique",
            AggFunc::First => "first",
            AggFunc::Last => "last",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_aggregations() {
        let c = Column::from_values([4i64, 8, 12]);
        assert_eq!(AggFunc::Sum.apply(&c).unwrap(), AttrValue::Float(24.0));
        assert_eq!(AggFunc::Mean.apply(&c).unwrap(), AttrValue::Float(8.0));
        assert_eq!(AggFunc::Min.apply(&c).unwrap(), AttrValue::Float(4.0));
        assert_eq!(AggFunc::Max.apply(&c).unwrap(), AttrValue::Float(12.0));
        assert_eq!(AggFunc::Count.apply(&c).unwrap(), AttrValue::Int(3));
    }

    #[test]
    fn positional_aggregations() {
        let c = Column::from_values(["x", "y", "x"]);
        assert_eq!(AggFunc::First.apply(&c).unwrap().as_str(), Some("x"));
        assert_eq!(AggFunc::Last.apply(&c).unwrap().as_str(), Some("x"));
        assert_eq!(AggFunc::Nunique.apply(&c).unwrap(), AttrValue::Int(2));
        assert_eq!(
            AggFunc::First.apply(&Column::new()).unwrap(),
            AttrValue::Null
        );
    }

    #[test]
    fn sum_of_strings_errors() {
        let c = Column::from_values(["a", "b"]);
        assert!(AggFunc::Sum.apply(&c).is_err());
        assert!(AggFunc::Count.apply(&c).is_ok());
    }

    #[test]
    fn parse_spellings() {
        assert_eq!(AggFunc::parse("AVG"), Some(AggFunc::Mean));
        assert_eq!(AggFunc::parse("sum"), Some(AggFunc::Sum));
        assert_eq!(AggFunc::parse("median"), None);
        assert_eq!(AggFunc::Mean.name(), "mean");
    }
}
