//! Frame operations: comparisons, aggregation functions, group-by and joins.

mod agg;
mod filter;
mod groupby;
mod join;

pub use agg::AggFunc;
pub use filter::CmpOp;
pub use groupby::GroupBy;
pub use join::{inner_join, left_join};
