//! Inner and left joins between two frames on equality of key columns.

use crate::column::Column;
use crate::error::{FrameError, Result};
use crate::frame::DataFrame;
use netgraph::AttrValue;

/// Joins `left` and `right` on `left_on == right_on`, keeping only matching
/// rows (SQL `INNER JOIN`, pandas `merge(how="inner")`).
///
/// Right-hand columns that clash with a left-hand name are suffixed with
/// `suffix` (pandas' `_y` convention); the right key column is dropped since
/// it duplicates the left key.
pub fn inner_join(
    left: &DataFrame,
    right: &DataFrame,
    left_on: &str,
    right_on: &str,
    suffix: &str,
) -> Result<DataFrame> {
    join(left, right, left_on, right_on, suffix, false)
}

/// Joins `left` and `right` on `left_on == right_on`, keeping every left row
/// and filling unmatched right-hand columns with nulls (SQL `LEFT JOIN`).
pub fn left_join(
    left: &DataFrame,
    right: &DataFrame,
    left_on: &str,
    right_on: &str,
    suffix: &str,
) -> Result<DataFrame> {
    join(left, right, left_on, right_on, suffix, true)
}

fn join(
    left: &DataFrame,
    right: &DataFrame,
    left_on: &str,
    right_on: &str,
    suffix: &str,
    keep_unmatched_left: bool,
) -> Result<DataFrame> {
    let left_key = left.column(left_on)?;
    let right_key = right.column(right_on)?;
    if suffix.is_empty() {
        return Err(FrameError::InvalidOperation(
            "join suffix must be non-empty".to_string(),
        ));
    }

    // Pair up matching (left row, Option<right row>) indices.
    let mut pairs: Vec<(usize, Option<usize>)> = Vec::new();
    for l in 0..left.n_rows() {
        let lv = left_key.get(l).expect("in range");
        let mut matched = false;
        for r in 0..right.n_rows() {
            if right_key.get(r).expect("in range").approx_eq(lv) {
                pairs.push((l, Some(r)));
                matched = true;
            }
        }
        if !matched && keep_unmatched_left {
            pairs.push((l, None));
        }
    }

    let mut out = DataFrame::new();
    for name in left.column_names() {
        let col: Column = pairs
            .iter()
            .map(|&(l, _)| left.value(l, name).expect("in range").clone())
            .collect();
        out.add_column(name, col)?;
    }
    for name in right.column_names() {
        if name == right_on {
            continue;
        }
        let out_name = if out.has_column(name) {
            format!("{name}{suffix}")
        } else {
            name.to_string()
        };
        let col: Column = pairs
            .iter()
            .map(|&(_, r)| match r {
                Some(r) => right.value(r, name).expect("in range").clone(),
                None => AttrValue::Null,
            })
            .collect();
        out.add_column(&out_name, col)?;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nodes() -> DataFrame {
        DataFrame::from_columns(vec![
            ("node".to_string(), Column::from_values(["a", "b", "c"])),
            (
                "role".to_string(),
                Column::from_values(["core", "edge", "edge"]),
            ),
        ])
        .unwrap()
    }

    fn edges() -> DataFrame {
        DataFrame::from_columns(vec![
            (
                "source".to_string(),
                Column::from_values(["a", "a", "b", "z"]),
            ),
            (
                "target".to_string(),
                Column::from_values(["b", "c", "c", "a"]),
            ),
            ("bytes".to_string(), Column::from_values([1i64, 2, 3, 4])),
        ])
        .unwrap()
    }

    #[test]
    fn inner_join_matches_keys() {
        let j = inner_join(&edges(), &nodes(), "source", "node", "_src").unwrap();
        // Row with source "z" has no matching node and is dropped.
        assert_eq!(j.n_rows(), 3);
        assert!(j.has_column("role"));
        assert_eq!(j.value(0, "role").unwrap().as_str(), Some("core"));
    }

    #[test]
    fn left_join_keeps_unmatched_rows_with_nulls() {
        let j = left_join(&edges(), &nodes(), "source", "node", "_src").unwrap();
        assert_eq!(j.n_rows(), 4);
        assert!(j.value(3, "role").unwrap().is_null());
    }

    #[test]
    fn clashing_columns_get_suffix() {
        let left = DataFrame::from_columns(vec![
            ("k".to_string(), Column::from_values(["a"])),
            ("v".to_string(), Column::from_values([1i64])),
        ])
        .unwrap();
        let right = DataFrame::from_columns(vec![
            ("k".to_string(), Column::from_values(["a"])),
            ("v".to_string(), Column::from_values([2i64])),
        ])
        .unwrap();
        let j = inner_join(&left, &right, "k", "k", "_right").unwrap();
        assert_eq!(j.column_names(), vec!["k", "v", "v_right"]);
        assert_eq!(j.value(0, "v_right").unwrap(), &AttrValue::Int(2));
    }

    #[test]
    fn one_to_many_joins_duplicate_left_rows() {
        let many = DataFrame::from_columns(vec![
            ("node".to_string(), Column::from_values(["a", "a"])),
            ("tag".to_string(), Column::from_values(["t1", "t2"])),
        ])
        .unwrap();
        let single = DataFrame::from_columns(vec![
            ("id".to_string(), Column::from_values(["a"])),
            ("w".to_string(), Column::from_values([9i64])),
        ])
        .unwrap();
        let j = inner_join(&single, &many, "id", "node", "_m").unwrap();
        assert_eq!(j.n_rows(), 2);
    }

    #[test]
    fn missing_key_column_or_empty_suffix_errors() {
        assert!(inner_join(&nodes(), &edges(), "nope", "source", "_x").is_err());
        assert!(inner_join(&nodes(), &edges(), "node", "nope", "_x").is_err());
        assert!(inner_join(&nodes(), &edges(), "node", "source", "").is_err());
    }
}
