//! Group-by: split a frame by key columns and aggregate each group.

use crate::column::Column;
use crate::error::Result;
use crate::frame::DataFrame;
use crate::ops::AggFunc;
use netgraph::AttrValue;

/// The result of [`DataFrame::groupby`]: rows partitioned into groups that
/// share the same values in the key columns.
///
/// Groups are ordered by their first appearance in the source frame, so the
/// output of [`GroupBy::agg`] is deterministic.
///
/// ```
/// use dataframe::{DataFrame, Column};
/// use dataframe::ops::AggFunc;
/// let df = DataFrame::from_columns(vec![
///     ("prefix".to_string(), Column::from_values(["10.0", "10.1", "10.0"])),
///     ("bytes".to_string(), Column::from_values([5i64, 7, 11])),
/// ]).unwrap();
/// let out = df.groupby(&["prefix"]).unwrap()
///     .agg(&[("bytes", AggFunc::Sum, "total_bytes")]).unwrap();
/// assert_eq!(out.n_rows(), 2);
/// assert_eq!(out.value(0, "total_bytes").unwrap().as_f64(), Some(16.0));
/// ```
#[derive(Debug)]
pub struct GroupBy<'a> {
    frame: &'a DataFrame,
    keys: Vec<String>,
    /// `(key values, member row indices)` in first-appearance order.
    groups: Vec<(Vec<AttrValue>, Vec<usize>)>,
}

impl<'a> GroupBy<'a> {
    /// Partitions `frame` by the given key columns.
    pub(crate) fn new(frame: &'a DataFrame, keys: &[&str]) -> Result<Self> {
        let key_cols: Vec<&Column> = keys
            .iter()
            .map(|k| frame.column(k))
            .collect::<Result<_>>()?;
        let mut groups: Vec<(Vec<AttrValue>, Vec<usize>)> = Vec::new();
        for row in 0..frame.n_rows() {
            let key: Vec<AttrValue> = key_cols
                .iter()
                .map(|c| c.get(row).expect("in range").clone())
                .collect();
            match groups
                .iter_mut()
                .find(|(k, _)| k.len() == key.len() && k.iter().zip(&key).all(|(a, b)| a == b))
            {
                Some((_, members)) => members.push(row),
                None => groups.push((key, vec![row])),
            }
        }
        Ok(GroupBy {
            frame,
            keys: keys.iter().map(|k| k.to_string()).collect(),
            groups,
        })
    }

    /// Number of distinct groups.
    pub fn n_groups(&self) -> usize {
        self.groups.len()
    }

    /// The key values and member row indices of each group.
    pub fn groups(&self) -> &[(Vec<AttrValue>, Vec<usize>)] {
        &self.groups
    }

    /// Materializes each group as its own frame, paired with its key values.
    pub fn group_frames(&self) -> Result<Vec<(Vec<AttrValue>, DataFrame)>> {
        self.groups
            .iter()
            .map(|(key, rows)| Ok((key.clone(), self.frame.take(rows)?)))
            .collect()
    }

    /// Aggregates each group. `specs` is a list of
    /// `(source column, aggregation, output column name)`; the result frame
    /// has the key columns followed by one column per spec.
    pub fn agg(&self, specs: &[(&str, AggFunc, &str)]) -> Result<DataFrame> {
        let mut out = DataFrame::new();
        // Key columns first.
        for (i, key_name) in self.keys.iter().enumerate() {
            let col: Column = self.groups.iter().map(|(key, _)| key[i].clone()).collect();
            out.add_column(key_name, col)?;
        }
        // One output column per aggregation spec.
        for &(source, func, out_name) in specs {
            // Validate the source column exists before doing per-group work.
            self.frame.column(source)?;
            let mut col = Column::new();
            for (_, rows) in &self.groups {
                let slice: Column = rows
                    .iter()
                    .map(|&r| self.frame.value(r, source).expect("in range").clone())
                    .collect();
                col.push(func.apply(&slice)?);
            }
            out.add_column(out_name, col)?;
        }
        Ok(out)
    }

    /// Shorthand for a single-column aggregation named after the function
    /// (`bytes_sum`, `capacity_max`, ...).
    pub fn agg_one(&self, column: &str, func: AggFunc) -> Result<DataFrame> {
        let out_name = format!("{column}_{}", func.name());
        self.agg(&[(column, func, &out_name)])
    }

    /// Group sizes as a frame with the key columns plus a `count` column.
    pub fn count(&self) -> Result<DataFrame> {
        let mut out = DataFrame::new();
        for (i, key_name) in self.keys.iter().enumerate() {
            let col: Column = self.groups.iter().map(|(key, _)| key[i].clone()).collect();
            out.add_column(key_name, col)?;
        }
        let counts: Column = self
            .groups
            .iter()
            .map(|(_, rows)| AttrValue::Int(rows.len() as i64))
            .collect();
        out.add_column("count", counts)?;
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::CmpOp;

    fn sample() -> DataFrame {
        DataFrame::from_columns(vec![
            (
                "prefix".to_string(),
                Column::from_values(["10.0", "10.1", "10.0", "10.2", "10.1"]),
            ),
            (
                "bytes".to_string(),
                Column::from_values([10i64, 20, 30, 40, 50]),
            ),
            (
                "packets".to_string(),
                Column::from_values([1i64, 2, 3, 4, 5]),
            ),
        ])
        .unwrap()
    }

    #[test]
    fn groups_form_in_first_appearance_order() {
        let df = sample();
        let g = df.groupby(&["prefix"]).unwrap();
        assert_eq!(g.n_groups(), 3);
        assert_eq!(g.groups()[0].0, vec![AttrValue::from("10.0")]);
        assert_eq!(g.groups()[0].1, vec![0, 2]);
        assert_eq!(g.groups()[2].0, vec![AttrValue::from("10.2")]);
    }

    #[test]
    fn agg_multiple_specs() {
        let df = sample();
        let out = df
            .groupby(&["prefix"])
            .unwrap()
            .agg(&[
                ("bytes", AggFunc::Sum, "total_bytes"),
                ("packets", AggFunc::Max, "max_packets"),
            ])
            .unwrap();
        assert_eq!(
            out.column_names(),
            vec!["prefix", "total_bytes", "max_packets"]
        );
        let first = out
            .filter_by("prefix", CmpOp::Eq, AttrValue::from("10.0"))
            .unwrap();
        assert_eq!(first.value(0, "total_bytes").unwrap().as_f64(), Some(40.0));
        assert_eq!(first.value(0, "max_packets").unwrap().as_f64(), Some(3.0));
    }

    #[test]
    fn agg_one_autonames_column() {
        let df = sample();
        let out = df
            .groupby(&["prefix"])
            .unwrap()
            .agg_one("bytes", AggFunc::Mean)
            .unwrap();
        assert!(out.has_column("bytes_mean"));
    }

    #[test]
    fn count_reports_group_sizes() {
        let df = sample();
        let out = df.groupby(&["prefix"]).unwrap().count().unwrap();
        assert_eq!(out.n_rows(), 3);
        assert_eq!(out.value(0, "count").unwrap(), &AttrValue::Int(2));
        assert_eq!(out.value(2, "count").unwrap(), &AttrValue::Int(1));
    }

    #[test]
    fn group_frames_materializes_members() {
        let df = sample();
        let frames = df.groupby(&["prefix"]).unwrap().group_frames().unwrap();
        assert_eq!(frames.len(), 3);
        assert_eq!(frames[0].1.n_rows(), 2);
    }

    #[test]
    fn missing_key_or_value_column_errors() {
        let df = sample();
        assert!(df.groupby(&["nope"]).is_err());
        let g = df.groupby(&["prefix"]).unwrap();
        assert!(g.agg(&[("nope", AggFunc::Sum, "x")]).is_err());
    }

    #[test]
    fn multi_key_grouping() {
        let df = DataFrame::from_columns(vec![
            ("a".to_string(), Column::from_values(["x", "x", "y"])),
            ("b".to_string(), Column::from_values([1i64, 1, 1])),
            ("v".to_string(), Column::from_values([10i64, 20, 30])),
        ])
        .unwrap();
        let out = df
            .groupby(&["a", "b"])
            .unwrap()
            .agg(&[("v", AggFunc::Sum, "total")])
            .unwrap();
        assert_eq!(out.n_rows(), 2);
        assert_eq!(out.value(0, "total").unwrap().as_f64(), Some(30.0));
    }
}
