//! Row-filtering comparison operators.

use netgraph::AttrValue;
use std::cmp::Ordering;

/// A comparison operator applied between a column value and a constant, used
/// by [`crate::DataFrame::filter_by`] and by the SQL and GraphScript layers
/// that sit on top of the frame substrate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// Equal (with numeric coercion and float tolerance).
    Eq,
    /// Not equal.
    Ne,
    /// Strictly less than.
    Lt,
    /// Less than or equal.
    Le,
    /// Strictly greater than.
    Gt,
    /// Greater than or equal.
    Ge,
    /// String containment (`value` must be a substring of the cell).
    Contains,
    /// String prefix match.
    StartsWith,
    /// String suffix match.
    EndsWith,
}

impl CmpOp {
    /// Evaluates `cell <op> constant`. Comparisons between incomparable
    /// types are false (never an error), matching pandas boolean-mask
    /// semantics.
    pub fn eval(&self, cell: &AttrValue, constant: &AttrValue) -> bool {
        match self {
            CmpOp::Eq => cell.approx_eq(constant),
            CmpOp::Ne => !cell.approx_eq(constant),
            CmpOp::Lt => matches!(cell.partial_cmp_value(constant), Some(Ordering::Less)),
            CmpOp::Le => matches!(
                cell.partial_cmp_value(constant),
                Some(Ordering::Less | Ordering::Equal)
            ),
            CmpOp::Gt => matches!(cell.partial_cmp_value(constant), Some(Ordering::Greater)),
            CmpOp::Ge => matches!(
                cell.partial_cmp_value(constant),
                Some(Ordering::Greater | Ordering::Equal)
            ),
            CmpOp::Contains => match (cell.as_str(), constant.as_str()) {
                (Some(c), Some(k)) => c.contains(k),
                _ => false,
            },
            CmpOp::StartsWith => match (cell.as_str(), constant.as_str()) {
                (Some(c), Some(k)) => c.starts_with(k),
                _ => false,
            },
            CmpOp::EndsWith => match (cell.as_str(), constant.as_str()) {
                (Some(c), Some(k)) => c.ends_with(k),
                _ => false,
            },
        }
    }

    /// Parses the textual operators used by the SQL layer and the GraphScript
    /// frame bindings (`==`, `!=`, `<`, `<=`, `>`, `>=`, `contains`,
    /// `startswith`, `endswith`). `=` is accepted as an alias for `==`.
    pub fn parse(text: &str) -> Option<CmpOp> {
        match text {
            "==" | "=" | "eq" => Some(CmpOp::Eq),
            "!=" | "<>" | "ne" => Some(CmpOp::Ne),
            "<" | "lt" => Some(CmpOp::Lt),
            "<=" | "le" => Some(CmpOp::Le),
            ">" | "gt" => Some(CmpOp::Gt),
            ">=" | "ge" => Some(CmpOp::Ge),
            "contains" => Some(CmpOp::Contains),
            "startswith" => Some(CmpOp::StartsWith),
            "endswith" => Some(CmpOp::EndsWith),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_comparisons_coerce_types() {
        assert!(CmpOp::Eq.eval(&AttrValue::Int(5), &AttrValue::Float(5.0)));
        assert!(CmpOp::Lt.eval(&AttrValue::Int(3), &AttrValue::Float(3.5)));
        assert!(CmpOp::Ge.eval(&AttrValue::Float(4.0), &AttrValue::Int(4)));
        assert!(!CmpOp::Gt.eval(&AttrValue::Int(1), &AttrValue::Int(2)));
    }

    #[test]
    fn string_comparisons() {
        let cell = AttrValue::from("10.76.3.9");
        assert!(CmpOp::StartsWith.eval(&cell, &AttrValue::from("10.76")));
        assert!(CmpOp::Contains.eval(&cell, &AttrValue::from(".3.")));
        assert!(CmpOp::EndsWith.eval(&cell, &AttrValue::from(".9")));
        assert!(!CmpOp::StartsWith.eval(&cell, &AttrValue::from("15.")));
    }

    #[test]
    fn incomparable_types_are_false_not_error() {
        assert!(!CmpOp::Lt.eval(&AttrValue::from("a"), &AttrValue::Int(3)));
        assert!(!CmpOp::Contains.eval(&AttrValue::Int(3), &AttrValue::from("3")));
        assert!(CmpOp::Ne.eval(&AttrValue::from("a"), &AttrValue::Int(3)));
    }

    #[test]
    fn parse_accepts_sql_and_python_spellings() {
        assert_eq!(CmpOp::parse("=="), Some(CmpOp::Eq));
        assert_eq!(CmpOp::parse("="), Some(CmpOp::Eq));
        assert_eq!(CmpOp::parse("<>"), Some(CmpOp::Ne));
        assert_eq!(CmpOp::parse("startswith"), Some(CmpOp::StartsWith));
        assert_eq!(CmpOp::parse("~="), None);
    }
}
