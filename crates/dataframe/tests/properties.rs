//! Property-based tests for the dataframe substrate.

use dataframe::csv::{from_csv, to_csv};
use dataframe::ops::{AggFunc, CmpOp};
use dataframe::{AttrValue, Column, DataFrame};
use proptest::prelude::*;

/// Strategy producing a frame with a string key column, an integer value
/// column and a float weight column, of 0..40 rows.
fn arb_frame() -> impl Strategy<Value = DataFrame> {
    prop::collection::vec(
        ("[a-z]{1,6}", -1_000_000i64..1_000_000, -1.0e6f64..1.0e6),
        0..40,
    )
    .prop_map(|rows| {
        let mut keys = Column::new();
        let mut ints = Column::new();
        let mut floats = Column::new();
        for (k, i, f) in rows {
            keys.push(AttrValue::Str(k.into()));
            ints.push(AttrValue::Int(i));
            floats.push(AttrValue::Float(f));
        }
        DataFrame::from_columns(vec![
            ("key".to_string(), keys),
            ("value".to_string(), ints),
            ("weight".to_string(), floats),
        ])
        .expect("columns are equal length")
    })
}

proptest! {
    /// CSV round-trips preserve shape and approximate content.
    #[test]
    fn csv_round_trip(df in arb_frame()) {
        let text = to_csv(&df);
        let back = from_csv(&text).unwrap();
        prop_assert_eq!(back.n_rows(), df.n_rows());
        prop_assert_eq!(back.n_cols(), df.n_cols());
        for row in 0..df.n_rows() {
            for col in df.column_names() {
                let a = df.value(row, col).unwrap();
                let b = back.value(row, col).unwrap();
                prop_assert!(a.approx_eq(b), "row {} col {} {:?} vs {:?}", row, col, a, b);
            }
        }
    }

    /// Sorting never changes the multiset of rows, and produces a
    /// non-decreasing key sequence.
    #[test]
    fn sort_is_permutation_and_ordered(df in arb_frame()) {
        let sorted = df.sort_values(&["value"], true).unwrap();
        prop_assert!(df.approx_eq_unordered(&sorted));
        let col = sorted.column("value").unwrap();
        for i in 1..col.len() {
            let prev = col.get(i - 1).unwrap().as_i64().unwrap();
            let cur = col.get(i).unwrap().as_i64().unwrap();
            prop_assert!(prev <= cur);
        }
    }

    /// Filtering partitions the rows: matching + non-matching = total.
    #[test]
    fn filter_partitions_rows(df in arb_frame(), threshold in -1_000_000i64..1_000_000) {
        let lt = df.filter_by("value", CmpOp::Lt, AttrValue::Int(threshold)).unwrap();
        let ge = df.filter_by("value", CmpOp::Ge, AttrValue::Int(threshold)).unwrap();
        prop_assert_eq!(lt.n_rows() + ge.n_rows(), df.n_rows());
    }

    /// Group-by sums over a key add up to the whole-column sum.
    #[test]
    fn groupby_sum_is_total_sum(df in arb_frame()) {
        prop_assume!(df.n_rows() > 0);
        let grouped = df.groupby(&["key"]).unwrap()
            .agg(&[("value", AggFunc::Sum, "total")]).unwrap();
        let group_total: f64 = grouped.column("total").unwrap().sum().unwrap();
        let overall: f64 = df.column("value").unwrap().sum().unwrap();
        prop_assert!((group_total - overall).abs() <= 1e-6 * overall.abs().max(1.0));
    }

    /// Group counts sum to the number of rows and every group is non-empty.
    #[test]
    fn group_counts_sum_to_rows(df in arb_frame()) {
        let counts = df.groupby(&["key"]).unwrap().count().unwrap();
        let total: f64 = if counts.n_rows() == 0 {
            0.0
        } else {
            counts.column("count").unwrap().sum().unwrap()
        };
        prop_assert_eq!(total as usize, df.n_rows());
        for i in 0..counts.n_rows() {
            prop_assert!(counts.value(i, "count").unwrap().as_i64().unwrap() >= 1);
        }
    }

    /// `take` with all indices is the identity; `head` never exceeds the
    /// requested length.
    #[test]
    fn take_identity_and_head_bounds(df in arb_frame(), n in 0usize..60) {
        let all: Vec<usize> = (0..df.n_rows()).collect();
        prop_assert!(df.approx_eq(&df.take(&all).unwrap()));
        prop_assert!(df.head(n).n_rows() <= n.min(df.n_rows()));
    }

    /// Self-join on the key column never loses left rows (inner join when
    /// every key matches itself).
    #[test]
    fn self_join_preserves_rows(df in arb_frame()) {
        let j = dataframe::ops::inner_join(&df, &df, "key", "key", "_r").unwrap();
        prop_assert!(j.n_rows() >= df.n_rows());
    }
}
