//! The 24 network traffic-analysis queries (8 easy, 8 medium, 8 hard) and
//! their golden programs for the three code-generation backends.
//!
//! The queries mirror the categories the paper describes — topology
//! analysis, information computation and graph manipulation — and include
//! the three examples from the paper's Table 1. Golden programs are written
//! against the fixed default workload (80 nodes / 80 edges, prefixes drawn
//! from a pool that starts with `15.76`), exactly as the paper's golden
//! answers were written against its fixed synthetic graphs.

use crate::spec::QuerySpec;
use nemo_core::{Application, Complexity};

/// Returns the full traffic-analysis query suite.
pub fn traffic_queries() -> Vec<QuerySpec> {
    let mut q = Vec::new();
    q.extend(easy());
    q.extend(medium());
    q.extend(hard());
    q
}

fn spec(
    id: &'static str,
    complexity: Complexity,
    text: &'static str,
    networkx: &'static str,
    pandas: &'static str,
    sql: &'static str,
) -> QuerySpec {
    QuerySpec {
        id,
        text,
        application: Application::TrafficAnalysis,
        complexity,
        networkx,
        pandas,
        sql,
    }
}

fn easy() -> Vec<QuerySpec> {
    vec![
        spec(
            "T01",
            Complexity::Easy,
            "How many nodes are in the communication graph?",
            "result = G.number_of_nodes()",
            "result = nodes.n_rows()",
            "SELECT COUNT(*) AS n FROM nodes",
        ),
        spec(
            "T02",
            Complexity::Easy,
            "How many communication edges are in the graph?",
            "result = G.number_of_edges()",
            "result = edges.n_rows()",
            "SELECT COUNT(*) AS n FROM edges",
        ),
        spec(
            "T03",
            Complexity::Easy,
            "What is the total number of bytes transferred across all edges?",
            "result = G.total_edge_attr(\"bytes\")",
            "result = edges.sum(\"bytes\")",
            "SELECT SUM(bytes) AS total_bytes FROM edges",
        ),
        spec(
            "T04",
            Complexity::Easy,
            "List all nodes with address prefix 15.76.",
            "result = G.nodes_with_prefix(\"15.76\")",
            r#"matching = nodes.filter("id", "startswith", "15.76")
result = matching.column("id")"#,
            "SELECT id FROM nodes WHERE id LIKE '15.76%' ORDER BY id",
        ),
        spec(
            "T05",
            Complexity::Easy,
            "Add a label app:production to nodes with address prefix 15.76.",
            r#"count = 0
for n in G.nodes_with_prefix("15.76") {
    G.set_node_attr(n, "label", "app:production")
    count += 1
}
result = count"#,
            r#"count = 0
i = 0
while i < nodes.n_rows() {
    if nodes.value(i, "id").startswith("15.76") {
        nodes.set_value(i, "label", "app:production")
        count += 1
    }
    i += 1
}
result = count"#,
            "UPDATE nodes SET label = 'app:production' WHERE id LIKE '15.76%';\nSELECT COUNT(*) AS labelled FROM nodes WHERE label = 'app:production'",
        ),
        spec(
            "T06",
            Complexity::Easy,
            "Which node has the highest out-degree?",
            r#"best = null
best_degree = -1
for n in G.nodes() {
    d = G.out_degree(n)
    if d > best_degree {
        best_degree = d
        best = n
    }
}
result = best"#,
            r#"per_source = edges.groupby_count("source")
ranked = per_source.sort_values("count", false)
result = ranked.value(0, "source")"#,
            "SELECT source, COUNT(*) AS out_degree FROM edges GROUP BY source ORDER BY out_degree DESC, source ASC LIMIT 1",
        ),
        spec(
            "T07",
            Complexity::Easy,
            "How many distinct /16 prefixes are present among the nodes?",
            r#"prefixes = []
for n in G.nodes() {
    p = ip_prefix(n, 2)
    if p not in prefixes {
        prefixes.append(p)
    }
}
result = len(prefixes)"#,
            "result = nodes.nunique(\"prefix16\")",
            "SELECT DISTINCT prefix16 FROM nodes ORDER BY prefix16",
        ),
        spec(
            "T08",
            Complexity::Easy,
            "What is the average number of packets per edge?",
            r#"total = G.total_edge_attr("packets")
result = total / G.number_of_edges()"#,
            "result = edges.mean(\"packets\")",
            "SELECT AVG(packets) AS avg_packets FROM edges",
        ),
    ]
}

fn medium() -> Vec<QuerySpec> {
    vec![
        spec(
            "T09",
            Complexity::Medium,
            "Assign a unique color for each /16 IP address prefix.",
            r#"prefixes = []
for n in G.nodes() {
    p = ip_prefix(n, 2)
    if p not in prefixes {
        prefixes.append(p)
    }
}
prefixes.sort()
mapping = {}
i = 0
for p in prefixes {
    mapping[p] = palette_color(i)
    i += 1
}
for n in G.nodes() {
    G.set_node_attr(n, "color", mapping[ip_prefix(n, 2)])
}
result = mapping"#,
            r#"prefixes = sorted(nodes.unique("prefix16"))
mapping = {}
i = 0
for p in prefixes {
    mapping[p] = palette_color(i)
    i += 1
}
colors = []
for row in nodes.to_rows() {
    colors.append(mapping[row["prefix16"]])
}
nodes.set_column("color", colors)
result = mapping"#,
            // Same palette order as palette_color(): the /16 prefixes sorted
            // ascending get red, blue, green, orange, purple, cyan — so the
            // SQL answer agrees with the script substrates (asserted by the
            // cross-backend conformance harness).
            "UPDATE nodes SET color = 'red' WHERE prefix16 = '10.2';\nUPDATE nodes SET color = 'blue' WHERE prefix16 = '10.3';\nUPDATE nodes SET color = 'green' WHERE prefix16 = '100.64';\nUPDATE nodes SET color = 'orange' WHERE prefix16 = '15.76';\nUPDATE nodes SET color = 'purple' WHERE prefix16 = '172.16';\nUPDATE nodes SET color = 'cyan' WHERE prefix16 = '192.168';\nSELECT DISTINCT prefix16, color FROM nodes ORDER BY prefix16",
        ),
        spec(
            "T10",
            Complexity::Medium,
            "What are the top 3 nodes by total bytes sent?",
            r#"sent = {}
for e in G.edges_data() {
    source = e[0]
    attrs = e[2]
    sent[source] = sent.get(source, 0) + attrs["bytes"]
}
result = top_k(sent, 3)"#,
            r#"per_source = edges.groupby_agg("source", "bytes", "sum", "sent")
ranked = per_source.sort_values("sent", false)
result = ranked.head(3)"#,
            "SELECT source, SUM(bytes) AS sent FROM edges GROUP BY source ORDER BY sent DESC, source ASC LIMIT 3",
        ),
        spec(
            "T11",
            Complexity::Medium,
            "How many bytes were exchanged between the 15.76 prefix and the 10.2 prefix?",
            r#"total = 0
for e in G.edges_data() {
    sp = ip_prefix(e[0], 2)
    tp = ip_prefix(e[1], 2)
    if sp == "15.76" and tp == "10.2" {
        total += e[2]["bytes"]
    }
    if sp == "10.2" and tp == "15.76" {
        total += e[2]["bytes"]
    }
}
result = total"#,
            r#"total = 0
for row in edges.to_rows() {
    sp = ip_prefix(row["source"], 2)
    tp = ip_prefix(row["target"], 2)
    if sp == "15.76" and tp == "10.2" {
        total += row["bytes"]
    }
    if sp == "10.2" and tp == "15.76" {
        total += row["bytes"]
    }
}
result = total"#,
            "SELECT SUM(bytes) AS total FROM edges WHERE (IP_PREFIX(source, 2) = '15.76' AND IP_PREFIX(target, 2) = '10.2') OR (IP_PREFIX(source, 2) = '10.2' AND IP_PREFIX(target, 2) = '15.76')",
        ),
        spec(
            "T12",
            Complexity::Medium,
            "Report the out-degree of every node that sends traffic, from highest to lowest.",
            r#"degrees = {}
for e in G.edges_data() {
    source = e[0]
    degrees[source] = degrees.get(source, 0) + 1
}
result = top_k(degrees, len(keys(degrees)))"#,
            r#"per_source = edges.groupby_count("source")
result = per_source.sort_values("count", false)"#,
            "SELECT source, COUNT(*) AS out_degree FROM edges GROUP BY source ORDER BY out_degree DESC, source ASC",
        ),
        spec(
            "T13",
            Complexity::Medium,
            "Find all communication edges that carry more than 5000000 bytes.",
            r#"heavy = []
for e in G.edges_data() {
    if e[2]["bytes"] > 5000000 {
        heavy.append([e[0], e[1]])
    }
}
result = heavy"#,
            "result = edges.filter(\"bytes\", \">\", 5000000)",
            "SELECT source, target, bytes FROM edges WHERE bytes > 5000000 ORDER BY source, target",
        ),
        spec(
            "T14",
            Complexity::Medium,
            "Label every node with its /24 prefix in an attribute called subnet.",
            r#"for n in G.nodes() {
    G.set_node_attr(n, "subnet", ip_prefix(n, 3))
}
result = G.number_of_nodes()"#,
            r#"subnets = []
for row in nodes.to_rows() {
    subnets.append(ip_prefix(row["id"], 3))
}
nodes.set_column("subnet", subnets)
result = nodes.n_rows()"#,
            "UPDATE nodes SET label = prefix24;\nSELECT COUNT(*) AS labelled FROM nodes WHERE label = prefix24",
        ),
        spec(
            "T15",
            Complexity::Medium,
            "Which /16 prefix generates the most outgoing traffic in bytes?",
            r#"totals = {}
for e in G.edges_data() {
    p = ip_prefix(e[0], 2)
    totals[p] = totals.get(p, 0) + e[2]["bytes"]
}
top = top_k(totals, 1)
result = top[0][0]"#,
            r#"totals = {}
for row in edges.to_rows() {
    p = ip_prefix(row["source"], 2)
    totals[p] = totals.get(p, 0) + row["bytes"]
}
top = top_k(totals, 1)
result = top[0][0]"#,
            "SELECT IP_PREFIX(source, 2) AS prefix, SUM(bytes) AS total FROM edges GROUP BY IP_PREFIX(source, 2) ORDER BY total DESC LIMIT 1",
        ),
        spec(
            "T16",
            Complexity::Medium,
            "Remove all edges with fewer than 10 packets from the graph.",
            r#"doomed = []
for e in G.edges_data() {
    if e[2]["packets"] < 10 {
        doomed.append([e[0], e[1]])
    }
}
for pair in doomed {
    G.remove_edge(pair[0], pair[1])
}
result = len(doomed)"#,
            r#"before = edges.n_rows()
edges.delete_rows("packets", "<", 10)
result = before - edges.n_rows()"#,
            "DELETE FROM edges WHERE packets < 10;\nSELECT COUNT(*) AS remaining FROM edges",
        ),
    ]
}

fn hard() -> Vec<QuerySpec> {
    vec![
        spec(
            "T17",
            Complexity::Hard,
            "Calculate total byte weight on each node, cluster them into 5 groups.",
            r#"totals = node_weight_totals(G, "bytes")
groups = kmeans_groups(totals, 5)
for n in keys(groups) {
    G.set_node_attr(n, "group", groups[n])
}
result = groups"#,
            r#"totals = {}
for row in edges.to_rows() {
    totals[row["source"]] = totals.get(row["source"], 0) + row["bytes"]
    totals[row["target"]] = totals.get(row["target"], 0) + row["bytes"]
}
for row in nodes.to_rows() {
    if row["id"] not in totals {
        totals[row["id"]] = 0
    }
}
groups = kmeans_groups(totals, 5)
assignments = []
for row in nodes.to_rows() {
    assignments.append(groups[row["id"]])
}
nodes.set_column("group", assignments)
result = groups"#,
            "SELECT source AS node, SUM(bytes) AS total, CASE WHEN SUM(bytes) < 5000000 THEN 0 WHEN SUM(bytes) < 10000000 THEN 1 WHEN SUM(bytes) < 15000000 THEN 2 WHEN SUM(bytes) < 20000000 THEN 3 ELSE 4 END AS grp FROM edges GROUP BY source ORDER BY total DESC",
        ),
        spec(
            "T18",
            Complexity::Hard,
            "Remove the node with the highest total byte weight and report how many edges were removed.",
            r#"totals = node_weight_totals(G, "bytes")
top = top_k(totals, 1)
victim = top[0][0]
before = G.number_of_edges()
G.remove_node(victim)
result = before - G.number_of_edges()"#,
            r#"totals = {}
for row in edges.to_rows() {
    totals[row["source"]] = totals.get(row["source"], 0) + row["bytes"]
    totals[row["target"]] = totals.get(row["target"], 0) + row["bytes"]
}
top = top_k(totals, 1)
victim = top[0][0]
before = edges.n_rows()
edges.delete_rows("source", "==", victim)
edges.delete_rows("target", "==", victim)
nodes.delete_rows("id", "==", victim)
result = before - edges.n_rows()"#,
            "SELECT source AS node, SUM(bytes) AS total FROM edges GROUP BY source ORDER BY total DESC LIMIT 1",
        ),
        spec(
            "T19",
            Complexity::Hard,
            "Assign each node to a traffic tier (0=low, 1=medium, 2=high) by its total byte weight and count the nodes in each tier.",
            r#"totals = node_weight_totals(G, "bytes")
tiers = quantile_groups(totals, 3)
counts = {}
for n in keys(tiers) {
    G.set_node_attr(n, "tier", tiers[n])
    counts[str(tiers[n])] = counts.get(str(tiers[n]), 0) + 1
}
result = counts"#,
            r#"totals = {}
for row in edges.to_rows() {
    totals[row["source"]] = totals.get(row["source"], 0) + row["bytes"]
    totals[row["target"]] = totals.get(row["target"], 0) + row["bytes"]
}
for row in nodes.to_rows() {
    if row["id"] not in totals {
        totals[row["id"]] = 0
    }
}
tiers = quantile_groups(totals, 3)
assignments = []
counts = {}
for row in nodes.to_rows() {
    t = tiers[row["id"]]
    assignments.append(t)
    counts[str(t)] = counts.get(str(t), 0) + 1
}
nodes.set_column("tier", assignments)
result = counts"#,
            "SELECT source AS node, SUM(bytes) AS total, CASE WHEN SUM(bytes) < 8000000 THEN 0 WHEN SUM(bytes) < 16000000 THEN 1 ELSE 2 END AS tier FROM edges GROUP BY source ORDER BY node",
        ),
        spec(
            "T20",
            Complexity::Hard,
            "Find the pair of /16 prefixes with the largest total traffic between them.",
            r#"pair_totals = {}
for e in G.edges_data() {
    sp = ip_prefix(e[0], 2)
    tp = ip_prefix(e[1], 2)
    key = sp + "->" + tp
    pair_totals[key] = pair_totals.get(key, 0) + e[2]["bytes"]
}
top = top_k(pair_totals, 1)
result = top[0][0]"#,
            r#"pair_totals = {}
for row in edges.to_rows() {
    key = ip_prefix(row["source"], 2) + "->" + ip_prefix(row["target"], 2)
    pair_totals[key] = pair_totals.get(key, 0) + row["bytes"]
}
top = top_k(pair_totals, 1)
result = top[0][0]"#,
            "SELECT IP_PREFIX(source, 2) AS source_prefix, IP_PREFIX(target, 2) AS target_prefix, SUM(bytes) AS total FROM edges GROUP BY IP_PREFIX(source, 2), IP_PREFIX(target, 2) ORDER BY total DESC LIMIT 1",
        ),
        spec(
            "T21",
            Complexity::Hard,
            "Condense the graph by /24 subnet: how many super-nodes would the condensed graph have?",
            r#"supernodes = {}
for n in G.nodes() {
    supernodes[ip_prefix(n, 3)] = 1
}
result = len(keys(supernodes))"#,
            "result = nodes.nunique(\"prefix24\")",
            "SELECT DISTINCT prefix24 FROM nodes ORDER BY prefix24",
        ),
        spec(
            "T22",
            Complexity::Hard,
            "Remove the top 2 talkers by bytes sent and report how many edges remain.",
            r#"sent = {}
for e in G.edges_data() {
    sent[e[0]] = sent.get(e[0], 0) + e[2]["bytes"]
}
top = top_k(sent, 2)
for entry in top {
    G.remove_node(entry[0])
}
result = G.number_of_edges()"#,
            r#"sent = {}
for row in edges.to_rows() {
    sent[row["source"]] = sent.get(row["source"], 0) + row["bytes"]
}
top = top_k(sent, 2)
for entry in top {
    victim = entry[0]
    edges.delete_rows("source", "==", victim)
    edges.delete_rows("target", "==", victim)
    nodes.delete_rows("id", "==", victim)
}
result = edges.n_rows()"#,
            "SELECT source, SUM(bytes) AS sent FROM edges GROUP BY source ORDER BY sent DESC, source ASC LIMIT 2",
        ),
        spec(
            "T23",
            Complexity::Hard,
            "Halve the byte count on every edge incident to the node with the highest total byte weight, then report that node's new total.",
            r#"totals = node_weight_totals(G, "bytes")
top = top_k(totals, 1)
hot = top[0][0]
for e in G.edges_data() {
    if e[0] == hot or e[1] == hot {
        G.set_edge_attr(e[0], e[1], "bytes", e[2]["bytes"] / 2)
    }
}
updated = node_weight_totals(G, "bytes")
result = updated[hot]"#,
            r#"totals = {}
for row in edges.to_rows() {
    totals[row["source"]] = totals.get(row["source"], 0) + row["bytes"]
    totals[row["target"]] = totals.get(row["target"], 0) + row["bytes"]
}
top = top_k(totals, 1)
hot = top[0][0]
i = 0
new_total = 0
while i < edges.n_rows() {
    if edges.value(i, "source") == hot or edges.value(i, "target") == hot {
        edges.set_value(i, "bytes", edges.value(i, "bytes") / 2)
        new_total += edges.value(i, "bytes")
    }
    i += 1
}
result = new_total"#,
            // 100.64.0.12 is the node with the highest total byte weight in
            // the fixed default workload (the cross-backend conformance
            // harness checks this hardcoded choice against the graph and
            // dataframe substrates, which compute the argmax).
            "UPDATE edges SET bytes = bytes / 2 WHERE source = '100.64.0.12' OR target = '100.64.0.12';\nSELECT SUM(bytes) AS total FROM edges WHERE source = '100.64.0.12' OR target = '100.64.0.12'",
        ),
        spec(
            "T24",
            Complexity::Hard,
            "Build the subgraph of nodes with prefix 15.76 and report how many edges it contains.",
            r#"members = G.nodes_with_prefix("15.76")
sub = G.subgraph(members)
result = sub.number_of_edges()"#,
            r#"count = 0
for row in edges.to_rows() {
    if row["source"].startswith("15.76") and row["target"].startswith("15.76") {
        count += 1
    }
}
result = count"#,
            "SELECT COUNT(*) AS n FROM edges WHERE source LIKE '15.76%' AND target LIKE '15.76%'",
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_eight_queries_per_level() {
        let queries = traffic_queries();
        assert_eq!(queries.len(), 24);
        for level in Complexity::ALL {
            assert_eq!(
                queries.iter().filter(|q| q.complexity == level).count(),
                8,
                "{level} should have 8 queries"
            );
        }
        // Unique ids and non-empty golden programs.
        let mut ids: Vec<&str> = queries.iter().map(|q| q.id).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), 24);
        for q in &queries {
            assert!(!q.networkx.is_empty() && !q.pandas.is_empty() && !q.sql.is_empty());
            assert_eq!(q.application, Application::TrafficAnalysis);
        }
    }

    #[test]
    fn paper_table1_examples_are_present() {
        let queries = traffic_queries();
        assert!(queries
            .iter()
            .any(|q| q.text.contains("Add a label app:production")));
        assert!(queries
            .iter()
            .any(|q| q.text.contains("Assign a unique color for each /16")));
        assert!(queries
            .iter()
            .any(|q| q.text.contains("cluster them into 5 groups")));
    }
}
