//! Machine-readable performance reports (`BENCH_*.json`).
//!
//! Every perf-focused PR runs the same micro/macro benchmarks through this
//! module and appends its medians to a committed `BENCH_<pr>.json`, so the
//! repository carries its own wall-time trajectory. The benches only use
//! public APIs that are stable across data-plane refactors (string-keyed
//! graph calls, `Database::execute`, suite runs), which is what makes a
//! *before/after* comparison of the same binary meaningful.
//!
//! A report is a JSON document with the fixed schema
//! [`SCHEMA`]:
//!
//! ```json
//! {
//!   "schema": "nemo-perf-report/v1",
//!   "pr": "pr3",
//!   "entries": [
//!     {"name": "graph_ops_100k", "unit": "ms",
//!      "before": {"median": 120.0, "samples": [...]},
//!      "after":  {"median": 40.0,  "samples": [...]},
//!      "speedup": 3.0}
//!   ]
//! }
//! ```
//!
//! `speedup` is `before.median / after.median` and is present only when both
//! labels have been recorded.

use crate::runner::{self};
use crate::suite::{BenchmarkSuite, SuiteConfig};
use crate::traffic_queries::traffic_queries;
use nemo_core::llm::profiles;
use netgraph::json::JsonValue;
use netgraph::{AttrMap, AttrMapExt, Graph};
use sqlengine::Database;
use std::collections::BTreeMap;
use std::time::Instant;
use trafficgen::{export, generate, TrafficConfig};

/// Schema identifier written into every report.
pub const SCHEMA: &str = "nemo-perf-report/v1";

/// One timed benchmark: a name and its wall-time samples in milliseconds.
#[derive(Debug, Clone, PartialEq)]
pub struct Measurement {
    /// Stable benchmark name (`graph_ops_100k`, `traffic_sql_suite`, ...).
    pub name: String,
    /// Wall-time samples in milliseconds, one per round.
    pub samples: Vec<f64>,
}

impl Measurement {
    /// Median of the samples (mean of the middle two for even counts).
    pub fn median(&self) -> f64 {
        median(&self.samples)
    }
}

/// Median of a sample set; `0.0` when empty.
pub fn median(samples: &[f64]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let mid = sorted.len() / 2;
    if sorted.len() % 2 == 1 {
        sorted[mid]
    } else {
        (sorted[mid - 1] + sorted[mid]) / 2.0
    }
}

/// The `p`-th percentile (`0..=100`) of a sample set, nearest-rank on the
/// sorted samples; `0.0` when empty. `percentile(s, 50)` is the classic
/// p50, `percentile(s, 99)` the tail the serving benchmarks report.
pub fn percentile(samples: &[f64], p: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Times `rounds` executions of `work`, returning one sample per round.
/// `setup` runs outside the timed region (fresh state per round).
pub fn time_rounds<S, T, F, W>(rounds: usize, mut setup: F, mut work: W) -> Vec<f64>
where
    F: FnMut() -> S,
    W: FnMut(S) -> T,
{
    let mut samples = Vec::with_capacity(rounds);
    for _ in 0..rounds {
        let state = setup();
        let start = Instant::now();
        let out = work(state);
        samples.push(start.elapsed().as_secs_f64() * 1e3);
        drop(out);
    }
    samples
}

/// Sizing knobs for one report run.
#[derive(Debug, Clone)]
pub struct PerfConfig {
    /// Node counts for the graph-ops benches (paired with ~2x edges).
    pub graph_sizes: Vec<(String, usize)>,
    /// Rounds per benchmark.
    pub rounds: usize,
    /// Scaled synthetic workload for the SQL macro bench.
    pub sql_nodes: usize,
    /// Edge count for the SQL macro bench.
    pub sql_edges: usize,
    /// Whether to run the end-to-end small accuracy matrix.
    pub run_matrix: bool,
}

impl PerfConfig {
    /// The full configuration used for committed `BENCH_*.json` numbers:
    /// graph ops at 10k and 100k nodes, a 2k-node SQL workload, and the
    /// end-to-end small matrix.
    pub fn full() -> Self {
        PerfConfig {
            graph_sizes: vec![
                ("graph_ops_10k".to_string(), 10_000),
                ("graph_ops_100k".to_string(), 100_000),
            ],
            rounds: 5,
            sql_nodes: 2_000,
            sql_edges: 6_000,
            run_matrix: true,
        }
    }

    /// A seconds-scale smoke configuration for CI (`NEMO_SMALL=1`): the
    /// same benchmarks at toy sizes, to validate the pipeline and schema.
    pub fn small() -> Self {
        PerfConfig {
            graph_sizes: vec![
                ("graph_ops_1k".to_string(), 1_000),
                ("graph_ops_5k".to_string(), 5_000),
            ],
            rounds: 3,
            sql_nodes: 300,
            sql_edges: 900,
            run_matrix: false,
        }
    }

    /// Picks [`PerfConfig::small`] when `NEMO_SMALL` is set, else
    /// [`PerfConfig::full`].
    pub fn from_env() -> Self {
        if std::env::var("NEMO_SMALL").is_ok() {
            PerfConfig::small()
        } else {
            PerfConfig::full()
        }
    }
}

// ------------------------------------------------------------- benchmarks

/// Deterministic scramble so bench graphs are not built in sorted order.
fn mix(mut x: u64) -> u64 {
    // splitmix64 finalizer — fixed constants, no external dependency.
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

fn bench_node_name(i: u64) -> String {
    // Dotted-quad style names, matching the shape of real workload ids.
    format!("10.{}.{}.{}", (i >> 16) & 0xff, (i >> 8) & 0xff, i & 0xff)
}

/// Builds the synthetic bench graph: `n` nodes, `2n` edges chosen by a
/// deterministic hash, each edge carrying a `bytes` attribute.
pub fn build_bench_graph(n: usize) -> Graph {
    let mut g = Graph::directed();
    for i in 0..n as u64 {
        let mut attrs = AttrMap::new();
        attrs.set("idx", i as i64);
        g.add_node(&bench_node_name(mix(i) % (n as u64)), attrs);
    }
    for i in 0..n as u64 {
        let u = bench_node_name(mix(i) % (n as u64));
        for k in 0..2u64 {
            let v = bench_node_name(mix(i ^ (k.wrapping_mul(0x5bd1_e995))) % (n as u64));
            let mut attrs = AttrMap::new();
            attrs.set("bytes", (mix(i + k) % 10_000) as i64);
            g.add_edge(&u, &v, attrs);
        }
    }
    g
}

/// The graph-ops workload: a full sweep of degree / neighbor / edge-probe /
/// attribute calls over every node, returning a checksum so the work cannot
/// be optimized away.
pub fn graph_ops_workload(g: &Graph) -> u64 {
    let mut checksum = 0u64;
    let ids: Vec<String> = g.node_ids().map(|s| s.to_string()).collect();
    for id in &ids {
        checksum = checksum.wrapping_add(g.degree(id).unwrap_or(0) as u64);
        for v in g.neighbors(id).unwrap_or_default() {
            checksum = checksum.wrapping_add(v.len() as u64);
        }
        if let Some(w) = g.get_node_attr_opt(id, "idx").and_then(|v| v.as_i64()) {
            checksum = checksum.wrapping_add(w as u64);
        }
    }
    // Random-access edge probes between hashed endpoint pairs.
    let n = ids.len() as u64;
    for i in 0..n {
        let u = &ids[(mix(i) % n) as usize];
        let v = &ids[(mix(i ^ 0xabcd) % n) as usize];
        if g.has_edge(u, v) {
            checksum = checksum.wrapping_add(1);
        }
    }
    checksum
}

/// The SQL statements of the scaled macro bench: scans, LIKE filters,
/// DISTINCT, grouped aggregation and an equi-join.
pub const SQL_MACRO_QUERIES: &[&str] = &[
    "SELECT COUNT(*) AS n FROM edges WHERE bytes > 5000",
    "SELECT id FROM nodes WHERE id LIKE '15.%' ORDER BY id",
    "SELECT DISTINCT source FROM edges",
    "SELECT source, SUM(bytes) AS total FROM edges GROUP BY source \
     HAVING SUM(bytes) > 1000 ORDER BY total DESC LIMIT 20",
    "SELECT n.prefix16, SUM(e.bytes) AS total FROM edges e \
     JOIN nodes n ON e.source = n.id GROUP BY n.prefix16 ORDER BY total DESC",
];

fn run_sql_macro(db: &mut Database) -> usize {
    let mut rows = 0;
    for sql in SQL_MACRO_QUERIES {
        let result = db.execute(sql).expect("macro bench SQL executes");
        if let Some(frame) = result.rows() {
            rows += frame.n_rows();
        }
    }
    rows
}

/// Runs every golden SQL program of the 24-query traffic suite against a
/// fresh default workload database, returning the number of statements run.
pub fn run_traffic_sql_suite(db: &mut Database) -> usize {
    let mut statements = 0;
    for spec in traffic_queries() {
        let results = db
            .execute_script(spec.sql)
            .unwrap_or_else(|e| panic!("golden SQL for {} failed: {e}", spec.id));
        statements += results.len();
    }
    statements
}

/// Runs the configured benchmarks and returns their measurements.
pub fn run_benchmarks(config: &PerfConfig) -> Vec<Measurement> {
    let mut out = Vec::new();

    for (name, n) in &config.graph_sizes {
        let n = *n;
        eprintln!("[perf] building {n}-node graph for {name}...");
        let build_samples = time_rounds(config.rounds, || (), |()| build_bench_graph(n));
        out.push(Measurement {
            name: format!("{name}_build"),
            samples: build_samples,
        });
        let g = build_bench_graph(n);
        eprintln!("[perf] running {name} ({} rounds)...", config.rounds);
        let samples = time_rounds(config.rounds, || (), |()| graph_ops_workload(&g));
        out.push(Measurement {
            name: name.clone(),
            samples,
        });
    }

    // The 24 golden SQL programs over the paper's default 80-node workload.
    eprintln!("[perf] running traffic_sql_suite...");
    let default_workload = generate(&TrafficConfig::default());
    let suite_samples = time_rounds(
        config.rounds,
        || export::to_database(&default_workload),
        |mut db| run_traffic_sql_suite(&mut db),
    );
    out.push(Measurement {
        name: "traffic_sql_suite".to_string(),
        samples: suite_samples,
    });

    // The same executor on a scaled synthetic workload, where join and
    // predicate costs dominate.
    eprintln!("[perf] running traffic_sql_{}n...", config.sql_nodes);
    let scaled = generate(&TrafficConfig {
        nodes: config.sql_nodes,
        edges: config.sql_edges,
        prefixes: 8,
        seed: 7,
    });
    let macro_samples = time_rounds(
        config.rounds,
        || export::to_database(&scaled),
        |mut db| run_sql_macro(&mut db),
    );
    out.push(Measurement {
        name: "traffic_sql_scaled".to_string(),
        samples: macro_samples,
    });

    if config.run_matrix {
        eprintln!("[perf] running e2e_small_matrix...");
        let suite = BenchmarkSuite::build(&SuiteConfig::small());
        let models = [profiles::gpt4()];
        let matrix_samples = time_rounds(
            config.rounds.min(3),
            || (),
            |()| {
                runner::run_accuracy_benchmark_with_threads(
                    &suite,
                    &models,
                    runner::DEFAULT_SEED,
                    1,
                )
            },
        );
        out.push(Measurement {
            name: "e2e_small_matrix".to_string(),
            samples: matrix_samples,
        });
    }

    out
}

// ------------------------------------------------------------ report JSON

fn samples_json(samples: &[f64]) -> JsonValue {
    let mut obj = BTreeMap::new();
    obj.insert("median".to_string(), JsonValue::Number(median(samples)));
    obj.insert(
        "samples".to_string(),
        JsonValue::Array(samples.iter().map(|&s| JsonValue::Number(s)).collect()),
    );
    JsonValue::Object(obj)
}

/// Merges `measurements` under `label` (`"before"` / `"after"`) into an
/// existing report document (or a fresh one when `existing` is `None`),
/// recomputing `speedup` wherever both labels are present.
pub fn merge_report(
    existing: Option<&JsonValue>,
    pr: &str,
    label: &str,
    measurements: &[Measurement],
) -> JsonValue {
    // Entry order: existing entries first (stable), new names appended.
    let mut entries: Vec<(String, BTreeMap<String, JsonValue>)> = Vec::new();
    if let Some(JsonValue::Object(root)) = existing {
        if let Some(JsonValue::Array(old)) = root.get("entries") {
            for e in old {
                if let JsonValue::Object(obj) = e {
                    if let Some(JsonValue::String(name)) = obj.get("name") {
                        entries.push((name.clone(), obj.clone()));
                    }
                }
            }
        }
    }
    for m in measurements {
        let pos = entries.iter().position(|(name, _)| *name == m.name);
        let obj = match pos {
            Some(i) => &mut entries[i].1,
            None => {
                let mut fresh = BTreeMap::new();
                fresh.insert("name".to_string(), JsonValue::String(m.name.clone()));
                fresh.insert("unit".to_string(), JsonValue::String("ms".to_string()));
                entries.push((m.name.clone(), fresh));
                &mut entries.last_mut().expect("just pushed").1
            }
        };
        obj.insert(label.to_string(), samples_json(&m.samples));
    }
    // Recompute speedups.
    for (_, obj) in &mut entries {
        let get_median = |obj: &BTreeMap<String, JsonValue>, label: &str| -> Option<f64> {
            match obj.get(label) {
                Some(JsonValue::Object(section)) => match section.get("median") {
                    Some(JsonValue::Number(x)) => Some(*x),
                    _ => None,
                },
                _ => None,
            }
        };
        match (get_median(obj, "before"), get_median(obj, "after")) {
            (Some(before), Some(after)) if after > 0.0 => {
                obj.insert("speedup".to_string(), JsonValue::Number(before / after));
            }
            _ => {
                obj.remove("speedup");
            }
        }
    }

    let mut root = BTreeMap::new();
    root.insert("schema".to_string(), JsonValue::String(SCHEMA.to_string()));
    root.insert("pr".to_string(), JsonValue::String(pr.to_string()));
    root.insert(
        "entries".to_string(),
        JsonValue::Array(
            entries
                .into_iter()
                .map(|(_, obj)| JsonValue::Object(obj))
                .collect(),
        ),
    );
    JsonValue::Object(root)
}

/// Validates a report document against the `nemo-perf-report/v1` schema.
/// Returns a list of problems; an empty list means the report is valid.
pub fn validate_report(doc: &JsonValue) -> Vec<String> {
    let mut problems = Vec::new();
    let root = match doc {
        JsonValue::Object(map) => map,
        _ => return vec!["report root is not an object".to_string()],
    };
    match root.get("schema") {
        Some(JsonValue::String(s)) if s == SCHEMA => {}
        other => problems.push(format!("schema field is {other:?}, want \"{SCHEMA}\"")),
    }
    if !matches!(root.get("pr"), Some(JsonValue::String(_))) {
        problems.push("missing string field 'pr'".to_string());
    }
    let entries = match root.get("entries") {
        Some(JsonValue::Array(entries)) if !entries.is_empty() => entries,
        _ => {
            problems.push("missing non-empty array field 'entries'".to_string());
            return problems;
        }
    };
    for (i, entry) in entries.iter().enumerate() {
        let obj = match entry {
            JsonValue::Object(obj) => obj,
            _ => {
                problems.push(format!("entries[{i}] is not an object"));
                continue;
            }
        };
        if !matches!(obj.get("name"), Some(JsonValue::String(_))) {
            problems.push(format!("entries[{i}] missing string 'name'"));
        }
        if !matches!(obj.get("unit"), Some(JsonValue::String(_))) {
            problems.push(format!("entries[{i}] missing string 'unit'"));
        }
        let mut any_label = false;
        for label in ["before", "after"] {
            match obj.get(label) {
                None => {}
                Some(JsonValue::Object(section)) => {
                    any_label = true;
                    if !matches!(section.get("median"), Some(JsonValue::Number(_))) {
                        problems.push(format!("entries[{i}].{label} missing number 'median'"));
                    }
                    match section.get("samples") {
                        Some(JsonValue::Array(samples))
                            if samples.iter().all(|s| matches!(s, JsonValue::Number(_))) => {}
                        _ => problems.push(format!(
                            "entries[{i}].{label} missing numeric array 'samples'"
                        )),
                    }
                }
                Some(_) => problems.push(format!("entries[{i}].{label} is not an object")),
            }
        }
        if !any_label {
            problems.push(format!("entries[{i}] records neither 'before' nor 'after'"));
        }
    }
    problems
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_of_odd_and_even_sets() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
        assert_eq!(median(&[]), 0.0);
    }

    #[test]
    fn percentile_nearest_rank() {
        let samples: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&samples, 50.0), 50.0);
        assert_eq!(percentile(&samples, 99.0), 99.0);
        assert_eq!(percentile(&samples, 100.0), 100.0);
        assert_eq!(percentile(&samples, 0.0), 1.0);
        assert_eq!(percentile(&[7.0], 99.0), 7.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
    }

    #[test]
    fn bench_graph_is_deterministic() {
        let a = build_bench_graph(200);
        let b = build_bench_graph(200);
        assert_eq!(a.number_of_nodes(), b.number_of_nodes());
        assert_eq!(a.number_of_edges(), b.number_of_edges());
        assert_eq!(graph_ops_workload(&a), graph_ops_workload(&b));
    }

    #[test]
    fn traffic_sql_suite_runs_on_default_workload() {
        let workload = generate(&TrafficConfig::default());
        let mut db = export::to_database(&workload);
        assert!(run_traffic_sql_suite(&mut db) >= 24);
    }

    #[test]
    fn sql_macro_queries_run_on_scaled_workload() {
        let scaled = generate(&TrafficConfig {
            nodes: 100,
            edges: 200,
            prefixes: 4,
            seed: 7,
        });
        let mut db = export::to_database(&scaled);
        assert!(run_sql_macro(&mut db) > 0);
    }

    #[test]
    fn merge_then_validate_round_trip() {
        let before = [Measurement {
            name: "x".to_string(),
            samples: vec![10.0, 12.0, 11.0],
        }];
        let doc = merge_report(None, "pr3", "before", &before);
        assert!(validate_report(&doc).is_empty());
        // Parse/serialize round trip, then merge the after samples.
        let parsed = JsonValue::parse(&doc.to_json()).unwrap();
        let after = [Measurement {
            name: "x".to_string(),
            samples: vec![5.0, 5.5, 5.2],
        }];
        let merged = merge_report(Some(&parsed), "pr3", "after", &after);
        assert!(validate_report(&merged).is_empty());
        let text = merged.to_json();
        assert!(text.contains("\"speedup\""));
        let reparsed = JsonValue::parse(&text).unwrap();
        if let JsonValue::Object(root) = &reparsed {
            if let Some(JsonValue::Array(entries)) = root.get("entries") {
                if let JsonValue::Object(e) = &entries[0] {
                    match e.get("speedup") {
                        Some(JsonValue::Number(s)) => assert!((s - 11.0 / 5.2).abs() < 1e-9),
                        other => panic!("missing speedup: {other:?}"),
                    }
                    return;
                }
            }
        }
        panic!("unexpected report shape");
    }

    #[test]
    fn validate_rejects_malformed_reports() {
        assert!(!validate_report(&JsonValue::Null).is_empty());
        let doc = JsonValue::parse(r#"{"schema":"nemo-perf-report/v1","pr":"pr3","entries":[{}]}"#)
            .unwrap();
        assert!(!validate_report(&doc).is_empty());
    }

    #[test]
    fn time_rounds_returns_one_sample_per_round() {
        let samples = time_rounds(4, || 2u64, |x| x * x);
        assert_eq!(samples.len(), 4);
        assert!(samples.iter().all(|&s| s >= 0.0));
    }
}
