//! Plain-text rendering of the paper's tables and figures from benchmark
//! results. Each function returns a string whose rows mirror the paper's
//! layout so `paper vs. measured` comparisons are easy to eyeball.

use crate::runner::{accuracy, error_breakdown, CaseStudyResult, CostComparison, ScalabilityPoint};
use crate::suite::BenchmarkSuite;
use nemo_core::llm::all_profiles;
use nemo_core::{Application, Backend, Complexity, FaultKind, ResultsLogger};

fn fmt2(x: f64) -> String {
    format!("{x:.2}")
}

/// Table 2: accuracy summary for both applications.
pub fn format_table2(suite: &BenchmarkSuite, logger: &ResultsLogger) -> String {
    let mut out = String::from(
        "Table 2: Accuracy Summary for Both Applications\n\
         model              | traffic: strawman  sql  pandas  networkx | malt: sql  pandas  networkx\n",
    );
    out.push_str(&"-".repeat(100));
    out.push('\n');
    for profile in all_profiles() {
        let t = |backend| {
            fmt2(accuracy(
                logger,
                suite,
                profile.name,
                Application::TrafficAnalysis,
                backend,
                None,
            ))
        };
        let m = |backend| {
            fmt2(accuracy(
                logger,
                suite,
                profile.name,
                Application::MaltLifecycle,
                backend,
                None,
            ))
        };
        out.push_str(&format!(
            "{:<18} |          {}  {}  {}    {}    |      {}  {}    {}\n",
            profile.name,
            t(Backend::Strawman),
            t(Backend::Sql),
            t(Backend::Pandas),
            t(Backend::NetworkX),
            m(Backend::Sql),
            m(Backend::Pandas),
            m(Backend::NetworkX),
        ));
    }
    out
}

fn format_breakdown_table(
    title: &str,
    suite: &BenchmarkSuite,
    logger: &ResultsLogger,
    app: Application,
    backends: &[Backend],
) -> String {
    let mut out = format!("{title}\nmodel              ");
    for backend in backends {
        out.push_str(&format!("| {:<20}", format!("{backend} E/M/H")));
    }
    out.push('\n');
    out.push_str(&"-".repeat(24 + backends.len() * 22));
    out.push('\n');
    for profile in all_profiles() {
        out.push_str(&format!("{:<18} ", profile.name));
        for &backend in backends {
            let cell = |c| fmt2(accuracy(logger, suite, profile.name, app, backend, Some(c)));
            out.push_str(&format!(
                "| {}/{}/{}   ",
                cell(Complexity::Easy),
                cell(Complexity::Medium),
                cell(Complexity::Hard)
            ));
        }
        out.push('\n');
    }
    out
}

/// Table 3: traffic-analysis accuracy broken down by complexity.
pub fn format_table3(suite: &BenchmarkSuite, logger: &ResultsLogger) -> String {
    format_breakdown_table(
        "Table 3: Breakdown for Traffic Analysis (8 queries per level)",
        suite,
        logger,
        Application::TrafficAnalysis,
        &Backend::ALL,
    )
}

/// Table 4: MALT accuracy broken down by complexity.
pub fn format_table4(suite: &BenchmarkSuite, logger: &ResultsLogger) -> String {
    format_breakdown_table(
        "Table 4: Breakdown for MALT (3 queries per level)",
        suite,
        logger,
        Application::MaltLifecycle,
        &Backend::CODEGEN,
    )
}

/// Table 5: error-type summary of failed NetworkX-backend programs.
pub fn format_table5(suite: &BenchmarkSuite, logger: &ResultsLogger) -> String {
    let traffic = error_breakdown(logger, suite, Application::TrafficAnalysis);
    let malt = error_breakdown(logger, suite, Application::MaltLifecycle);
    let traffic_total: usize = traffic.values().sum();
    let malt_total: usize = malt.values().sum();
    let mut out = format!(
        "Table 5: Error Type Summary of LLM Generated Code (NetworkX backend)\n\
         error type                           | Traffic Analysis ({traffic_total}) | MALT ({malt_total})\n"
    );
    out.push_str(&"-".repeat(80));
    out.push('\n');
    for kind in FaultKind::ALL {
        out.push_str(&format!(
            "{:<36} | {:>22} | {:>8}\n",
            kind.label(),
            traffic.get(&kind).copied().unwrap_or(0),
            malt.get(&kind).copied().unwrap_or(0)
        ));
    }
    out
}

/// Table 6: the pass@k / self-debug case study.
pub fn format_table6(model: &str, result: &CaseStudyResult) -> String {
    format!(
        "Table 6: Improvement Cases with {model} on MALT (NetworkX backend)\n\
         {model} + Pass@1: {}   {model} + Pass@{}: {}   {model} + Self-debug: {}\n",
        fmt2(result.pass_at_1),
        result.k,
        fmt2(result.pass_at_k),
        fmt2(result.self_debug)
    )
}

/// Figure 4a: the CDF of per-query LLM cost for both approaches.
pub fn format_figure4a(comparison: &CostComparison) -> String {
    let (strawman, codegen) = comparison.cdfs();
    let mut out = format!(
        "Figure 4a: CDF of LLM cost per query ({} nodes and edges)\n\
         approach   | dollars (sorted)                     | cumulative fraction\n",
        comparison.graph_size
    );
    out.push_str(&"-".repeat(80));
    out.push('\n');
    for (name, points) in [("strawman", &strawman), ("codegen", &codegen)] {
        for (cost, fraction) in points.iter().step_by((points.len() / 6).max(1)) {
            out.push_str(&format!("{name:<10} | ${cost:<36.4} | {fraction:.2}\n"));
        }
        out.push_str(&format!(
            "{name:<10} | mean ${:.4}\n",
            if name == "strawman" {
                comparison.strawman_mean()
            } else {
                comparison.codegen_mean()
            }
        ));
    }
    out
}

/// Figure 4b: cost versus graph size.
pub fn format_figure4b(points: &[ScalabilityPoint]) -> String {
    let mut out = String::from(
        "Figure 4b: Cost analysis on graph size\n\
         nodes+edges | strawman $/query | codegen $/query | strawman status\n",
    );
    out.push_str(&"-".repeat(72));
    out.push('\n');
    for p in points {
        out.push_str(&format!(
            "{:>11} | {:>16.4} | {:>15.4} | {}\n",
            p.graph_size,
            p.strawman_mean,
            p.codegen_mean,
            if p.strawman_over_window {
                "EXCEEDS TOKEN WINDOW"
            } else {
                "ok"
            }
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{
        cost_comparison, run_accuracy_benchmark_for, scalability_sweep, DEFAULT_SEED,
    };
    use crate::suite::SuiteConfig;
    use nemo_core::llm::profiles;

    #[test]
    fn tables_render_expected_rows() {
        let suite = BenchmarkSuite::build(&SuiteConfig::small());
        let logger = run_accuracy_benchmark_for(&suite, &[profiles::gpt4()], DEFAULT_SEED);
        let t2 = format_table2(&suite, &logger);
        assert!(t2.contains("GPT-4"));
        assert!(t2.lines().count() >= 6);
        let t3 = format_table3(&suite, &logger);
        assert!(t3.contains("networkx E/M/H"));
        let t4 = format_table4(&suite, &logger);
        assert!(t4.contains("MALT"));
        let t5 = format_table5(&suite, &logger);
        assert!(t5.contains("Imaginary graph attributes"));
        let t6 = format_table6(
            "Google Bard",
            &CaseStudyResult {
                pass_at_1: 0.44,
                pass_at_k: 1.0,
                k: 5,
                self_debug: 0.67,
            },
        );
        assert!(t6.contains("Pass@5"));
    }

    #[test]
    fn figures_render() {
        let profile = profiles::gpt4();
        let cmp = cost_comparison(&profile, 40, DEFAULT_SEED);
        let f4a = format_figure4a(&cmp);
        assert!(f4a.contains("strawman"));
        assert!(f4a.contains("codegen"));
        let sweep = scalability_sweep(&profile, &[20, 40], DEFAULT_SEED);
        let f4b = format_figure4b(&sweep);
        assert!(f4b.lines().count() >= 4);
    }
}
