//! A minimal work-queue thread pool for the benchmark's embarrassingly
//! parallel stages (the accuracy matrix, the case study, golden-answer
//! preparation, the cost sweep).
//!
//! The workspace is offline (no rayon), so this is built from
//! `std::thread::scope` plus an `mpsc` channel: an atomic counter hands out
//! item indices, scoped workers pull indices until the queue is drained and
//! send `(index, result)` pairs back over the channel, and the caller
//! reassembles results **in index order**. Because every item is an
//! independent pure function of its index, the output is bit-for-bit
//! identical at any thread count — only wall-clock time changes.

use nemo_obs::{Class, Counter, Gauge, Registry};
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// The environment variable that overrides the worker-thread count.
pub const THREADS_ENV: &str = "NEMO_THREADS";

/// The number of worker threads benchmark stages use: the `NEMO_THREADS`
/// environment variable when set to a positive integer, otherwise the
/// machine's available parallelism.
pub fn thread_count() -> usize {
    parse_thread_count(std::env::var(THREADS_ENV).ok().as_deref())
        .unwrap_or_else(available_parallelism)
}

/// Parses a `NEMO_THREADS` value; `None` for unset, unparseable or
/// non-positive inputs (which all fall back to available parallelism).
fn parse_thread_count(raw: Option<&str>) -> Option<usize> {
    raw.and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
}

fn available_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Instrumentation of the pool, all [`Class::Physical`]: how many items
/// ran, on which worker, and how deep the remaining queue was as indices
/// were handed out. Scheduling-dependent by nature — which worker pulls
/// which index varies run to run — while the pool's *results* stay
/// bit-identical at any thread count.
#[derive(Debug, Clone, Default)]
pub struct PoolMetrics {
    /// `run_indexed` invocations observed.
    pub runs: Counter,
    /// Items executed, across all workers.
    pub tasks: Counter,
    /// Items not yet handed out, sampled at each hand-out.
    pub queue_depth: Gauge,
    /// The registry per-worker task counters are created on
    /// (`pool_worker<k>_tasks`, registered lazily per run, outside the
    /// per-item loop).
    registry: Registry,
}

impl PoolMetrics {
    /// Binds the bundle to `registry` under the `pool_*` names.
    pub fn register(registry: &Registry) -> PoolMetrics {
        PoolMetrics {
            runs: registry.counter("pool_runs", Class::Physical),
            tasks: registry.counter("pool_tasks", Class::Physical),
            queue_depth: registry.gauge("pool_queue_depth", Class::Physical),
            registry: registry.clone(),
        }
    }

    /// The task counter of worker `w`.
    fn worker_counter(&self, w: usize) -> Counter {
        self.registry
            .counter(&format!("pool_worker{w}_tasks"), Class::Physical)
    }
}

/// Maps `work` over `0..len` on a pool of `threads` workers and returns the
/// results in index order.
///
/// `work` must be a pure function of the index (it may share read-only
/// state): the pool guarantees each index is executed exactly once and the
/// output vector is ordered by index, so the result is independent of the
/// thread count and of scheduling. A panic in any worker propagates to the
/// caller when the scope joins.
pub fn run_indexed<T, F>(len: usize, threads: usize, work: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    run_indexed_observed(len, threads, None, work)
}

/// [`run_indexed`] with queue-depth and per-worker task instrumentation
/// recorded into `metrics` (when given). The results are identical — the
/// instrumentation observes scheduling, it never influences it.
pub fn run_indexed_observed<T, F>(
    len: usize,
    threads: usize,
    metrics: Option<&PoolMetrics>,
    work: F,
) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = threads.max(1).min(len.max(1));
    if let Some(m) = metrics {
        m.runs.inc();
        m.queue_depth.set(len as i64);
    }
    if threads <= 1 {
        let worker = metrics.map(|m| m.worker_counter(0));
        return (0..len)
            .map(|index| {
                if let Some(m) = metrics {
                    m.tasks.inc();
                    m.queue_depth.set(len.saturating_sub(index + 1) as i64);
                }
                if let Some(w) = &worker {
                    w.inc();
                }
                work(index)
            })
            .collect();
    }

    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, T)>();
    std::thread::scope(|scope| {
        for w in 0..threads {
            let tx = tx.clone();
            let next = &next;
            let work = &work;
            let worker = metrics.map(|m| m.worker_counter(w));
            scope.spawn(move || loop {
                let index = next.fetch_add(1, Ordering::Relaxed);
                if index >= len {
                    break;
                }
                if let Some(m) = metrics {
                    m.tasks.inc();
                    m.queue_depth.set(len.saturating_sub(index + 1) as i64);
                }
                if let Some(w) = &worker {
                    w.inc();
                }
                // A send can only fail if the receiver is gone, which
                // means the caller already panicked; stop quietly.
                if tx.send((index, work(index))).is_err() {
                    break;
                }
            });
        }
        drop(tx);

        let mut slots: Vec<Option<T>> = (0..len).map(|_| None).collect();
        for (index, value) in rx {
            slots[index] = Some(value);
        }
        slots
            .into_iter()
            .map(|slot| slot.expect("every index executed exactly once"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_index_order_at_any_thread_count() {
        let work = |i: usize| i * i;
        let sequential: Vec<usize> = (0..100).map(work).collect();
        for threads in [1, 2, 3, 8, 200] {
            assert_eq!(run_indexed(100, threads, work), sequential);
        }
    }

    #[test]
    fn empty_and_single_item_inputs() {
        assert_eq!(run_indexed(0, 4, |i| i), Vec::<usize>::new());
        assert_eq!(run_indexed(1, 4, |i| i + 1), vec![1]);
    }

    #[test]
    fn each_index_runs_exactly_once() {
        let hits: Vec<AtomicUsize> = (0..64).map(|_| AtomicUsize::new(0)).collect();
        run_indexed(64, 8, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        for (i, hit) in hits.iter().enumerate() {
            assert_eq!(hit.load(Ordering::Relaxed), 1, "index {i}");
        }
    }

    #[test]
    fn observed_runs_count_tasks_and_workers() {
        let registry = Registry::new();
        let metrics = PoolMetrics::register(&registry);
        let sequential: Vec<usize> = (0..40).map(|i| i * 3).collect();
        assert_eq!(
            run_indexed_observed(40, 4, Some(&metrics), |i| i * 3),
            sequential
        );
        assert_eq!(metrics.runs.get(), 1);
        assert_eq!(metrics.tasks.get(), 40);
        assert_eq!(metrics.queue_depth.get(), 0, "drained queue");
        // Per-worker counts are scheduling-dependent but must sum to the
        // task total.
        let worker_total: u64 = (0..4).map(|w| metrics.worker_counter(w).get()).sum();
        assert_eq!(worker_total, 40);
    }

    #[test]
    fn thread_count_parsing() {
        // The parser is tested purely — mutating the process environment
        // from a test would race with sibling tests reading it.
        assert_eq!(parse_thread_count(Some("3")), Some(3));
        assert_eq!(parse_thread_count(Some(" 8 ")), Some(8));
        assert_eq!(parse_thread_count(Some("0")), None);
        assert_eq!(parse_thread_count(Some("not-a-number")), None);
        assert_eq!(parse_thread_count(None), None);
        assert!(thread_count() >= 1);
    }
}
