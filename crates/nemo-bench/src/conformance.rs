//! Cross-backend conformance: the three execution substrates as mutual
//! oracles.
//!
//! Every traffic query carries three golden programs — SQL, pandas
//! (dataframes) and NetworkX (property graph). They answer the same
//! operator question over the same workload through completely independent
//! engines (SQL lexer/parser/executor vs. the GraphScript interpreter over
//! two different data models), so their evaluated answers must agree; a
//! disagreement means one of the substrates, or one of the golden
//! programs, is wrong. This module canonicalizes each backend's answer
//! into a comparable form and checks the full 24-query traffic suite.
//!
//! Answers are canonicalized to a **bag of rows** (a multiset of cell
//! tuples): scalars become a single one-cell row, lists become one row per
//! element, dictionaries one `(key, value...)` row per entry, and
//! result tables one row per table row with cells in column order. Bags
//! are order-insensitive (engines sort differently) and numeric cells
//! compare with float tolerance.
//!
//! A few SQL goldens answer a *narrower view* of the query than the two
//! programmable substrates — SQL cannot express k-means clustering or
//! graph mutation, which is exactly the substrate limitation the paper
//! reports for hard queries. For those queries the per-query rule supplies
//! either a projection (compare leading key columns, compare row count) or
//! a *probe*: a small GraphScript program re-expressing the SQL view over
//! the property graph, so the SQL engine is still differentially tested
//! against an independent implementation of the same computation.

use crate::pool;
use crate::suite::BenchmarkSuite;
use dataframe::DataFrame;
use nemo_core::sandbox::execute_code;
use nemo_core::{Application, Backend, OutputValue, ScriptValue};
use netgraph::AttrValue;
use std::fmt;

/// One canonical answer cell.
#[derive(Debug, Clone, PartialEq)]
enum Cell {
    /// A numeric cell (ints, floats and bools coerce).
    Num(f64),
    /// A textual cell.
    Text(String),
}

impl Cell {
    fn approx_eq(&self, other: &Cell) -> bool {
        match (self, other) {
            (Cell::Num(a), Cell::Num(b)) => {
                let diff = (a - b).abs();
                diff <= 1e-9 || diff <= 1e-9 * a.abs().max(b.abs())
            }
            (Cell::Text(a), Cell::Text(b)) => a == b,
            _ => false,
        }
    }

    /// Total order used to sort rows before the pairwise comparison.
    fn sort_key(&self) -> (u8, String) {
        match self {
            Cell::Num(x) => (0, format!("{:>24}", format!("{x:.6}"))),
            Cell::Text(t) => (1, t.clone()),
        }
    }
}

impl fmt::Display for Cell {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Cell::Num(x) => {
                if x.fract() == 0.0 && x.is_finite() && x.abs() < 1e15 {
                    write!(f, "{}", *x as i64)
                } else {
                    write!(f, "{x}")
                }
            }
            Cell::Text(t) => write!(f, "{t}"),
        }
    }
}

/// A canonical answer: an order-insensitive bag of cell tuples.
#[derive(Debug, Clone)]
struct Bag {
    rows: Vec<Vec<Cell>>,
}

impl Bag {
    fn sorted(mut self) -> Bag {
        self.rows.sort_by_key(|row| {
            row.iter()
                .map(Cell::sort_key)
                .collect::<Vec<(u8, String)>>()
        });
        self
    }

    /// Keeps only each row's first `n` cells (projection onto the key
    /// columns shared by every backend's answer shape), then re-sorts:
    /// rows tied on the key columns would otherwise keep an order chosen
    /// by their soon-dropped trailing cells, which can differ per backend
    /// and misalign the pairwise comparison.
    fn truncated(mut self, n: Option<usize>) -> Bag {
        if let Some(n) = n {
            for row in &mut self.rows {
                row.truncate(n);
            }
            return self.sorted();
        }
        self
    }

    fn approx_eq(&self, other: &Bag) -> bool {
        self.rows.len() == other.rows.len()
            && self.rows.iter().zip(other.rows.iter()).all(|(a, b)| {
                a.len() == b.len() && a.iter().zip(b.iter()).all(|(x, y)| x.approx_eq(y))
            })
    }

    fn render(&self) -> String {
        let rows: Vec<String> = self
            .rows
            .iter()
            .map(|row| {
                row.iter()
                    .map(Cell::to_string)
                    .collect::<Vec<String>>()
                    .join("|")
            })
            .collect();
        format!("{{{}}}", rows.join(", "))
    }
}

fn script_cell(value: &ScriptValue) -> Cell {
    match value.as_f64() {
        Some(x) => Cell::Num(x),
        None => Cell::Text(value.to_string()),
    }
}

fn attr_cell(value: &AttrValue) -> Cell {
    match value.as_f64() {
        Some(x) => Cell::Num(x),
        None => Cell::Text(value.to_string()),
    }
}

fn frame_rows(df: &DataFrame) -> Vec<Vec<Cell>> {
    (0..df.n_rows())
        .map(|i| {
            df.row(i)
                .expect("row index in range")
                .iter()
                .map(attr_cell)
                .collect()
        })
        .collect()
}

fn script_rows(value: &ScriptValue) -> Vec<Vec<Cell>> {
    match value {
        ScriptValue::List(items) => items
            .iter()
            .map(|item| match item {
                ScriptValue::List(inner) => inner.iter().map(script_cell).collect(),
                other => vec![script_cell(other)],
            })
            .collect(),
        ScriptValue::Dict(map) => map
            .iter()
            .map(|(k, v)| {
                let mut row = vec![Cell::Text(k.clone())];
                match v {
                    ScriptValue::List(inner) => row.extend(inner.iter().map(script_cell)),
                    other => row.push(script_cell(other)),
                }
                row
            })
            .collect(),
        ScriptValue::Frame(df) => frame_rows(df),
        scalar => vec![vec![script_cell(scalar)]],
    }
}

fn canonicalize(value: &OutputValue) -> Bag {
    let rows = match value {
        OutputValue::None => Vec::new(),
        OutputValue::Script(v) => script_rows(v),
        OutputValue::Table(df) => frame_rows(df),
        OutputValue::Text(t) => vec![vec![Cell::Text(t.clone())]],
    };
    Bag { rows }.sorted()
}

/// How a query's SQL golden answer relates to the programmable substrates'
/// answer.
enum SqlView {
    /// The SQL answer has the same shape (after key-column projection).
    Direct,
    /// The SQL answer enumerates what the other substrates count: its row
    /// count equals their scalar answer.
    RowCount,
    /// The SQL answer is a narrower view; this GraphScript probe
    /// re-expresses exactly that view over the initial property graph.
    Probe(&'static str),
}

/// The per-query conformance rule: an optional projection onto leading key
/// columns (applied to every backend) plus the SQL view.
struct Rule {
    /// Compare only each row's first `n` cells when set (backends agree on
    /// the leading key columns but annotate rows differently — e.g. the
    /// pandas golden returns whole edge rows where NetworkX returns
    /// endpoint pairs).
    key_columns: Option<usize>,
    sql: SqlView,
}

fn rule_for(id: &str) -> Rule {
    let rule = |key_columns: Option<usize>, sql: SqlView| Rule { key_columns, sql };
    match id {
        // Which node has the highest out-degree / which prefix sends most:
        // SQL also reports the ranking metric next to the winner.
        "T06" | "T15" => rule(Some(1), SqlView::Direct),
        // Distinct-prefix counts: SQL enumerates the distinct values.
        "T07" | "T21" => rule(None, SqlView::RowCount),
        // Heavy edges: pandas returns whole edge rows, SQL annotates with
        // bytes; everyone agrees on the (source, target) keys.
        "T13" => rule(Some(2), SqlView::Direct),
        // Removed-edge count: the SQL golden reports the *remaining* edge
        // count after its DELETE; the probe counts the surviving edges.
        "T16" => rule(
            None,
            SqlView::Probe(
                r#"kept = 0
for e in G.edges_data() {
    if e[2]["packets"] >= 10 {
        kept += 1
    }
}
result = kept"#,
            ),
        ),
        // Clustering: SQL cannot express k-means; its view is the
        // per-source byte totals it CASE-bins (sources only, the paper's
        // substrate limitation). The probe recomputes those totals.
        "T17" => rule(
            Some(2),
            SqlView::Probe(
                r#"totals = {}
for e in G.edges_data() {
    totals[e[0]] = totals.get(e[0], 0) + e[2]["bytes"]
}
result = totals"#,
            ),
        ),
        // Graph manipulation: SQL cannot mutate the graph; its view is the
        // victim it identifies (the top talker by sent bytes).
        "T18" => rule(
            Some(2),
            SqlView::Probe(
                r#"sent = {}
for e in G.edges_data() {
    sent[e[0]] = sent.get(e[0], 0) + e[2]["bytes"]
}
top = top_k(sent, 1)
result = {top[0][0]: top[0][1]}"#,
            ),
        ),
        // Tiering: SQL bins per-source totals with fixed CASE thresholds;
        // the probe replicates exactly that binning.
        "T19" => rule(
            None,
            SqlView::Probe(
                r#"totals = {}
for e in G.edges_data() {
    totals[e[0]] = totals.get(e[0], 0) + e[2]["bytes"]
}
out = {}
for n in keys(totals) {
    t = totals[n]
    tier = 0
    if t >= 8000000 {
        tier = 1
    }
    if t >= 16000000 {
        tier = 2
    }
    out[n] = [t, tier]
}
result = out"#,
            ),
        ),
        // Busiest prefix pair: SQL reports the pair as two columns plus the
        // total; the probe recomputes the winning (source, target) pair.
        "T20" => rule(
            Some(2),
            SqlView::Probe(
                r#"pair_totals = {}
sources = {}
targets = {}
for e in G.edges_data() {
    sp = ip_prefix(e[0], 2)
    tp = ip_prefix(e[1], 2)
    key = sp + "->" + tp
    pair_totals[key] = pair_totals.get(key, 0) + e[2]["bytes"]
    sources[key] = sp
    targets[key] = tp
}
top = top_k(pair_totals, 1)
winner = top[0][0]
result = {sources[winner]: targets[winner]}"#,
            ),
        ),
        // Top-2 talker removal: SQL's view is the two victims and their
        // sent-byte totals.
        "T22" => rule(
            None,
            SqlView::Probe(
                r#"sent = {}
for e in G.edges_data() {
    sent[e[0]] = sent.get(e[0], 0) + e[2]["bytes"]
}
result = top_k(sent, 2)"#,
            ),
        ),
        _ => rule(None, SqlView::Direct),
    }
}

/// One cross-backend disagreement.
#[derive(Debug, Clone)]
pub struct Divergence {
    /// The query id (`T01`..`T24`).
    pub query: String,
    /// Which comparison failed and how.
    pub detail: String,
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.query, self.detail)
    }
}

/// The harness's summary over one suite.
#[derive(Debug)]
pub struct ConformanceReport {
    /// Number of queries checked (24 for the traffic suite).
    pub checked: usize,
    /// Every disagreement found; empty means full conformance.
    pub divergences: Vec<Divergence>,
}

impl ConformanceReport {
    /// True when every checked query conformed.
    pub fn is_conformant(&self) -> bool {
        self.divergences.is_empty()
    }
}

/// Checks every traffic query's three golden answers against each other
/// (parallel over queries; `NEMO_THREADS` workers).
pub fn check_traffic_conformance(suite: &BenchmarkSuite) -> ConformanceReport {
    check_traffic_conformance_with_threads(suite, pool::thread_count())
}

/// Like [`check_traffic_conformance`] with an explicit worker-thread count.
pub fn check_traffic_conformance_with_threads(
    suite: &BenchmarkSuite,
    threads: usize,
) -> ConformanceReport {
    let queries = suite.queries_for(Application::TrafficAnalysis);
    let traffic_app = suite.app(Application::TrafficAnalysis);
    // The initial states are rebuilt from the workload on every
    // `initial_state` call, so hoist them out of the per-query loop.
    let initial_graph = traffic_app.initial_state(Backend::NetworkX);
    let initial_frames = traffic_app.initial_state(Backend::Pandas);

    let per_query = pool::run_indexed(queries.len(), threads, |i| {
        let query = queries[i];
        let id = query.spec.id;
        let rule = rule_for(id);
        let mut divergences = Vec::new();

        let nx = &query.goldens[&Backend::NetworkX];
        let pd = &query.goldens[&Backend::Pandas];
        let sql = &query.goldens[&Backend::Sql];

        // NetworkX and pandas are both full programming substrates: their
        // answers must agree on every query, projected onto the shared key
        // columns.
        let nx_bag = canonicalize(&nx.value).truncated(rule.key_columns);
        let pd_bag = canonicalize(&pd.value).truncated(rule.key_columns);
        if !nx_bag.approx_eq(&pd_bag) {
            divergences.push(Divergence {
                query: id.to_string(),
                detail: format!(
                    "networkx vs pandas: {} != {}",
                    nx_bag.render(),
                    pd_bag.render()
                ),
            });
        }

        // They must also agree on whether answering mutated the network.
        let nx_mutated = !nx.state.approx_eq(&initial_graph);
        let pd_mutated = !pd.state.approx_eq(&initial_frames);
        if nx_mutated != pd_mutated {
            divergences.push(Divergence {
                query: id.to_string(),
                detail: format!(
                    "state mutation disagreement: networkx mutated={nx_mutated}, \
                     pandas mutated={pd_mutated}"
                ),
            });
        }

        // The SQL answer, under the query's declared view.
        let sql_bag = canonicalize(&sql.value).truncated(rule.key_columns);
        let (reference, label) = match rule.sql {
            SqlView::Direct => (nx_bag, "networkx"),
            SqlView::RowCount => (
                Bag {
                    rows: vec![vec![Cell::Num(sql_bag.rows.len() as f64)]],
                },
                "row count of sql answer vs networkx",
            ),
            SqlView::Probe(program) => {
                let outcome = execute_code(Backend::NetworkX, program, &initial_graph)
                    .unwrap_or_else(|e| panic!("conformance probe for {id} failed: {e}"));
                (
                    canonicalize(&outcome.value).truncated(rule.key_columns),
                    "graph probe of the sql view",
                )
            }
        };
        let (left, right) = match rule.sql {
            // RowCount compares the collapsed count against the scalar
            // answer of the programmable substrates.
            SqlView::RowCount => (
                reference,
                canonicalize(&nx.value).truncated(rule.key_columns),
            ),
            _ => (sql_bag, reference),
        };
        if !left.approx_eq(&right) {
            divergences.push(Divergence {
                query: id.to_string(),
                detail: format!("sql ({label}): {} != {}", left.render(), right.render()),
            });
        }

        divergences
    });

    ConformanceReport {
        checked: queries.len(),
        divergences: per_query.into_iter().flatten().collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonicalization_shapes() {
        // Scalars and 1x1 tables collapse to the same bag.
        let scalar = canonicalize(&OutputValue::Script(ScriptValue::Int(80)));
        let table = canonicalize(&OutputValue::Table(
            DataFrame::from_rows(&["n"], vec![vec![AttrValue::Int(80)]]).unwrap(),
        ));
        assert!(scalar.approx_eq(&table));

        // Lists of pairs and two-column tables collapse to the same bag,
        // regardless of row order.
        let pairs = canonicalize(&OutputValue::Script(ScriptValue::List(vec![
            ScriptValue::List(vec![ScriptValue::Str("b".into()), ScriptValue::Int(2)]),
            ScriptValue::List(vec![ScriptValue::Str("a".into()), ScriptValue::Int(1)]),
        ])));
        let table = canonicalize(&OutputValue::Table(
            DataFrame::from_rows(
                &["k", "v"],
                vec![
                    vec![AttrValue::Str("a".into()), AttrValue::Int(1)],
                    vec![AttrValue::Str("b".into()), AttrValue::Int(2)],
                ],
            )
            .unwrap(),
        ));
        assert!(
            pairs.approx_eq(&table),
            "{} vs {}",
            pairs.render(),
            table.render()
        );

        // Dicts become (key, value) rows.
        let mut map = std::collections::BTreeMap::new();
        map.insert("a".to_string(), ScriptValue::Int(1));
        let dict = canonicalize(&OutputValue::Script(ScriptValue::Dict(map)));
        assert_eq!(dict.rows.len(), 1);
        assert_eq!(dict.rows[0].len(), 2);

        // Numeric tolerance.
        assert!(Cell::Num(1.0).approx_eq(&Cell::Num(1.0 + 1e-12)));
        assert!(!Cell::Num(1.0).approx_eq(&Cell::Text("1".into())));
    }

    #[test]
    fn truncation_projects_key_columns() {
        let bag = Bag {
            rows: vec![vec![
                Cell::Text("a".into()),
                Cell::Text("b".into()),
                Cell::Num(3.0),
            ]],
        }
        .truncated(Some(2));
        assert_eq!(bag.rows[0].len(), 2);
    }
}
