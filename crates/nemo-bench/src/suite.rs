//! Benchmark suite assembly: workloads, golden outcomes and the simulated
//! LLM knowledge base (the "Golden Answer Selector" of Figure 3).

use crate::malt_queries::malt_queries;
use crate::pool;
use crate::spec::QuerySpec;
use crate::traffic_queries::traffic_queries;
use malt::MaltConfig;
use nemo_core::apps::{ApplicationWrapper, MaltApp, TrafficApp};
use nemo_core::sandbox::execute_code;
use nemo_core::{
    Application, Backend, CodeKnowledge, KnownTask, NetworkState, Outcome, OutputValue,
};
use std::collections::BTreeMap;
use std::sync::Arc;
use trafficgen::TrafficConfig;

/// One query prepared for execution: its spec, the golden outcome per
/// backend, and the strawman's golden direct answer.
#[derive(Debug, Clone)]
pub struct PreparedQuery {
    /// The query specification (text, complexity, golden programs).
    pub spec: QuerySpec,
    /// Golden outcomes keyed by backend (including the strawman, whose
    /// golden outcome is the correct direct answer over an unchanged
    /// network).
    pub goldens: BTreeMap<Backend, Outcome>,
    /// The textual answer a perfect direct (strawman) reply would give.
    pub direct_answer: String,
}

/// The assembled benchmark: both applications, every prepared query, and
/// the knowledge base handed to simulated models.
///
/// The suite is `Sync` and is shared by reference (or behind an `Arc`)
/// across the parallel runner's worker threads: applications, golden
/// outcomes and the knowledge base are all immutable after `build`.
pub struct BenchmarkSuite {
    /// The traffic-analysis application wrapper.
    pub traffic_app: TrafficApp,
    /// The MALT lifecycle-management application wrapper.
    pub malt_app: MaltApp,
    /// Every prepared query (24 traffic + 9 MALT).
    pub queries: Vec<PreparedQuery>,
    /// Index of `queries` by exact query text, for O(log n) record joins.
    by_text: BTreeMap<String, usize>,
    /// The knowledge base, built once and shared by every simulated model.
    knowledge: Arc<CodeKnowledge>,
}

/// Configuration of the benchmark workloads.
#[derive(Debug, Clone, Default)]
pub struct SuiteConfig {
    /// The synthetic communication graph used for traffic analysis.
    pub traffic: TrafficConfig,
    /// The MALT topology used for lifecycle management.
    pub malt: MaltConfig,
}

impl SuiteConfig {
    /// A reduced-scale configuration for unit tests and quick smoke runs:
    /// the full query suites over a smaller MALT topology preset and the
    /// default 80-node traffic graph.
    pub fn small() -> Self {
        SuiteConfig {
            traffic: TrafficConfig::default(),
            malt: MaltConfig {
                datacenters: 2,
                pods_per_datacenter: 2,
                racks_per_pod: 4,
                chassis_per_rack: 2,
                switches_per_chassis: 4,
                ports_per_switch: 4,
                control_points_per_pod: 1,
                physical_links: 40,
                seed: 2023,
            },
        }
    }
}

impl BenchmarkSuite {
    /// Builds the suite: generates workloads, runs every golden program
    /// through the sandbox and records its outcome. Golden preparation is
    /// independent per query, so it fans out over the worker pool
    /// (`NEMO_THREADS`); results are assembled in query order, so the built
    /// suite is identical at any thread count.
    ///
    /// Panics if any golden program fails to execute — a golden answer that
    /// does not run is a benchmark bug, and the test suite exercises this
    /// path for every query and backend.
    pub fn build(config: &SuiteConfig) -> Self {
        let traffic_app = TrafficApp::new(trafficgen::generate(&config.traffic));
        let malt_app = MaltApp::new(malt::generate(&config.malt));
        let specs: Vec<QuerySpec> = traffic_queries()
            .into_iter()
            .chain(malt_queries())
            .collect();
        let queries = pool::run_indexed(specs.len(), pool::thread_count(), |i| {
            let spec = specs[i].clone();
            let app: &dyn ApplicationWrapper = match spec.application {
                Application::TrafficAnalysis => &traffic_app,
                Application::MaltLifecycle => &malt_app,
            };
            prepare_query(app, spec)
        });
        let by_text = queries
            .iter()
            .enumerate()
            .map(|(i, q)| (q.spec.text.to_string(), i))
            .collect();
        let knowledge = Arc::new(build_knowledge(&queries));
        BenchmarkSuite {
            traffic_app,
            malt_app,
            queries,
            by_text,
            knowledge,
        }
    }

    /// Builds the suite with the paper's default workloads.
    pub fn build_default() -> Self {
        Self::build(&SuiteConfig::default())
    }

    /// The prepared queries of one application.
    pub fn queries_for(&self, app: Application) -> Vec<&PreparedQuery> {
        self.queries
            .iter()
            .filter(|q| q.spec.application == app)
            .collect()
    }

    /// The prepared query with exactly this text, via the suite's index
    /// (run records store the query text verbatim, so this is the join the
    /// accuracy and error-breakdown aggregations perform per record).
    pub fn query_by_text(&self, text: &str) -> Option<&PreparedQuery> {
        self.by_text.get(text).map(|&i| &self.queries[i])
    }

    /// The application wrapper for an application.
    pub fn app(&self, app: Application) -> &dyn ApplicationWrapper {
        match app {
            Application::TrafficAnalysis => &self.traffic_app,
            Application::MaltLifecycle => &self.malt_app,
        }
    }

    /// The knowledge base handed to [`nemo_core::SimulatedLlm`]: every query
    /// with its golden programs and golden direct answer. Built once at
    /// suite construction; the returned `Arc` is a cheap handle, so every
    /// benchmark cell can have its own model without copying the goldens.
    pub fn knowledge(&self) -> Arc<CodeKnowledge> {
        Arc::clone(&self.knowledge)
    }
}

// The parallel runner shares the suite across worker threads; this fails to
// compile if a non-Send/Sync type sneaks into the suite.
const _: fn() = || {
    fn assert_sync_send<T: Send + Sync>() {}
    assert_sync_send::<BenchmarkSuite>();
};

fn build_knowledge(queries: &[PreparedQuery]) -> CodeKnowledge {
    CodeKnowledge::new(
        queries
            .iter()
            .map(|q| KnownTask {
                id: q.spec.id.to_string(),
                query: q.spec.text.to_string(),
                application: q.spec.application,
                complexity: q.spec.complexity,
                programs: q.spec.programs(),
                direct_answer: q.direct_answer.clone(),
            })
            .collect(),
    )
}

fn prepare_query(app: &dyn ApplicationWrapper, spec: QuerySpec) -> PreparedQuery {
    let mut goldens = BTreeMap::new();
    for backend in Backend::CODEGEN {
        let program = spec
            .golden_program(backend)
            .expect("code-generation backends have golden programs");
        let state = app.initial_state(backend);
        let outcome = execute_code(backend, program, &state).unwrap_or_else(|e| {
            panic!(
                "golden program for {} on {backend} failed: {e}\n{program}",
                spec.id
            )
        });
        goldens.insert(backend, outcome);
    }

    // The strawman golden: the NetworkX golden result rendered as text over
    // an unchanged network (a direct answer cannot mutate the network).
    let networkx_value = goldens
        .get(&Backend::NetworkX)
        .expect("networkx golden exists")
        .value
        .render();
    let direct_answer = networkx_value;
    let strawman_golden = Outcome {
        value: OutputValue::Text(direct_answer.clone()),
        state: app.initial_state(Backend::Strawman),
        printed: Vec::new(),
    };
    goldens.insert(Backend::Strawman, strawman_golden);

    PreparedQuery {
        spec,
        goldens,
        direct_answer,
    }
}

/// Convenience used by examples and benches: the golden outcome of a
/// prepared query for one backend.
pub fn golden_of(query: &PreparedQuery, backend: Backend) -> &Outcome {
    query
        .goldens
        .get(&backend)
        .expect("every backend has a golden outcome")
}

/// Returns the state kind actually used by a backend (useful in reports).
pub fn state_kind(state: &NetworkState) -> &'static str {
    match state {
        NetworkState::Graph(_) => "graph",
        NetworkState::Frames { .. } => "frames",
        NetworkState::Database(_) => "database",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_suite_builds_and_every_golden_program_executes() {
        let suite = BenchmarkSuite::build(&SuiteConfig::small());
        assert_eq!(suite.queries.len(), 33);
        assert_eq!(suite.queries_for(Application::TrafficAnalysis).len(), 24);
        assert_eq!(suite.queries_for(Application::MaltLifecycle).len(), 9);
        for q in &suite.queries {
            assert_eq!(q.goldens.len(), 4);
            assert!(
                !q.direct_answer.is_empty(),
                "{} has no direct answer",
                q.spec.id
            );
        }
        let knowledge = suite.knowledge();
        assert_eq!(knowledge.tasks().len(), 33);
        assert!(knowledge
            .find_by_query("How many packet switches are in the topology?")
            .is_some());
    }

    #[test]
    fn query_text_index_joins_every_query_and_rejects_unknown_text() {
        let suite = BenchmarkSuite::build(&SuiteConfig::small());
        for q in &suite.queries {
            let found = suite
                .query_by_text(q.spec.text)
                .expect("indexed query resolves");
            assert_eq!(found.spec.id, q.spec.id);
        }
        assert!(suite.query_by_text("no such query").is_none());
    }
}
