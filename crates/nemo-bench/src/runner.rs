//! Benchmark execution: the full accuracy matrix (Tables 2–4), the error
//! breakdown (Table 5), the pass@k / self-debug case study (Table 6) and the
//! cost/scalability analysis (Figure 4).
//!
//! # Parallel execution and determinism
//!
//! The evaluation matrix is embarrassingly parallel over its (model,
//! application, backend, query) cells, so the runner enumerates every cell
//! up front in the canonical order of the paper's tables and fans the cells
//! out over the [`crate::pool`] work-queue. Each cell is a pure function of
//! `(suite, cell, seed)`: the cell builds its **own** [`SimulatedLlm`] from
//! the suite's shared knowledge base with a seed derived deterministically
//! from the base seed and the cell's coordinates, runs the pipeline, and
//! returns its record. Records are reassembled in enumeration order, so
//! `run_accuracy_benchmark` is bit-for-bit identical at any thread count
//! (`NEMO_THREADS`; asserted by the determinism regression test).

use crate::pool;
use crate::suite::{BenchmarkSuite, PreparedQuery};
use nemo_core::apps::TrafficApp;
use nemo_core::cost::{cost_cdf, count_tokens, price_request, CostCdf, CostRecord};
use nemo_core::llm::{all_profiles, hash_parts, ModelProfile};
use nemo_core::prompt::{codegen_prompt, strawman_prompt};
use nemo_core::{
    Application, Backend, Complexity, FaultKind, NetworkManager, ResultsLogger, RunRecord,
    SimulatedLlm,
};
use std::collections::BTreeMap;
use trafficgen::TrafficConfig;

/// Seed used by the published regeneration binaries.
pub const DEFAULT_SEED: u64 = 2023;

/// One cell of the evaluation matrix: a model answering one query against
/// one backend.
#[derive(Debug, Clone, Copy)]
pub struct BenchCell<'s> {
    /// The model profile evaluated in this cell.
    pub profile: &'s ModelProfile,
    /// The application the query belongs to.
    pub application: Application,
    /// The backend the query is executed against.
    pub backend: Backend,
    /// The prepared query (spec plus golden outcomes).
    pub query: &'s PreparedQuery,
}

impl BenchCell<'_> {
    /// The cell's RNG seed, derived deterministically from the run's base
    /// seed and the cell's (model, application, backend) coordinates, so a
    /// cell's behaviour never depends on which worker ran it or in what
    /// order.
    ///
    /// The query text is deliberately **not** part of the derivation: the
    /// simulated model's calibration ranks all tasks of an (application,
    /// complexity) cell under one seed to decide which exact
    /// `accuracy × cell size` of them it solves, so every query of a
    /// (model, backend) slice must see the same seed. Per-query variation
    /// is already provided inside [`SimulatedLlm`], which hashes the query
    /// text into each decision.
    pub fn seed(&self, base: u64) -> u64 {
        hash_parts(&[
            "cell-seed",
            &base.to_string(),
            self.profile.name,
            self.application.name(),
            self.backend.name(),
        ])
    }
}

/// Enumerates every cell of the accuracy matrix in the canonical order of
/// the paper's tables: model → application → backend → query (the strawman
/// only for traffic analysis, as in the paper).
pub fn enumerate_cells<'s>(
    suite: &'s BenchmarkSuite,
    profiles: &'s [ModelProfile],
) -> Vec<BenchCell<'s>> {
    let mut cells = Vec::new();
    for profile in profiles {
        for app in Application::ALL {
            let backends: &[Backend] = match app {
                Application::TrafficAnalysis => &Backend::ALL,
                Application::MaltLifecycle => &Backend::CODEGEN,
            };
            for &backend in backends {
                for query in suite.queries_for(app) {
                    cells.push(BenchCell {
                        profile,
                        application: app,
                        backend,
                        query,
                    });
                }
            }
        }
    }
    cells
}

/// Executes one cell end to end with a fresh per-cell model.
fn run_cell(suite: &BenchmarkSuite, cell: &BenchCell<'_>, base_seed: u64) -> RunRecord {
    let llm = SimulatedLlm::new(
        cell.profile.clone(),
        suite.knowledge(),
        cell.seed(base_seed),
    );
    let golden = &cell.query.goldens[&cell.backend];
    let mut manager = NetworkManager::new(suite.app(cell.application), llm);
    manager.run_query(cell.backend, cell.query.spec.text, golden)
}

/// Runs the full accuracy matrix of the paper's Table 2: every model ×
/// backend × query (the strawman only for traffic analysis, as in the
/// paper), returning the complete results log. Parallel over cells with
/// `NEMO_THREADS` workers (default: available parallelism); the log is
/// identical at any thread count.
pub fn run_accuracy_benchmark(suite: &BenchmarkSuite, seed: u64) -> ResultsLogger {
    run_accuracy_benchmark_for(suite, &all_profiles(), seed)
}

/// Like [`run_accuracy_benchmark`] but over a chosen set of model profiles.
pub fn run_accuracy_benchmark_for(
    suite: &BenchmarkSuite,
    profiles: &[ModelProfile],
    seed: u64,
) -> ResultsLogger {
    run_accuracy_benchmark_with_threads(suite, profiles, seed, pool::thread_count())
}

/// Like [`run_accuracy_benchmark_for`] with an explicit worker-thread
/// count (the determinism tests and benchmarks pin it).
pub fn run_accuracy_benchmark_with_threads(
    suite: &BenchmarkSuite,
    profiles: &[ModelProfile],
    seed: u64,
    threads: usize,
) -> ResultsLogger {
    let cells = enumerate_cells(suite, profiles);
    pool::run_indexed(cells.len(), threads, |i| run_cell(suite, &cells[i], seed))
        .into_iter()
        .collect()
}

/// Accuracy over the records of one model / application / backend,
/// optionally restricted to one complexity level. Complexity is recovered by
/// joining the record's query text back to the suite.
pub fn accuracy(
    logger: &ResultsLogger,
    suite: &BenchmarkSuite,
    model: &str,
    app: Application,
    backend: Backend,
    complexity: Option<Complexity>,
) -> f64 {
    logger.pass_rate(|r| {
        r.model == model
            && r.backend == backend
            && suite
                .query_by_text(&r.query)
                .map(|q| {
                    q.spec.application == app
                        && complexity.map(|c| q.spec.complexity == c).unwrap_or(true)
                })
                .unwrap_or(false)
    })
}

/// Failure counts by error type for one application over the NetworkX
/// backend (the paper's Table 5 slices).
pub fn error_breakdown(
    logger: &ResultsLogger,
    suite: &BenchmarkSuite,
    app: Application,
) -> BTreeMap<FaultKind, usize> {
    logger.failure_categories(|r| {
        r.backend == Backend::NetworkX
            && suite
                .query_by_text(&r.query)
                .map(|q| q.spec.application == app)
                .unwrap_or(false)
    })
}

// --------------------------------------------------------------- Table 6

/// The outcome of the pass@k / self-debug case study (Table 6): Bard on the
/// MALT application with the NetworkX backend.
#[derive(Debug, Clone, PartialEq)]
pub struct CaseStudyResult {
    /// Accuracy with a single attempt per query.
    pub pass_at_1: f64,
    /// Accuracy when any of `k` attempts may pass.
    pub pass_at_k: f64,
    /// The `k` used.
    pub k: usize,
    /// Accuracy when one self-debug (error-feedback) round is allowed.
    pub self_debug: f64,
}

/// Runs the Table-6 case study for one model profile (the paper uses
/// Bard). Parallel over (variant, query) cells: each cell gets a fresh
/// model, which both keeps attempt counters independent (the published
/// semantics) and makes cells order-free, so the result is identical at
/// any thread count.
pub fn run_case_study(
    suite: &BenchmarkSuite,
    profile: &ModelProfile,
    k: usize,
    seed: u64,
) -> CaseStudyResult {
    run_case_study_with_threads(suite, profile, k, seed, pool::thread_count())
}

/// Like [`run_case_study`] with an explicit worker-thread count.
pub fn run_case_study_with_threads(
    suite: &BenchmarkSuite,
    profile: &ModelProfile,
    k: usize,
    seed: u64,
    threads: usize,
) -> CaseStudyResult {
    let wrapper = suite.app(Application::MaltLifecycle);
    let queries = suite.queries_for(Application::MaltLifecycle);
    const VARIANTS: [&str; 3] = ["pass1", "passk", "selfdebug"];

    let outcomes = pool::run_indexed(VARIANTS.len() * queries.len(), threads, |cell| {
        let variant = VARIANTS[cell / queries.len()];
        let query = queries[cell % queries.len()];
        let llm = SimulatedLlm::new(profile.clone(), suite.knowledge(), seed);
        let golden = &query.goldens[&Backend::NetworkX];
        let mut manager = NetworkManager::new(wrapper, llm);
        match variant {
            "pass1" => manager
                .run_query(Backend::NetworkX, query.spec.text, golden)
                .passed(),
            "passk" => {
                manager
                    .run_pass_at_k(Backend::NetworkX, query.spec.text, golden, k)
                    .0
            }
            _ => {
                manager
                    .run_self_debug(Backend::NetworkX, query.spec.text, golden, 1)
                    .0
            }
        }
    });

    let rate_of = |variant: &str| -> f64 {
        let offset = VARIANTS.iter().position(|v| *v == variant).unwrap() * queries.len();
        let passes = outcomes[offset..offset + queries.len()]
            .iter()
            .filter(|&&p| p)
            .count();
        passes as f64 / queries.len() as f64
    };

    CaseStudyResult {
        pass_at_1: rate_of("pass1"),
        pass_at_k: rate_of("passk"),
        k,
        self_debug: rate_of("selfdebug"),
    }
}

// --------------------------------------------------------------- Figure 4

/// Per-query cost records for the strawman and the code-generation
/// approach on one traffic workload (Figure 4a is the CDF of these at 80
/// nodes+edges).
#[derive(Debug, Clone)]
pub struct CostComparison {
    /// Nodes + edges of the workload.
    pub graph_size: usize,
    /// Per-query costs of the strawman approach.
    pub strawman: Vec<CostRecord>,
    /// Per-query costs of the code-generation (NetworkX) approach.
    pub codegen: Vec<CostRecord>,
}

impl CostComparison {
    /// Mean strawman cost in dollars.
    pub fn strawman_mean(&self) -> f64 {
        mean(&self.strawman)
    }

    /// Mean code-generation cost in dollars.
    pub fn codegen_mean(&self) -> f64 {
        mean(&self.codegen)
    }

    /// True when any strawman prompt exceeded the model's token window.
    pub fn strawman_over_window(&self) -> bool {
        self.strawman.iter().any(|r| r.exceeded_window)
    }

    /// The CDF points of each approach (Figure 4a).
    pub fn cdfs(&self) -> (CostCdf, CostCdf) {
        (cost_cdf(&self.strawman), cost_cdf(&self.codegen))
    }
}

fn mean(records: &[CostRecord]) -> f64 {
    if records.is_empty() {
        return 0.0;
    }
    records.iter().map(|r| r.dollars).sum::<f64>() / records.len() as f64
}

/// Prices every traffic query under both approaches for a graph with `size`
/// nodes and `size` edges, using the given model profile (the paper uses
/// GPT-4 pricing). Completions are the golden artifacts (the NetworkX
/// program for code generation, the direct answer for the strawman), so the
/// comparison isolates the prompt-size effect the paper studies.
pub fn cost_comparison(profile: &ModelProfile, size: usize, seed: u64) -> CostComparison {
    let workload = trafficgen::generate(&TrafficConfig {
        nodes: size,
        edges: size,
        ..TrafficConfig::default()
    });
    let app = TrafficApp::new(workload);
    let queries = crate::traffic_queries::traffic_queries();
    let mut strawman = Vec::new();
    let mut codegen = Vec::new();
    for query in &queries {
        let straw_prompt = strawman_prompt(&app, query.text);
        let code_prompt = codegen_prompt(&app, Backend::NetworkX, query.text);
        // Nominal completions: a short direct answer vs. the golden program.
        let straw_completion = "The answer is 42.";
        let code_completion = query.networkx;
        strawman.push(price_request(
            &profile.prices,
            profile.token_window,
            &straw_prompt.text,
            straw_completion,
        ));
        codegen.push(price_request(
            &profile.prices,
            profile.token_window,
            &code_prompt.text,
            code_completion,
        ));
    }
    let _ = seed;
    CostComparison {
        graph_size: size * 2,
        strawman,
        codegen,
    }
}

/// One row of the Figure-4b sweep.
#[derive(Debug, Clone)]
pub struct ScalabilityPoint {
    /// Nodes + edges of the workload.
    pub graph_size: usize,
    /// Mean strawman cost per query (dollars).
    pub strawman_mean: f64,
    /// Whether the strawman prompt exceeded the token window at this size.
    pub strawman_over_window: bool,
    /// Mean code-generation cost per query (dollars).
    pub codegen_mean: f64,
}

/// Sweeps graph sizes and prices both approaches at each size (Figure 4b).
/// Sizes are independent, so the sweep fans out over the worker pool;
/// points come back in input order.
pub fn scalability_sweep(
    profile: &ModelProfile,
    sizes: &[usize],
    seed: u64,
) -> Vec<ScalabilityPoint> {
    pool::run_indexed(sizes.len(), pool::thread_count(), |i| {
        let cmp = cost_comparison(profile, sizes[i], seed);
        ScalabilityPoint {
            graph_size: cmp.graph_size,
            strawman_mean: cmp.strawman_mean(),
            strawman_over_window: cmp.strawman_over_window(),
            codegen_mean: cmp.codegen_mean(),
        }
    })
}

/// A rough token count of the strawman prompt for a graph of `size` nodes
/// and edges — used in reports to show where the window limit falls.
pub fn strawman_prompt_tokens(size: usize) -> usize {
    let workload = trafficgen::generate(&TrafficConfig {
        nodes: size,
        edges: size,
        ..TrafficConfig::default()
    });
    let app = TrafficApp::new(workload);
    count_tokens(&strawman_prompt(&app, "How many nodes are there?").text)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::SuiteConfig;
    use nemo_core::llm::profiles;

    fn small_suite() -> BenchmarkSuite {
        BenchmarkSuite::build(&SuiteConfig::small())
    }

    #[test]
    fn gpt4_networkx_traffic_accuracy_matches_paper_shape() {
        let suite = small_suite();
        let logger = run_accuracy_benchmark_for(&suite, &[profiles::gpt4()], DEFAULT_SEED);
        // 24 traffic queries x 4 backends + 9 MALT x 3 backends = 123 records.
        assert_eq!(logger.len(), 123);
        let nx = accuracy(
            &logger,
            &suite,
            "GPT-4",
            Application::TrafficAnalysis,
            Backend::NetworkX,
            None,
        );
        let strawman = accuracy(
            &logger,
            &suite,
            "GPT-4",
            Application::TrafficAnalysis,
            Backend::Strawman,
            None,
        );
        let sql = accuracy(
            &logger,
            &suite,
            "GPT-4",
            Application::TrafficAnalysis,
            Backend::Sql,
            None,
        );
        // Paper shape: NetworkX >> SQL > strawman; GPT-4 NetworkX ≈ 0.88.
        assert!(nx > 0.75, "networkx accuracy {nx}");
        assert!(nx > sql, "networkx {nx} should beat sql {sql}");
        assert!(
            nx > strawman,
            "networkx {nx} should beat strawman {strawman}"
        );
        // Easy queries are perfect for GPT-4 + NetworkX (Table 3).
        let easy = accuracy(
            &logger,
            &suite,
            "GPT-4",
            Application::TrafficAnalysis,
            Backend::NetworkX,
            Some(Complexity::Easy),
        );
        assert_eq!(easy, 1.0);
        let hard = accuracy(
            &logger,
            &suite,
            "GPT-4",
            Application::TrafficAnalysis,
            Backend::NetworkX,
            Some(Complexity::Hard),
        );
        assert!(hard < easy);
    }

    #[test]
    fn error_breakdown_counts_only_networkx_failures() {
        let suite = small_suite();
        let logger = run_accuracy_benchmark_for(&suite, &[profiles::bard()], DEFAULT_SEED);
        let breakdown = error_breakdown(&logger, &suite, Application::TrafficAnalysis);
        let failures: usize = breakdown.values().sum();
        let total_fail = 24
            - (accuracy(
                &logger,
                &suite,
                "Google Bard",
                Application::TrafficAnalysis,
                Backend::NetworkX,
                None,
            ) * 24.0)
                .round() as usize;
        assert_eq!(failures, total_fail);
    }

    #[test]
    fn case_study_pass_at_k_and_self_debug_improve_over_pass_at_1() {
        let suite = small_suite();
        let result = run_case_study(&suite, &profiles::bard(), 5, DEFAULT_SEED);
        assert!(result.pass_at_k >= result.pass_at_1);
        assert!(result.self_debug >= result.pass_at_1);
        assert!(
            result.pass_at_k > 0.9,
            "pass@5 should recover every failure"
        );
        assert!(result.pass_at_1 > 0.2 && result.pass_at_1 < 0.8);
    }

    #[test]
    fn cost_comparison_shows_strawman_penalty_and_window_limit() {
        let profile = profiles::gpt4();
        let small = cost_comparison(&profile, 80, DEFAULT_SEED);
        assert!(small.strawman_mean() > 2.0 * small.codegen_mean());
        assert!(!small.strawman_over_window());

        let sweep = scalability_sweep(&profile, &[20, 80, 150, 300], DEFAULT_SEED);
        assert_eq!(sweep.len(), 4);
        // Strawman cost grows with graph size; code-gen cost stays flat.
        assert!(sweep[3].strawman_mean > sweep[0].strawman_mean * 2.0);
        let codegen_spread = (sweep[3].codegen_mean - sweep[0].codegen_mean).abs();
        assert!(codegen_spread < 0.01);
        // The strawman exceeds the window somewhere in the sweep.
        assert!(sweep.iter().any(|p| p.strawman_over_window));
        assert!(!sweep.iter().any(|p| p.codegen_mean > 0.2));
    }
}
