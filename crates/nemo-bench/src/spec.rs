//! Query specifications: the natural-language query, its complexity level,
//! and the human-curated golden program for each backend.

use nemo_core::{Application, Backend, Complexity};
use std::collections::BTreeMap;

/// One benchmark query plus its golden programs (the "golden answer
/// selector" entries of the paper's Figure 3).
#[derive(Debug, Clone, PartialEq)]
pub struct QuerySpec {
    /// Stable identifier (`T01`..`T24`, `M1`..`M9`).
    pub id: &'static str,
    /// The operator's natural-language query.
    pub text: &'static str,
    /// Which application the query belongs to.
    pub application: Application,
    /// The query's complexity level.
    pub complexity: Complexity,
    /// Golden GraphScript program for the NetworkX (property graph) backend.
    pub networkx: &'static str,
    /// Golden GraphScript program for the pandas (dataframes) backend.
    pub pandas: &'static str,
    /// Golden SQL script for the SQL backend.
    pub sql: &'static str,
}

impl QuerySpec {
    /// The golden program for a code-generation backend.
    pub fn golden_program(&self, backend: Backend) -> Option<&'static str> {
        match backend {
            Backend::NetworkX => Some(self.networkx),
            Backend::Pandas => Some(self.pandas),
            Backend::Sql => Some(self.sql),
            Backend::Strawman => None,
        }
    }

    /// The golden programs keyed by backend (the shape
    /// [`nemo_core::KnownTask`] wants).
    pub fn programs(&self) -> BTreeMap<Backend, String> {
        let mut map = BTreeMap::new();
        map.insert(Backend::NetworkX, self.networkx.to_string());
        map.insert(Backend::Pandas, self.pandas.to_string());
        map.insert(Backend::Sql, self.sql.to_string());
        map
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn golden_program_lookup() {
        let spec = QuerySpec {
            id: "X1",
            text: "test",
            application: Application::TrafficAnalysis,
            complexity: Complexity::Easy,
            networkx: "result = 1",
            pandas: "result = 2",
            sql: "SELECT 3",
        };
        assert_eq!(spec.golden_program(Backend::NetworkX), Some("result = 1"));
        assert_eq!(spec.golden_program(Backend::Strawman), None);
        assert_eq!(spec.programs().len(), 3);
    }
}
