//! The 9 network lifecycle-management (MALT) queries (3 easy, 3 medium,
//! 3 hard) and their golden programs.
//!
//! They cover the areas the paper lists — operational management, WAN
//! capacity planning and topology design — and include the examples from the
//! paper's Table 1 ("List all ports that are contained by packet switch
//! ju1.a1.m1.s2c1", "Find the first and the second largest Chassis by
//! capacity", "Remove packet switch … balance the capacity afterward").

use crate::spec::QuerySpec;
use nemo_core::{Application, Complexity};

/// Returns the full MALT query suite.
pub fn malt_queries() -> Vec<QuerySpec> {
    vec![
        // ------------------------------------------------------------ easy
        QuerySpec {
            id: "M1",
            text: "List all ports that are contained by packet switch ju1.a1.m1.s2c1.",
            application: Application::MaltLifecycle,
            complexity: Complexity::Easy,
            networkx: r#"ports = []
for child in G.successors("ju1.a1.m1.s2c1") {
    if G.get_edge_attr("ju1.a1.m1.s2c1", child, "relationship") == "contains" {
        ports.append(child)
    }
}
result = sorted(ports)"#,
            pandas: r#"contained = edges.filter("source", "==", "ju1.a1.m1.s2c1")
contained = contained.filter("relationship", "==", "contains")
result = sorted(contained.column("target"))"#,
            sql: "SELECT target FROM edges WHERE source = 'ju1.a1.m1.s2c1' AND relationship = 'contains' ORDER BY target",
        },
        QuerySpec {
            id: "M2",
            text: "How many packet switches are in the topology?",
            application: Application::MaltLifecycle,
            complexity: Complexity::Easy,
            networkx: r#"count = 0
for n in G.nodes() {
    if G.get_node_attr(n, "kind") == "packet_switch" {
        count += 1
    }
}
result = count"#,
            pandas: r#"switches = nodes.filter("kind", "==", "packet_switch")
result = switches.n_rows()"#,
            sql: "SELECT COUNT(*) AS n FROM nodes WHERE kind = 'packet_switch'",
        },
        QuerySpec {
            id: "M3",
            text: "Which control point controls packet switch ju1.a2.m3.s1c1?",
            application: Application::MaltLifecycle,
            complexity: Complexity::Easy,
            networkx: r#"controller = null
for p in G.predecessors("ju1.a2.m3.s1c1") {
    if G.get_edge_attr(p, "ju1.a2.m3.s1c1", "relationship") == "controls" {
        controller = p
    }
}
result = controller"#,
            pandas: r#"controlling = edges.filter("target", "==", "ju1.a2.m3.s1c1")
controlling = controlling.filter("relationship", "==", "controls")
result = controlling.value(0, "source")"#,
            sql: "SELECT source FROM edges WHERE target = 'ju1.a2.m3.s1c1' AND relationship = 'controls'",
        },
        // ---------------------------------------------------------- medium
        QuerySpec {
            id: "M4",
            text: "Find the first and the second largest chassis by capacity.",
            application: Application::MaltLifecycle,
            complexity: Complexity::Medium,
            networkx: r#"capacities = {}
for n in G.nodes() {
    if G.get_node_attr(n, "kind") == "chassis" {
        capacities[n] = G.get_node_attr(n, "capacity_gbps")
    }
}
result = top_k(capacities, 2)"#,
            pandas: r#"chassis = nodes.filter("kind", "==", "chassis")
ranked = chassis.sort_values("capacity_gbps", false)
result = ranked.select(["name", "capacity_gbps"]).head(2)"#,
            sql: "SELECT name, capacity_gbps FROM nodes WHERE kind = 'chassis' ORDER BY capacity_gbps DESC, name ASC LIMIT 2",
        },
        QuerySpec {
            id: "M5",
            text: "What is the total packet-switch capacity per vendor?",
            application: Application::MaltLifecycle,
            complexity: Complexity::Medium,
            networkx: r#"totals = {}
for n in G.nodes() {
    if G.get_node_attr(n, "kind") == "packet_switch" {
        vendor = G.get_node_attr(n, "vendor")
        totals[vendor] = totals.get(vendor, 0) + G.get_node_attr(n, "capacity_gbps")
    }
}
result = totals"#,
            pandas: r#"switches = nodes.filter("kind", "==", "packet_switch")
result = switches.groupby_agg("vendor", "capacity_gbps", "sum", "total_capacity")"#,
            sql: "SELECT vendor, SUM(capacity_gbps) AS total_capacity FROM nodes WHERE kind = 'packet_switch' GROUP BY vendor ORDER BY vendor",
        },
        QuerySpec {
            id: "M6",
            text: "How many spine switches and how many leaf switches does the topology contain?",
            application: Application::MaltLifecycle,
            complexity: Complexity::Medium,
            networkx: r#"counts = {}
for n in G.nodes() {
    if G.get_node_attr(n, "kind") == "packet_switch" {
        role = G.get_node_attr(n, "role")
        counts[role] = counts.get(role, 0) + 1
    }
}
result = counts"#,
            pandas: r#"switches = nodes.filter("kind", "==", "packet_switch")
result = switches.groupby_count("role")"#,
            sql: "SELECT role, COUNT(*) AS n FROM nodes WHERE kind = 'packet_switch' GROUP BY role ORDER BY role",
        },
        // ------------------------------------------------------------ hard
        QuerySpec {
            id: "M7",
            text: "Remove packet switch ju1.a1.m1.s1c1 from chassis ju1.a1.m1 and balance the chassis capacity afterward.",
            application: Application::MaltLifecycle,
            complexity: Complexity::Hard,
            networkx: r#"switch_capacity = G.get_node_attr("ju1.a1.m1.s1c1", "capacity_gbps")
chassis_capacity = G.get_node_attr("ju1.a1.m1", "capacity_gbps")
ports = []
for child in G.successors("ju1.a1.m1.s1c1") {
    if G.get_edge_attr("ju1.a1.m1.s1c1", child, "relationship") == "contains" {
        ports.append(child)
    }
}
for p in ports {
    G.remove_node(p)
}
G.remove_node("ju1.a1.m1.s1c1")
G.set_node_attr("ju1.a1.m1", "capacity_gbps", chassis_capacity - switch_capacity)
result = chassis_capacity - switch_capacity"#,
            pandas: r#"switch_rows = nodes.filter("name", "==", "ju1.a1.m1.s1c1")
switch_capacity = switch_rows.value(0, "capacity_gbps")
chassis_rows = nodes.filter("name", "==", "ju1.a1.m1")
chassis_capacity = chassis_rows.value(0, "capacity_gbps")
contained = edges.filter("source", "==", "ju1.a1.m1.s1c1")
contained = contained.filter("relationship", "==", "contains")
ports = contained.column("target")
for p in ports {
    nodes.delete_rows("name", "==", p)
    edges.delete_rows("source", "==", p)
    edges.delete_rows("target", "==", p)
}
nodes.delete_rows("name", "==", "ju1.a1.m1.s1c1")
edges.delete_rows("source", "==", "ju1.a1.m1.s1c1")
edges.delete_rows("target", "==", "ju1.a1.m1.s1c1")
i = 0
while i < nodes.n_rows() {
    if nodes.value(i, "name") == "ju1.a1.m1" {
        nodes.set_value(i, "capacity_gbps", chassis_capacity - switch_capacity)
    }
    i += 1
}
result = chassis_capacity - switch_capacity"#,
            sql: "DELETE FROM edges WHERE source = 'ju1.a1.m1.s1c1' OR target = 'ju1.a1.m1.s1c1';\nDELETE FROM nodes WHERE name = 'ju1.a1.m1.s1c1';\nSELECT name, capacity_gbps FROM nodes WHERE name = 'ju1.a1.m1'",
        },
        QuerySpec {
            id: "M8",
            text: "Which pod has the highest aggregate packet-switch capacity?",
            application: Application::MaltLifecycle,
            complexity: Complexity::Hard,
            networkx: r#"pod_capacity = {}
for n in G.nodes() {
    if G.get_node_attr(n, "kind") == "packet_switch" {
        parts = n.split(".")
        pod = parts[0] + "." + parts[1]
        pod_capacity[pod] = pod_capacity.get(pod, 0) + G.get_node_attr(n, "capacity_gbps")
    }
}
top = top_k(pod_capacity, 1)
result = top[0][0]"#,
            pandas: r#"pod_capacity = {}
switches = nodes.filter("kind", "==", "packet_switch")
for row in switches.to_rows() {
    parts = row["name"].split(".")
    pod = parts[0] + "." + parts[1]
    pod_capacity[pod] = pod_capacity.get(pod, 0) + row["capacity_gbps"]
}
top = top_k(pod_capacity, 1)
result = top[0][0]"#,
            sql: "SELECT SPLIT_PART(name, '.', 1) + '.' + SPLIT_PART(name, '.', 2) AS pod, SUM(capacity_gbps) AS total FROM nodes WHERE kind = 'packet_switch' GROUP BY SPLIT_PART(name, '.', 1) + '.' + SPLIT_PART(name, '.', 2) ORDER BY total DESC LIMIT 1",
        },
        QuerySpec {
            id: "M9",
            text: "Upgrade every 400 Gbps packet switch to 800 Gbps, update the containing chassis capacities, and report how many switches were upgraded.",
            application: Application::MaltLifecycle,
            complexity: Complexity::Hard,
            networkx: r#"upgraded = 0
for n in G.nodes() {
    if G.get_node_attr(n, "kind") == "packet_switch" {
        if G.get_node_attr(n, "capacity_gbps") == 400 {
            G.set_node_attr(n, "capacity_gbps", 800)
            upgraded += 1
            for parent in G.predecessors(n) {
                if G.get_edge_attr(parent, n, "relationship") == "contains" {
                    if G.get_node_attr(parent, "kind") == "chassis" {
                        old = G.get_node_attr(parent, "capacity_gbps")
                        G.set_node_attr(parent, "capacity_gbps", old + 400)
                    }
                }
            }
        }
    }
}
result = upgraded"#,
            pandas: r#"upgraded = 0
i = 0
while i < nodes.n_rows() {
    if nodes.value(i, "kind") == "packet_switch" and nodes.value(i, "capacity_gbps") == 400 {
        nodes.set_value(i, "capacity_gbps", 800)
        upgraded += 1
    }
    i += 1
}
result = upgraded"#,
            sql: "UPDATE nodes SET capacity_gbps = capacity_gbps + 400 WHERE kind = 'packet_switch' AND capacity_gbps = 400;\nSELECT COUNT(*) AS switches_800 FROM nodes WHERE kind = 'packet_switch' AND capacity_gbps = 800",
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_three_queries_per_level() {
        let queries = malt_queries();
        assert_eq!(queries.len(), 9);
        for level in Complexity::ALL {
            assert_eq!(
                queries.iter().filter(|q| q.complexity == level).count(),
                3,
                "{level} should have 3 queries"
            );
        }
        for q in &queries {
            assert_eq!(q.application, Application::MaltLifecycle);
            assert!(!q.networkx.is_empty() && !q.pandas.is_empty() && !q.sql.is_empty());
        }
    }

    #[test]
    fn paper_table1_examples_are_present() {
        let queries = malt_queries();
        assert!(queries.iter().any(|q| q
            .text
            .contains("ports that are contained by packet switch ju1.a1.m1.s2c1")));
        assert!(queries
            .iter()
            .any(|q| q.text.contains("first and the second largest chassis")));
        assert!(queries
            .iter()
            .any(|q| q.text.contains("balance the chassis capacity")));
    }
}
