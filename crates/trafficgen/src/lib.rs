//! # trafficgen
//!
//! Synthetic communication-graph workloads for the network traffic-analysis
//! application of the NeMoEval reproduction. The paper generates "synthetic
//! communication graphs with varying numbers of nodes and edges", where each
//! edge carries random byte / connection / packet weights; this crate
//! produces those workloads deterministically from a seed and exports them
//! into the three backend representations the benchmark compares:
//!
//! * [`export::to_graph`] — a directed property graph (NetworkX approach),
//! * [`export::to_frames`] — node and edge dataframes (pandas approach),
//! * [`export::to_database`] — node and edge SQL tables (SQL approach).
//!
//! ```
//! use trafficgen::{generate, TrafficConfig, export};
//!
//! let workload = generate(&TrafficConfig { nodes: 40, edges: 60, prefixes: 4, seed: 1 });
//! let graph = export::to_graph(&workload);
//! assert_eq!(graph.number_of_nodes(), 40);
//! assert_eq!(graph.number_of_edges(), 60);
//! ```

#![warn(missing_docs)]

pub mod export;
mod flow;
mod generator;
mod ip;
pub mod stats;
pub mod stream;

pub use flow::Flow;
pub use generator::{generate, TrafficConfig, TrafficWorkload};
pub use ip::{prefix_of, Ipv4};
pub use stats::{summarize, TrafficStats};
pub use stream::{evolve, NetEvent, StreamConfig, TimedEvent};
