//! Exports a traffic workload into the three backend representations the
//! benchmark evaluates: a property graph (NetworkX approach), node/edge
//! dataframes (pandas approach) and node/edge tables (SQL approach).

use crate::flow::Flow;
use crate::generator::TrafficWorkload;
use crate::ip::Ipv4;
use dataframe::{Column, DataFrame};
use netgraph::intern::Interner;
use netgraph::{attrs, AttrValue, Graph};
use sqlengine::Database;

/// Builds the directed communication graph: one node per endpoint (id = the
/// dotted address, with `prefix16`/`prefix24` attributes precomputed), one
/// edge per flow with `bytes`, `connections` and `packets` attributes.
///
/// Prefix strings repeat across many endpoints, so they are deduplicated
/// through an [`Interner`]: every node holding `prefix16 = "15.76"` shares
/// one allocation.
pub fn to_graph(workload: &TrafficWorkload) -> Graph {
    let mut interner = Interner::new();
    let mut g = Graph::directed();
    for ip in &workload.endpoints {
        g.add_node(
            &ip.to_string_dotted(),
            attrs([
                (
                    "prefix16",
                    AttrValue::Str(interner.intern_shared(&ip.prefix(2))),
                ),
                (
                    "prefix24",
                    AttrValue::Str(interner.intern_shared(&ip.prefix(3))),
                ),
            ]),
        );
    }
    for f in &workload.flows {
        g.add_edge(
            &f.source.to_string_dotted(),
            &f.target.to_string_dotted(),
            attrs([
                ("bytes", AttrValue::Int(f.bytes as i64)),
                ("connections", AttrValue::Int(f.connections as i64)),
                ("packets", AttrValue::Int(f.packets as i64)),
            ]),
        );
    }
    g
}

/// Builds the pandas-style representation: a node frame (`id`, `prefix16`,
/// `prefix24`) and an edge frame (`source`, `target`, `bytes`,
/// `connections`, `packets`).
pub fn to_frames(workload: &TrafficWorkload) -> (DataFrame, DataFrame) {
    // One interner across every string column: endpoint ids appear once in
    // the node frame and once per incident flow in the edge frame, so all
    // those cells share single allocations (symbols), as do the repeated
    // prefixes and the empty annotation cells.
    let mut interner = Interner::new();
    let ids: Vec<String> = workload
        .endpoints
        .iter()
        .map(Ipv4::to_string_dotted)
        .collect();
    let nodes = DataFrame::from_columns(vec![
        (
            "id".to_string(),
            ids.iter()
                .map(|s| AttrValue::Str(interner.intern_shared(s)))
                .collect(),
        ),
        (
            "prefix16".to_string(),
            workload
                .endpoints
                .iter()
                .map(|ip| AttrValue::Str(interner.intern_shared(&ip.prefix(2))))
                .collect(),
        ),
        (
            "prefix24".to_string(),
            workload
                .endpoints
                .iter()
                .map(|ip| AttrValue::Str(interner.intern_shared(&ip.prefix(3))))
                .collect(),
        ),
        // Spare annotation columns so labelling/coloring queries can be
        // expressed in the fixed-schema backends (pandas and SQL cannot add
        // columns the way the graph backend adds attributes).
        (
            "label".to_string(),
            workload
                .endpoints
                .iter()
                .map(|_| AttrValue::Str(interner.intern_shared("")))
                .collect(),
        ),
        (
            "color".to_string(),
            workload
                .endpoints
                .iter()
                .map(|_| AttrValue::Str(interner.intern_shared("")))
                .collect(),
        ),
    ])
    .expect("node columns are equal length");

    let edges = DataFrame::from_columns(vec![
        (
            "source".to_string(),
            workload
                .flows
                .iter()
                .map(|f| AttrValue::Str(interner.intern_shared(&f.source.to_string_dotted())))
                .collect(),
        ),
        (
            "target".to_string(),
            workload
                .flows
                .iter()
                .map(|f| AttrValue::Str(interner.intern_shared(&f.target.to_string_dotted())))
                .collect(),
        ),
        (
            "bytes".to_string(),
            workload
                .flows
                .iter()
                .map(|f| AttrValue::Int(f.bytes as i64))
                .collect::<Column>(),
        ),
        (
            "connections".to_string(),
            workload
                .flows
                .iter()
                .map(|f| AttrValue::Int(f.connections as i64))
                .collect(),
        ),
        (
            "packets".to_string(),
            workload
                .flows
                .iter()
                .map(|f| AttrValue::Int(f.packets as i64))
                .collect(),
        ),
    ])
    .expect("edge columns are equal length");

    (nodes, edges)
}

/// Builds the SQL representation: a database with `nodes` and `edges`
/// tables whose schemas match [`to_frames`].
pub fn to_database(workload: &TrafficWorkload) -> Database {
    let (nodes, edges) = to_frames(workload);
    let mut db = Database::new();
    db.create_table("nodes", nodes);
    db.create_table("edges", edges);
    db
}

/// One edge-frame row for a flow, in [`to_frames`] column order
/// (`source`, `target`, `bytes`, `connections`, `packets`).
pub fn flow_row(flow: &Flow) -> Vec<AttrValue> {
    flow_row_parts(
        &flow.source.to_string_dotted(),
        &flow.target.to_string_dotted(),
        flow.bytes as i64,
        flow.connections as i64,
        flow.packets as i64,
    )
}

/// [`flow_row`] from already-rendered parts — the single place the edge
/// schema's column order lives, shared with callers (the live serving
/// layer) that hold string ids rather than parsed addresses.
pub fn flow_row_parts(
    source: &str,
    target: &str,
    bytes: i64,
    connections: i64,
    packets: i64,
) -> Vec<AttrValue> {
    vec![
        AttrValue::Str(source.into()),
        AttrValue::Str(target.into()),
        AttrValue::Int(bytes),
        AttrValue::Int(connections),
        AttrValue::Int(packets),
    ]
}

/// One node-frame row for an endpoint, in [`to_frames`] column order
/// (`id`, `prefix16`, `prefix24`, `label`, `color`).
pub fn endpoint_row(ip: &Ipv4) -> Vec<AttrValue> {
    endpoint_row_parts(&ip.to_string_dotted(), &ip.prefix(2), &ip.prefix(3))
}

/// [`endpoint_row`] from already-rendered parts; the `label`/`color`
/// annotation cells start empty, exactly as [`to_frames`] exports them.
pub fn endpoint_row_parts(id: &str, prefix16: &str, prefix24: &str) -> Vec<AttrValue> {
    vec![
        AttrValue::Str(id.into()),
        AttrValue::Str(prefix16.into()),
        AttrValue::Str(prefix24.into()),
        AttrValue::Str("".into()),
        AttrValue::Str("".into()),
    ]
}

/// Appends edge-frame rows for `flows` to an existing edge frame in place —
/// the incremental export path. Historically every export rebuilt the full
/// table; a serving loop that appends a handful of flows per epoch only
/// pays for the new rows.
pub fn append_flows(edges: &mut DataFrame, flows: &[Flow]) {
    for flow in flows {
        edges
            .push_row(flow_row(flow))
            .expect("flow rows match the edge-frame schema");
    }
}

/// Builds the edge frame holding only `workload.flows[from..]` — what an
/// exporter that already shipped the first `from` flows still owes. The
/// schema matches [`to_frames`]; `to_frames(w).1` equals the `from = 0`
/// frame.
pub fn export_flows_since(workload: &TrafficWorkload, from: usize) -> DataFrame {
    let names = ["source", "target", "bytes", "connections", "packets"];
    let from = from.min(workload.flows.len());
    let rows: Vec<Vec<AttrValue>> = workload.flows[from..].iter().map(flow_row).collect();
    DataFrame::from_rows(&names, rows).expect("flow rows are uniform")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{generate, TrafficConfig};
    use netgraph::AttrMapExt;

    fn workload() -> TrafficWorkload {
        generate(&TrafficConfig {
            nodes: 30,
            edges: 40,
            prefixes: 3,
            seed: 11,
        })
    }

    #[test]
    fn graph_matches_workload_shape() {
        let w = workload();
        let g = to_graph(&w);
        assert_eq!(g.number_of_nodes(), 30);
        assert_eq!(g.number_of_edges(), 40);
        let first = w.flows[0].source.to_string_dotted();
        assert_eq!(
            g.node_attrs(&first).unwrap().get_str("prefix16"),
            Some(w.flows[0].source.prefix(2).as_str())
        );
    }

    #[test]
    fn frames_match_workload_shape() {
        let w = workload();
        let (nodes, edges) = to_frames(&w);
        assert_eq!(nodes.n_rows(), 30);
        assert_eq!(
            nodes.column_names(),
            vec!["id", "prefix16", "prefix24", "label", "color"]
        );
        assert_eq!(edges.n_rows(), 40);
        assert_eq!(
            edges.column_names(),
            vec!["source", "target", "bytes", "connections", "packets"]
        );
        let total: f64 = edges.column("bytes").unwrap().sum().unwrap();
        assert_eq!(total, w.flows.iter().map(|f| f.bytes as f64).sum::<f64>());
    }

    #[test]
    fn database_is_queryable() {
        let w = workload();
        let mut db = to_database(&w);
        let out = db.execute("SELECT COUNT(*) AS n FROM edges").unwrap();
        assert_eq!(
            out.rows().unwrap().value(0, "n").unwrap(),
            &AttrValue::Int(40)
        );
        let out = db
            .execute("SELECT COUNT(*) AS n FROM nodes WHERE id LIKE '15.76%'")
            .unwrap();
        assert!(out.rows().unwrap().value(0, "n").unwrap().as_i64().unwrap() > 0);
    }

    #[test]
    fn incremental_flow_export_matches_full_export() {
        let w = workload();
        let (_, full) = to_frames(&w);
        // Export the first 25 flows, then append the remaining 15
        // incrementally: the result must equal the one-shot full export.
        let prefix = TrafficWorkload {
            flows: w.flows[..25].to_vec(),
            ..w.clone()
        };
        let (_, mut incremental) = to_frames(&prefix);
        append_flows(&mut incremental, &w.flows[25..]);
        assert_eq!(incremental.n_rows(), full.n_rows());
        assert!(incremental.approx_eq(&full));

        // export_flows_since produces exactly the still-owed tail.
        let tail = export_flows_since(&w, 25);
        assert_eq!(tail.n_rows(), 15);
        assert_eq!(tail.column_names(), full.column_names());
        assert!(export_flows_since(&w, 0).approx_eq(&full));
        assert_eq!(export_flows_since(&w, 10_000).n_rows(), 0);
    }

    #[test]
    fn endpoint_rows_match_node_frame_schema() {
        let w = workload();
        let (mut nodes, _) = to_frames(&w);
        let before = nodes.n_rows();
        nodes
            .push_row(endpoint_row(&crate::ip::Ipv4::new(203, 0, 0, 1)))
            .unwrap();
        assert_eq!(nodes.n_rows(), before + 1);
        assert_eq!(
            nodes.value(before, "prefix24").unwrap().as_str(),
            Some("203.0.0")
        );
    }

    #[test]
    fn three_backends_agree_on_totals() {
        let w = workload();
        let g = to_graph(&w);
        let (_, edges) = to_frames(&w);
        let mut db = to_database(&w);
        let graph_total = g.total_edge_attr("bytes");
        let frame_total = edges.column("bytes").unwrap().sum().unwrap();
        let sql_total = db
            .execute("SELECT SUM(bytes) AS s FROM edges")
            .unwrap()
            .rows()
            .unwrap()
            .value(0, "s")
            .unwrap()
            .as_f64()
            .unwrap();
        assert_eq!(graph_total, frame_total);
        assert_eq!(graph_total, sql_total);
    }
}
