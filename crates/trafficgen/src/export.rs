//! Exports a traffic workload into the three backend representations the
//! benchmark evaluates: a property graph (NetworkX approach), node/edge
//! dataframes (pandas approach) and node/edge tables (SQL approach).

use crate::generator::TrafficWorkload;
use crate::ip::Ipv4;
use dataframe::{Column, DataFrame};
use netgraph::intern::Interner;
use netgraph::{attrs, AttrValue, Graph};
use sqlengine::Database;

/// Builds the directed communication graph: one node per endpoint (id = the
/// dotted address, with `prefix16`/`prefix24` attributes precomputed), one
/// edge per flow with `bytes`, `connections` and `packets` attributes.
///
/// Prefix strings repeat across many endpoints, so they are deduplicated
/// through an [`Interner`]: every node holding `prefix16 = "15.76"` shares
/// one allocation.
pub fn to_graph(workload: &TrafficWorkload) -> Graph {
    let mut interner = Interner::new();
    let mut g = Graph::directed();
    for ip in &workload.endpoints {
        g.add_node(
            &ip.to_string_dotted(),
            attrs([
                (
                    "prefix16",
                    AttrValue::Str(interner.intern_shared(&ip.prefix(2))),
                ),
                (
                    "prefix24",
                    AttrValue::Str(interner.intern_shared(&ip.prefix(3))),
                ),
            ]),
        );
    }
    for f in &workload.flows {
        g.add_edge(
            &f.source.to_string_dotted(),
            &f.target.to_string_dotted(),
            attrs([
                ("bytes", AttrValue::Int(f.bytes as i64)),
                ("connections", AttrValue::Int(f.connections as i64)),
                ("packets", AttrValue::Int(f.packets as i64)),
            ]),
        );
    }
    g
}

/// Builds the pandas-style representation: a node frame (`id`, `prefix16`,
/// `prefix24`) and an edge frame (`source`, `target`, `bytes`,
/// `connections`, `packets`).
pub fn to_frames(workload: &TrafficWorkload) -> (DataFrame, DataFrame) {
    // One interner across every string column: endpoint ids appear once in
    // the node frame and once per incident flow in the edge frame, so all
    // those cells share single allocations (symbols), as do the repeated
    // prefixes and the empty annotation cells.
    let mut interner = Interner::new();
    let ids: Vec<String> = workload
        .endpoints
        .iter()
        .map(Ipv4::to_string_dotted)
        .collect();
    let nodes = DataFrame::from_columns(vec![
        (
            "id".to_string(),
            ids.iter()
                .map(|s| AttrValue::Str(interner.intern_shared(s)))
                .collect(),
        ),
        (
            "prefix16".to_string(),
            workload
                .endpoints
                .iter()
                .map(|ip| AttrValue::Str(interner.intern_shared(&ip.prefix(2))))
                .collect(),
        ),
        (
            "prefix24".to_string(),
            workload
                .endpoints
                .iter()
                .map(|ip| AttrValue::Str(interner.intern_shared(&ip.prefix(3))))
                .collect(),
        ),
        // Spare annotation columns so labelling/coloring queries can be
        // expressed in the fixed-schema backends (pandas and SQL cannot add
        // columns the way the graph backend adds attributes).
        (
            "label".to_string(),
            workload
                .endpoints
                .iter()
                .map(|_| AttrValue::Str(interner.intern_shared("")))
                .collect(),
        ),
        (
            "color".to_string(),
            workload
                .endpoints
                .iter()
                .map(|_| AttrValue::Str(interner.intern_shared("")))
                .collect(),
        ),
    ])
    .expect("node columns are equal length");

    let edges = DataFrame::from_columns(vec![
        (
            "source".to_string(),
            workload
                .flows
                .iter()
                .map(|f| AttrValue::Str(interner.intern_shared(&f.source.to_string_dotted())))
                .collect(),
        ),
        (
            "target".to_string(),
            workload
                .flows
                .iter()
                .map(|f| AttrValue::Str(interner.intern_shared(&f.target.to_string_dotted())))
                .collect(),
        ),
        (
            "bytes".to_string(),
            workload
                .flows
                .iter()
                .map(|f| AttrValue::Int(f.bytes as i64))
                .collect::<Column>(),
        ),
        (
            "connections".to_string(),
            workload
                .flows
                .iter()
                .map(|f| AttrValue::Int(f.connections as i64))
                .collect(),
        ),
        (
            "packets".to_string(),
            workload
                .flows
                .iter()
                .map(|f| AttrValue::Int(f.packets as i64))
                .collect(),
        ),
    ])
    .expect("edge columns are equal length");

    (nodes, edges)
}

/// Builds the SQL representation: a database with `nodes` and `edges`
/// tables whose schemas match [`to_frames`].
pub fn to_database(workload: &TrafficWorkload) -> Database {
    let (nodes, edges) = to_frames(workload);
    let mut db = Database::new();
    db.create_table("nodes", nodes);
    db.create_table("edges", edges);
    db
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{generate, TrafficConfig};
    use netgraph::AttrMapExt;

    fn workload() -> TrafficWorkload {
        generate(&TrafficConfig {
            nodes: 30,
            edges: 40,
            prefixes: 3,
            seed: 11,
        })
    }

    #[test]
    fn graph_matches_workload_shape() {
        let w = workload();
        let g = to_graph(&w);
        assert_eq!(g.number_of_nodes(), 30);
        assert_eq!(g.number_of_edges(), 40);
        let first = w.flows[0].source.to_string_dotted();
        assert_eq!(
            g.node_attrs(&first).unwrap().get_str("prefix16"),
            Some(w.flows[0].source.prefix(2).as_str())
        );
    }

    #[test]
    fn frames_match_workload_shape() {
        let w = workload();
        let (nodes, edges) = to_frames(&w);
        assert_eq!(nodes.n_rows(), 30);
        assert_eq!(
            nodes.column_names(),
            vec!["id", "prefix16", "prefix24", "label", "color"]
        );
        assert_eq!(edges.n_rows(), 40);
        assert_eq!(
            edges.column_names(),
            vec!["source", "target", "bytes", "connections", "packets"]
        );
        let total: f64 = edges.column("bytes").unwrap().sum().unwrap();
        assert_eq!(total, w.flows.iter().map(|f| f.bytes as f64).sum::<f64>());
    }

    #[test]
    fn database_is_queryable() {
        let w = workload();
        let mut db = to_database(&w);
        let out = db.execute("SELECT COUNT(*) AS n FROM edges").unwrap();
        assert_eq!(
            out.rows().unwrap().value(0, "n").unwrap(),
            &AttrValue::Int(40)
        );
        let out = db
            .execute("SELECT COUNT(*) AS n FROM nodes WHERE id LIKE '15.76%'")
            .unwrap();
        assert!(out.rows().unwrap().value(0, "n").unwrap().as_i64().unwrap() > 0);
    }

    #[test]
    fn three_backends_agree_on_totals() {
        let w = workload();
        let g = to_graph(&w);
        let (_, edges) = to_frames(&w);
        let mut db = to_database(&w);
        let graph_total = g.total_edge_attr("bytes");
        let frame_total = edges.column("bytes").unwrap().sum().unwrap();
        let sql_total = db
            .execute("SELECT SUM(bytes) AS s FROM edges")
            .unwrap()
            .rows()
            .unwrap()
            .value(0, "s")
            .unwrap()
            .as_f64()
            .unwrap();
        assert_eq!(graph_total, frame_total);
        assert_eq!(graph_total, sql_total);
    }
}
