//! Deterministic synthetic communication-graph generator.
//!
//! The paper evaluates the traffic-analysis application on "synthetic
//! communication graphs with varying numbers of nodes and edges", where each
//! edge carries random byte/connection/packet weights. This generator
//! reproduces that workload under a fixed seed so benchmark tables
//! regenerate deterministically.

use crate::flow::Flow;
use crate::ip::Ipv4;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for one synthetic communication graph.
#[derive(Debug, Clone, PartialEq)]
pub struct TrafficConfig {
    /// Number of distinct endpoints (graph nodes).
    pub nodes: usize,
    /// Number of flows (graph edges). Self-flows are never generated and
    /// duplicate endpoint pairs are merged by the graph substrate, so the
    /// realized edge count can be slightly lower for dense graphs.
    pub edges: usize,
    /// Number of distinct /16 prefixes the endpoints are spread across.
    pub prefixes: usize,
    /// RNG seed; equal seeds produce identical workloads.
    pub seed: u64,
}

impl Default for TrafficConfig {
    fn default() -> Self {
        // The paper's headline configuration: a small graph with 80 nodes
        // and edges (Figure 4a).
        TrafficConfig {
            nodes: 80,
            edges: 80,
            prefixes: 6,
            seed: 7,
        }
    }
}

impl TrafficConfig {
    /// A configuration with `n` nodes and `n` edges, as used by the paper's
    /// cost-scalability sweep (Figure 4b).
    pub fn with_size(n: usize) -> Self {
        TrafficConfig {
            nodes: n,
            edges: n,
            ..TrafficConfig::default()
        }
    }
}

/// A generated workload: the endpoint population and the flow records.
#[derive(Debug, Clone, PartialEq)]
pub struct TrafficWorkload {
    /// The configuration that produced the workload.
    pub config: TrafficConfig,
    /// All distinct endpoints.
    pub endpoints: Vec<Ipv4>,
    /// Aggregated flow records (one per generated edge).
    pub flows: Vec<Flow>,
}

/// Generates a workload from a configuration.
///
/// Endpoints are assigned round-robin to `prefixes` distinct /16 prefixes
/// (the first prefix is always `15.76.x.y`, matching the paper's example
/// query "nodes with address prefix 15.76"); flows connect random distinct
/// endpoint pairs with log-uniform byte counts.
pub fn generate(config: &TrafficConfig) -> TrafficWorkload {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let prefixes = prefix_pool(config.prefixes.max(1));

    let mut endpoints = Vec::with_capacity(config.nodes);
    for i in 0..config.nodes {
        let (a, b) = prefixes[i % prefixes.len()];
        let c = (i / 253) as u8;
        let d = (i % 253 + 1) as u8;
        endpoints.push(Ipv4::new(a, b, c, d));
    }

    let mut flows = Vec::with_capacity(config.edges);
    if config.nodes >= 2 {
        let mut seen: std::collections::BTreeSet<(usize, usize)> =
            std::collections::BTreeSet::new();
        let mut attempts = 0usize;
        while flows.len() < config.edges && attempts < config.edges * 20 {
            attempts += 1;
            let s = rng.gen_range(0..config.nodes);
            let t = rng.gen_range(0..config.nodes);
            if s == t || seen.contains(&(s, t)) {
                continue;
            }
            seen.insert((s, t));
            let packets: u64 = rng.gen_range(1..=10_000);
            let bytes = packets * rng.gen_range(64u64..=1500);
            flows.push(Flow {
                source: endpoints[s],
                target: endpoints[t],
                bytes,
                connections: rng.gen_range(1..=64),
                packets,
            });
        }
    }

    TrafficWorkload {
        config: config.clone(),
        endpoints,
        flows,
    }
}

/// The pool of /16 prefixes endpoints are drawn from.
fn prefix_pool(count: usize) -> Vec<(u8, u8)> {
    let base = [
        (15u8, 76u8),
        (10, 2),
        (10, 3),
        (172, 16),
        (192, 168),
        (100, 64),
        (10, 77),
        (172, 31),
    ];
    (0..count)
        .map(|i| {
            if i < base.len() {
                base[i]
            } else {
                (10, 100 + (i - base.len()) as u8)
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let config = TrafficConfig::default();
        let a = generate(&config);
        let b = generate(&config);
        assert_eq!(a, b);
        let c = generate(&TrafficConfig {
            seed: 8,
            ..config.clone()
        });
        assert_ne!(a.flows, c.flows);
    }

    #[test]
    fn respects_requested_sizes() {
        let w = generate(&TrafficConfig {
            nodes: 50,
            edges: 70,
            prefixes: 4,
            seed: 3,
        });
        assert_eq!(w.endpoints.len(), 50);
        assert_eq!(w.flows.len(), 70);
        // No self-flows, no duplicate pairs.
        for f in &w.flows {
            assert_ne!(f.source, f.target);
        }
        let pairs: std::collections::BTreeSet<_> =
            w.flows.iter().map(|f| (f.source, f.target)).collect();
        assert_eq!(pairs.len(), w.flows.len());
    }

    #[test]
    fn first_prefix_matches_paper_example() {
        let w = generate(&TrafficConfig::default());
        assert!(w.endpoints.iter().any(|ip| ip.prefix(2) == "15.76"));
        // Endpoints span the requested number of prefixes.
        let prefixes: std::collections::BTreeSet<String> =
            w.endpoints.iter().map(|ip| ip.prefix(2)).collect();
        assert_eq!(prefixes.len(), w.config.prefixes);
    }

    #[test]
    fn weights_are_plausible() {
        let w = generate(&TrafficConfig::default());
        for f in &w.flows {
            assert!(f.packets >= 1);
            assert!(f.bytes >= f.packets * 64);
            assert!(f.bytes <= f.packets * 1500);
            assert!(f.connections >= 1);
        }
    }

    #[test]
    fn degenerate_configurations_do_not_panic() {
        let w = generate(&TrafficConfig {
            nodes: 1,
            edges: 10,
            prefixes: 1,
            seed: 1,
        });
        assert!(w.flows.is_empty());
        let w = generate(&TrafficConfig {
            nodes: 0,
            edges: 0,
            prefixes: 0,
            seed: 1,
        });
        assert!(w.endpoints.is_empty());
        // More edges requested than distinct pairs exist.
        let w = generate(&TrafficConfig {
            nodes: 3,
            edges: 100,
            prefixes: 1,
            seed: 1,
        });
        assert!(w.flows.len() <= 6);
    }

    #[test]
    fn with_size_builds_square_configs() {
        let c = TrafficConfig::with_size(150);
        assert_eq!(c.nodes, 150);
        assert_eq!(c.edges, 150);
    }
}
