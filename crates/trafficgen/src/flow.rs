//! Flow records: the raw material of a communication graph.

use crate::ip::Ipv4;

/// One aggregated communication record between two endpoints, as a network
/// telemetry pipeline would export it. The paper's traffic-analysis
/// application models each record as a weighted edge of the communication
/// graph with `bytes`, `connections` and `packets` attributes.
#[derive(Debug, Clone, PartialEq)]
pub struct Flow {
    /// Source endpoint.
    pub source: Ipv4,
    /// Destination endpoint.
    pub target: Ipv4,
    /// Bytes transferred.
    pub bytes: u64,
    /// Number of connections observed.
    pub connections: u32,
    /// Packets transferred.
    pub packets: u64,
}

impl Flow {
    /// Mean packet size in bytes (0 when no packets were recorded).
    pub fn mean_packet_size(&self) -> f64 {
        if self.packets == 0 {
            0.0
        } else {
            self.bytes as f64 / self.packets as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_packet_size() {
        let f = Flow {
            source: Ipv4::new(10, 0, 0, 1),
            target: Ipv4::new(10, 0, 0, 2),
            bytes: 3000,
            connections: 2,
            packets: 20,
        };
        assert_eq!(f.mean_packet_size(), 150.0);
        let empty = Flow { packets: 0, ..f };
        assert_eq!(empty.mean_packet_size(), 0.0);
    }
}
