//! Deterministic timestamped mutation streams: how a communication graph
//! *changes* over time.
//!
//! The paper's pipeline answers queries over a frozen snapshot; the serving
//! layer (`nemo-serve`) needs the network to keep evolving underneath it.
//! [`evolve`] extends a generated [`TrafficWorkload`] with a stream of
//! timestamped network events — new endpoints appearing, new flows starting,
//! existing flows changing volume or ending, endpoints being relabelled —
//! that is a pure function of `(workload, config)`: equal inputs produce
//! byte-identical streams, which is what makes write-ahead-log replay and
//! the multi-client load driver reproducible.

use crate::flow::Flow;
use crate::generator::TrafficWorkload;
use crate::ip::Ipv4;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;

/// Configuration of one mutation stream.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamConfig {
    /// Number of events to generate.
    pub events: usize,
    /// RNG seed; equal seeds produce identical streams over the same
    /// workload.
    pub seed: u64,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            events: 64,
            seed: 77,
        }
    }
}

/// One network change.
#[derive(Debug, Clone, PartialEq)]
pub enum NetEvent {
    /// A previously unseen endpoint joins the network.
    NewEndpoint {
        /// The new endpoint's address.
        endpoint: Ipv4,
    },
    /// A new flow starts between two live endpoints (the pair was not
    /// already flowing).
    NewFlow {
        /// The flow record, including its weights.
        flow: Flow,
    },
    /// An existing flow's weights change (re-measured volume).
    AdjustFlow {
        /// Updated flow record for an already-flowing endpoint pair.
        flow: Flow,
    },
    /// An existing flow ends.
    DropFlow {
        /// Source endpoint of the ended flow.
        source: Ipv4,
        /// Target endpoint of the ended flow.
        target: Ipv4,
    },
    /// An endpoint's `label` annotation changes.
    Relabel {
        /// The relabelled endpoint.
        endpoint: Ipv4,
        /// The new label text.
        label: String,
    },
}

/// A network change stamped with the (synthetic, monotonically increasing)
/// millisecond at which it was observed.
#[derive(Debug, Clone, PartialEq)]
pub struct TimedEvent {
    /// Milliseconds since the stream started; strictly increasing.
    pub at_ms: u64,
    /// The change itself.
    pub event: NetEvent,
}

/// Generates a deterministic timestamped event stream continuing a
/// workload.
///
/// The stream tracks the evolving endpoint population and live flow set so
/// every event is applicable in order: `NewFlow` never duplicates a live
/// pair (the graph substrate would merge it), `AdjustFlow` / `DropFlow`
/// always name a live pair, and `NewEndpoint` never reuses an address.
pub fn evolve(workload: &TrafficWorkload, config: &StreamConfig) -> Vec<TimedEvent> {
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0x5eed_57ea_4000_0000);
    let mut endpoints: Vec<Ipv4> = workload.endpoints.clone();
    let mut known: BTreeSet<Ipv4> = endpoints.iter().copied().collect();
    // Live flows in a deterministic order so removal/adjustment picks are
    // reproducible.
    let mut live: Vec<(Ipv4, Ipv4)> = workload
        .flows
        .iter()
        .map(|f| (f.source, f.target))
        .collect();
    let mut live_set: BTreeSet<(Ipv4, Ipv4)> = live.iter().copied().collect();

    let mut out = Vec::with_capacity(config.events);
    let mut clock_ms = 0u64;
    let mut next_new_host = 0u32;
    while out.len() < config.events {
        clock_ms += rng.gen_range(1..=40u64);
        let roll = rng.gen_range(0..100u32);
        let event = if roll < 10 {
            // A fresh endpoint from a reserved prefix (203.x) the
            // generator's pool never allocates, so collisions with
            // existing addresses are impossible; spreading the counter
            // over the second octet keeps ~16M synthesized addresses
            // unique before any wrap.
            let ip = Ipv4::new(
                203,
                (next_new_host / 62_500) as u8,
                ((next_new_host / 250) % 250) as u8,
                (next_new_host % 250 + 1) as u8,
            );
            next_new_host += 1;
            known.insert(ip);
            endpoints.push(ip);
            NetEvent::NewEndpoint { endpoint: ip }
        } else if roll < 55 {
            match random_fresh_pair(&mut rng, &endpoints, &live_set) {
                Some((s, t)) => {
                    live.push((s, t));
                    live_set.insert((s, t));
                    NetEvent::NewFlow {
                        flow: random_flow(&mut rng, s, t),
                    }
                }
                None => continue,
            }
        } else if roll < 75 {
            if live.is_empty() {
                continue;
            }
            let (s, t) = live[rng.gen_range(0..live.len())];
            NetEvent::AdjustFlow {
                flow: random_flow(&mut rng, s, t),
            }
        } else if roll < 85 {
            if live.is_empty() {
                continue;
            }
            let idx = rng.gen_range(0..live.len());
            let (s, t) = live.remove(idx);
            live_set.remove(&(s, t));
            NetEvent::DropFlow {
                source: s,
                target: t,
            }
        } else {
            if endpoints.is_empty() {
                continue;
            }
            let endpoint = endpoints[rng.gen_range(0..endpoints.len())];
            let label = format!("app:tier-{}", rng.gen_range(0..5u32));
            NetEvent::Relabel { endpoint, label }
        };
        out.push(TimedEvent {
            at_ms: clock_ms,
            event,
        });
    }
    out
}

fn random_flow(rng: &mut StdRng, source: Ipv4, target: Ipv4) -> Flow {
    let packets: u64 = rng.gen_range(1..=10_000);
    Flow {
        source,
        target,
        bytes: packets * rng.gen_range(64u64..=1500),
        connections: rng.gen_range(1..=64),
        packets,
    }
}

/// Picks a random ordered endpoint pair that is not currently flowing; a
/// bounded number of attempts keeps dense graphs from looping forever.
fn random_fresh_pair(
    rng: &mut StdRng,
    endpoints: &[Ipv4],
    live: &BTreeSet<(Ipv4, Ipv4)>,
) -> Option<(Ipv4, Ipv4)> {
    if endpoints.len() < 2 {
        return None;
    }
    for _ in 0..32 {
        let s = endpoints[rng.gen_range(0..endpoints.len())];
        let t = endpoints[rng.gen_range(0..endpoints.len())];
        if s != t && !live.contains(&(s, t)) {
            return Some((s, t));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{generate, TrafficConfig};

    fn workload() -> TrafficWorkload {
        generate(&TrafficConfig {
            nodes: 24,
            edges: 30,
            prefixes: 3,
            seed: 5,
        })
    }

    #[test]
    fn streams_are_deterministic() {
        let w = workload();
        let cfg = StreamConfig {
            events: 100,
            seed: 9,
        };
        assert_eq!(evolve(&w, &cfg), evolve(&w, &cfg));
        let other = evolve(
            &w,
            &StreamConfig {
                events: 100,
                seed: 10,
            },
        );
        assert_ne!(evolve(&w, &cfg), other);
    }

    #[test]
    fn timestamps_strictly_increase() {
        let events = evolve(&workload(), &StreamConfig::default());
        assert_eq!(events.len(), StreamConfig::default().events);
        for pair in events.windows(2) {
            assert!(pair[0].at_ms < pair[1].at_ms);
        }
    }

    #[test]
    fn events_are_applicable_in_order() {
        let w = workload();
        let events = evolve(
            &w,
            &StreamConfig {
                events: 200,
                seed: 3,
            },
        );
        let mut known: BTreeSet<Ipv4> = w.endpoints.iter().copied().collect();
        let mut live: BTreeSet<(Ipv4, Ipv4)> =
            w.flows.iter().map(|f| (f.source, f.target)).collect();
        for e in &events {
            match &e.event {
                NetEvent::NewEndpoint { endpoint } => {
                    assert!(!w.endpoints.contains(endpoint), "address collision");
                    known.insert(*endpoint);
                }
                NetEvent::NewFlow { flow } => {
                    assert!(known.contains(&flow.source) && known.contains(&flow.target));
                    assert_ne!(flow.source, flow.target);
                    assert!(live.insert((flow.source, flow.target)), "duplicate flow");
                }
                NetEvent::AdjustFlow { flow } => {
                    assert!(live.contains(&(flow.source, flow.target)));
                }
                NetEvent::DropFlow { source, target } => {
                    assert!(live.remove(&(*source, *target)));
                }
                NetEvent::Relabel { endpoint, .. } => {
                    assert!(known.contains(endpoint));
                }
            }
        }
    }

    #[test]
    fn synthesized_endpoints_stay_unique_across_many_events() {
        // ~10% of events are NewEndpoint; 6000 events exercise well past
        // one third-octet block (250 addresses) without collisions.
        let events = evolve(
            &workload(),
            &StreamConfig {
                events: 6_000,
                seed: 4,
            },
        );
        let mut seen = BTreeSet::new();
        let mut count = 0u32;
        for e in &events {
            if let NetEvent::NewEndpoint { endpoint } = &e.event {
                assert!(seen.insert(*endpoint), "duplicate {endpoint:?}");
                assert_eq!(endpoint.0[0], 203);
                count += 1;
            }
        }
        assert!(count > 300, "only {count} new endpoints generated");
    }

    #[test]
    fn stream_mixes_event_kinds() {
        let events = evolve(
            &workload(),
            &StreamConfig {
                events: 300,
                seed: 1,
            },
        );
        let count = |pred: fn(&NetEvent) -> bool| events.iter().filter(|e| pred(&e.event)).count();
        assert!(count(|e| matches!(e, NetEvent::NewFlow { .. })) > 0);
        assert!(count(|e| matches!(e, NetEvent::AdjustFlow { .. })) > 0);
        assert!(count(|e| matches!(e, NetEvent::DropFlow { .. })) > 0);
        assert!(count(|e| matches!(e, NetEvent::Relabel { .. })) > 0);
        assert!(count(|e| matches!(e, NetEvent::NewEndpoint { .. })) > 0);
    }
}
