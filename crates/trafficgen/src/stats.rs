//! Summary statistics over a traffic workload, used by examples and by the
//! cost-model benches to report workload composition.

use crate::generator::TrafficWorkload;
use std::collections::BTreeMap;

/// Aggregate statistics of a workload.
#[derive(Debug, Clone, PartialEq)]
pub struct TrafficStats {
    /// Number of endpoints.
    pub nodes: usize,
    /// Number of flows.
    pub edges: usize,
    /// Total bytes across all flows.
    pub total_bytes: u64,
    /// Total packets across all flows.
    pub total_packets: u64,
    /// Mean out-degree over endpoints that send at least one flow.
    pub mean_out_degree: f64,
    /// Bytes sent + received per /16 prefix.
    pub bytes_per_prefix: BTreeMap<String, u64>,
}

/// Computes summary statistics for a workload.
pub fn summarize(workload: &TrafficWorkload) -> TrafficStats {
    let mut out_degree: BTreeMap<String, usize> = BTreeMap::new();
    let mut bytes_per_prefix: BTreeMap<String, u64> = BTreeMap::new();
    let mut total_bytes = 0u64;
    let mut total_packets = 0u64;
    for f in &workload.flows {
        total_bytes += f.bytes;
        total_packets += f.packets;
        *out_degree.entry(f.source.to_string_dotted()).or_default() += 1;
        *bytes_per_prefix.entry(f.source.prefix(2)).or_default() += f.bytes;
        *bytes_per_prefix.entry(f.target.prefix(2)).or_default() += f.bytes;
    }
    let senders = out_degree.len();
    let mean_out_degree = if senders == 0 {
        0.0
    } else {
        out_degree.values().sum::<usize>() as f64 / senders as f64
    };
    TrafficStats {
        nodes: workload.endpoints.len(),
        edges: workload.flows.len(),
        total_bytes,
        total_packets,
        mean_out_degree,
        bytes_per_prefix,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{generate, TrafficConfig};

    #[test]
    fn summary_is_consistent_with_workload() {
        let w = generate(&TrafficConfig {
            nodes: 40,
            edges: 60,
            prefixes: 4,
            seed: 5,
        });
        let s = summarize(&w);
        assert_eq!(s.nodes, 40);
        assert_eq!(s.edges, 60);
        assert_eq!(s.total_bytes, w.flows.iter().map(|f| f.bytes).sum::<u64>());
        assert_eq!(
            s.total_packets,
            w.flows.iter().map(|f| f.packets).sum::<u64>()
        );
        assert!(s.mean_out_degree > 0.0);
        assert_eq!(s.bytes_per_prefix.len(), 4);
        // Every byte is counted once for the source prefix and once for the
        // target prefix.
        let prefix_total: u64 = s.bytes_per_prefix.values().sum();
        assert_eq!(prefix_total, 2 * s.total_bytes);
    }

    #[test]
    fn empty_workload() {
        let w = generate(&TrafficConfig {
            nodes: 0,
            edges: 0,
            prefixes: 1,
            seed: 1,
        });
        let s = summarize(&w);
        assert_eq!(s.mean_out_degree, 0.0);
        assert_eq!(s.total_bytes, 0);
    }
}
