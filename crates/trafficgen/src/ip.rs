//! IPv4 address helpers used by the synthetic communication-graph generator
//! and by the benchmark queries that reason about address prefixes.

/// A compact IPv4 address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Ipv4(pub [u8; 4]);

impl Ipv4 {
    /// Builds an address from four octets.
    pub fn new(a: u8, b: u8, c: u8, d: u8) -> Self {
        Ipv4([a, b, c, d])
    }

    /// Dotted-decimal representation (`"10.76.3.9"`).
    pub fn to_string_dotted(&self) -> String {
        format!("{}.{}.{}.{}", self.0[0], self.0[1], self.0[2], self.0[3])
    }

    /// The first `octets` dotted groups (`prefix(2)` of `10.76.3.9` is
    /// `"10.76"`), the textual form of a /8, /16 or /24 prefix.
    pub fn prefix(&self, octets: usize) -> String {
        let octets = octets.clamp(1, 4);
        self.0[..octets]
            .iter()
            .map(|o| o.to_string())
            .collect::<Vec<_>>()
            .join(".")
    }

    /// Parses a dotted-decimal string.
    pub fn parse(text: &str) -> Option<Ipv4> {
        let parts: Vec<&str> = text.split('.').collect();
        if parts.len() != 4 {
            return None;
        }
        let mut octets = [0u8; 4];
        for (i, p) in parts.iter().enumerate() {
            octets[i] = p.parse().ok()?;
        }
        Some(Ipv4(octets))
    }
}

/// The textual /N-style prefix of a dotted-decimal address string: the first
/// `octets` groups. Non-IP strings return their full text, so the helper is
/// safe to apply to arbitrary node identifiers.
pub fn prefix_of(address: &str, octets: usize) -> String {
    address
        .split('.')
        .take(octets.clamp(1, 4))
        .collect::<Vec<_>>()
        .join(".")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dotted_round_trip() {
        let ip = Ipv4::new(10, 76, 3, 9);
        assert_eq!(ip.to_string_dotted(), "10.76.3.9");
        assert_eq!(Ipv4::parse("10.76.3.9"), Some(ip));
        assert_eq!(Ipv4::parse("10.76.3"), None);
        assert_eq!(Ipv4::parse("10.76.3.999"), None);
    }

    #[test]
    fn prefixes() {
        let ip = Ipv4::new(15, 76, 0, 1);
        assert_eq!(ip.prefix(1), "15");
        assert_eq!(ip.prefix(2), "15.76");
        assert_eq!(ip.prefix(4), "15.76.0.1");
        assert_eq!(ip.prefix(9), "15.76.0.1");
        assert_eq!(prefix_of("15.76.0.1", 2), "15.76");
        assert_eq!(prefix_of("not-an-ip", 2), "not-an-ip");
    }
}
