//! Lock-free metrics and lightweight tracing for the nemo serving stack.
//!
//! The crate is deliberately dependency-free: it offers three atomic
//! primitives — [`Counter`], [`Gauge`] and [`Histogram`] (fixed
//! exponential buckets, mergeable snapshots) — collected under a
//! cheaply-cloneable [`Registry`], plus [`SpanTimer`] guards that feed a
//! histogram and an optional bounded structured event log.
//!
//! # Hot-path cost
//!
//! Recording is a handful of `Relaxed` atomic operations on
//! pre-registered handles; the registry's interior `Mutex` is touched
//! only at registration and snapshot time, never while recording. When
//! the event log is disabled (the default) span timers skip it behind a
//! single atomic load. Taking a [`Snapshot`] is the only operation that
//! walks the registry.
//!
//! # Logical vs physical metrics
//!
//! Every metric carries a [`Class`]:
//!
//! * [`Class::Logical`] — a pure function of the request stream. Logical
//!   metrics must be byte-identical across `NEMO_THREADS` and shard
//!   counts; the determinism suite asserts this on
//!   [`Snapshot::logical_only`] documents.
//! * [`Class::Physical`] — timings, I/O layout, scheduling. These vary
//!   run to run and are excluded from transcripts and determinism
//!   comparisons.
//!
//! # Exposition
//!
//! A [`Snapshot`] renders as a canonical `nemo-metrics/v1` JSON document
//! ([`Snapshot::to_json`], object keys sorted) or as Prometheus-style
//! text ([`Snapshot::to_prometheus`]).

#![warn(missing_docs)]

pub mod trace;

use std::collections::{BTreeMap, VecDeque};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// The schema tag every metrics document carries.
pub const SCHEMA: &str = "nemo-metrics/v1";

/// Number of histogram buckets. Bucket `i < HISTOGRAM_BUCKETS - 1` holds
/// values `v` with `v <= 2^i` (bucket 0 additionally holds 0); the last
/// bucket is the `+Inf` overflow.
pub const HISTOGRAM_BUCKETS: usize = 28;

/// Whether a metric is reproducible across thread and shard counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Class {
    /// A pure function of the request stream — identical at any
    /// `NEMO_THREADS` and shard count, safe to compare byte-for-byte.
    Logical,
    /// Timing-, layout- or scheduling-dependent — excluded from
    /// determinism comparisons and transcripts.
    Physical,
}

impl Class {
    /// The lowercase name used in JSON documents.
    pub fn as_str(self) -> &'static str {
        match self {
            Class::Logical => "logical",
            Class::Physical => "physical",
        }
    }
}

/// A monotonically increasing `u64` counter. Cloning shares the cell.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A signed gauge. Cloning shares the cell; prefer delta updates
/// ([`Gauge::add`]/[`Gauge::sub`]) when several components share one
/// gauge, and [`Gauge::set`] for sampled values owned by one writer.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Overwrites the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `n`.
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtracts `n`.
    pub fn sub(&self, n: i64) {
        self.0.fetch_sub(n, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A fixed-bucket exponential histogram of `u64` samples (typically
/// microseconds). Recording is lock-free; [`Histogram::snapshot`]
/// produces a mergeable [`HistogramSnapshot`].
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistogramCells>);

#[derive(Debug)]
struct HistogramCells {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram(Arc::new(HistogramCells {
            buckets: (0..HISTOGRAM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }))
    }
}

impl Histogram {
    /// The index of the bucket holding `value`.
    fn bucket_index(value: u64) -> usize {
        if value <= 1 {
            0
        } else {
            let ceil_log2 = 64 - (value - 1).leading_zeros() as usize;
            ceil_log2.min(HISTOGRAM_BUCKETS - 1)
        }
    }

    /// The inclusive upper bound of bucket `i`, or `None` for the final
    /// `+Inf` bucket.
    pub fn bucket_bound(i: usize) -> Option<u64> {
        if i + 1 < HISTOGRAM_BUCKETS {
            Some(1u64 << i)
        } else {
            None
        }
    }

    /// Records one sample.
    pub fn record(&self, value: u64) {
        self.0.buckets[Self::bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// A point-in-time copy of the bucket counts. Concurrent recording
    /// may make `count` and the bucket total momentarily disagree by the
    /// records in flight; quiesce before snapshotting when exactness
    /// matters.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self
                .0
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.0.count.load(Ordering::Relaxed),
            sum: self.0.sum.load(Ordering::Relaxed),
        }
    }
}

/// A frozen copy of a [`Histogram`]. Snapshots from histograms with the
/// same (fixed) bucket layout merge losslessly and associatively.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts, `HISTOGRAM_BUCKETS` entries.
    pub buckets: Vec<u64>,
    /// Total samples recorded.
    pub count: u64,
    /// Sum of all recorded values.
    pub sum: u64,
}

impl HistogramSnapshot {
    /// Folds `other` into `self` bucket by bucket. Merging the snapshots
    /// of two disjoint sample sets equals the snapshot of their union.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        if self.buckets.is_empty() {
            self.buckets = vec![0; other.buckets.len()];
        }
        assert_eq!(
            self.buckets.len(),
            other.buckets.len(),
            "histogram snapshots with different bucket layouts cannot merge"
        );
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum += other.sum;
    }
}

/// One registered metric: its class plus the live handle.
#[derive(Debug, Clone)]
enum Metric {
    Counter(Class, Counter),
    Gauge(Class, Gauge),
    Histogram(Class, Histogram),
}

/// One span completion in the structured event log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanEvent {
    /// Position in the log (monotonic, survives trimming).
    pub seq: u64,
    /// The span's name.
    pub name: String,
    /// Wall-clock duration in microseconds.
    pub micros: u64,
}

impl SpanEvent {
    /// Renders the event as one canonical JSON line.
    pub fn to_json_line(&self) -> String {
        format!(
            "{{\"micros\":{},\"name\":{},\"seq\":{}}}",
            self.micros,
            json_string(&self.name),
            self.seq
        )
    }
}

#[derive(Debug, Default)]
struct EventBuf {
    capacity: usize,
    next_seq: u64,
    items: VecDeque<SpanEvent>,
    /// Counts events evicted by overflow; registered (as
    /// `span_events_dropped`) when the log is enabled.
    dropped: Counter,
}

#[derive(Debug, Default)]
struct RegistryCells {
    metrics: Mutex<BTreeMap<String, Metric>>,
    events_enabled: AtomicBool,
    events: Mutex<EventBuf>,
}

/// A shareable collection of named metrics. Cloning shares the
/// underlying registry; `Default` creates a fresh empty one.
///
/// Registration is idempotent: asking for an existing name returns a
/// handle to the same cell (the class of the first registration wins).
/// Re-registering a name as a different *kind* panics — that is a
/// programming error, not a runtime condition.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    cells: Arc<RegistryCells>,
}

impl Registry {
    /// A fresh empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Registers (or retrieves) the counter `name`.
    pub fn counter(&self, name: &str, class: Class) -> Counter {
        let mut metrics = self.cells.metrics.lock().expect("metrics lock");
        match metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(class, Counter::default()))
        {
            Metric::Counter(_, handle) => handle.clone(),
            other => panic!("metric {name} already registered as {}", kind_name(other)),
        }
    }

    /// Registers (or retrieves) the gauge `name`.
    pub fn gauge(&self, name: &str, class: Class) -> Gauge {
        let mut metrics = self.cells.metrics.lock().expect("metrics lock");
        match metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(class, Gauge::default()))
        {
            Metric::Gauge(_, handle) => handle.clone(),
            other => panic!("metric {name} already registered as {}", kind_name(other)),
        }
    }

    /// Registers (or retrieves) the histogram `name`.
    pub fn histogram(&self, name: &str, class: Class) -> Histogram {
        let mut metrics = self.cells.metrics.lock().expect("metrics lock");
        match metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(class, Histogram::default()))
        {
            Metric::Histogram(_, handle) => handle.clone(),
            other => panic!("metric {name} already registered as {}", kind_name(other)),
        }
    }

    /// Turns the structured event log on, keeping at most `capacity`
    /// most-recent events. The log is off by default and costs one
    /// atomic load per span while off.
    pub fn enable_events(&self, capacity: usize) {
        let dropped = self.counter("span_events_dropped", Class::Physical);
        let mut buf = self.cells.events.lock().expect("events lock");
        buf.capacity = capacity;
        buf.dropped = dropped;
        self.cells
            .events_enabled
            .store(capacity > 0, Ordering::Release);
    }

    /// Appends a completed span to the event log (no-op while disabled).
    pub fn record_span(&self, name: &str, micros: u64) {
        if !self.cells.events_enabled.load(Ordering::Acquire) {
            return;
        }
        let mut buf = self.cells.events.lock().expect("events lock");
        if buf.capacity == 0 {
            return;
        }
        let seq = buf.next_seq;
        buf.next_seq += 1;
        let over = buf.items.len() + 1 > buf.capacity;
        if over {
            buf.items.pop_front();
            buf.dropped.inc();
        }
        buf.items.push_back(SpanEvent {
            seq,
            name: name.to_string(),
            micros,
        });
    }

    /// The retained span events, oldest first.
    pub fn events(&self) -> Vec<SpanEvent> {
        let buf = self.cells.events.lock().expect("events lock");
        buf.items.iter().cloned().collect()
    }

    /// Starts a span: the returned guard records its wall-clock duration
    /// into `histogram` (and the event log, when enabled) on drop.
    pub fn span(&self, name: &'static str, histogram: &Histogram) -> SpanTimer {
        SpanTimer {
            registry: self.clone(),
            histogram: histogram.clone(),
            name,
            started: Instant::now(),
        }
    }

    /// A point-in-time copy of every registered metric.
    pub fn snapshot(&self) -> Snapshot {
        let metrics = self.cells.metrics.lock().expect("metrics lock");
        Snapshot {
            metrics: metrics
                .iter()
                .map(|(name, metric)| {
                    let snap = match metric {
                        Metric::Counter(class, c) => MetricSnapshot {
                            class: *class,
                            value: Value::Counter(c.get()),
                        },
                        Metric::Gauge(class, g) => MetricSnapshot {
                            class: *class,
                            value: Value::Gauge(g.get()),
                        },
                        Metric::Histogram(class, h) => MetricSnapshot {
                            class: *class,
                            value: Value::Histogram(h.snapshot()),
                        },
                    };
                    (name.clone(), snap)
                })
                .collect(),
        }
    }
}

fn kind_name(metric: &Metric) -> &'static str {
    match metric {
        Metric::Counter(..) => "counter",
        Metric::Gauge(..) => "gauge",
        Metric::Histogram(..) => "histogram",
    }
}

/// A guard measuring one span; see [`Registry::span`].
#[derive(Debug)]
pub struct SpanTimer {
    registry: Registry,
    histogram: Histogram,
    name: &'static str,
    started: Instant,
}

impl Drop for SpanTimer {
    fn drop(&mut self) {
        let micros = u64::try_from(self.started.elapsed().as_micros()).unwrap_or(u64::MAX);
        self.histogram.record(micros);
        self.registry.record_span(self.name, micros);
    }
}

/// The frozen value of one metric.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricSnapshot {
    /// The metric's determinism class.
    pub class: Class,
    /// The frozen value.
    pub value: Value,
}

/// A frozen metric value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A counter reading.
    Counter(u64),
    /// A gauge reading.
    Gauge(i64),
    /// A histogram reading.
    Histogram(HistogramSnapshot),
}

impl Value {
    fn kind(&self) -> &'static str {
        match self {
            Value::Counter(_) => "counter",
            Value::Gauge(_) => "gauge",
            Value::Histogram(_) => "histogram",
        }
    }
}

/// A point-in-time copy of a whole [`Registry`], name-sorted.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Snapshot {
    /// Metric name → frozen value, in `BTreeMap` (byte) order.
    pub metrics: BTreeMap<String, MetricSnapshot>,
}

impl Snapshot {
    /// Only the [`Class::Logical`] metrics — the subset the determinism
    /// suite compares byte-for-byte across thread and shard counts.
    pub fn logical_only(&self) -> Snapshot {
        Snapshot {
            metrics: self
                .metrics
                .iter()
                .filter(|(_, m)| m.class == Class::Logical)
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect(),
        }
    }

    /// The canonical `nemo-metrics/v1` JSON document: object keys sorted,
    /// integers exact, no whitespace. Parseable by any JSON parser.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"metrics\":{");
        for (i, (name, metric)) in self.metrics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{}:{{\"class\":\"{}\",\"kind\":\"{}\",\"value\":",
                json_string(name),
                metric.class.as_str(),
                metric.value.kind()
            );
            match &metric.value {
                Value::Counter(v) => {
                    let _ = write!(out, "{v}");
                }
                Value::Gauge(v) => {
                    let _ = write!(out, "{v}");
                }
                Value::Histogram(h) => {
                    out.push_str("{\"bounds\":[");
                    for (j, _) in h.buckets.iter().enumerate().take(h.buckets.len() - 1) {
                        if j > 0 {
                            out.push(',');
                        }
                        let _ = write!(out, "{}", Histogram::bucket_bound(j).unwrap_or(0));
                    }
                    out.push_str("],\"buckets\":[");
                    for (j, b) in h.buckets.iter().enumerate() {
                        if j > 0 {
                            out.push(',');
                        }
                        let _ = write!(out, "{b}");
                    }
                    let _ = write!(out, "],\"count\":{},\"sum\":{}}}", h.count, h.sum);
                }
            }
            out.push('}');
        }
        let _ = write!(out, "}},\"schema\":\"{SCHEMA}\"}}");
        out
    }

    /// Prometheus-style text exposition: `# TYPE` headers, cumulative
    /// `_bucket{{le="…"}}` series for histograms, one metric per family.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, metric) in &self.metrics {
            match &metric.value {
                Value::Counter(v) => {
                    let _ = writeln!(out, "# TYPE {name} counter\n{name} {v}");
                }
                Value::Gauge(v) => {
                    let _ = writeln!(out, "# TYPE {name} gauge\n{name} {v}");
                }
                Value::Histogram(h) => {
                    let _ = writeln!(out, "# TYPE {name} histogram");
                    let mut cumulative = 0u64;
                    for (i, b) in h.buckets.iter().enumerate() {
                        cumulative += b;
                        match Histogram::bucket_bound(i) {
                            Some(bound) => {
                                let _ =
                                    writeln!(out, "{name}_bucket{{le=\"{bound}\"}} {cumulative}");
                            }
                            None => {
                                let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {cumulative}");
                            }
                        }
                    }
                    let _ = writeln!(out, "{name}_sum {}\n{name}_count {}", h.sum, h.count);
                }
            }
        }
        out
    }
}

/// Escapes `text` as a JSON string literal, quotes included.
pub(crate) fn json_string(text: &str) -> String {
    let mut out = String::with_capacity(text.len() + 2);
    out.push('"');
    for ch in text.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_share_cells_across_clones() {
        let registry = Registry::new();
        let c = registry.counter("serve_mutations_applied", Class::Logical);
        let c2 = registry.counter("serve_mutations_applied", Class::Logical);
        c.inc();
        c2.add(4);
        assert_eq!(c.get(), 5);

        let g = registry.gauge("store_segments", Class::Physical);
        let g2 = registry.gauge("store_segments", Class::Physical);
        g.add(3);
        g2.sub(1);
        assert_eq!(g.get(), 2);
        g.set(-7);
        assert_eq!(g2.get(), -7);
    }

    #[test]
    #[should_panic(expected = "already registered as counter")]
    fn re_registering_a_name_as_another_kind_panics() {
        let registry = Registry::new();
        registry.counter("x", Class::Physical);
        registry.gauge("x", Class::Physical);
    }

    #[test]
    fn histogram_buckets_follow_powers_of_two() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 0);
        assert_eq!(Histogram::bucket_index(2), 1);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 2);
        assert_eq!(Histogram::bucket_index(5), 3);
        assert_eq!(Histogram::bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
        assert_eq!(Histogram::bucket_bound(0), Some(1));
        assert_eq!(Histogram::bucket_bound(3), Some(8));
        assert_eq!(Histogram::bucket_bound(HISTOGRAM_BUCKETS - 1), None);
        // Every finite bound lands in its own bucket.
        for i in 0..HISTOGRAM_BUCKETS - 1 {
            let bound = Histogram::bucket_bound(i).unwrap();
            assert_eq!(Histogram::bucket_index(bound), i, "bound {bound}");
        }
    }

    #[test]
    fn histogram_snapshots_capture_count_and_sum() {
        let h = Histogram::default();
        for v in [0, 1, 2, 7, 100, 1 << 30] {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 6);
        assert_eq!(snap.sum, 1 + 2 + 7 + 100 + (1 << 30));
        assert_eq!(snap.buckets.iter().sum::<u64>(), snap.count);
    }

    #[test]
    fn merging_disjoint_snapshots_equals_the_union_snapshot() {
        let left = Histogram::default();
        let right = Histogram::default();
        let union = Histogram::default();
        for v in [3u64, 9, 4096] {
            left.record(v);
            union.record(v);
        }
        for v in [0u64, 5, 77, 1 << 20] {
            right.record(v);
            union.record(v);
        }
        let mut merged = left.snapshot();
        merged.merge(&right.snapshot());
        assert_eq!(merged, union.snapshot());
        // Merging into an empty default snapshot adopts the layout.
        let mut from_empty = HistogramSnapshot::default();
        from_empty.merge(&merged);
        assert_eq!(from_empty, merged);
    }

    #[test]
    fn concurrent_recording_is_lossless() {
        let registry = Registry::new();
        let counter = registry.counter("c", Class::Physical);
        let histogram = registry.histogram("h", Class::Physical);
        let workers: Vec<_> = (0..4)
            .map(|_| {
                let counter = counter.clone();
                let histogram = histogram.clone();
                std::thread::spawn(move || {
                    for v in 0..1000u64 {
                        counter.inc();
                        histogram.record(v);
                    }
                })
            })
            .collect();
        for w in workers {
            w.join().unwrap();
        }
        assert_eq!(counter.get(), 4000);
        let snap = histogram.snapshot();
        assert_eq!(snap.count, 4000);
        assert_eq!(snap.sum, 4 * (999 * 1000 / 2));
        assert_eq!(snap.buckets.iter().sum::<u64>(), 4000);
    }

    #[test]
    fn logical_only_filters_by_class() {
        let registry = Registry::new();
        registry.counter("a_logical", Class::Logical).add(2);
        registry.counter("b_physical", Class::Physical).add(9);
        registry.gauge("c_logical", Class::Logical).set(5);
        let logical = registry.snapshot().logical_only();
        assert_eq!(
            logical.metrics.keys().collect::<Vec<_>>(),
            vec!["a_logical", "c_logical"]
        );
    }

    #[test]
    fn json_document_is_canonical_and_versioned() {
        let registry = Registry::new();
        registry.counter("b", Class::Physical).add(3);
        registry.counter("a", Class::Logical).add(1);
        registry.gauge("g", Class::Physical).set(-2);
        let doc = registry.snapshot().to_json();
        assert!(doc.ends_with("\"schema\":\"nemo-metrics/v1\"}"));
        // Name-sorted: "a" serialises before "b" before "g".
        let a = doc.find("\"a\"").unwrap();
        let b = doc.find("\"b\"").unwrap();
        let g = doc.find("\"g\"").unwrap();
        assert!(a < b && b < g);
        assert!(doc.contains("\"a\":{\"class\":\"logical\",\"kind\":\"counter\",\"value\":1}"));
        assert!(doc.contains("\"g\":{\"class\":\"physical\",\"kind\":\"gauge\",\"value\":-2}"));
    }

    #[test]
    fn histogram_json_carries_bounds_buckets_count_sum() {
        let registry = Registry::new();
        let h = registry.histogram("lat", Class::Physical);
        h.record(3);
        let doc = registry.snapshot().to_json();
        assert!(doc.contains("\"kind\":\"histogram\""));
        assert!(doc.contains("\"bounds\":[1,2,4,8"));
        assert!(doc.contains("\"count\":1,\"sum\":3"));
    }

    #[test]
    fn prometheus_exposition_is_cumulative() {
        let registry = Registry::new();
        registry.counter("hits", Class::Logical).add(7);
        let h = registry.histogram("lat", Class::Physical);
        h.record(1);
        h.record(2);
        h.record(1 << 40); // overflow bucket
        let text = registry.snapshot().to_prometheus();
        assert!(text.contains("# TYPE hits counter\nhits 7\n"));
        assert!(text.contains("# TYPE lat histogram\n"));
        assert!(text.contains("lat_bucket{le=\"1\"} 1\n"));
        assert!(text.contains("lat_bucket{le=\"2\"} 2\n"));
        assert!(text.contains("lat_bucket{le=\"+Inf\"} 3\n"));
        assert!(text.contains("lat_count 3\n"));
    }

    #[test]
    fn the_event_log_is_off_by_default_and_bounded_when_on() {
        let registry = Registry::new();
        registry.record_span("ignored", 10);
        assert!(registry.events().is_empty());

        registry.enable_events(2);
        registry.record_span("a", 1);
        registry.record_span("b", 2);
        registry.record_span("c", 3);
        let events = registry.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].name, "b");
        assert_eq!(events[0].seq, 1);
        assert_eq!(events[1].name, "c");
        assert_eq!(events[1].seq, 2);
        assert_eq!(
            events[1].to_json_line(),
            "{\"micros\":3,\"name\":\"c\",\"seq\":2}"
        );
    }

    #[test]
    fn overflowing_the_event_log_counts_the_drops() {
        let registry = Registry::new();
        registry.enable_events(3);
        for i in 0..10 {
            registry.record_span("work", i);
        }
        let events = registry.events();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].seq, 7, "oldest retained is the 8th record");
        let dropped = registry.counter("span_events_dropped", Class::Physical);
        assert_eq!(dropped.get(), 7);
        let doc = registry.snapshot().to_json();
        assert!(doc.contains(
            "\"span_events_dropped\":{\"class\":\"physical\",\"kind\":\"counter\",\"value\":7}"
        ));
        assert!(registry
            .snapshot()
            .to_prometheus()
            .contains("span_events_dropped 7"));
    }

    #[test]
    fn span_timers_record_into_their_histogram_and_event_log() {
        let registry = Registry::new();
        registry.enable_events(16);
        let h = registry.histogram("span_micros", Class::Physical);
        {
            let _span = registry.span("unit_of_work", &h);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 1);
        let events = registry.events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].name, "unit_of_work");
    }

    #[test]
    fn json_strings_escape_control_characters() {
        assert_eq!(json_string("plain"), "\"plain\"");
        assert_eq!(json_string("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(json_string("x\n\u{1}"), "\"x\\n\\u0001\"");
    }
}
