//! Request-scoped trace trees: causal spans through the serving stack.
//!
//! A [`Tracer`] mints one trace per request ([`Tracer::begin`]) and
//! collects the spans opened while that trace is active on the calling
//! thread ([`Tracer::span`]) into a tree: every span records its parent,
//! its [`Class`], and timestamps relative to the trace's start. Completed
//! traces land in a bounded flight recorder (ring buffer, oldest evicted
//! first with a drop counter) plus, when the root span exceeds the slow
//! threshold, a separate slow-request log that survives ring eviction.
//!
//! # Hot-path cost
//!
//! A disabled tracer (the default) costs one `Acquire` load per
//! [`Tracer::begin`]/[`Tracer::span`] call — the same discipline as the
//! registry's event log. An enabled tracer records spans into
//! thread-local state: opening and closing a span touches no lock and
//! allocates nothing (span names are `&'static str`); the only `Mutex`
//! is taken once per completed trace, when it retires into the ring.
//!
//! # Determinism classing
//!
//! Every span carries a [`Class`]. The trace *skeleton* — span names,
//! parent/child structure, per-request span counts, causal order — of the
//! [`Class::Logical`] subset is a pure function of the request stream and
//! must be byte-identical across `NEMO_THREADS` and shard counts
//! ([`Tracer::logical_skeletons`] renders exactly that subset, parents
//! remapped to the nearest logical ancestor, all timing stripped).
//! Timestamps, durations, and [`Class::Physical`] spans vary run to run
//! and are excluded.
//!
//! # Exposition
//!
//! [`Tracer::to_doc`] renders the flight recorder as a canonical
//! `nemo-trace/v1` JSON document; [`Tracer::to_chrome`] renders the same
//! traces as a Chrome trace-event (`chrome://tracing` / Perfetto
//! `traceEvents`) document.

use crate::{json_string, Class};
use std::cell::RefCell;
use std::collections::{HashMap, VecDeque};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// The schema tag every trace document carries.
pub const TRACE_SCHEMA: &str = "nemo-trace/v1";

mod clock {
    //! Nanosecond ticks for the span hot path. A span open/close records
    //! one raw monotonic read; the division down to microseconds is
    //! deferred to trace retirement, off the per-span path.
    use std::sync::OnceLock;
    use std::time::Instant;

    /// Monotonic nanoseconds since the first call in this process.
    #[inline]
    pub fn ticks() -> u64 {
        static EPOCH: OnceLock<Instant> = OnceLock::new();
        let epoch = *EPOCH.get_or_init(Instant::now);
        u64::try_from(epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Converts a tick (nanosecond) delta to whole microseconds.
    pub fn micros(delta_ticks: u64) -> u64 {
        delta_ticks / 1_000
    }
}

/// One completed (or defensively closed) span inside a [`Trace`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// 1-based id, unique within the trace; the root span is id 1.
    pub span_id: u64,
    /// The parent span's id, or `None` for the root.
    pub parent_id: Option<u64>,
    /// The span's name (e.g. `request.mutate`, `wal.log`). Static so an
    /// enabled span open never allocates.
    pub name: &'static str,
    /// Determinism class: logical spans form the comparable skeleton.
    pub class: Class,
    /// Microseconds from the trace's start to this span's open.
    pub start_micros: u64,
    /// Microseconds from this span's open to its close.
    pub duration_micros: u64,
    /// Error cause attached via [`Tracer::tag_error`], if any.
    pub error: Option<String>,
}

/// One completed trace tree, spans in open (causal) order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    /// 1-based id, unique per tracer, assigned at [`Tracer::begin`].
    pub trace_id: u64,
    /// Microseconds from the tracer's creation to this trace's start
    /// (physical; anchors the Chrome export's absolute timeline).
    pub base_micros: u64,
    /// The spans, in the order they were opened. The root is first.
    pub spans: Vec<SpanRecord>,
}

impl Trace {
    /// Renders the trace as a canonical JSON object (keys sorted).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(out, "{{\"base_micros\":{},\"spans\":[", self.base_micros);
        for (i, span) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"class\":\"{}\",\"duration_micros\":{}",
                span.class.as_str(),
                span.duration_micros
            );
            if let Some(error) = &span.error {
                let _ = write!(out, ",\"error\":{}", json_string(error));
            }
            let _ = write!(out, ",\"name\":{},\"parent_id\":", json_string(span.name));
            match span.parent_id {
                Some(p) => {
                    let _ = write!(out, "{p}");
                }
                None => out.push_str("null"),
            }
            let _ = write!(
                out,
                ",\"span_id\":{},\"start_micros\":{}}}",
                span.span_id, span.start_micros
            );
        }
        let _ = write!(out, "],\"trace_id\":{}}}", self.trace_id);
        out
    }

    /// The logical skeleton: one line per [`Class::Logical`] span, names
    /// only, indented by logical depth (physical ancestors collapse onto
    /// the nearest logical one), no ids and no timing. Root spans are
    /// logical by construction, so every trace renders at least one line.
    pub fn logical_skeleton(&self) -> String {
        // child_depth[i]: the indent a child of span i renders at — the
        // span's own logical depth plus one when the span is logical.
        let mut child_depth: HashMap<u64, usize> = HashMap::new();
        let mut out = String::new();
        for span in &self.spans {
            let depth = span
                .parent_id
                .and_then(|p| child_depth.get(&p).copied())
                .unwrap_or(0);
            if span.class == Class::Logical {
                for _ in 0..depth {
                    out.push_str("  ");
                }
                out.push_str(span.name);
                out.push('\n');
                child_depth.insert(span.span_id, depth + 1);
            } else {
                child_depth.insert(span.span_id, depth);
            }
        }
        out
    }
}

#[derive(Debug)]
struct ActiveTrace {
    trace_id: u64,
    /// Tick count at the trace's start; span offsets are deltas from it.
    started_ticks: u64,
    /// Tick delta from the tracer's epoch to the trace's start.
    base_ticks: u64,
    /// While the trace is active, each span's `start_micros` and
    /// `duration_micros` hold raw tick deltas; [`Tracer::retire`]
    /// converts them to microseconds.
    spans: Vec<SpanRecord>,
    /// Indices (into `spans`) of the currently open spans, outermost
    /// first. The root stays open for the trace's whole life.
    stack: Vec<usize>,
}

impl ActiveTrace {
    fn finish_all(&mut self) {
        let elapsed = clock::ticks().wrapping_sub(self.started_ticks);
        for &i in self.stack.iter().rev() {
            let span = &mut self.spans[i];
            span.duration_micros = elapsed.saturating_sub(span.start_micros);
        }
        self.stack.clear();
    }
}

#[derive(Debug)]
struct TracerState {
    capacity: usize,
    completed: VecDeque<Trace>,
    slow: VecDeque<Trace>,
}

#[derive(Debug)]
struct TracerInner {
    /// Process-unique tracer id — the key into the thread-local active
    /// set (never reused, so a dropped tracer's stale entries can't
    /// alias a new one).
    id: u64,
    enabled: AtomicBool,
    epoch_ticks: u64,
    next_trace_id: AtomicU64,
    slow_threshold_micros: AtomicU64,
    dropped: AtomicU64,
    slow_total: AtomicU64,
    slow_dropped: AtomicU64,
    state: Mutex<TracerState>,
}

/// Allocator for [`TracerInner::id`].
static NEXT_TRACER_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// This thread's active traces, keyed by tracer id — normally zero
    /// or one entry, so a linear scan beats any map. Keeping the active
    /// trace thread-local is what makes span open/close lock-free: only
    /// trace retirement touches the shared ring.
    static ACTIVE: RefCell<Vec<(u64, ActiveTrace)>> = const { RefCell::new(Vec::new()) };
}

thread_local! {
    /// Recycled span/stack buffers: retirement reclaims the evicted
    /// trace's spans vector and the finished trace's stack, so a
    /// steady-state [`Tracer::begin`] allocates nothing.
    static SCRATCH: RefCell<Vec<(Vec<SpanRecord>, Vec<usize>)>> =
        const { RefCell::new(Vec::new()) };
}

/// The per-server flight recorder. Cloning shares the recorder; a
/// default tracer is disabled and records nothing.
#[derive(Debug, Clone)]
pub struct Tracer {
    inner: Arc<TracerInner>,
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::new()
    }
}

impl Tracer {
    /// A fresh, disabled tracer.
    pub fn new() -> Tracer {
        Tracer {
            inner: Arc::new(TracerInner {
                id: NEXT_TRACER_ID.fetch_add(1, Ordering::Relaxed),
                enabled: AtomicBool::new(false),
                epoch_ticks: clock::ticks(),
                next_trace_id: AtomicU64::new(1),
                slow_threshold_micros: AtomicU64::new(0),
                dropped: AtomicU64::new(0),
                slow_total: AtomicU64::new(0),
                slow_dropped: AtomicU64::new(0),
                state: Mutex::new(TracerState {
                    capacity: 256,
                    completed: VecDeque::new(),
                    slow: VecDeque::new(),
                }),
            }),
        }
    }

    /// Turns the recorder on, keeping at most `capacity` most-recent
    /// completed traces (and as many slow ones). `capacity == 0`
    /// disables.
    pub fn enable(&self, capacity: usize) {
        let mut state = self.inner.state.lock().expect("tracer lock");
        state.capacity = capacity;
        self.inner.enabled.store(capacity > 0, Ordering::Release);
    }

    /// Whether the recorder is on.
    pub fn is_enabled(&self) -> bool {
        self.inner.enabled.load(Ordering::Acquire)
    }

    /// Traces whose root span meets or exceeds `micros` are additionally
    /// retained in the slow-request log. `0` (the default) disables the
    /// log.
    pub fn set_slow_threshold_micros(&self, micros: u64) {
        self.inner
            .slow_threshold_micros
            .store(micros, Ordering::Relaxed);
    }

    /// Completed traces evicted from the flight recorder so far.
    pub fn dropped(&self) -> u64 {
        self.inner.dropped.load(Ordering::Relaxed)
    }

    /// Traces that ever crossed the slow threshold (including ones since
    /// evicted from the slow log).
    pub fn slow_total(&self) -> u64 {
        self.inner.slow_total.load(Ordering::Relaxed)
    }

    /// Starts a trace rooted at a [`Class::Logical`] span named `name`,
    /// bound to the calling thread until the guard drops. A still-active
    /// trace on this thread (a bug in the caller) is completed first
    /// rather than leaked.
    pub fn begin(&self, name: &'static str) -> TraceGuard {
        if !self.is_enabled() {
            return TraceGuard {
                tracer: self.clone(),
                trace_id: 0,
            };
        }
        let trace_id = self.inner.next_trace_id.fetch_add(1, Ordering::Relaxed);
        let started_ticks = clock::ticks();
        let base_ticks = started_ticks.wrapping_sub(self.inner.epoch_ticks);
        let (mut spans, mut stack) = SCRATCH.with(|s| s.borrow_mut().pop()).unwrap_or_default();
        spans.reserve(8);
        stack.reserve(8);
        spans.push(SpanRecord {
            span_id: 1,
            parent_id: None,
            name,
            class: Class::Logical,
            start_micros: 0,
            duration_micros: 0,
            error: None,
        });
        stack.push(0);
        ACTIVE.with(|cell| {
            let mut entries = cell.borrow_mut();
            if let Some(pos) = entries.iter().position(|(id, _)| *id == self.inner.id) {
                let (_, mut stale) = entries.swap_remove(pos);
                stale.finish_all();
                Self::retire(&self.inner, stale);
            }
            entries.push((
                self.inner.id,
                ActiveTrace {
                    trace_id,
                    started_ticks,
                    base_ticks,
                    spans,
                    stack,
                },
            ));
        });
        TraceGuard {
            tracer: self.clone(),
            trace_id,
        }
    }

    /// Opens a child span under the calling thread's active trace; a
    /// no-op guard when the tracer is disabled or no trace is active
    /// (e.g. background work outside any request).
    pub fn span(&self, name: &'static str, class: Class) -> SpanGuard {
        if !self.is_enabled() {
            return SpanGuard {
                tracer_id: 0,
                trace_id: 0,
                index: 0,
            };
        }
        ACTIVE.with(|cell| {
            let mut entries = cell.borrow_mut();
            let Some((_, active)) = entries.iter_mut().find(|(id, _)| *id == self.inner.id) else {
                return SpanGuard {
                    tracer_id: 0,
                    trace_id: 0,
                    index: 0,
                };
            };
            let parent_id = active
                .stack
                .last()
                .map(|&i| active.spans[i].span_id)
                .unwrap_or(1);
            let index = active.spans.len();
            let span_id = index as u64 + 1;
            active.spans.push(SpanRecord {
                span_id,
                parent_id: Some(parent_id),
                name,
                class,
                start_micros: clock::ticks().wrapping_sub(active.started_ticks),
                duration_micros: 0,
                error: None,
            });
            active.stack.push(index);
            SpanGuard {
                tracer_id: self.inner.id,
                trace_id: active.trace_id,
                index,
            }
        })
    }

    /// Attaches `cause` to the innermost open span of the calling
    /// thread's active trace (first error wins). A no-op when disabled or
    /// no trace is active.
    pub fn tag_error(&self, cause: &str) {
        if !self.is_enabled() {
            return;
        }
        ACTIVE.with(|cell| {
            let mut entries = cell.borrow_mut();
            if let Some((_, active)) = entries.iter_mut().find(|(id, _)| *id == self.inner.id) {
                if let Some(&i) = active.stack.last() {
                    let span = &mut active.spans[i];
                    if span.error.is_none() {
                        span.error = Some(cause.to_string());
                    }
                }
            }
        });
    }

    /// Moves a finished trace into the completed ring (and, when its root
    /// crossed the slow threshold, the slow log), evicting oldest-first.
    /// The one lock on the recording path — taken once per trace. Tick
    /// deltas are converted to microseconds here, and the evicted trace's
    /// buffers are recycled for the next [`Tracer::begin`].
    fn retire(inner: &TracerInner, mut active: ActiveTrace) {
        for span in &mut active.spans {
            // Convert the open and the close instants (not the duration)
            // so exact child-within-parent nesting survives truncation.
            let end = clock::micros(span.start_micros.saturating_add(span.duration_micros));
            span.start_micros = clock::micros(span.start_micros);
            span.duration_micros = end - span.start_micros;
        }
        let trace = Trace {
            trace_id: active.trace_id,
            base_micros: clock::micros(active.base_ticks),
            spans: active.spans,
        };
        let mut stack = active.stack;
        let mut reclaimed: Vec<SpanRecord> = Vec::new();
        {
            let mut state = inner.state.lock().expect("tracer lock");
            let threshold = inner.slow_threshold_micros.load(Ordering::Relaxed);
            if threshold > 0 && trace.spans[0].duration_micros >= threshold {
                inner.slow_total.fetch_add(1, Ordering::Relaxed);
                if state.slow.len() + 1 > state.capacity {
                    state.slow.pop_front();
                    inner.slow_dropped.fetch_add(1, Ordering::Relaxed);
                }
                state.slow.push_back(trace.clone());
            }
            if state.completed.len() + 1 > state.capacity {
                if let Some(evicted) = state.completed.pop_front() {
                    reclaimed = evicted.spans;
                    reclaimed.clear();
                }
                inner.dropped.fetch_add(1, Ordering::Relaxed);
            }
            state.completed.push_back(trace);
        }
        stack.clear();
        SCRATCH.with(|s| {
            let mut pool = s.borrow_mut();
            if pool.len() < 8 {
                pool.push((reclaimed, stack));
            }
        });
    }

    /// The newest `last_n` completed traces, oldest first (`0` = all
    /// retained).
    pub fn traces(&self, last_n: usize) -> Vec<Trace> {
        let state = self.inner.state.lock().expect("tracer lock");
        let skip = if last_n == 0 {
            0
        } else {
            state.completed.len().saturating_sub(last_n)
        };
        state.completed.iter().skip(skip).cloned().collect()
    }

    /// The retained slow traces, oldest first.
    pub fn slow_traces(&self) -> Vec<Trace> {
        let state = self.inner.state.lock().expect("tracer lock");
        state.slow.iter().cloned().collect()
    }

    /// The canonical `nemo-trace/v1` JSON document over the newest
    /// `last_n` completed traces (`0` = all retained): object keys
    /// sorted, integers exact, no whitespace.
    pub fn to_doc(&self, last_n: usize) -> String {
        let traces = self.traces(last_n);
        let slow_retained = self.inner.state.lock().expect("tracer lock").slow.len();
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"dropped\":{},\"schema\":\"{TRACE_SCHEMA}\",\"slow_dropped\":{},\"slow_retained\":{slow_retained},\"slow_total\":{},\"traces\":[",
            self.dropped(),
            self.inner.slow_dropped.load(Ordering::Relaxed),
            self.slow_total(),
        );
        for (i, trace) in traces.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&trace.to_json());
        }
        out.push_str("]}");
        out
    }

    /// The logical skeletons of the newest `last_n` completed traces,
    /// concatenated oldest first — the byte-comparable determinism
    /// artifact (no ids, no timing, no physical spans).
    pub fn logical_skeletons(&self, last_n: usize) -> String {
        self.traces(last_n)
            .iter()
            .map(Trace::logical_skeleton)
            .collect()
    }

    /// A Chrome trace-event (`chrome://tracing` / Perfetto) document over
    /// the newest `last_n` completed traces: complete (`"ph":"X"`)
    /// events, one `tid` per trace, timestamps relative to the tracer's
    /// creation.
    pub fn to_chrome(&self, last_n: usize) -> String {
        let mut out = String::from("{\"traceEvents\":[");
        let mut first = true;
        for trace in self.traces(last_n) {
            for span in &trace.spans {
                if !first {
                    out.push(',');
                }
                first = false;
                out.push_str("{\"args\":{");
                if let Some(error) = &span.error {
                    let _ = write!(out, "\"error\":{},", json_string(error));
                }
                let _ = write!(
                    out,
                    "\"trace_id\":{}}},\"cat\":\"{}\",\"dur\":{},\"name\":{},\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{}}}",
                    trace.trace_id,
                    span.class.as_str(),
                    span.duration_micros,
                    json_string(span.name),
                    trace.trace_id,
                    trace.base_micros + span.start_micros,
                );
            }
        }
        out.push_str("]}");
        out
    }
}

/// The guard returned by [`Tracer::begin`]; dropping it completes the
/// trace and moves it into the flight recorder.
#[derive(Debug)]
pub struct TraceGuard {
    tracer: Tracer,
    /// `0` marks an inert guard (tracer disabled at `begin`).
    trace_id: u64,
}

impl Drop for TraceGuard {
    fn drop(&mut self) {
        if self.trace_id == 0 {
            return;
        }
        let inner = &self.tracer.inner;
        // Only retire the trace this guard started: a nested begin() on
        // the same thread already retired ours.
        let finished = ACTIVE.with(|cell| {
            let mut entries = cell.borrow_mut();
            entries
                .iter()
                .position(|(id, a)| *id == inner.id && a.trace_id == self.trace_id)
                .map(|pos| entries.swap_remove(pos).1)
        });
        if let Some(mut active) = finished {
            active.finish_all();
            Tracer::retire(inner, active);
        }
    }
}

/// The guard returned by [`Tracer::span`]; dropping it closes the span.
/// Holds only plain ids — closing a span touches nothing but the
/// thread-local active trace (no refcount traffic, no lock).
#[derive(Debug)]
pub struct SpanGuard {
    tracer_id: u64,
    /// `0` marks an inert guard (disabled tracer or no active trace).
    trace_id: u64,
    index: usize,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if self.trace_id == 0 {
            return;
        }
        ACTIVE.with(|cell| {
            let mut entries = cell.borrow_mut();
            let Some((_, active)) = entries.iter_mut().find(|(id, _)| *id == self.tracer_id) else {
                return;
            };
            if active.trace_id != self.trace_id {
                return;
            }
            let elapsed = clock::ticks().wrapping_sub(active.started_ticks);
            let span = &mut active.spans[self.index];
            span.duration_micros = elapsed.saturating_sub(span.start_micros);
            // Guards drop LIFO in straight-line code, so this is a pop;
            // the retain keeps the stack sound even if a caller leaks
            // ordering.
            if active.stack.last() == Some(&self.index) {
                active.stack.pop();
            } else {
                active.stack.retain(|&i| i != self.index);
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_disabled_tracer_records_nothing() {
        let tracer = Tracer::new();
        {
            let _t = tracer.begin("request.query");
            let _s = tracer.span("query.cache", Class::Logical);
        }
        assert!(tracer.traces(0).is_empty());
        assert_eq!(tracer.to_doc(0), format!("{{\"dropped\":0,\"schema\":\"{TRACE_SCHEMA}\",\"slow_dropped\":0,\"slow_retained\":0,\"slow_total\":0,\"traces\":[]}}"));
    }

    #[test]
    fn spans_form_a_tree_with_causal_ids() {
        let tracer = Tracer::new();
        tracer.enable(16);
        {
            let _t = tracer.begin("request.mutate");
            {
                let _route = tracer.span("mutate.route", Class::Logical);
            }
            let _apply = tracer.span("mutate.apply", Class::Physical);
            let _log = tracer.span("wal.log", Class::Logical);
        }
        let traces = tracer.traces(0);
        assert_eq!(traces.len(), 1);
        let spans = &traces[0].spans;
        assert_eq!(
            spans
                .iter()
                .map(|s| (s.span_id, s.parent_id, s.name))
                .collect::<Vec<_>>(),
            vec![
                (1, None, "request.mutate"),
                (2, Some(1), "mutate.route"),
                (3, Some(1), "mutate.apply"),
                (4, Some(3), "wal.log"),
            ]
        );
        // Children nest within their parents numerically.
        for span in &spans[1..] {
            let parent = &spans[(span.parent_id.unwrap() - 1) as usize];
            assert!(span.start_micros >= parent.start_micros);
            assert!(
                span.start_micros + span.duration_micros
                    <= parent.start_micros + parent.duration_micros
            );
        }
    }

    #[test]
    fn the_ring_evicts_oldest_and_counts_drops() {
        let tracer = Tracer::new();
        tracer.enable(2);
        for _ in 0..5 {
            let _t = tracer.begin("request.stats");
        }
        let traces = tracer.traces(0);
        assert_eq!(traces.len(), 2);
        assert_eq!(
            traces.iter().map(|t| t.trace_id).collect::<Vec<_>>(),
            vec![4, 5]
        );
        assert_eq!(tracer.dropped(), 3);
        assert_eq!(tracer.traces(1).len(), 1);
        assert_eq!(tracer.traces(1)[0].trace_id, 5);
    }

    #[test]
    fn slow_traces_are_retained_and_counted() {
        let tracer = Tracer::new();
        tracer.enable(8);
        tracer.set_slow_threshold_micros(1); // everything is slow
        {
            let _t = tracer.begin("request.query");
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        tracer.set_slow_threshold_micros(u64::MAX); // nothing is slow
        {
            let _t = tracer.begin("request.query");
        }
        assert_eq!(tracer.slow_total(), 1);
        let slow = tracer.slow_traces();
        assert_eq!(slow.len(), 1);
        assert_eq!(slow[0].trace_id, 1);
        assert_eq!(tracer.traces(0).len(), 2);
    }

    #[test]
    fn tag_error_marks_the_innermost_open_span_first_wins() {
        let tracer = Tracer::new();
        tracer.enable(8);
        {
            let _t = tracer.begin("request.mutate");
            {
                let _fsync = tracer.span("store.fsync", Class::Physical);
                tracer.tag_error("fsync failed: injected");
                tracer.tag_error("second error ignored");
            }
            tracer.tag_error("root-level error");
        }
        let traces = tracer.traces(0);
        let spans = &traces[0].spans;
        assert_eq!(spans[1].error.as_deref(), Some("fsync failed: injected"));
        assert_eq!(spans[0].error.as_deref(), Some("root-level error"));
    }

    #[test]
    fn concurrent_threads_keep_separate_traces() {
        let tracer = Tracer::new();
        tracer.enable(64);
        let workers: Vec<_> = (0..4)
            .map(|_| {
                let tracer = tracer.clone();
                std::thread::spawn(move || {
                    for _ in 0..8 {
                        let _t = tracer.begin("request.mutate");
                        let _a = tracer.span("wal.log", Class::Logical);
                    }
                })
            })
            .collect();
        for w in workers {
            w.join().unwrap();
        }
        let traces = tracer.traces(0);
        assert_eq!(traces.len(), 32);
        for trace in &traces {
            assert_eq!(trace.spans.len(), 2);
            assert_eq!(trace.spans[0].name, "request.mutate");
            assert_eq!(trace.spans[1].parent_id, Some(1));
        }
    }

    #[test]
    fn logical_skeletons_collapse_physical_ancestors() {
        let tracer = Tracer::new();
        tracer.enable(8);
        {
            let _t = tracer.begin("request.mutate");
            let _apply = tracer.span("mutate.apply", Class::Physical);
            let _log = tracer.span("wal.log", Class::Logical);
            let _fsync = tracer.span("store.fsync", Class::Physical);
        }
        assert_eq!(tracer.logical_skeletons(0), "request.mutate\n  wal.log\n");
    }

    #[test]
    fn trace_documents_are_canonical_and_versioned() {
        let tracer = Tracer::new();
        tracer.enable(8);
        {
            let _t = tracer.begin("request.query");
            let _c = tracer.span("query.cache", Class::Logical);
        }
        let doc = tracer.to_doc(0);
        assert!(doc.starts_with("{\"dropped\":0,\"schema\":\"nemo-trace/v1\""));
        assert!(doc.contains("\"trace_id\":1"));
        assert!(doc.contains("{\"class\":\"logical\",\"duration_micros\":"));
        assert!(doc.contains("\"name\":\"query.cache\",\"parent_id\":1,\"span_id\":2"));
        assert!(doc.contains("\"parent_id\":null,\"span_id\":1"));
    }

    #[test]
    fn chrome_export_emits_complete_events_per_span() {
        let tracer = Tracer::new();
        tracer.enable(8);
        {
            let _t = tracer.begin("request.sync");
            let _f = tracer.span("store.fsync", Class::Physical);
            tracer.tag_error("boom");
        }
        let doc = tracer.to_chrome(0);
        assert!(doc.starts_with("{\"traceEvents\":["));
        assert!(doc.contains("\"ph\":\"X\""));
        assert!(doc.contains("\"name\":\"request.sync\""));
        assert!(doc.contains("\"cat\":\"physical\""));
        assert!(doc.contains("{\"error\":\"boom\",\"trace_id\":1}"));
        assert!(doc.ends_with("]}"));
    }

    #[test]
    fn a_nested_begin_retires_the_stale_trace() {
        let tracer = Tracer::new();
        tracer.enable(8);
        let outer = tracer.begin("request.query");
        let inner = tracer.begin("request.stats");
        drop(inner);
        drop(outer); // must not retire trace 2 again
        let traces = tracer.traces(0);
        assert_eq!(
            traces.iter().map(|t| t.trace_id).collect::<Vec<_>>(),
            vec![1, 2]
        );
        assert_eq!(traces[0].spans[0].name, "request.query");
    }
}
