//! Property tests for histogram snapshot/merge: merging must be
//! loss-free (the merge of disjoint sample sets equals the snapshot of
//! their union, with exact count and sum) and associative (any merge
//! order yields the same snapshot).

use nemo_obs::{Histogram, HistogramSnapshot};
use proptest::prelude::*;

/// Records every value into a fresh histogram and snapshots it.
fn snap(values: &[u64]) -> HistogramSnapshot {
    let h = Histogram::default();
    for &v in values {
        h.record(v);
    }
    h.snapshot()
}

proptest! {
    /// `snap(a) ⊕ snap(b) == snap(a ∪ b)`, and the merged snapshot keeps
    /// exact count/sum — no sample is lost or double-counted.
    #[test]
    fn merge_is_loss_free(
        a in prop::collection::vec(0u64..1_000_000_000, 0..40),
        b in prop::collection::vec(0u64..1_000_000_000, 0..40),
    ) {
        let mut merged = snap(&a);
        merged.merge(&snap(&b));
        let union: Vec<u64> = a.iter().chain(b.iter()).copied().collect();
        prop_assert_eq!(&merged, &snap(&union));
        prop_assert_eq!(merged.count, (a.len() + b.len()) as u64);
        prop_assert_eq!(merged.sum, union.iter().sum::<u64>());
        prop_assert_eq!(merged.buckets.iter().sum::<u64>(), merged.count);
    }

    /// `(a ⊕ b) ⊕ c == a ⊕ (b ⊕ c)`, and merging commutes.
    #[test]
    fn merge_is_associative_and_commutative(
        a in prop::collection::vec(0u64..1_000_000_000, 0..30),
        b in prop::collection::vec(0u64..1_000_000_000, 0..30),
        c in prop::collection::vec(0u64..1_000_000_000, 0..30),
    ) {
        let (sa, sb, sc) = (snap(&a), snap(&b), snap(&c));
        let mut left_first = sa.clone();
        left_first.merge(&sb);
        left_first.merge(&sc);
        let mut right_first_tail = sb.clone();
        right_first_tail.merge(&sc);
        let mut right_first = sa.clone();
        right_first.merge(&right_first_tail);
        prop_assert_eq!(&left_first, &right_first);
        let mut flipped = sb.clone();
        flipped.merge(&sa);
        let mut unflipped = sa.clone();
        unflipped.merge(&sb);
        prop_assert_eq!(flipped, unflipped);
    }
}
