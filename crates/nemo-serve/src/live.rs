//! The live network: event-sourced state over every backend substrate.
//!
//! A [`LiveNetwork`] owns the property graph (the NetworkX/strawman
//! representation) and the node/edge frames (the pandas representation;
//! the SQL representation is the same two tables mounted in a
//! [`Database`]), and the only way to change any of them is
//! [`LiveNetwork::apply`], which applies one [`Mutation`] to every
//! substrate in lockstep, bumps the epoch, and appends a [`WalRecord`] to
//! the in-memory write-ahead log. A rejected mutation touches nothing and
//! consumes no epoch.

use crate::error::ServeError;
use crate::mutation::{Epoch, Mutation, WalRecord};
use dataframe::DataFrame;
use nemo_core::apps::ApplicationWrapper;
use nemo_core::{Application, Backend, NetworkState};
use netgraph::json::graph_to_json;
use netgraph::{attrs, AttrValue, Graph};
use sqlengine::Database;
use std::collections::HashMap;
use trafficgen::stream::TimedEvent;
use trafficgen::{export, TrafficWorkload};

/// The serving layer's live state: all backend substrates plus the WAL.
#[derive(Debug, Clone)]
pub struct LiveNetwork {
    graph: Graph,
    nodes: DataFrame,
    edges: DataFrame,
    epoch: Epoch,
    wal: Vec<WalRecord>,
    /// Row index of each node id in the node frame, kept in lockstep with
    /// `nodes` so write-path lookups are O(1) instead of a column scan.
    node_rows: HashMap<String, usize>,
    /// Row index of each `(source, target)` pair in the edge frame,
    /// nested by source so lookups probe with `&str` — no per-lookup key
    /// allocation on the hot mutation path.
    edge_rows: HashMap<String, HashMap<String, usize>>,
}

/// Builds the row indices from frames (tolerating missing columns — a
/// frame without the schema columns simply yields empty indices, matching
/// the old scan-based lookups that found nothing).
#[allow(clippy::type_complexity)]
fn row_indices(
    nodes: &DataFrame,
    edges: &DataFrame,
) -> (
    HashMap<String, usize>,
    HashMap<String, HashMap<String, usize>>,
) {
    let mut node_rows = HashMap::new();
    if let Ok(ids) = nodes.column("id") {
        for (row, v) in ids.values().iter().enumerate() {
            if let Some(id) = v.as_str() {
                node_rows.insert(id.to_string(), row);
            }
        }
    }
    let mut edge_rows: HashMap<String, HashMap<String, usize>> = HashMap::new();
    if let (Ok(sources), Ok(targets)) = (edges.column("source"), edges.column("target")) {
        for (row, (s, t)) in sources.values().iter().zip(targets.values()).enumerate() {
            if let (Some(s), Some(t)) = (s.as_str(), t.as_str()) {
                edge_rows
                    .entry(s.to_string())
                    .or_default()
                    .insert(t.to_string(), row);
            }
        }
    }
    (node_rows, edge_rows)
}

impl LiveNetwork {
    /// Materializes a generated workload at epoch 0 with an empty WAL.
    pub fn from_workload(workload: &TrafficWorkload) -> Self {
        let (nodes, edges) = export::to_frames(workload);
        let (node_rows, edge_rows) = row_indices(&nodes, &edges);
        LiveNetwork {
            graph: export::to_graph(workload),
            nodes,
            edges,
            epoch: 0,
            wal: Vec::new(),
            node_rows,
            edge_rows,
        }
    }

    /// Reassembles a network from restored substrates (the snapshot path).
    /// The WAL starts empty: a snapshot *is* the log's prefix, compacted.
    pub(crate) fn from_parts(
        graph: Graph,
        nodes: DataFrame,
        edges: DataFrame,
        epoch: Epoch,
    ) -> Self {
        let (node_rows, edge_rows) = row_indices(&nodes, &edges);
        LiveNetwork {
            graph,
            nodes,
            edges,
            epoch,
            wal: Vec::new(),
            node_rows,
            edge_rows,
        }
    }

    /// The current epoch: the number of mutations ever applied (epoch 0 is
    /// the freshly materialized workload or the snapshot's epoch).
    pub fn epoch(&self) -> Epoch {
        self.epoch
    }

    /// The in-memory write-ahead log since construction (or since the
    /// snapshot this network was restored from).
    pub fn wal(&self) -> &[WalRecord] {
        &self.wal
    }

    /// The property-graph substrate.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The node frame of the tabular substrate.
    pub fn nodes(&self) -> &DataFrame {
        &self.nodes
    }

    /// The edge frame of the tabular substrate.
    pub fn edges(&self) -> &DataFrame {
        &self.edges
    }

    /// The current state materialized for one backend (cloned: sandboxed
    /// programs run against copies, never the live substrates).
    pub fn state(&self, backend: Backend) -> NetworkState {
        match backend {
            Backend::Strawman | Backend::NetworkX => NetworkState::Graph(self.graph.clone()),
            Backend::Pandas => NetworkState::Frames {
                nodes: self.nodes.clone(),
                edges: self.edges.clone(),
            },
            Backend::Sql => {
                let mut db = Database::new();
                db.create_table("nodes", self.nodes.clone());
                db.create_table("edges", self.edges.clone());
                NetworkState::Database(db)
            }
        }
    }

    /// Applies one mutation to every substrate in lockstep. On success the
    /// epoch advances by one and the WAL grows by one record; on conflict
    /// the state is untouched.
    pub fn apply(&mut self, at_ms: u64, mutation: Mutation) -> Result<Epoch, ServeError> {
        self.check(&mutation)?;
        Ok(self.apply_unchecked(at_ms, mutation))
    }

    /// Applies a mutation that was validated *shard-locally* (see
    /// [`LiveNetwork::check_routed`]): what a shard partition runs after
    /// the router validated the mutation globally. The one semantic
    /// difference from [`LiveNetwork::apply`] is that an `AddEdge` whose
    /// endpoints live on other shards is applied through the graph's
    /// auto-created attribute-less *ghost* endpoints.
    pub(crate) fn apply_routed(
        &mut self,
        at_ms: u64,
        mutation: Mutation,
    ) -> Result<Epoch, ServeError> {
        self.check_routed(&mutation)?;
        Ok(self.apply_unchecked(at_ms, mutation))
    }

    /// The write path shared by [`LiveNetwork::apply`] and
    /// [`LiveNetwork::apply_routed`]; the mutation must already be
    /// validated against this network.
    fn apply_unchecked(&mut self, at_ms: u64, mutation: Mutation) -> Epoch {
        match &mutation {
            Mutation::AddNode {
                id,
                prefix16,
                prefix24,
            } => {
                self.graph.add_node(
                    id,
                    attrs([
                        ("prefix16", AttrValue::Str(prefix16.as_str().into())),
                        ("prefix24", AttrValue::Str(prefix24.as_str().into())),
                    ]),
                );
                self.node_rows.insert(id.clone(), self.nodes.n_rows());
                self.nodes
                    .push_row(export::endpoint_row_parts(id, prefix16, prefix24))
                    .expect("node row matches schema");
            }
            Mutation::AddEdge {
                source,
                target,
                bytes,
                connections,
                packets,
            } => {
                self.graph.add_edge(
                    source,
                    target,
                    attrs([
                        ("bytes", AttrValue::Int(*bytes)),
                        ("connections", AttrValue::Int(*connections)),
                        ("packets", AttrValue::Int(*packets)),
                    ]),
                );
                self.edge_rows
                    .entry(source.clone())
                    .or_default()
                    .insert(target.clone(), self.edges.n_rows());
                self.edges
                    .push_row(export::flow_row_parts(
                        source,
                        target,
                        *bytes,
                        *connections,
                        *packets,
                    ))
                    .expect("edge row matches schema");
            }
            Mutation::SetFlow {
                source,
                target,
                bytes,
                connections,
                packets,
            } => {
                for (key, value) in [
                    ("bytes", *bytes),
                    ("connections", *connections),
                    ("packets", *packets),
                ] {
                    self.graph
                        .set_edge_attr(source, target, key, AttrValue::Int(value))
                        .expect("edge checked present");
                }
                let row = self
                    .edge_row(source, target)
                    .expect("edge row checked present");
                for (column, value) in [
                    ("bytes", *bytes),
                    ("connections", *connections),
                    ("packets", *packets),
                ] {
                    self.edges
                        .set_value(row, column, AttrValue::Int(value))
                        .expect("edge columns exist");
                }
            }
            Mutation::SetNodeAttr { id, key, value } => {
                self.graph
                    .set_node_attr(id, key, value.clone())
                    .expect("node checked present");
                if self.nodes.has_column(key) {
                    let row = self.node_row(id).expect("node row checked present");
                    self.nodes
                        .set_value(row, key, value.clone())
                        .expect("column checked present");
                }
            }
            Mutation::RemoveEdge { source, target } => {
                self.graph
                    .remove_edge(source, target)
                    .expect("edge checked present");
                let by_target = self
                    .edge_rows
                    .get_mut(source.as_str())
                    .expect("edge row checked present");
                let row = by_target
                    .remove(target.as_str())
                    .expect("edge row checked present");
                if by_target.is_empty() {
                    self.edge_rows.remove(source.as_str());
                }
                self.edges.remove_row(row).expect("row index in range");
                // Rows above the removed one shifted down by one.
                for index in self.edge_rows.values_mut().flat_map(|m| m.values_mut()) {
                    if *index > row {
                        *index -= 1;
                    }
                }
            }
        }
        self.epoch += 1;
        self.wal.push(WalRecord {
            epoch: self.epoch,
            at_ms,
            mutation,
        });
        self.epoch
    }

    /// Normalizes and applies one [`trafficgen`] stream event.
    pub fn apply_event(&mut self, event: &TimedEvent) -> Result<Epoch, ServeError> {
        self.apply(event.at_ms, Mutation::from_event(&event.event))
    }

    /// [`LiveNetwork::apply`] plus durability, in WAL order: the record is
    /// validated, *logged first*, then applied, then a snapshot is taken
    /// when due. A conflict leaves both state and log untouched; a log
    /// failure (disk full, I/O error) surfaces *before* the in-memory
    /// state moves, so memory never runs ahead of the log. A process crash
    /// between log and apply replays the logged record on recovery —
    /// standard redo semantics.
    pub fn apply_persisted(
        &mut self,
        at_ms: u64,
        mutation: Mutation,
        persistence: &mut crate::persist::Persistence,
    ) -> Result<Epoch, ServeError> {
        self.check(&mutation)?;
        let record = WalRecord {
            epoch: self.epoch + 1,
            at_ms,
            mutation,
        };
        persistence.log(&record)?;
        let epoch = self
            .apply(at_ms, record.mutation)
            .expect("mutation was validated before logging");
        debug_assert_eq!(epoch, record.epoch);
        persistence.maybe_snapshot(self)?;
        Ok(epoch)
    }

    /// [`LiveNetwork::apply_event`] with durability (see
    /// [`LiveNetwork::apply_persisted`]).
    pub fn apply_event_persisted(
        &mut self,
        event: &TimedEvent,
        persistence: &mut crate::persist::Persistence,
    ) -> Result<Epoch, ServeError> {
        self.apply_persisted(event.at_ms, Mutation::from_event(&event.event), persistence)
    }

    /// Validates a mutation against the current state without touching it.
    fn check(&self, mutation: &Mutation) -> Result<(), ServeError> {
        let conflict = |msg: String| Err(ServeError::Conflict(msg));
        match mutation {
            Mutation::AddNode { id, .. } => {
                if self.graph.has_node(id) {
                    return conflict(format!("node {id} already exists"));
                }
            }
            Mutation::AddEdge { source, target, .. } => {
                if !self.graph.has_node(source) || !self.graph.has_node(target) {
                    return conflict(format!("edge {source}->{target} names an unknown endpoint"));
                }
                if self.graph.has_edge(source, target) {
                    return conflict(format!("edge {source}->{target} already exists"));
                }
            }
            Mutation::SetFlow { source, target, .. } | Mutation::RemoveEdge { source, target } => {
                if !self.graph.has_edge(source, target) {
                    return conflict(format!("edge {source}->{target} does not exist"));
                }
            }
            Mutation::SetNodeAttr { id, key, .. } => {
                if !self.graph.has_node(id) {
                    return conflict(format!("node {id} does not exist"));
                }
                // Rewriting the identity column would desync the tabular
                // substrates from the graph (node names are immutable).
                if key == "id" {
                    return conflict("the 'id' attribute is the node's identity".to_string());
                }
            }
        }
        Ok(())
    }

    /// Shard-local validation: identical to [`LiveNetwork::check`] except
    /// that `AddEdge` does not require its endpoints — the router already
    /// checked them against the *owning* shards, and this partition may
    /// legitimately hold neither.
    fn check_routed(&self, mutation: &Mutation) -> Result<(), ServeError> {
        let conflict = |msg: String| Err(ServeError::Conflict(msg));
        match mutation {
            Mutation::AddNode { id, .. } => {
                if self.graph.has_node(id) {
                    return conflict(format!("node {id} already exists"));
                }
            }
            Mutation::AddEdge { source, target, .. } => {
                if self.graph.has_edge(source, target) {
                    return conflict(format!("edge {source}->{target} already exists"));
                }
            }
            Mutation::SetFlow { source, target, .. } | Mutation::RemoveEdge { source, target } => {
                if !self.graph.has_edge(source, target) {
                    return conflict(format!("edge {source}->{target} does not exist"));
                }
            }
            Mutation::SetNodeAttr { id, key, .. } => {
                if !self.graph.has_node(id) {
                    return conflict(format!("node {id} does not exist"));
                }
                if key == "id" {
                    return conflict("the 'id' attribute is the node's identity".to_string());
                }
            }
        }
        Ok(())
    }

    pub(crate) fn node_row(&self, id: &str) -> Option<usize> {
        self.node_rows.get(id).copied()
    }

    pub(crate) fn edge_row(&self, source: &str, target: &str) -> Option<usize> {
        // O(1), allocation-free: both levels probe with `&str`.
        self.edge_rows.get(source)?.get(target).copied()
    }
}

/// Equality of the *state* (graph, frames, epoch) — not of the WAL, so a
/// replayed network with a truncated log still compares equal to the
/// directly built one.
impl PartialEq for LiveNetwork {
    fn eq(&self, other: &Self) -> bool {
        self.epoch == other.epoch
            && self.graph == other.graph
            && self.nodes == other.nodes
            && self.edges == other.edges
    }
}

/// A live network is itself an application the pipeline can serve: same
/// schema text as the traffic-analysis wrapper, but described over the
/// *current* state rather than a frozen workload.
impl ApplicationWrapper for LiveNetwork {
    fn application(&self) -> Application {
        Application::TrafficAnalysis
    }

    fn describe(&self) -> String {
        format!(
            "Application: network traffic analysis over a live communication graph.\n\
             Nodes are network endpoints identified by their IPv4 address (string id); each node \
             carries 'prefix16' and 'prefix24' attributes with its /16 and /24 address prefixes.\n\
             Directed edges represent observed communication; each edge carries integer 'bytes', \
             'connections' and 'packets' attributes.\n\
             The graph has {} nodes and {} edges (state epoch {}).",
            self.graph.number_of_nodes(),
            self.graph.number_of_edges(),
            self.epoch
        )
    }

    fn initial_state(&self, backend: Backend) -> NetworkState {
        self.state(backend)
    }

    fn raw_json(&self) -> String {
        graph_to_json(&self.graph).to_json()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trafficgen::{evolve, generate, StreamConfig, TrafficConfig};

    fn workload() -> TrafficWorkload {
        generate(&TrafficConfig {
            nodes: 16,
            edges: 20,
            prefixes: 2,
            seed: 4,
        })
    }

    fn totals(live: &LiveNetwork) -> (f64, f64, f64) {
        let graph = live.graph().total_edge_attr("bytes");
        let frame = live.edges().column("bytes").unwrap().sum().unwrap();
        let mut db = match live.state(Backend::Sql) {
            NetworkState::Database(db) => db,
            _ => unreachable!(),
        };
        let sql = db
            .execute("SELECT SUM(bytes) AS s FROM edges")
            .unwrap()
            .rows()
            .unwrap()
            .value(0, "s")
            .unwrap()
            .as_f64()
            .unwrap();
        (graph, frame, sql)
    }

    #[test]
    fn substrates_stay_in_lockstep_under_a_stream() {
        let w = workload();
        let mut live = LiveNetwork::from_workload(&w);
        let events = evolve(
            &w,
            &StreamConfig {
                events: 120,
                seed: 8,
            },
        );
        for event in &events {
            live.apply_event(event).unwrap();
        }
        assert_eq!(live.epoch(), 120);
        assert_eq!(live.wal().len(), 120);
        let (g, f, s) = totals(&live);
        assert_eq!(g, f);
        assert_eq!(g, s);
        assert_eq!(
            live.graph().number_of_edges(),
            live.edges().n_rows(),
            "graph edges and edge rows diverged"
        );
        assert_eq!(live.graph().number_of_nodes(), live.nodes().n_rows());
        // WAL epochs are contiguous and 1-based.
        for (i, record) in live.wal().iter().enumerate() {
            assert_eq!(record.epoch, i as u64 + 1);
        }
    }

    #[test]
    fn row_indices_stay_in_lockstep_with_the_frames() {
        let w = workload();
        let mut live = LiveNetwork::from_workload(&w);
        let events = evolve(
            &w,
            &StreamConfig {
                events: 150,
                seed: 21,
            },
        );
        let check = |live: &LiveNetwork| {
            assert_eq!(live.node_rows.len(), live.nodes().n_rows());
            let indexed: usize = live.edge_rows.values().map(|m| m.len()).sum();
            assert_eq!(indexed, live.edges().n_rows());
            for (id, &row) in &live.node_rows {
                assert_eq!(live.nodes().value(row, "id").unwrap().as_str(), Some(&**id));
            }
            for (s, by_target) in &live.edge_rows {
                for (t, &row) in by_target {
                    assert_eq!(
                        live.edges().value(row, "source").unwrap().as_str(),
                        Some(&**s)
                    );
                    assert_eq!(
                        live.edges().value(row, "target").unwrap().as_str(),
                        Some(&**t)
                    );
                }
            }
        };
        check(&live);
        let mut removed_any = false;
        for event in &events {
            removed_any |= matches!(event.event, trafficgen::NetEvent::DropFlow { .. });
            live.apply_event(event).unwrap();
            check(&live);
        }
        assert!(removed_any, "stream must exercise RemoveEdge; enlarge it");
        // A snapshot-restored network rebuilds identical indices.
        let restored = crate::snapshot::read_snapshot(&crate::snapshot::write_snapshot(&live))
            .expect("round trip");
        check(&restored);
        assert_eq!(restored.node_rows, live.node_rows);
        assert_eq!(restored.edge_rows, live.edge_rows);
    }

    #[test]
    fn conflicts_touch_nothing_and_consume_no_epoch() {
        let w = workload();
        let mut live = LiveNetwork::from_workload(&w);
        let before = live.clone();
        let existing = w.endpoints[0].to_string_dotted();
        let err = live
            .apply(
                1,
                Mutation::AddNode {
                    id: existing.clone(),
                    prefix16: "0.0".into(),
                    prefix24: "0.0.0".into(),
                },
            )
            .unwrap_err();
        assert!(matches!(err, ServeError::Conflict(_)));
        assert!(live
            .apply(
                1,
                Mutation::RemoveEdge {
                    source: "1.2.3.4".into(),
                    target: existing,
                }
            )
            .is_err());
        assert!(live
            .apply(
                1,
                Mutation::AddEdge {
                    source: "1.2.3.4".into(),
                    target: "5.6.7.8".into(),
                    bytes: 1,
                    connections: 1,
                    packets: 1,
                }
            )
            .is_err());
        // The identity column is immutable: rewriting it would desync the
        // frames from the graph.
        assert!(live
            .apply(
                1,
                Mutation::SetNodeAttr {
                    id: w.endpoints[0].to_string_dotted(),
                    key: "id".into(),
                    value: "9.9.9.9".into(),
                }
            )
            .is_err());
        assert_eq!(live, before);
        assert!(live.wal().is_empty());
    }

    #[test]
    fn set_node_attr_mirrors_only_schema_columns() {
        let w = workload();
        let mut live = LiveNetwork::from_workload(&w);
        let id = w.endpoints[0].to_string_dotted();
        live.apply(
            1,
            Mutation::SetNodeAttr {
                id: id.clone(),
                key: "label".into(),
                value: "app:db".into(),
            },
        )
        .unwrap();
        live.apply(
            2,
            Mutation::SetNodeAttr {
                id: id.clone(),
                key: "weight".into(),
                value: AttrValue::Int(9),
            },
        )
        .unwrap();
        assert_eq!(
            live.graph().get_node_attr(&id, "label").unwrap().as_str(),
            Some("app:db")
        );
        let row = live.node_row(&id).unwrap();
        assert_eq!(
            live.nodes().value(row, "label").unwrap().as_str(),
            Some("app:db")
        );
        // `weight` is not in the tabular schema: graph-only.
        assert!(live.graph().get_node_attr(&id, "weight").is_ok());
        assert!(!live.nodes().has_column("weight"));
    }

    #[test]
    fn live_network_is_an_application_wrapper() {
        let live = LiveNetwork::from_workload(&workload());
        assert_eq!(live.application(), Application::TrafficAnalysis);
        assert!(live.describe().contains("state epoch 0"));
        assert!(live.raw_json().contains("\"links\""));
        for backend in Backend::ALL {
            let state = live.initial_state(backend);
            assert!(!state.describe().is_empty());
        }
    }
}
