//! The serving layer's error type.

use std::fmt;

/// Why a mutation could not be applied or a snapshot could not be read.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The mutation is not applicable to the current state (duplicate node,
    /// missing endpoint, unknown edge). The state is left untouched and no
    /// epoch is consumed.
    Conflict(String),
    /// A snapshot document failed to parse or failed validation, or a WAL
    /// segment does not continue the snapshot it is replayed onto.
    Corrupt(String),
    /// A serving-layer storage precondition failed (e.g. creating a store
    /// in an occupied directory, recovering an empty one). Failures of the
    /// store *itself* carry their context in [`ServeError::Store`].
    Storage(String),
    /// The durable store under the serving layer failed, keeping the
    /// failure's context: which shard's store it was (`None` for an
    /// unsharded server) and the global epoch being logged or synced when
    /// it surfaced (`None` outside the apply path).
    Store {
        /// Index of the failing shard, when the server is sharded.
        shard: Option<u32>,
        /// Global epoch in flight when the failure surfaced.
        epoch: Option<u64>,
        /// The underlying storage error, unchanged.
        source: nemo_store::StoreError,
    },
    /// The server is in degraded read-only mode: a shard's write path is
    /// poisoned (an unrecoverable storage fault — see
    /// [`nemo_store::StoreError::Poisoned`]), so mutations are rejected
    /// while queries keep answering at the last durable epoch.
    Degraded {
        /// Index of the poisoned shard, when the server is sharded.
        shard: Option<u32>,
        /// Global epoch through which state is known durable; queries keep
        /// answering at this epoch.
        last_durable_epoch: u64,
        /// The poisoning cause — the rendering of the first
        /// [`nemo_store::StoreError`] that poisoned the write path, so an
        /// operator can tell a failed fsync from ENOSPC without shell
        /// access to the store directory. Empty when the cause was not
        /// recorded (e.g. a store poisoned before this field existed).
        cause: String,
    },
}

impl ServeError {
    /// Stamps shard and epoch context onto a storage failure. [`Store`]
    /// variants gain the context (without overwriting context already
    /// present); [`Corrupt`] keeps its variant — recovery tests match on
    /// it — but the shard is recorded in the message. Other variants pass
    /// through untouched.
    ///
    /// [`Store`]: ServeError::Store
    /// [`Corrupt`]: ServeError::Corrupt
    pub fn with_shard(self, shard: u32, epoch: Option<u64>) -> ServeError {
        match self {
            ServeError::Store {
                shard: old_shard,
                epoch: old_epoch,
                source,
            } => ServeError::Store {
                shard: old_shard.or(Some(shard)),
                epoch: old_epoch.or(epoch),
                source,
            },
            ServeError::Corrupt(msg) => ServeError::Corrupt(format!("shard {shard}: {msg}")),
            ServeError::Degraded {
                shard: old_shard,
                last_durable_epoch,
                cause,
            } => ServeError::Degraded {
                shard: old_shard.or(Some(shard)),
                last_durable_epoch,
                cause,
            },
            other => other,
        }
    }

    /// Whether retrying the same operation can legitimately succeed —
    /// the serving-layer view of [`nemo_store::StoreError::retryable`].
    /// Only transient storage I/O qualifies; conflicts, corruption,
    /// poisoning and degraded mode are states, not transients.
    pub fn retryable(&self) -> bool {
        match self {
            ServeError::Store { source, .. } => source.retryable(),
            _ => false,
        }
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Conflict(msg) => write!(f, "mutation conflict: {msg}"),
            ServeError::Corrupt(msg) => write!(f, "corrupt snapshot or WAL: {msg}"),
            ServeError::Storage(msg) => write!(f, "storage failure: {msg}"),
            ServeError::Store {
                shard,
                epoch,
                source,
            } => {
                write!(f, "storage failure")?;
                if let Some(shard) = shard {
                    write!(f, " at shard {shard}")?;
                }
                if let Some(epoch) = epoch {
                    write!(f, " (epoch {epoch})")?;
                }
                write!(f, ": {source}")
            }
            ServeError::Degraded {
                shard,
                last_durable_epoch,
                cause,
            } => {
                write!(f, "degraded read-only mode")?;
                if let Some(shard) = shard {
                    write!(f, " (shard {shard} write path poisoned)")?;
                } else {
                    write!(f, " (write path poisoned)")?;
                }
                write!(
                    f,
                    ": mutations rejected, queries served at last durable epoch \
                     {last_durable_epoch}"
                )?;
                if !cause.is_empty() {
                    write!(f, "; cause: {cause}")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Store { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<nemo_store::StoreError> for ServeError {
    fn from(err: nemo_store::StoreError) -> Self {
        match err {
            // Store-level corruption is serving-level corruption: recovery
            // treats both as "this log/snapshot cannot be trusted".
            nemo_store::StoreError::Corrupt(msg) => ServeError::Corrupt(msg),
            source => ServeError::Store {
                shard: None,
                epoch: None,
                source,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nemo_store::StoreError;

    #[test]
    fn store_errors_keep_shard_and_epoch_context() {
        let source = StoreError::Io {
            op: "fsync".to_string(),
            path: "wal-0001.seg".to_string(),
            detail: "disk gone".to_string(),
        };
        let err = ServeError::from(source.clone()).with_shard(2, Some(17));
        assert_eq!(
            err,
            ServeError::Store {
                shard: Some(2),
                epoch: Some(17),
                source: source.clone(),
            }
        );
        assert_eq!(
            err.to_string(),
            "storage failure at shard 2 (epoch 17): storage I/O error: fsync wal-0001.seg: disk gone"
        );
        // Context already present is not overwritten by a later wrap.
        let rewrapped = err.with_shard(9, Some(99));
        assert_eq!(
            rewrapped,
            ServeError::Store {
                shard: Some(2),
                epoch: Some(17),
                source,
            }
        );
    }

    #[test]
    fn degraded_reports_shard_and_durable_epoch() {
        let err = ServeError::Degraded {
            shard: None,
            last_durable_epoch: 41,
            cause: String::new(),
        }
        .with_shard(3, Some(99));
        assert_eq!(
            err,
            ServeError::Degraded {
                shard: Some(3),
                last_durable_epoch: 41,
                cause: String::new(),
            }
        );
        assert_eq!(
            err.to_string(),
            "degraded read-only mode (shard 3 write path poisoned): mutations rejected, \
             queries served at last durable epoch 41"
        );
        let with_cause = ServeError::Degraded {
            shard: None,
            last_durable_epoch: 7,
            cause: "storage I/O error: fsync wal-0001.seg: disk gone".to_string(),
        };
        assert_eq!(
            with_cause.to_string(),
            "degraded read-only mode (write path poisoned): mutations rejected, queries \
             served at last durable epoch 7; cause: storage I/O error: fsync \
             wal-0001.seg: disk gone"
        );
        assert!(!err.retryable());
        // Plain I/O wrapped as Store stays retryable through the wrapper;
        // fsync-class does not.
        let io = ServeError::from(StoreError::io_at(
            "append",
            std::path::Path::new("w.seg"),
            std::io::Error::other("x"),
        ));
        assert!(io.retryable());
        let fsync = ServeError::from(StoreError::io_at(
            "fsync",
            std::path::Path::new("w.seg"),
            std::io::Error::other("x"),
        ));
        assert!(!fsync.retryable());
    }

    #[test]
    fn corrupt_keeps_its_variant_for_recovery_matching() {
        let err =
            ServeError::from(StoreError::Corrupt("bad frame".to_string())).with_shard(1, None);
        assert!(matches!(err, ServeError::Corrupt(msg) if msg == "shard 1: bad frame"));
    }
}
