//! The serving layer's error type.

use std::fmt;

/// Why a mutation could not be applied or a snapshot could not be read.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The mutation is not applicable to the current state (duplicate node,
    /// missing endpoint, unknown edge). The state is left untouched and no
    /// epoch is consumed.
    Conflict(String),
    /// A snapshot document failed to parse or failed validation, or a WAL
    /// segment does not continue the snapshot it is replayed onto.
    Corrupt(String),
    /// The durable store under the serving layer failed: an I/O error
    /// while logging or snapshotting, or unrecoverable on-disk damage
    /// found during recovery.
    Storage(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Conflict(msg) => write!(f, "mutation conflict: {msg}"),
            ServeError::Corrupt(msg) => write!(f, "corrupt snapshot or WAL: {msg}"),
            ServeError::Storage(msg) => write!(f, "storage failure: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<nemo_store::StoreError> for ServeError {
    fn from(err: nemo_store::StoreError) -> Self {
        match err {
            nemo_store::StoreError::Corrupt(msg) => ServeError::Corrupt(msg),
            other => ServeError::Storage(other.to_string()),
        }
    }
}
