//! Sharded live state: N [`LiveNetwork`] partitions behind one router.
//!
//! Nodes hash to shards by `crc32(id) % shards`; a mutation is owned by
//! the shard of the node it names (`AddNode`/`SetNodeAttr`) or of its
//! *source* endpoint (`AddEdge`/`SetFlow`/`RemoveEdge`), so every edge
//! lives in exactly one partition. The router validates each mutation
//! *globally* — consulting the owning shards, with exactly the conflict
//! semantics of an unsharded [`LiveNetwork::apply`] — then applies it to
//! its owner partition only.
//!
//! **Ghost endpoints.** A cross-shard edge names a target the owning
//! partition does not hold; the graph substrate auto-creates it as an
//! attribute-less *ghost* node. The invariant (relied on by the merge and
//! the global checks): in shard `k`'s graph, a node is real — carries its
//! attributes and counts toward the merged view — iff the hash owns it
//! (`shard_of(id) == k`); any node the hash routes elsewhere is a ghost.
//!
//! **Epoch vector.** Each partition counts its own *local* epochs; the
//! global epoch is `base + Σ local`. Per-shard mutation streams are
//! independently applicable in any interleaving (ghosts make cross-shard
//! edges shard-locally valid), which is what lets each shard recover from
//! its own WAL with no cross-shard coordination — and what the
//! consistent-cut property test in `tests/sharding.rs` exercises.
//!
//! **Deterministic merge.** Every partition carries one *sequence number*
//! per frame row: genesis rows keep their row index in the original
//! unsharded frame, mutation-inserted rows get `seq_base + (global -
//! base)`. Merging k frames is a k-way merge ascending by sequence
//! number, which reproduces the unsharded frame *byte-identically* — the
//! foundation of the shard-count-invariance guarantee.

use crate::error::ServeError;
use crate::live::LiveNetwork;
use crate::mutation::{Epoch, Mutation};
use dataframe::DataFrame;
use netgraph::Graph;

/// Which shard owns the node `id` (stable across runs and platforms:
/// CRC32 of the id bytes, modulo the shard count).
pub fn shard_of(id: &str, shards: u32) -> u32 {
    if shards <= 1 {
        0
    } else {
        nemo_store::crc32::crc32(id.as_bytes()) % shards
    }
}

/// Which shard owns (applies and logs) `mutation`.
pub fn route_mutation(mutation: &Mutation, shards: u32) -> u32 {
    match mutation {
        Mutation::AddNode { id, .. } | Mutation::SetNodeAttr { id, .. } => shard_of(id, shards),
        Mutation::AddEdge { source, .. }
        | Mutation::SetFlow { source, .. }
        | Mutation::RemoveEdge { source, .. } => shard_of(source, shards),
    }
}

/// One shard's slice of the live state plus the per-row sequence numbers
/// that make the merge deterministic.
#[derive(Debug, Clone)]
pub(crate) struct ShardPartition {
    pub(crate) live: LiveNetwork,
    /// One entry per node-frame row: its position in the merged order.
    pub(crate) node_seqs: Vec<u64>,
    /// One entry per edge-frame row: its position in the merged order.
    pub(crate) edge_seqs: Vec<u64>,
}

impl ShardPartition {
    /// Applies one globally-validated mutation carrying global epoch
    /// `global`, maintaining the sequence vectors. `meta` supplies the
    /// bases of the sequence-number formula.
    pub(crate) fn apply_record(
        &mut self,
        global: Epoch,
        at_ms: u64,
        mutation: Mutation,
        meta: &SeqBases,
    ) -> Result<(), ServeError> {
        debug_assert!(global > meta.base_epoch);
        match &mutation {
            Mutation::AddNode { .. } => {
                self.live.apply_routed(at_ms, mutation)?;
                self.node_seqs
                    .push(meta.node_seq_base + (global - meta.base_epoch));
            }
            Mutation::AddEdge { .. } => {
                self.live.apply_routed(at_ms, mutation)?;
                self.edge_seqs
                    .push(meta.edge_seq_base + (global - meta.base_epoch));
            }
            Mutation::RemoveEdge { source, target } => {
                let row = self.live.edge_row(source, target);
                self.live.apply_routed(at_ms, mutation)?;
                let row = row.expect("apply_routed validated the edge exists");
                self.edge_seqs.remove(row);
            }
            Mutation::SetFlow { .. } | Mutation::SetNodeAttr { .. } => {
                self.live.apply_routed(at_ms, mutation)?;
            }
        }
        debug_assert_eq!(self.node_seqs.len(), self.live.nodes().n_rows());
        debug_assert_eq!(self.edge_seqs.len(), self.live.edges().n_rows());
        Ok(())
    }
}

/// The constants of the sequence-number formula, fixed at partition time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct SeqBases {
    /// Global epoch when the network was partitioned.
    pub(crate) base_epoch: Epoch,
    /// Node-frame rows at partition time (genesis rows sit below this).
    pub(crate) node_seq_base: u64,
    /// Edge-frame rows at partition time.
    pub(crate) edge_seq_base: u64,
}

/// N live partitions behind one globally-validating router.
#[derive(Debug, Clone)]
pub struct ShardedNetwork {
    partitions: Vec<ShardPartition>,
    bases: SeqBases,
    /// Highest global epoch applied anywhere (equals `base + Σ local`
    /// except after a jagged per-shard recovery).
    next_global: Epoch,
    /// What each partition's `LiveNetwork::epoch()` read at partition
    /// time: a single-shard network keeps the original network (and its
    /// epoch) verbatim, multi-shard partitions start counting at zero.
    local_base: Epoch,
}

impl ShardedNetwork {
    /// Partitions `live` into `shards` hash partitions. With `shards ==
    /// 1` the single partition *is* `live`, verbatim. A frame whose id or
    /// source column holds a non-string value — a recovered snapshot from
    /// a hand-edited or damaged store can produce one — is a typed
    /// [`ServeError::Corrupt`], not a panic: partitioning sits on the
    /// recovery path, and one bad row must not take down the server.
    pub fn from_live(live: &LiveNetwork, shards: u32) -> Result<ShardedNetwork, ServeError> {
        assert!(shards > 0, "a sharded network needs at least one shard");
        let base_epoch = live.epoch();
        let bases = SeqBases {
            base_epoch,
            node_seq_base: live.nodes().n_rows() as u64,
            edge_seq_base: live.edges().n_rows() as u64,
        };
        if shards == 1 {
            let partition = ShardPartition {
                live: live.clone(),
                node_seqs: (0..live.nodes().n_rows() as u64).collect(),
                edge_seqs: (0..live.edges().n_rows() as u64).collect(),
            };
            return Ok(ShardedNetwork {
                partitions: vec![partition],
                bases,
                next_global: base_epoch,
                local_base: base_epoch,
            });
        }
        let n = shards as usize;
        let mut node_idx: Vec<Vec<usize>> = vec![Vec::new(); n];
        if let Ok(ids) = live.nodes().column("id") {
            for (row, v) in ids.values().iter().enumerate() {
                let Some(id) = v.as_str() else {
                    return Err(ServeError::Corrupt(format!(
                        "node frame row {row}: id is {v:?}, want a string — cannot route it \
                         to a shard"
                    )));
                };
                node_idx[shard_of(id, shards) as usize].push(row);
            }
        }
        let mut edge_idx: Vec<Vec<usize>> = vec![Vec::new(); n];
        if let Ok(sources) = live.edges().column("source") {
            for (row, v) in sources.values().iter().enumerate() {
                let Some(source) = v.as_str() else {
                    return Err(ServeError::Corrupt(format!(
                        "edge frame row {row}: source is {v:?}, want a string — cannot route \
                         it to a shard"
                    )));
                };
                edge_idx[shard_of(source, shards) as usize].push(row);
            }
        }
        let mut graphs: Vec<Graph> = (0..n).map(|_| Graph::directed()).collect();
        for (id, attrs) in live.graph().nodes() {
            graphs[shard_of(id, shards) as usize].add_node(id, attrs.clone());
        }
        for (u, v, attrs) in live.graph().edges() {
            // Auto-creates `v` as a ghost when another shard owns it.
            graphs[shard_of(u, shards) as usize].add_edge(u, v, attrs.clone());
        }
        let partitions = graphs
            .into_iter()
            .zip(node_idx)
            .zip(edge_idx)
            .map(|((graph, nodes), edges)| {
                let node_frame = live.nodes().take(&nodes).expect("indices from enumerate");
                let edge_frame = live.edges().take(&edges).expect("indices from enumerate");
                ShardPartition {
                    live: LiveNetwork::from_parts(graph, node_frame, edge_frame, 0),
                    node_seqs: nodes.iter().map(|&r| r as u64).collect(),
                    edge_seqs: edges.iter().map(|&r| r as u64).collect(),
                }
            })
            .collect();
        Ok(ShardedNetwork {
            partitions,
            bases,
            next_global: base_epoch,
            local_base: 0,
        })
    }

    /// Reassembles a sharded network from independently recovered
    /// partitions (the per-shard persistence path).
    pub(crate) fn from_recovered(
        partitions: Vec<ShardPartition>,
        bases: SeqBases,
        next_global: Epoch,
    ) -> ShardedNetwork {
        assert!(!partitions.is_empty());
        let local_base = if partitions.len() == 1 {
            bases.base_epoch
        } else {
            0
        };
        ShardedNetwork {
            partitions,
            bases,
            next_global,
            local_base,
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> u32 {
        self.partitions.len() as u32
    }

    /// Which shard owns `mutation`.
    pub fn route(&self, mutation: &Mutation) -> u32 {
        route_mutation(mutation, self.shards())
    }

    /// Global epoch at partition time.
    pub fn base_epoch(&self) -> Epoch {
        self.bases.base_epoch
    }

    pub(crate) fn bases(&self) -> SeqBases {
        self.bases
    }

    pub(crate) fn partition(&self, shard: u32) -> &ShardPartition {
        &self.partitions[shard as usize]
    }

    /// Direct mutable access to one partition's live network — the
    /// single-shard server's write path, which keeps the exact
    /// pre-sharding apply/persist discipline.
    pub(crate) fn partition_live_mut(&mut self, shard: u32) -> &mut LiveNetwork {
        &mut self.partitions[shard as usize].live
    }

    /// The global epoch: the highest global epoch applied anywhere
    /// (`base_epoch + Σ epoch_vector` in normal operation).
    pub fn global_epoch(&self) -> Epoch {
        if self.partitions.len() == 1 {
            self.partitions[0].live.epoch()
        } else {
            self.next_global
        }
    }

    /// The cross-shard epoch vector: mutations applied per shard since
    /// `base_epoch`. Reads served from the merged view observe exactly
    /// this cut.
    pub fn epoch_vector(&self) -> Vec<Epoch> {
        self.partitions
            .iter()
            .map(|p| p.live.epoch() - self.local_base)
            .collect()
    }

    /// Local epoch of one shard (its partition's own mutation count).
    pub(crate) fn local_epoch(&self, shard: u32) -> Epoch {
        self.partitions[shard as usize].live.epoch() - self.local_base
    }

    /// True when the *owning* shard holds a real (non-ghost) node `id`.
    fn has_node_global(&self, id: &str) -> bool {
        let owner = shard_of(id, self.shards()) as usize;
        self.partitions[owner].live.graph().has_node(id)
    }

    /// True when the shard owning `source` holds the edge.
    fn has_edge_global(&self, source: &str, target: &str) -> bool {
        let owner = shard_of(source, self.shards()) as usize;
        self.partitions[owner].live.graph().has_edge(source, target)
    }

    /// Validates a mutation against the *global* state, consulting the
    /// owning shards — same checks, same order, same conflict strings as
    /// the unsharded [`LiveNetwork::apply`].
    pub(crate) fn check_global(&self, mutation: &Mutation) -> Result<(), ServeError> {
        let conflict = |msg: String| Err(ServeError::Conflict(msg));
        match mutation {
            Mutation::AddNode { id, .. } => {
                if self.has_node_global(id) {
                    return conflict(format!("node {id} already exists"));
                }
            }
            Mutation::AddEdge { source, target, .. } => {
                if !self.has_node_global(source) || !self.has_node_global(target) {
                    return conflict(format!("edge {source}->{target} names an unknown endpoint"));
                }
                if self.has_edge_global(source, target) {
                    return conflict(format!("edge {source}->{target} already exists"));
                }
            }
            Mutation::SetFlow { source, target, .. } | Mutation::RemoveEdge { source, target } => {
                if !self.has_edge_global(source, target) {
                    return conflict(format!("edge {source}->{target} does not exist"));
                }
            }
            Mutation::SetNodeAttr { id, key, .. } => {
                if !self.has_node_global(id) {
                    return conflict(format!("node {id} does not exist"));
                }
                if key == "id" {
                    return conflict("the 'id' attribute is the node's identity".to_string());
                }
            }
        }
        Ok(())
    }

    /// Validates globally, assigns the next global epoch, and applies the
    /// mutation to its owner shard. On conflict nothing moves and no
    /// epoch is consumed — exactly [`LiveNetwork::apply`] semantics.
    pub fn apply(&mut self, at_ms: u64, mutation: Mutation) -> Result<Epoch, ServeError> {
        self.check_global(&mutation)?;
        let global = self.next_global + 1;
        self.apply_at(global, at_ms, mutation)
            .expect("mutation was validated globally");
        Ok(global)
    }

    /// Applies a mutation that already carries its global epoch — the
    /// redo path (per-shard recovery resume, and the epoch-vector tests,
    /// which replay per-shard streams in arbitrary interleavings).
    /// Validation is shard-local only; the caller vouches the record came
    /// from a globally-validated stream.
    pub fn apply_at(
        &mut self,
        global: Epoch,
        at_ms: u64,
        mutation: Mutation,
    ) -> Result<(), ServeError> {
        let owner = self.route(&mutation);
        let bases = self.bases;
        self.partitions[owner as usize].apply_record(global, at_ms, mutation, &bases)?;
        self.next_global = self.next_global.max(global);
        Ok(())
    }

    /// The merged view: one [`LiveNetwork`] equal — snapshot-byte-equal —
    /// to what an unsharded network would hold after the same mutations,
    /// at the global epoch. Ghost nodes are filtered by ownership; frames
    /// are k-way merged by sequence number.
    pub fn merged(&self) -> LiveNetwork {
        let global = self.global_epoch();
        if self.partitions.len() == 1 {
            let live = &self.partitions[0].live;
            return LiveNetwork::from_parts(
                live.graph().clone(),
                live.nodes().clone(),
                live.edges().clone(),
                global,
            );
        }
        let shards = self.shards();
        let mut graph = Graph::directed();
        // Real nodes first (with their attributes), so no edge below has
        // to ghost-create an endpoint: globally every endpoint exists.
        for (k, partition) in self.partitions.iter().enumerate() {
            for (id, attrs) in partition.live.graph().nodes() {
                if shard_of(id, shards) as usize == k {
                    graph.add_node(id, attrs.clone());
                }
            }
        }
        for partition in &self.partitions {
            for (u, v, attrs) in partition.live.graph().edges() {
                graph.add_edge(u, v, attrs.clone());
            }
        }
        let nodes = merge_frames(
            self.partitions
                .iter()
                .map(|p| (p.live.nodes(), p.node_seqs.as_slice())),
        );
        let edges = merge_frames(
            self.partitions
                .iter()
                .map(|p| (p.live.edges(), p.edge_seqs.as_slice())),
        );
        LiveNetwork::from_parts(graph, nodes, edges, global)
    }
}

/// K-way merges frames ascending by per-row sequence number. Sequence
/// numbers are unique across partitions (each comes from a distinct
/// original row or a distinct global epoch), so the order is total.
fn merge_frames<'a>(parts: impl Iterator<Item = (&'a DataFrame, &'a [u64])>) -> DataFrame {
    let parts: Vec<(&DataFrame, &[u64])> = parts.collect();
    let mut order: Vec<(u64, usize, usize)> = Vec::new();
    for (pi, (frame, seqs)) in parts.iter().enumerate() {
        debug_assert_eq!(frame.n_rows(), seqs.len());
        for (row, &seq) in seqs.iter().enumerate() {
            order.push((seq, pi, row));
        }
    }
    order.sort_unstable();
    let mut out = parts[0].0.take(&[]).expect("empty take keeps the schema");
    for (_, pi, row) in order {
        out.push_row(parts[pi].0.row(row).expect("row from enumerate"))
            .expect("all partitions share the schema");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::write_snapshot;
    use trafficgen::{evolve, generate, StreamConfig, TrafficConfig};

    fn workload() -> trafficgen::TrafficWorkload {
        generate(&TrafficConfig {
            nodes: 24,
            edges: 30,
            prefixes: 3,
            seed: 6,
        })
    }

    #[test]
    fn routing_is_stable_and_in_range() {
        for shards in [1, 2, 3, 4, 7] {
            for id in ["10.0.0.1", "192.168.4.77", "8.8.8.8"] {
                let k = shard_of(id, shards);
                assert!(k < shards);
                assert_eq!(k, shard_of(id, shards), "routing must be deterministic");
            }
        }
        assert_eq!(shard_of("anything", 1), 0);
    }

    #[test]
    fn partition_then_merge_is_byte_identical() {
        let w = workload();
        let mut live = LiveNetwork::from_workload(&w);
        for event in &evolve(
            &w,
            &StreamConfig {
                events: 60,
                seed: 9,
            },
        ) {
            live.apply_event(event).unwrap();
        }
        let reference = write_snapshot(&live);
        for shards in [1u32, 2, 3, 4, 7] {
            let net = ShardedNetwork::from_live(&live, shards).unwrap();
            assert_eq!(net.global_epoch(), live.epoch());
            let merged = net.merged();
            assert_eq!(merged, live, "shards={shards}");
            assert_eq!(write_snapshot(&merged), reference, "shards={shards}");
        }
    }

    #[test]
    fn sharded_apply_matches_unsharded_including_conflicts() {
        let w = workload();
        let mut control = LiveNetwork::from_workload(&w);
        let mut nets: Vec<ShardedNetwork> = [1u32, 3, 4]
            .iter()
            .map(|&s| ShardedNetwork::from_live(&control, s).unwrap())
            .collect();
        let events = evolve(
            &w,
            &StreamConfig {
                events: 80,
                seed: 31,
            },
        );
        for event in &events {
            let mutation = Mutation::from_event(&event.event);
            let expected = control.apply(event.at_ms, mutation.clone());
            for net in &mut nets {
                let got = net.apply(event.at_ms, mutation.clone());
                assert_eq!(got, expected, "shards={}", net.shards());
            }
        }
        // Conflicting mutations produce the exact unsharded strings.
        let existing = w.endpoints[0].to_string_dotted();
        let conflicts = [
            Mutation::AddNode {
                id: existing.clone(),
                prefix16: "0.0".into(),
                prefix24: "0.0.0".into(),
            },
            Mutation::AddEdge {
                source: "1.2.3.4".into(),
                target: existing.clone(),
                bytes: 1,
                connections: 1,
                packets: 1,
            },
            Mutation::RemoveEdge {
                source: "1.2.3.4".into(),
                target: existing.clone(),
            },
            Mutation::SetNodeAttr {
                id: "9.9.9.9".into(),
                key: "label".into(),
                value: "x".into(),
            },
            Mutation::SetNodeAttr {
                id: existing,
                key: "id".into(),
                value: "x".into(),
            },
        ];
        for mutation in conflicts {
            let expected = control.apply(0, mutation.clone()).unwrap_err();
            for net in &mut nets {
                assert_eq!(
                    net.apply(0, mutation.clone()).unwrap_err(),
                    expected,
                    "shards={}",
                    net.shards()
                );
            }
        }
        // And the states still merge byte-identically.
        let reference = write_snapshot(&control);
        for net in &nets {
            assert_eq!(write_snapshot(&net.merged()), reference);
            assert_eq!(
                net.epoch_vector().iter().sum::<u64>(),
                control.epoch(),
                "epoch vector must sum to the global epoch"
            );
        }
    }

    #[test]
    fn ghosts_never_leak_into_the_merged_view() {
        let w = workload();
        let live = LiveNetwork::from_workload(&w);
        let net = ShardedNetwork::from_live(&live, 4).unwrap();
        // Partitions hold ghosts (cross-shard edge targets)...
        let ghost_total: usize = (0..4u32)
            .map(|k| {
                let partition = net.partition(k);
                partition
                    .live
                    .graph()
                    .nodes()
                    .filter(|(id, _)| shard_of(id, 4) != k)
                    .count()
            })
            .sum();
        assert!(ghost_total > 0, "this workload must produce ghosts");
        // ...but the merged node count is exactly the real one.
        assert_eq!(
            net.merged().graph().number_of_nodes(),
            live.graph().number_of_nodes()
        );
    }
}
