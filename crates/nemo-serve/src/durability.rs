//! The durability driver: deterministic multi-client mutation streams over
//! persistent stores, with crash/resume transcripts.
//!
//! Each client owns one store directory and one deterministic stream (a
//! pure function of `(config, client)`), applies it with persistence
//! attached, then answers a query round and prints a state digest. The
//! combined transcript is reassembled in client order over
//! `nemo_bench::pool`, so it is bit-identical at any `NEMO_THREADS`.
//!
//! The crash/resume story is the point:
//!
//! * [`run`] with `crash_after: Some(k)` stops client `c` abruptly after
//!   `k + c` applied epochs — no final fsync, no queries, mimicking a kill
//!   at a different point per client — and reports that it crashed (the
//!   driver binary then exits non-zero).
//! * [`run`] on the *same directories* afterwards recovers every client
//!   from its snapshot + WAL suffix, **regenerates the transcript prefix
//!   for the recovered epochs**, and continues the stream to completion.
//!
//! Because the prefix is regenerated from the deterministic stream while
//! the *state* comes from disk, the resumed transcript (including the
//! final per-client state CRC) matches an uninterrupted run byte for byte
//! only if recovery reproduced the exact pre-crash state — which is what
//! the CI `recovery-smoke` job asserts with `cmp`.

use crate::driver::serving_knowledge;
use crate::error::ServeError;
use crate::live::LiveNetwork;
use crate::mutation::Mutation;
use crate::persist::{FsyncPolicy, PersistOptions, Persistence};
use crate::server::{ServeEvent, ServerBuilder, Session};
use crate::shard::route_mutation;
use crate::snapshot::write_snapshot;
use nemo_bench::{pool, traffic_queries};
use nemo_core::llm::{hash_parts, profiles, SimulatedLlm};
use nemo_core::Backend;
use nemo_store::{FaultFs, FaultKind};
use std::path::Path;
use std::sync::Arc;
use trafficgen::{evolve, generate, StreamConfig, TimedEvent, TrafficConfig};

/// Sizing of one durability run.
#[derive(Debug, Clone)]
pub struct DurabilityConfig {
    /// The initial workload every client's network starts from.
    pub traffic: TrafficConfig,
    /// Number of clients (one store directory + one stream each).
    pub clients: usize,
    /// Mutation events per client.
    pub events: usize,
    /// Queries answered after the stream completes.
    pub queries: usize,
    /// Seed for streams and query picks.
    pub seed: u64,
    /// Persistence knobs shared by every client.
    pub options: PersistOptions,
}

impl DurabilityConfig {
    /// Store sizing that exercises rotation, snapshots and compaction at
    /// smoke scale, with per-record fsync (the crash-safety posture).
    fn driver_options() -> PersistOptions {
        PersistOptions {
            fsync: FsyncPolicy::EveryRecord,
            segment_max_bytes: 2048,
            snapshot_every_bytes: 0,
            snapshot_every_epochs: 8,
            keep_snapshots: 2,
            ..PersistOptions::default()
        }
    }

    /// The full-size configuration.
    pub fn full() -> Self {
        DurabilityConfig {
            traffic: TrafficConfig::default(),
            clients: 4,
            events: 60,
            queries: 4,
            seed: 2033,
            options: Self::driver_options(),
        }
    }

    /// A seconds-scale smoke configuration for CI.
    pub fn small() -> Self {
        DurabilityConfig {
            traffic: TrafficConfig {
                nodes: 30,
                edges: 30,
                prefixes: 3,
                seed: 7,
            },
            clients: 3,
            events: 24,
            queries: 3,
            seed: 2033,
            options: Self::driver_options(),
        }
    }

    /// Picks [`DurabilityConfig::small`] when `NEMO_SMALL` is set, else
    /// [`DurabilityConfig::full`].
    pub fn from_env() -> Self {
        if std::env::var("NEMO_SMALL").is_ok() {
            DurabilityConfig::small()
        } else {
            DurabilityConfig::full()
        }
    }
}

/// One client's deterministic mutation stream.
pub fn client_stream(config: &DurabilityConfig, client: usize) -> Vec<TimedEvent> {
    let workload = generate(&config.traffic);
    evolve(
        &workload,
        &StreamConfig {
            events: config.events,
            seed: config.seed ^ (client as u64).wrapping_mul(0x9e37_79b9),
        },
    )
}

/// The transcript line of one applied mutation — identical to the line
/// [`crate::Server::process`] prints for a successful `Mutate` event, so a
/// prefix regenerated from the stream splices seamlessly.
fn mutate_line(epoch: u64, timed: &TimedEvent) -> String {
    format!(
        "[e{epoch}] t={}ms mutate {}",
        timed.at_ms,
        Mutation::from_event(&timed.event).describe()
    )
}

/// The outcome of one client's run.
struct ClientRun {
    lines: Vec<String>,
    crashed: bool,
}

fn run_client(
    config: &DurabilityConfig,
    base_dir: &Path,
    client: usize,
    crash_after: Option<u64>,
) -> Result<ClientRun, ServeError> {
    let dir = base_dir.join(format!("c{client}"));
    let (mut live, mut persistence, _report) =
        Persistence::recover_or_create(&dir, &config.options, || {
            LiveNetwork::from_workload(&generate(&config.traffic))
        })?;
    let stream = client_stream(config, client);
    if live.epoch() as usize > stream.len() {
        return Err(ServeError::Corrupt(format!(
            "store for client {client} is at epoch {} but the stream has only {} events \
             (directory reused across configs?)",
            live.epoch(),
            stream.len()
        )));
    }
    // Regenerate the transcript prefix for epochs recovered from disk.
    let mut lines: Vec<String> = stream[..live.epoch() as usize]
        .iter()
        .enumerate()
        .map(|(i, timed)| mutate_line(i as u64 + 1, timed))
        .collect();
    // Continue the stream live. The crash cut varies per client so
    // recovery is exercised at different offsets.
    let cut = crash_after.map(|k| k + client as u64);
    for (i, timed) in stream.iter().enumerate().skip(live.epoch() as usize) {
        let epoch = live.apply_event_persisted(timed, &mut persistence)?;
        debug_assert_eq!(epoch, i as u64 + 1);
        lines.push(mutate_line(epoch, timed));
        if cut.is_some_and(|k| epoch >= k) {
            // Abrupt stop: no batch fsync, no queries, no digest.
            return Ok(ClientRun {
                lines,
                crashed: true,
            });
        }
    }
    persistence.sync()?;
    // Pay off the deferred removals (snapshot pruning, WAL compaction)
    // accrued over the stream, off the apply path.
    persistence.sweep(usize::MAX)?;

    // Query round over the final state. The digest pins the state itself;
    // the query answers pin what the pipeline computes over it.
    let digest = format!(
        "final epoch={} state-crc={:08x}",
        live.epoch(),
        nemo_store::crc32::crc32(write_snapshot(&live).as_bytes())
    );
    let queries = traffic_queries();
    let backend = Backend::CODEGEN[client % Backend::CODEGEN.len()];
    let llm = SimulatedLlm::new(
        profiles::gpt4(),
        serving_knowledge(),
        config.seed ^ client as u64,
    );
    // The builder carries the shared options so the server's own metrics
    // land in the same registry the store already records into.
    let mut server = ServerBuilder::new()
        .options(config.options.clone())
        .attach_persistence(persistence)
        .build(
            live,
            vec![Session {
                client,
                backend,
                llm,
            }],
        )?;
    for k in 0..config.queries {
        let pick = hash_parts(&[
            "durability-query",
            &config.seed.to_string(),
            &client.to_string(),
            &k.to_string(),
        ]) as usize
            % queries.len();
        let (line, _) = server.process(&ServeEvent::Query {
            client,
            query: queries[pick].text.to_string(),
        })?;
        lines.push(line);
    }
    lines.push(digest);
    Ok(ClientRun {
        lines,
        crashed: false,
    })
}

/// Runs every client over `threads` pool workers against stores under
/// `base_dir` (one `c<i>` subdirectory each; existing stores are
/// recovered and resumed). Returns the combined transcript in client order
/// plus whether any client crashed (only with `crash_after`).
pub fn run(
    config: &DurabilityConfig,
    base_dir: &Path,
    threads: usize,
    crash_after: Option<u64>,
) -> Result<(Vec<String>, bool), ServeError> {
    let pool_metrics = pool::PoolMetrics::register(&config.options.registry);
    let runs = pool::run_indexed_observed(config.clients, threads, Some(&pool_metrics), |client| {
        run_client(config, base_dir, client, crash_after)
    });
    let mut lines = Vec::new();
    let mut crashed = false;
    for (client, run) in runs.into_iter().enumerate() {
        let run = run?;
        crashed |= run.crashed;
        lines.extend(
            run.lines
                .into_iter()
                .map(|line| format!("c{client}| {line}")),
        );
    }
    Ok((lines, crashed))
}

/// [`run`] with a deterministic fault injected into **client 0's**
/// filesystem: every other client runs on the real filesystem, client 0
/// runs on a [`FaultFs`] that fails its `fault_at`-th applicable
/// filesystem operation with `kind`.
///
/// Three outcomes, mirroring the error-anywhere contract:
///
/// * the fault was *absorbed* — a rolled-back write fault the
///   persistence layer's budgeted retry recovered — and the combined
///   transcript is byte-identical to an unfaulted run (`faulted` is
///   `false`);
/// * the fault *surfaced* as a typed storage error from client 0
///   (`faulted` is `true`; the error is rendered into the transcript and
///   client 0's run stops there, mimicking a process that aborts on an
///   unrecoverable disk). A subsequent [`run`] over the same directories
///   recovers client 0 from its durable prefix and must reproduce the
///   uninterrupted transcript byte for byte — the fault-injection twin
///   of the crash/resume proof;
/// * any *other* client fails: that is a real bug and the error
///   propagates.
pub fn run_fault(
    config: &DurabilityConfig,
    base_dir: &Path,
    threads: usize,
    fault_at: u64,
    kind: FaultKind,
) -> Result<(Vec<String>, bool), ServeError> {
    let mut faulty = config.clone();
    faulty.options.vfs = Arc::new(FaultFs::new(kind, fault_at));
    let pool_metrics = pool::PoolMetrics::register(&config.options.registry);
    let runs = pool::run_indexed_observed(config.clients, threads, Some(&pool_metrics), |client| {
        let cfg = if client == 0 { &faulty } else { config };
        run_client(cfg, base_dir, client, None)
    });
    let mut lines = Vec::new();
    let mut faulted = false;
    for (client, run) in runs.into_iter().enumerate() {
        match run {
            Ok(run) => lines.extend(
                run.lines
                    .into_iter()
                    .map(|line| format!("c{client}| {line}")),
            ),
            Err(e) if client == 0 => {
                faulted = true;
                lines.push(format!("c0| fault: {e}"));
            }
            Err(e) => return Err(e),
        }
    }
    Ok((lines, faulted))
}

/// Applies every client's full stream, fsyncs, then executes only
/// `budget` removals of each store's deferred sweep plan before stopping
/// abruptly — no queries, no digest — mimicking a kill *mid-sweep*. The
/// plan is never persisted, so the next open simply recomputes what
/// remains; a subsequent [`run`] over the same directories must recover
/// and reproduce the uninterrupted transcript byte for byte (what the CI
/// `recovery-smoke` job asserts with `cmp`).
pub fn run_sweep_crash(
    config: &DurabilityConfig,
    base_dir: &Path,
    threads: usize,
    budget: usize,
) -> Result<(), ServeError> {
    let pool_metrics = pool::PoolMetrics::register(&config.options.registry);
    let runs = pool::run_indexed_observed(
        config.clients,
        threads,
        Some(&pool_metrics),
        |client| -> Result<(), ServeError> {
            let dir = base_dir.join(format!("c{client}"));
            let (mut live, mut persistence, _report) =
                Persistence::recover_or_create(&dir, &config.options, || {
                    LiveNetwork::from_workload(&generate(&config.traffic))
                })?;
            for timed in client_stream(config, client)
                .iter()
                .skip(live.epoch() as usize)
            {
                live.apply_event_persisted(timed, &mut persistence)?;
            }
            persistence.sync()?;
            // A partial sweep, then an abrupt stop: whatever the budget
            // removed stays removed, the rest is left for the next open.
            persistence.sweep(budget)?;
            Ok(())
        },
    );
    runs.into_iter().collect()
}

/// One shared deterministic mutation stream for the sharded runner; the
/// streams `evolve` produces are conflict-free, so global epochs track
/// stream position exactly (`g = i + 1`).
pub fn shared_stream(config: &DurabilityConfig) -> Vec<TimedEvent> {
    let workload = generate(&config.traffic);
    evolve(
        &workload,
        &StreamConfig {
            events: config.events,
            seed: config.seed,
        },
    )
}

/// The sharded crash/resume driver: **one** server over `shards` hash
/// partitions, each with its own store under `base_dir/shard-<k>/`, fed
/// by one shared mutation stream with a multi-client query round at the
/// end.
///
/// Resume works shard-by-shard: recovery rebuilds each partition from its
/// own snapshot + WAL suffix (the shards may have crashed at *different*
/// local epochs), then this driver walks the deterministic stream and —
/// per record — either regenerates the transcript line (the owner shard
/// already holds it durably) or re-applies it through
/// [`crate::Server::apply_recorded`] to close the gap. The resumed
/// transcript, including the merged-state CRC digest, is byte-identical
/// to an uninterrupted run at any shard count and any thread count.
///
/// With `crash_after: Some(k)` the run stops abruptly once the global
/// epoch reaches `k` — no final fsync, no queries — and reports the
/// crash.
pub fn run_sharded(
    config: &DurabilityConfig,
    base_dir: &Path,
    shards: u32,
    threads: usize,
    crash_after: Option<u64>,
) -> Result<(Vec<String>, bool), ServeError> {
    let queries = traffic_queries();
    let sessions = (0..config.clients)
        .map(|client| Session {
            client,
            backend: Backend::CODEGEN[client % Backend::CODEGEN.len()],
            llm: SimulatedLlm::new(
                profiles::gpt4(),
                serving_knowledge(),
                config.seed ^ client as u64,
            ),
        })
        .collect();
    let traffic = config.traffic.clone();
    let (mut server, _reports) = ServerBuilder::new()
        .shards(shards)
        .options(config.options.clone())
        .persist_at(base_dir)
        .recovery_threads(threads)
        .recover_or_create(sessions, || LiveNetwork::from_workload(&generate(&traffic)))?;
    let stream = shared_stream(config);
    if server.network().global_epoch() as usize > stream.len() {
        return Err(ServeError::Corrupt(format!(
            "stores are at global epoch {} but the stream has only {} events \
             (directory reused across configs?)",
            server.network().global_epoch(),
            stream.len()
        )));
    }
    // How many records each shard already holds durably. Recovery may be
    // jagged — shard k durable through its cut, shard j further along —
    // so the walk below decides per record whether to regenerate or
    // re-apply.
    let recovered = server.network().epoch_vector();
    let mut pos = vec![0u64; shards.max(1) as usize];
    let mut lines = Vec::with_capacity(stream.len());
    for (i, timed) in stream.iter().enumerate() {
        let global = i as u64 + 1;
        let k = route_mutation(&Mutation::from_event(&timed.event), shards) as usize;
        pos[k] += 1;
        if pos[k] > recovered[k] {
            server.apply_recorded(global, timed)?;
        }
        lines.push(mutate_line(global, timed));
        if crash_after.is_some_and(|cut| global >= cut) {
            // Abrupt stop: no batch fsync, no queries, no digest.
            return Ok((lines, true));
        }
    }
    server.sync_persistence()?;
    server.sweep_persistence(usize::MAX)?;

    // The digest is computed over the *merged* view, so it is invariant
    // under the shard count — the same bytes `write_snapshot` would
    // produce for an unsharded network at this epoch.
    let digest = format!(
        "final epoch={} state-crc={:08x}",
        server.network().global_epoch(),
        nemo_store::crc32::crc32(write_snapshot(server.merged_view()).as_bytes())
    );
    // Query round: clients interleave on the shared server, so answers
    // exercise the merged read path and the per-shard caches.
    for k in 0..config.queries {
        for client in 0..config.clients {
            let pick = hash_parts(&[
                "durability-query",
                &config.seed.to_string(),
                &client.to_string(),
                &k.to_string(),
            ]) as usize
                % queries.len();
            let (line, _) = server.process(&ServeEvent::Query {
                client,
                query: queries[pick].text.to_string(),
            })?;
            lines.push(format!("c{client}| {line}"));
        }
    }
    lines.push(digest);
    Ok((lines, false))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("nemo-durability-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn tiny() -> DurabilityConfig {
        DurabilityConfig {
            traffic: TrafficConfig {
                nodes: 14,
                edges: 18,
                prefixes: 2,
                seed: 7,
            },
            clients: 3,
            events: 18,
            queries: 2,
            seed: 11,
            options: PersistOptions {
                fsync: FsyncPolicy::Never, // tests: speed over platters
                ..DurabilityConfig::driver_options()
            },
        }
    }

    #[test]
    fn crash_then_resume_matches_uninterrupted_at_any_thread_count() {
        let config = tiny();
        let full_dir = temp_dir("full");
        let (uninterrupted, crashed) = run(&config, &full_dir, 1, None).unwrap();
        assert!(!crashed);
        assert!(uninterrupted.iter().any(|l| l.contains("state-crc=")));

        // Crash at staggered offsets, then resume on the same stores.
        let crash_dir = temp_dir("crash");
        let (partial, crashed) = run(&config, &crash_dir, 2, Some(5)).unwrap();
        assert!(crashed);
        assert!(partial.len() < uninterrupted.len());
        let (resumed, crashed) = run(&config, &crash_dir, 2, None).unwrap();
        assert!(!crashed);
        assert_eq!(resumed, uninterrupted, "resumed transcript must match");

        // Thread-count invariance of the uninterrupted run.
        let t4_dir = temp_dir("t4");
        let (with_threads, _) = run(&config, &t4_dir, 4, None).unwrap();
        assert_eq!(with_threads, uninterrupted);

        // Resuming a *completed* run is a no-op that reproduces the same
        // transcript again (everything regenerates from the recovered
        // state).
        let (again, _) = run(&config, &full_dir, 1, None).unwrap();
        assert_eq!(again, uninterrupted);
        for dir in [full_dir, crash_dir, t4_dir] {
            std::fs::remove_dir_all(&dir).unwrap();
        }
    }

    #[test]
    fn a_kill_mid_sweep_resumes_to_the_uninterrupted_transcript() {
        let config = tiny();
        let full_dir = temp_dir("sweep-full");
        let (uninterrupted, _) = run(&config, &full_dir, 1, None).unwrap();
        // Stop after 1 removal, then after 2 more: two staggered kills
        // inside the same sweep, on the same stores.
        let sweep_dir = temp_dir("sweep-crash");
        run_sweep_crash(&config, &sweep_dir, 2, 1).unwrap();
        run_sweep_crash(&config, &sweep_dir, 2, 2).unwrap();
        let (resumed, crashed) = run(&config, &sweep_dir, 2, None).unwrap();
        assert!(!crashed);
        assert_eq!(resumed, uninterrupted);
        // The full run swept everything; nothing deletable remains.
        for client in 0..config.clients {
            let dir = sweep_dir.join(format!("c{client}"));
            let (_, p, _) = Persistence::recover(&dir, &config.options).unwrap();
            assert_eq!(p.store().sweep_plan().removals(), 0, "client {client}");
        }
        for dir in [full_dir, sweep_dir] {
            std::fs::remove_dir_all(&dir).unwrap();
        }
    }
}
