//! The serving loop: mutation batches interleaved with client queries.
//!
//! A [`Server`] owns the [`LiveNetwork`], the [`ProgramCache`] and a set of
//! client [`Session`]s (one persistent LLM handle per client — the model
//! session is reused across that client's requests). Processing is
//! sequential and deterministic: a [`ServeEvent`] is either one mutation
//! (advancing the epoch and invalidating cached answers) or one query from
//! one client, and the transcript of a schedule is a pure function of
//! `(initial state, schedule, model seeds)` — wall-clock latencies are
//! recorded on the side, never in the transcript.

use crate::cache::{CacheOutcome, CacheStats, Lookup, ProgramCache};
use crate::error::ServeError;
use crate::live::LiveNetwork;
use crate::mutation::Epoch;
use crate::persist::Persistence;
use nemo_core::llm::extract_code;
use nemo_core::prompt::codegen_prompt;
use nemo_core::sandbox::execute_code;
use nemo_core::{Backend, Llm, NetworkManager};
use std::time::Instant;
use trafficgen::stream::TimedEvent;

/// One client session: a stable id, the backend this client queries
/// through, and its persistent model handle.
pub struct Session<L: Llm> {
    /// The client id requests address this session by (need not be the
    /// session's position in the server's list).
    pub client: usize,
    /// The code-generation backend this client uses.
    pub backend: Backend,
    /// The client's model session, reused across requests.
    pub llm: L,
}

/// One unit of serving work.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeEvent {
    /// Apply one timestamped mutation to the live network.
    Mutate(TimedEvent),
    /// Answer one natural-language query for one client.
    Query {
        /// The asking client's id.
        client: usize,
        /// The query text.
        query: String,
    },
}

/// The record of one answered query.
#[derive(Debug, Clone)]
pub struct Reply {
    /// The asking client.
    pub client: usize,
    /// The backend used.
    pub backend: Backend,
    /// The query text.
    pub query: String,
    /// The epoch the answer reflects.
    pub epoch: Epoch,
    /// How the cache satisfied the request.
    pub cache: CacheOutcome,
    /// The rendered answer (or a rendered error).
    pub answer: String,
    /// Wall-clock service time in milliseconds (excluded from
    /// transcripts; this is the load driver's latency sample).
    pub latency_ms: f64,
}

/// The serving loop.
pub struct Server<L: Llm> {
    live: LiveNetwork,
    cache: ProgramCache,
    sessions: Vec<Session<L>>,
    persistence: Option<Persistence>,
}

impl<L: Llm> Server<L> {
    /// Builds a server over an initial live state and its client sessions.
    pub fn new(live: LiveNetwork, sessions: Vec<Session<L>>) -> Self {
        Server {
            live,
            cache: ProgramCache::new(),
            sessions,
            persistence: None,
        }
    }

    /// [`Server::new`] with a durable storage handle: every applied
    /// mutation is logged through it, snapshots are taken when due, and
    /// [`Server::run_schedule`] fsyncs at mutation-batch boundaries.
    pub fn with_persistence(
        live: LiveNetwork,
        sessions: Vec<Session<L>>,
        persistence: Persistence,
    ) -> Self {
        Server {
            live,
            cache: ProgramCache::new(),
            sessions,
            persistence: Some(persistence),
        }
    }

    /// The durable storage handle, if one is attached.
    pub fn persistence(&self) -> Option<&Persistence> {
        self.persistence.as_ref()
    }

    /// Fsyncs the WAL if persistence is attached (a batch boundary).
    pub fn sync_persistence(&mut self) -> Result<(), ServeError> {
        match &mut self.persistence {
            Some(p) => p.sync(),
            None => Ok(()),
        }
    }

    /// The live network (read-only; mutations go through events).
    pub fn live(&self) -> &LiveNetwork {
        &self.live
    }

    /// Cache counters so far.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// The cached program for a query on a backend, if any.
    pub fn cached_program(&self, query: &str, backend: Backend) -> Option<&str> {
        self.cache.program(query, backend)
    }

    /// Applies one mutation event to the live network; with persistence
    /// attached, the record is durably logged (and a snapshot taken when
    /// due) before the epoch is acknowledged.
    pub fn apply_mutation(&mut self, event: &TimedEvent) -> Result<Epoch, ServeError> {
        match &mut self.persistence {
            Some(p) => self.live.apply_event_persisted(event, p),
            None => self.live.apply_event(event),
        }
    }

    /// Answers one query for one client through the cache hierarchy.
    ///
    /// Misses run the full pipeline (prompt → LLM → sandbox) via
    /// [`NetworkManager::serve_prompt`]; program hits re-execute the cached
    /// code against the current state; answer hits return the cached
    /// outcome untouched. Failures never enter the *program* cache — only
    /// a negatively cached error reply scoped to the current epoch — so
    /// the same request at the same state repeats the error cheaply, and
    /// the first request after a mutation retries the model for real.
    pub fn handle_query(&mut self, client: usize, query: &str) -> Reply {
        let start = Instant::now();
        // An unknown client gets an error reply, not a panic: one bad
        // request must not take down the serving loop.
        let Some(session) = self.sessions.iter().position(|s| s.client == client) else {
            return Reply {
                client,
                backend: Backend::Strawman,
                query: query.to_string(),
                epoch: self.live.epoch(),
                cache: CacheOutcome::Miss,
                answer: format!("error: no session for client {client}"),
                latency_ms: start.elapsed().as_secs_f64() * 1e3,
            };
        };
        let backend = self.sessions[session].backend;
        let epoch = self.live.epoch();
        let (cache, answer) = match self.cache.lookup(query, backend, epoch) {
            Lookup::Answer(_outcome, rendered) => (CacheOutcome::AnswerHit, rendered.to_string()),
            Lookup::Program(program) => {
                let state = self.live.state(backend);
                match execute_code(backend, &program, &state) {
                    Ok(outcome) => {
                        let answer = outcome.value.render();
                        self.cache.insert_answer(query, backend, epoch, outcome);
                        (CacheOutcome::ProgramHit, answer)
                    }
                    Err(e) => {
                        // The stored program no longer runs against the
                        // current state: evict it so the next request
                        // after invalidation consults the model again.
                        self.cache.evict_program(query, backend);
                        let answer = format!("error: {e}");
                        self.cache.insert_error(query, backend, epoch, &answer);
                        (CacheOutcome::ProgramHit, answer)
                    }
                }
            }
            Lookup::Miss => {
                let prompt = codegen_prompt(&self.live, backend, query);
                let state = self.live.state(backend);
                let mut manager = NetworkManager::new(&self.live, &mut self.sessions[session].llm);
                let (response, result) = manager.serve_prompt(&prompt, &state);
                match result {
                    Ok(outcome) => {
                        if let Some(code) = extract_code(&response.text) {
                            self.cache.insert_program(query, backend, code);
                        }
                        let answer = outcome.value.render();
                        self.cache.insert_answer(query, backend, epoch, outcome);
                        (CacheOutcome::Miss, answer)
                    }
                    Err(reason) => {
                        let answer = format!("error: {reason}");
                        self.cache.insert_error(query, backend, epoch, &answer);
                        (CacheOutcome::Miss, answer)
                    }
                }
            }
        };
        Reply {
            client,
            backend,
            query: query.to_string(),
            epoch,
            cache,
            answer,
            latency_ms: start.elapsed().as_secs_f64() * 1e3,
        }
    }

    /// Processes one event and renders its deterministic transcript line.
    ///
    /// A mutation *conflict* is part of normal operation (the state is
    /// untouched, the line records the rejection) — but a storage or
    /// corruption error from the durable log is not: rendering it as
    /// "rejected" would make a dying disk indistinguishable from a benign
    /// duplicate, so those propagate as errors instead.
    pub fn process(&mut self, event: &ServeEvent) -> Result<(String, Option<Reply>), ServeError> {
        match event {
            ServeEvent::Mutate(timed) => {
                let line = match self.apply_mutation(timed) {
                    Ok(epoch) => format!(
                        "[e{epoch}] t={}ms mutate {}",
                        timed.at_ms,
                        crate::Mutation::from_event(&timed.event).describe()
                    ),
                    Err(e @ ServeError::Conflict(_)) => format!(
                        "[e{}] t={}ms mutate rejected: {e}",
                        self.live.epoch(),
                        timed.at_ms
                    ),
                    Err(storage_or_corrupt) => return Err(storage_or_corrupt),
                };
                Ok((line, None))
            }
            ServeEvent::Query { client, query } => {
                let reply = self.handle_query(*client, query);
                let line = format!(
                    "[e{}] client={} {} {} {:?} => {}",
                    reply.epoch,
                    reply.client,
                    reply.backend,
                    reply.cache.tag(),
                    reply.query,
                    one_line(&reply.answer),
                );
                Ok((line, Some(reply)))
            }
        }
    }

    /// Runs a whole schedule, returning the transcript and every reply.
    /// With persistence attached, the WAL is fsynced at every
    /// mutation-batch boundary (the last mutation before a query, and the
    /// end of the schedule), so "every applied mutation batch is durably
    /// logged" holds under [`crate::FsyncPolicy::EveryBatch`]. A failed
    /// boundary fsync aborts the schedule with the error (the transcript
    /// up to that point is lost to the caller by design — it was not
    /// durable). Without persistence the call is infallible.
    pub fn run_schedule(
        &mut self,
        events: &[ServeEvent],
    ) -> Result<(Vec<String>, Vec<Reply>), ServeError> {
        let mut transcript = Vec::with_capacity(events.len());
        let mut replies = Vec::new();
        for (i, event) in events.iter().enumerate() {
            let (line, reply) = self.process(event)?;
            transcript.push(line);
            replies.extend(reply);
            let batch_ends = matches!(event, ServeEvent::Mutate(_))
                && !matches!(events.get(i + 1), Some(ServeEvent::Mutate(_)));
            if batch_ends {
                self.sync_persistence()?;
            }
        }
        Ok((transcript, replies))
    }
}

/// Collapses an answer to a single whitespace-normalized line.
fn one_line(text: &str) -> String {
    text.split_whitespace().collect::<Vec<_>>().join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use nemo_core::ScriptedLlm;
    use trafficgen::{generate, NetEvent, TrafficConfig};

    fn live() -> LiveNetwork {
        LiveNetwork::from_workload(&generate(&TrafficConfig {
            nodes: 10,
            edges: 14,
            prefixes: 2,
            seed: 9,
        }))
    }

    fn scripted(replies: usize) -> ScriptedLlm {
        // The same correct program every time it is actually consulted.
        ScriptedLlm::new(
            "scripted",
            vec!["```graphscript\nresult = G.number_of_edges()\n```".to_string(); replies],
        )
    }

    #[test]
    fn cache_hierarchy_hit_path() {
        let network = live();
        let mut server = Server::new(
            network,
            vec![Session {
                client: 0,
                backend: Backend::NetworkX,
                llm: scripted(8),
            }],
        );
        let q = "How many edges are there?";
        let first = server.handle_query(0, q);
        assert_eq!(first.cache, CacheOutcome::Miss);
        assert_eq!(first.answer, "14");
        let second = server.handle_query(0, q);
        assert_eq!(second.cache, CacheOutcome::AnswerHit);
        assert_eq!(second.answer, first.answer);
        assert!(server
            .cached_program(q, Backend::NetworkX)
            .unwrap()
            .contains("number_of_edges"));

        // A mutation bumps the epoch: next request re-executes the cached
        // program over the *new* state without touching the model.
        let flow = trafficgen::Flow {
            source: trafficgen::Ipv4::new(203, 0, 0, 1),
            target: trafficgen::Ipv4::new(203, 0, 0, 2),
            bytes: 10,
            connections: 1,
            packets: 1,
        };
        for endpoint in [flow.source, flow.target] {
            server
                .apply_mutation(&TimedEvent {
                    at_ms: 1,
                    event: NetEvent::NewEndpoint { endpoint },
                })
                .unwrap();
        }
        server
            .apply_mutation(&TimedEvent {
                at_ms: 2,
                event: NetEvent::NewFlow { flow },
            })
            .unwrap();
        let third = server.handle_query(0, q);
        assert_eq!(third.cache, CacheOutcome::ProgramHit);
        assert_eq!(third.answer, "15");
        let stats = server.cache_stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.answer_hits, 1);
        assert_eq!(stats.program_hits, 1);
        assert_eq!(stats.invalidated, 1);
        // The model was consulted exactly once.
        let session_llm = &server.sessions[0].llm;
        assert_eq!(session_llm.prompts_seen.len(), 1);
    }

    #[test]
    fn unknown_clients_get_an_error_reply_not_a_panic() {
        let mut server = Server::new(
            live(),
            vec![Session {
                client: 0,
                backend: Backend::NetworkX,
                llm: scripted(1),
            }],
        );
        let reply = server.handle_query(7, "How many edges are there?");
        assert!(reply.answer.contains("no session for client 7"));
        assert_eq!(reply.client, 7);
        // The serving loop is still alive.
        assert_eq!(
            server.handle_query(0, "How many edges are there?").answer,
            "14"
        );
    }

    #[test]
    fn transcript_lines_are_deterministic() {
        let q = "How many edges are there?".to_string();
        let schedule = vec![
            ServeEvent::Query {
                client: 0,
                query: q.clone(),
            },
            ServeEvent::Query {
                client: 0,
                query: q,
            },
        ];
        let run = || {
            let mut server = Server::new(
                live(),
                vec![Session {
                    client: 0,
                    backend: Backend::NetworkX,
                    llm: scripted(4),
                }],
            );
            server.run_schedule(&schedule).expect("no persistence").0
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
        assert!(a[0].contains("miss"));
        assert!(a[1].contains("hit"));
    }

    #[test]
    fn programs_that_stop_running_are_evicted_and_retried() {
        // The model first writes a program tied to a specific edge; once a
        // mutation removes that edge the cached program starts failing, is
        // evicted, and the next post-mutation request goes back to the
        // model instead of replaying the failure forever.
        let workload = generate(&TrafficConfig {
            nodes: 10,
            edges: 14,
            prefixes: 2,
            seed: 9,
        });
        let flow = workload.flows[0].clone();
        let (s, t) = (
            flow.source.to_string_dotted(),
            flow.target.to_string_dotted(),
        );
        let fragile =
            format!("```graphscript\nresult = G.get_edge_attr(\"{s}\", \"{t}\", \"bytes\")\n```");
        let mut server = Server::new(
            LiveNetwork::from_workload(&workload),
            vec![Session {
                client: 0,
                backend: Backend::NetworkX,
                llm: ScriptedLlm::new(
                    "adaptive",
                    vec![
                        fragile,
                        "```graphscript\nresult = G.number_of_edges()\n```".to_string(),
                    ],
                ),
            }],
        );
        let q = "How many bytes on the first flow?";
        assert_eq!(server.handle_query(0, q).cache, CacheOutcome::Miss);
        server
            .apply_mutation(&TimedEvent {
                at_ms: 1,
                event: NetEvent::DropFlow {
                    source: flow.source,
                    target: flow.target,
                },
            })
            .unwrap();
        // Cached program now fails against the mutated state: reported as
        // an error, program evicted.
        let broken = server.handle_query(0, q);
        assert_eq!(broken.cache, CacheOutcome::ProgramHit);
        assert!(broken.answer.starts_with("error:"));
        assert!(server.cached_program(q, Backend::NetworkX).is_none());
        // After the next mutation the request is a true miss: the model is
        // consulted again and the new program succeeds.
        server
            .apply_mutation(&TimedEvent {
                at_ms: 2,
                event: NetEvent::NewEndpoint {
                    endpoint: trafficgen::Ipv4::new(203, 0, 0, 7),
                },
            })
            .unwrap();
        let healed = server.handle_query(0, q);
        assert_eq!(healed.cache, CacheOutcome::Miss);
        assert_eq!(healed.answer, "13");
    }

    #[test]
    fn failures_are_negatively_cached_and_retried_after_mutations() {
        let mut server = Server::new(
            live(),
            vec![Session {
                client: 0,
                backend: Backend::NetworkX,
                llm: ScriptedLlm::new(
                    "flaky",
                    vec![
                        "```graphscript\nresult = G.frobnicate()\n```".to_string(),
                        "```graphscript\nresult = G.number_of_nodes()\n```".to_string(),
                    ],
                ),
            }],
        );
        let q = "How many nodes are there?";
        let bad = server.handle_query(0, q);
        assert_eq!(bad.cache, CacheOutcome::Miss);
        assert!(bad.answer.starts_with("error:"));
        // Same state, same request: the error itself is the cached answer;
        // the model is not consulted again.
        let repeat = server.handle_query(0, q);
        assert_eq!(repeat.cache, CacheOutcome::AnswerHit);
        assert_eq!(repeat.answer, bad.answer);
        // A mutation invalidates the negative entry; with no program
        // cached, the retry consults the model for real and succeeds.
        server
            .apply_mutation(&TimedEvent {
                at_ms: 1,
                event: NetEvent::NewEndpoint {
                    endpoint: trafficgen::Ipv4::new(203, 0, 0, 9),
                },
            })
            .unwrap();
        let good = server.handle_query(0, q);
        assert_eq!(good.cache, CacheOutcome::Miss);
        assert_eq!(good.answer, "11");
        assert!(server.cached_program(q, Backend::NetworkX).is_some());
    }
}
