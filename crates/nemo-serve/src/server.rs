//! The serving loop: mutation batches interleaved with client queries,
//! over a sharded live state.
//!
//! A [`Server`] owns a [`ShardedNetwork`] (N hash partitions of the live
//! state), one [`ProgramCache`] per shard (queries hash to a cache shard
//! by text), a set of client [`Session`]s, and the persistence layout the
//! [`ServerBuilder`] configured: none, one plain store (single shard —
//! byte-compatible with the pre-sharding on-disk layout), or one store
//! per shard under `shard-<k>/`.
//!
//! Work arrives as typed [`Request`]s and leaves as typed [`Response`]s
//! through [`Server::handle`]; the legacy [`Server::process`] entry point
//! is a thin wrapper that renders the response's transcript line.
//! Processing is sequential and deterministic: the transcript of a
//! schedule is a pure function of `(initial state, schedule, model
//! seeds)` — and, because reads are answered from the **merged view**
//! (byte-identical to an unsharded network at the same global epoch), it
//! is also independent of the shard count.

use crate::cache::{CacheOutcome, CacheStats, Lookup, ProgramCache};
use crate::error::ServeError;
use crate::live::LiveNetwork;
use crate::metrics::ServeMetrics;
use crate::mutation::{Epoch, Mutation, WalRecord};
use crate::persist::{PersistOptions, Persistence, RecoveryReport};
use crate::protocol::{Request, Response, StatsReport};
use crate::shard::{route_mutation, shard_of, ShardedNetwork};
use crate::shard_persist::{self, shard_dir, ShardPersistence};
use nemo_core::llm::extract_code;
use nemo_core::prompt::codegen_prompt;
use nemo_core::sandbox::execute_code;
use nemo_core::{Backend, Llm, NetworkManager};
use nemo_obs::trace::Tracer;
use nemo_obs::{Class, Registry};
use nemo_store::Vfs;
use netgraph::json::JsonValue;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;
use trafficgen::stream::TimedEvent;

/// One client session: a stable id, the backend this client queries
/// through, and its persistent model handle.
pub struct Session<L: Llm> {
    /// The client id requests address this session by (need not be the
    /// session's position in the server's list).
    pub client: usize,
    /// The code-generation backend this client uses.
    pub backend: Backend,
    /// The client's model session, reused across requests.
    pub llm: L,
}

/// One unit of serving work (the untyped, stream-shaped form;
/// [`Request`] is the typed protocol it converts into).
#[derive(Debug, Clone, PartialEq)]
pub enum ServeEvent {
    /// Apply one timestamped mutation to the live network.
    Mutate(TimedEvent),
    /// Answer one natural-language query for one client.
    Query {
        /// The asking client's id.
        client: usize,
        /// The query text.
        query: String,
    },
}

/// The record of one answered query.
#[derive(Debug, Clone, PartialEq)]
pub struct Reply {
    /// The asking client.
    pub client: usize,
    /// The backend used.
    pub backend: Backend,
    /// The query text.
    pub query: String,
    /// The (global) epoch the answer reflects.
    pub epoch: Epoch,
    /// How the cache satisfied the request.
    pub cache: CacheOutcome,
    /// The rendered answer (or a rendered error).
    pub answer: String,
    /// Wall-clock service time in milliseconds (excluded from
    /// transcripts; this is the load driver's latency sample).
    pub latency_ms: f64,
}

/// The persistence layout behind a server.
enum ServerPersistence {
    /// In-memory only.
    None,
    /// One plain store for a single-shard server — the exact pre-sharding
    /// on-disk layout (`nemo-wal/v1` records, unsharded snapshots), so
    /// existing store directories keep working unchanged.
    Plain(Box<Persistence>),
    /// One store per shard under `shard-<k>/`.
    Sharded(Vec<ShardPersistence>),
}

/// Builds [`Server`]s: sharding, durability, cache sizing and recovery in
/// one place, replacing the grown `Server::new` / `Server::with_persistence`
/// constructor family.
///
/// ```
/// use nemo_serve::{ServerBuilder, LiveNetwork};
/// use trafficgen::{generate, TrafficConfig};
///
/// let live = LiveNetwork::from_workload(&generate(&TrafficConfig {
///     nodes: 8, edges: 10, prefixes: 2, seed: 1,
/// }));
/// let server = ServerBuilder::new()
///     .shards(4)
///     .cache_capacity(256)
///     .build::<nemo_core::ScriptedLlm>(live, Vec::new())
///     .unwrap();
/// assert_eq!(server.network().shards(), 4);
/// ```
#[derive(Debug)]
pub struct ServerBuilder {
    shards: u32,
    options: PersistOptions,
    cache_capacity: usize,
    root: Option<PathBuf>,
    attach: Option<Persistence>,
    recovery_threads: usize,
}

impl Default for ServerBuilder {
    fn default() -> Self {
        ServerBuilder::new()
    }
}

impl ServerBuilder {
    /// A single-shard, in-memory server with unbounded caches.
    pub fn new() -> Self {
        ServerBuilder {
            shards: 1,
            options: PersistOptions::default(),
            cache_capacity: 0,
            root: None,
            attach: None,
            recovery_threads: 1,
        }
    }

    /// Number of hash partitions of the live state (default 1).
    pub fn shards(mut self, shards: u32) -> Self {
        assert!(shards > 0, "a server needs at least one shard");
        self.shards = shards;
        self
    }

    /// All persistence knobs at once (fsync/commit policy, segment size,
    /// snapshot thresholds, retention).
    pub fn options(mut self, options: PersistOptions) -> Self {
        self.options = options;
        self
    }

    /// The fsync/commit policy alone (including
    /// [`FsyncPolicy::GroupCommit`](crate::FsyncPolicy::GroupCommit)).
    pub fn fsync(mut self, policy: crate::FsyncPolicy) -> Self {
        self.options.fsync = policy;
        self
    }

    /// The flight recorder every request's trace tree is captured into.
    /// The same tracer is attached to every store this builder opens, so
    /// WAL, fsync and group-commit spans land inside the owning request's
    /// trace. Disabled by default; enable it first
    /// ([`Tracer::enable`](nemo_obs::trace::Tracer::enable)).
    pub fn tracer(mut self, tracer: Tracer) -> Self {
        self.options.tracer = tracer;
        self
    }

    /// Retain full detail for any request whose root span runs at least
    /// this many microseconds (the slow-request log). 0 — the default —
    /// disables retention. Set after [`ServerBuilder::tracer`] /
    /// [`ServerBuilder::options`]: the threshold lives on the tracer those
    /// calls install.
    pub fn slow_request_threshold(self, micros: u64) -> Self {
        self.options.tracer.set_slow_threshold_micros(micros);
        self
    }

    /// The filesystem every store runs on: [`nemo_store::RealFs`] by
    /// default, [`nemo_store::FaultFs`] for deterministic fault-injection
    /// tests.
    pub fn vfs(mut self, vfs: Arc<dyn Vfs>) -> Self {
        self.options.vfs = vfs;
        self
    }

    /// Snapshot once this many epochs passed since the last one
    /// (0 disables the epoch trigger).
    pub fn snapshot_every_epochs(mut self, epochs: u64) -> Self {
        self.options.snapshot_every_epochs = epochs;
        self
    }

    /// Maximum cached programs per cache shard; 0 (the default) is
    /// unbounded. Full caches evict the oldest-inserted program first —
    /// deterministically, so transcripts stay reproducible.
    pub fn cache_capacity(mut self, capacity: usize) -> Self {
        self.cache_capacity = capacity;
        self
    }

    /// Persist under this root directory: the store itself for a
    /// single-shard server, `shard-<k>/` subdirectories otherwise.
    pub fn persist_at(mut self, root: impl Into<PathBuf>) -> Self {
        self.root = Some(root.into());
        self
    }

    /// Attaches an already-opened (typically just-recovered) plain store
    /// handle instead of letting the builder create one. Single-shard
    /// only; mutually exclusive with [`ServerBuilder::persist_at`].
    pub fn attach_persistence(mut self, persistence: Persistence) -> Self {
        self.attach = Some(persistence);
        self
    }

    /// Worker threads for parallel per-shard recovery in
    /// [`ServerBuilder::recover_or_create`] (default 1).
    pub fn recovery_threads(mut self, threads: usize) -> Self {
        self.recovery_threads = threads.max(1);
        self
    }

    fn caches(&self) -> Vec<ProgramCache> {
        (0..self.shards)
            .map(|_| ProgramCache::with_capacity(self.cache_capacity))
            .collect()
    }

    /// Builds a server over a **fresh** initial state. With a persistence
    /// root, the store(s) are created — an occupied directory is refused
    /// (recover it with [`ServerBuilder::recover_or_create`] instead of
    /// silently shadowing it).
    pub fn build<L: Llm>(
        self,
        live: LiveNetwork,
        sessions: Vec<Session<L>>,
    ) -> Result<Server<L>, ServeError> {
        let caches = self.caches();
        let registry = self.options.registry.clone();
        let tracer = self.options.tracer.clone();
        let metrics = ServeMetrics::register(&registry, self.shards);
        let net = ShardedNetwork::from_live(&live, self.shards)?;
        let persistence = match (&self.root, self.attach) {
            (_, Some(attached)) => {
                if self.shards != 1 {
                    return Err(ServeError::Storage(
                        "attach_persistence is single-shard only; use persist_at for a \
                         sharded layout"
                            .to_string(),
                    ));
                }
                ServerPersistence::Plain(Box::new(attached))
            }
            (Some(root), None) if self.shards == 1 => {
                ServerPersistence::Plain(Box::new(Persistence::create(root, &self.options, &live)?))
            }
            (Some(root), None) => {
                let mut stores = Vec::with_capacity(self.shards as usize);
                for k in 0..self.shards {
                    stores.push(
                        ShardPersistence::create(
                            &shard_dir(root, k),
                            &self.options,
                            k,
                            self.shards,
                            net.bases(),
                            net.partition(k),
                        )
                        .map_err(|e| e.with_shard(k, None))?,
                    );
                }
                ServerPersistence::Sharded(stores)
            }
            (None, None) => ServerPersistence::None,
        };
        Ok(Server {
            caches,
            net,
            sessions,
            persistence,
            merged: None,
            degraded: None,
            degraded_cause: None,
            registry,
            tracer,
            metrics,
        })
    }

    /// Recovers the server's state from the persistence root — every
    /// shard independently, in parallel over
    /// [`ServerBuilder::recovery_threads`] — or creates it fresh from
    /// `init()` when the root is empty. Returns the per-shard
    /// [`RecoveryReport`]s (one entry for a single-shard server).
    pub fn recover_or_create<L: Llm>(
        self,
        sessions: Vec<Session<L>>,
        init: impl FnOnce() -> LiveNetwork,
    ) -> Result<(Server<L>, Vec<RecoveryReport>), ServeError> {
        if self.attach.is_some() {
            return Err(ServeError::Storage(
                "recover_or_create opens its own stores; attach_persistence is for build()"
                    .to_string(),
            ));
        }
        let Some(root) = &self.root else {
            return Err(ServeError::Storage(
                "recover_or_create needs a persistence root (persist_at)".to_string(),
            ));
        };
        let caches = self.caches();
        let registry = self.options.registry.clone();
        let tracer = self.options.tracer.clone();
        let metrics = ServeMetrics::register(&registry, self.shards);
        let (net, persistence, reports) = if self.shards == 1 {
            let (live, persistence, report) =
                Persistence::recover_or_create(root, &self.options, init)?;
            (
                ShardedNetwork::from_live(&live, 1)?,
                ServerPersistence::Plain(Box::new(persistence)),
                vec![report],
            )
        } else {
            let (net, stores, reports) = shard_persist::recover_or_create_sharded(
                root,
                &self.options,
                self.shards,
                self.recovery_threads,
                init,
            )?;
            (net, ServerPersistence::Sharded(stores), reports)
        };
        Ok((
            Server {
                net,
                caches,
                sessions,
                persistence,
                merged: None,
                degraded: None,
                degraded_cause: None,
                registry,
                tracer,
                metrics,
            },
            reports,
        ))
    }
}

/// The serving loop.
pub struct Server<L: Llm> {
    net: ShardedNetwork,
    /// One cache per shard; a query hashes to its cache shard by text.
    caches: Vec<ProgramCache>,
    sessions: Vec<Session<L>>,
    persistence: ServerPersistence,
    /// Memoized merged view and the global epoch it reflects (multi-shard
    /// servers only; a single shard serves its partition directly).
    merged: Option<(Epoch, LiveNetwork)>,
    /// Set once a store's write path is poisoned: `(poisoned shard, epoch
    /// through which that store is known durable)`. The server is then in
    /// **degraded read-only mode** — mutations come back as
    /// [`ServeError::Degraded`] / [`Response::Degraded`] while queries
    /// keep answering from the in-memory state. The epoch is global for an
    /// unsharded server and shard-local for a sharded one.
    degraded: Option<(Option<u32>, u64)>,
    /// The rendering of the first [`nemo_store::StoreError`] that poisoned
    /// the write path, captured when `degraded` was set — so degraded
    /// responses can tell an operator *why* (fsyncgate vs ENOSPC) without
    /// shell access to the store directory.
    degraded_cause: Option<String>,
    /// The metrics registry every subsystem under this server records
    /// into — the one carried by [`PersistOptions::registry`].
    registry: Registry,
    /// The flight recorder request traces are captured into — the one
    /// carried by [`PersistOptions::tracer`], shared with every attached
    /// store. Disabled (all no-ops) unless the builder installed an
    /// enabled tracer.
    tracer: Tracer,
    /// The serving layer's own metric handles.
    metrics: ServeMetrics,
}

impl<L: Llm> Server<L> {
    /// Builds an in-memory, single-shard server.
    #[deprecated(note = "use ServerBuilder::new().build(live, sessions)")]
    pub fn new(live: LiveNetwork, sessions: Vec<Session<L>>) -> Self {
        ServerBuilder::new()
            .build(live, sessions)
            .expect("an in-memory build cannot fail")
    }

    /// Builds a single-shard server over an already-opened store handle.
    #[deprecated(
        note = "use ServerBuilder::new().attach_persistence(p).build(live, sessions), or \
                persist_at + recover_or_create for a managed store"
    )]
    pub fn with_persistence(
        live: LiveNetwork,
        sessions: Vec<Session<L>>,
        persistence: Persistence,
    ) -> Self {
        ServerBuilder::new()
            .attach_persistence(persistence)
            .build(live, sessions)
            .expect("a single-shard attach cannot fail")
    }

    /// The plain (single-shard) durable storage handle, if one is
    /// attached.
    pub fn persistence(&self) -> Option<&Persistence> {
        match &self.persistence {
            ServerPersistence::Plain(p) => Some(p),
            _ => None,
        }
    }

    /// The per-shard durable storage handles, if the server is sharded.
    pub fn shard_persistence(&self) -> Option<&[ShardPersistence]> {
        match &self.persistence {
            ServerPersistence::Sharded(stores) => Some(stores),
            _ => None,
        }
    }

    /// Degraded read-only state, if the server entered it: the poisoned
    /// shard (`None` for an unsharded server) and the epoch through which
    /// that store is known durable.
    pub fn degraded(&self) -> Option<(Option<u32>, u64)> {
        self.degraded
    }

    /// The metrics registry every subsystem under this server records
    /// into. To observe a server, pass a shared [`Registry`] in via
    /// [`PersistOptions::registry`]; this accessor returns the same handle
    /// for snapshotting or text exposition.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The flight recorder this server records request traces into — the
    /// one carried by [`PersistOptions::tracer`]. Snapshot it with
    /// [`Tracer::to_doc`] / [`Tracer::to_chrome`], or ask the server
    /// itself via [`Request::Trace`].
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Enters degraded read-only mode if the store behind `err` is
    /// actually poisoned — the ground truth is the store's own poison
    /// flag, not the error's shape (rolled-back faults surface errors
    /// without poisoning anything). Returns `err` unchanged either way.
    fn note_storage_failure(&mut self, err: ServeError) -> ServeError {
        if self.degraded.is_none() {
            let hint = match &err {
                ServeError::Store { shard, .. } | ServeError::Degraded { shard, .. } => *shard,
                _ => None,
            };
            let durable = |store: &nemo_store::Store| store.durable_epoch().unwrap_or(0);
            let mut cause = None;
            self.degraded = match (&self.persistence, hint) {
                (ServerPersistence::None, _) => None,
                (ServerPersistence::Plain(p), _) => p.store().poisoned().map(|poison| {
                    cause = Some(poison.to_string());
                    (None, durable(p.store()))
                }),
                (ServerPersistence::Sharded(stores), Some(k)) => {
                    stores[k as usize].store().poisoned().map(|poison| {
                        cause = Some(poison.to_string());
                        (Some(k), durable(stores[k as usize].store()))
                    })
                }
                (ServerPersistence::Sharded(stores), None) => {
                    stores.iter().enumerate().find_map(|(k, s)| {
                        s.store().poisoned().map(|poison| {
                            cause = Some(poison.to_string());
                            (Some(k as u32), durable(s.store()))
                        })
                    })
                }
            };
            if self.degraded.is_some() {
                self.degraded_cause = cause;
                self.metrics.degraded_transitions.inc();
                // Fallback error tag: the store usually tagged the exact
                // fsync span already (first tag wins), but a poisoning
                // failure surfaced without one still marks the request.
                if let Some(cause) = &self.degraded_cause {
                    self.tracer.tag_error(cause);
                }
            }
        }
        err
    }

    /// The [`ServeError::Degraded`] rejection for the current degraded
    /// state; callers check `self.degraded` first.
    fn degraded_error(&self) -> ServeError {
        let (shard, last_durable_epoch) = self.degraded.expect("caller checked degraded state");
        ServeError::Degraded {
            shard,
            last_durable_epoch,
            cause: self.degraded_cause.clone().unwrap_or_default(),
        }
    }

    /// Fsyncs every attached store (a batch boundary). In degraded mode
    /// this is a no-op `Ok`: nothing new was logged, and failing would
    /// abort schedules that queries can still serve.
    pub fn sync_persistence(&mut self) -> Result<(), ServeError> {
        if self.degraded.is_some() {
            return Ok(());
        }
        // One physical span for the whole batch-boundary flush, whatever
        // the shard count — the skeleton must not reveal the layout.
        let _flush_span = self.tracer.span("sync.flush", Class::Physical);
        let result = match &mut self.persistence {
            ServerPersistence::None => Ok(()),
            ServerPersistence::Plain(p) => p.sync(),
            ServerPersistence::Sharded(stores) => {
                let mut sync_all = || {
                    for (k, store) in stores.iter_mut().enumerate() {
                        store.sync().map_err(|e| e.with_shard(k as u32, None))?;
                    }
                    Ok(())
                };
                sync_all()
            }
        };
        result.map_err(|e| self.note_storage_failure(e))
    }

    /// Executes up to `max_removals` deferred store removals (snapshot
    /// pruning, WAL compaction) across every attached store. Installing a
    /// snapshot defers all deletions; the serving loop pays for them
    /// here — at batch boundaries — so `append` never waits on the
    /// filesystem.
    pub fn sweep_persistence(&mut self, max_removals: usize) -> Result<(), ServeError> {
        if self.degraded.is_some() {
            return Ok(());
        }
        // As with sync.flush: one span over every shard's sweep.
        let _sweep_span = self.tracer.span("sweep.flush", Class::Physical);
        let result = match &mut self.persistence {
            ServerPersistence::None => Ok(()),
            ServerPersistence::Plain(p) => p.sweep(max_removals).map(|_| ()),
            ServerPersistence::Sharded(stores) => {
                let mut sweep_all = || {
                    for (k, store) in stores.iter_mut().enumerate() {
                        store
                            .sweep(max_removals)
                            .map_err(|e| e.with_shard(k as u32, None))?;
                    }
                    Ok(())
                };
                sweep_all()
            }
        };
        result.map_err(|e| self.note_storage_failure(e))
    }

    /// The live network of a **single-shard** server.
    #[deprecated(note = "use merged_view() (any shard count) or network() for the sharded state")]
    pub fn live(&self) -> &LiveNetwork {
        assert_eq!(
            self.net.shards(),
            1,
            "live() predates sharding and reads one partition; use merged_view()"
        );
        &self.net.partition(0).live
    }

    /// The sharded live state (routing, epoch vector, global epoch).
    pub fn network(&self) -> &ShardedNetwork {
        &self.net
    }

    /// The merged view of the live state at the current global epoch —
    /// byte-identical to what an unsharded network would hold. Memoized
    /// per epoch; a single-shard server returns its partition directly.
    pub fn merged_view(&mut self) -> &LiveNetwork {
        let epoch = self.net.global_epoch();
        self.ensure_merged(epoch);
        self.current_view()
    }

    /// Cache counters summed over every cache shard.
    pub fn cache_stats(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for cache in &self.caches {
            let stats = cache.stats();
            total.answer_hits += stats.answer_hits;
            total.program_hits += stats.program_hits;
            total.misses += stats.misses;
            total.invalidated += stats.invalidated;
            total.evictions += stats.evictions;
        }
        total
    }

    /// The server's observable counters (shards, epoch vector, caches),
    /// plus the full `nemo-metrics/v1` document from the registry. Gauges
    /// that mirror derived state — global epoch, per-shard epochs and
    /// durability lag, cache counters — are sampled here, so the document
    /// is current as of the call.
    pub fn stats(&self) -> StatsReport {
        let cache = self.cache_stats();
        let epochs = self.net.epoch_vector();
        self.metrics
            .global_epoch
            .set(self.net.global_epoch() as i64);
        self.metrics.sample_cache(cache);
        self.metrics
            .slow_requests
            .set(self.tracer.slow_total() as i64);
        for (k, gauge) in self.metrics.shard_epochs.iter().enumerate() {
            gauge.set(epochs.get(k).copied().unwrap_or(0) as i64);
        }
        for (k, gauge) in self.metrics.shard_lags.iter().enumerate() {
            let local = epochs.get(k).copied().unwrap_or(0);
            let durable = match &self.persistence {
                // No store: nothing to lag behind.
                ServerPersistence::None => local,
                ServerPersistence::Plain(p) => p.store().durable_epoch().unwrap_or(0),
                ServerPersistence::Sharded(stores) => {
                    stores[k].store().durable_epoch().unwrap_or(0)
                }
            };
            gauge.set(local.saturating_sub(durable) as i64);
        }
        let metrics = JsonValue::parse(&self.registry.snapshot().to_json())
            .expect("registry snapshots serialize to valid JSON");
        StatsReport {
            shards: self.net.shards(),
            global_epoch: self.net.global_epoch(),
            epochs,
            cache,
            metrics,
        }
    }

    /// The cached program for a query on a backend, if any.
    pub fn cached_program(&self, query: &str, backend: Backend) -> Option<&str> {
        let ci = shard_of(query, self.net.shards()) as usize;
        self.caches[ci].program(query, backend)
    }

    /// Applies one mutation event; with persistence attached, the record
    /// is durably logged (and a snapshot taken when due) before the epoch
    /// is acknowledged. Returns the **global** epoch.
    pub fn apply_mutation(&mut self, event: &TimedEvent) -> Result<Epoch, ServeError> {
        self.apply_mutation_inner(event.at_ms, Mutation::from_event(&event.event))
    }

    /// Applies and maintains the logical apply/reject counters — every
    /// serving-path mutation funnels through here. The recovery re-apply
    /// path ([`Server::apply_recorded`]) deliberately bypasses the
    /// counters: a recovered mutation was already counted by the run that
    /// first applied it.
    fn apply_mutation_inner(
        &mut self,
        at_ms: u64,
        mutation: Mutation,
    ) -> Result<Epoch, ServeError> {
        let result = self.apply_mutation_uncounted(at_ms, mutation);
        match &result {
            Ok(_) => self.metrics.mutations_applied.inc(),
            Err(ServeError::Conflict(_)) => self.metrics.mutations_rejected.inc(),
            Err(_) => {}
        }
        result
    }

    fn apply_mutation_uncounted(
        &mut self,
        at_ms: u64,
        mutation: Mutation,
    ) -> Result<Epoch, ServeError> {
        if self.degraded.is_some() {
            return Err(self.degraded_error());
        }
        // Logical span, emitted once per mutation on both layouts before
        // any validation: the trace skeleton is shard-invariant even when
        // the mutation conflicts.
        let _route_span = self.tracer.span("mutate.route", Class::Logical);
        if self.net.shards() == 1 {
            // A single shard keeps the exact pre-sharding write path (and,
            // under Plain persistence, the exact on-disk byte layout).
            let live = self.net.partition_live_mut(0);
            let result = {
                let _apply_span = self.tracer.span("mutate.apply", Class::Physical);
                match &mut self.persistence {
                    ServerPersistence::None => live.apply(at_ms, mutation),
                    ServerPersistence::Plain(p) => live.apply_persisted(at_ms, mutation, p),
                    ServerPersistence::Sharded(_) => {
                        unreachable!("the builder never shards a single-shard layout")
                    }
                }
            };
            return result.map_err(|e| self.note_storage_failure(e));
        }
        // Multi-shard: validate globally, log to the owner shard's store
        // *first* (WAL order: memory never runs ahead of the log), then
        // apply to the owner partition.
        self.net.check_global(&mutation)?;
        let global = self.net.global_epoch() + 1;
        let k = route_mutation(&mutation, self.net.shards());
        if let ServerPersistence::Sharded(stores) = &mut self.persistence {
            let record = WalRecord {
                epoch: self.net.local_epoch(k) + 1,
                at_ms,
                mutation: mutation.clone(),
            };
            let logged = stores[k as usize]
                .log(&record, global)
                .map_err(|e| e.with_shard(k, Some(global)));
            if let Err(e) = logged {
                return Err(self.note_storage_failure(e));
            }
        }
        {
            let _apply_span = self.tracer.span("mutate.apply", Class::Physical);
            self.net
                .apply_at(global, at_ms, mutation)
                .expect("mutation was validated globally before logging");
        }
        if let ServerPersistence::Sharded(stores) = &mut self.persistence {
            let snapshotted = stores[k as usize]
                .maybe_snapshot(self.net.partition(k))
                .map_err(|e| e.with_shard(k, Some(global)));
            if let Err(e) = snapshotted {
                return Err(self.note_storage_failure(e));
            }
        }
        Ok(global)
    }

    /// Applies a mutation that already carries its **global** epoch — the
    /// resume path after a jagged per-shard recovery, where the caller
    /// walks the deterministic stream and re-applies exactly the events
    /// some shard has not yet durably logged.
    pub fn apply_recorded(&mut self, global: Epoch, event: &TimedEvent) -> Result<(), ServeError> {
        let mutation = Mutation::from_event(&event.event);
        if self.net.shards() == 1 {
            if global != self.net.global_epoch() + 1 {
                return Err(ServeError::Corrupt(format!(
                    "recorded epoch {global} does not continue the state at epoch {}",
                    self.net.global_epoch()
                )));
            }
            return self
                .apply_mutation_uncounted(event.at_ms, mutation)
                .map(|_| ());
        }
        if self.degraded.is_some() {
            return Err(self.degraded_error());
        }
        let k = route_mutation(&mutation, self.net.shards());
        if let ServerPersistence::Sharded(stores) = &mut self.persistence {
            let record = WalRecord {
                epoch: self.net.local_epoch(k) + 1,
                at_ms: event.at_ms,
                mutation: mutation.clone(),
            };
            let logged = stores[k as usize]
                .log(&record, global)
                .map_err(|e| e.with_shard(k, Some(global)));
            if let Err(e) = logged {
                return Err(self.note_storage_failure(e));
            }
        }
        self.net.apply_at(global, event.at_ms, mutation)?;
        if let ServerPersistence::Sharded(stores) = &mut self.persistence {
            let snapshotted = stores[k as usize]
                .maybe_snapshot(self.net.partition(k))
                .map_err(|e| e.with_shard(k, Some(global)));
            if let Err(e) = snapshotted {
                return Err(self.note_storage_failure(e));
            }
        }
        Ok(())
    }

    fn ensure_merged(&mut self, epoch: Epoch) {
        if self.net.shards() == 1 {
            return;
        }
        if !matches!(&self.merged, Some((e, _)) if *e == epoch) {
            self.merged = Some((epoch, self.net.merged()));
        }
    }

    fn current_view(&self) -> &LiveNetwork {
        if self.net.shards() == 1 {
            &self.net.partition(0).live
        } else {
            &self
                .merged
                .as_ref()
                .expect("ensure_merged refreshed the view")
                .1
        }
    }

    /// Answers one query for one client through the cache hierarchy.
    ///
    /// Misses run the full pipeline (prompt → LLM → sandbox) via
    /// [`NetworkManager::serve_prompt`] over the merged view; program hits
    /// re-execute the cached code against the current merged state; answer
    /// hits return the cached outcome untouched. Failures never enter the
    /// *program* cache — only a negatively cached error reply scoped to
    /// the current global epoch — so the same request at the same state
    /// repeats the error cheaply, and the first request after a mutation
    /// retries the model for real.
    pub fn handle_query(&mut self, client: usize, query: &str) -> Reply {
        // Every reply counts — including the error reply for an unknown
        // client, which is just as much a function of the request stream.
        let _timer = self.registry.span("query", &self.metrics.query_micros);
        let reply = self.handle_query_uncounted(client, query);
        self.metrics.queries_answered.inc();
        reply
    }

    fn handle_query_uncounted(&mut self, client: usize, query: &str) -> Reply {
        let start = Instant::now();
        let epoch = self.net.global_epoch();
        // An unknown client gets an error reply, not a panic: one bad
        // request must not take down the serving loop.
        let Some(si) = self.sessions.iter().position(|s| s.client == client) else {
            return Reply {
                client,
                backend: Backend::Strawman,
                query: query.to_string(),
                epoch,
                cache: CacheOutcome::Miss,
                answer: format!("error: no session for client {client}"),
                latency_ms: start.elapsed().as_secs_f64() * 1e3,
            };
        };
        let backend = self.sessions[si].backend;
        let ci = shard_of(query, self.net.shards()) as usize;
        // Logical span: the probe's outcome is a pure function of the
        // request stream, so it belongs to the deterministic skeleton.
        let lookup = {
            let _cache_span = self.tracer.span("query.cache", Class::Logical);
            self.caches[ci].lookup(query, backend, epoch)
        };
        let (cache, answer) = match lookup {
            Lookup::Answer(_outcome, rendered) => (CacheOutcome::AnswerHit, rendered.to_string()),
            Lookup::Program(program) => {
                self.ensure_merged(epoch);
                let _execute_span = self.tracer.span("query.execute", Class::Physical);
                let state = self.current_view().state(backend);
                match execute_code(backend, &program, &state) {
                    Ok(outcome) => {
                        let answer = outcome.value.render();
                        self.caches[ci].insert_answer(query, backend, epoch, outcome);
                        (CacheOutcome::ProgramHit, answer)
                    }
                    Err(e) => {
                        // The stored program no longer runs against the
                        // current state: evict it so the next request
                        // after invalidation consults the model again.
                        self.caches[ci].evict_program(query, backend);
                        let answer = format!("error: {e}");
                        self.caches[ci].insert_error(query, backend, epoch, &answer);
                        (CacheOutcome::ProgramHit, answer)
                    }
                }
            }
            Lookup::Miss => {
                self.ensure_merged(epoch);
                let _compile_span = self.tracer.span("query.compile", Class::Physical);
                // Field-level split: the view (net/merged) is borrowed
                // immutably while the session's model is borrowed mutably.
                let Server {
                    net,
                    merged,
                    sessions,
                    caches,
                    ..
                } = self;
                let live: &LiveNetwork = if net.shards() == 1 {
                    &net.partition(0).live
                } else {
                    &merged.as_ref().expect("ensure_merged ran").1
                };
                let prompt = codegen_prompt(live, backend, query);
                let state = live.state(backend);
                let mut manager = NetworkManager::new(live, &mut sessions[si].llm);
                let (response, result) = manager.serve_prompt(&prompt, &state);
                match result {
                    Ok(outcome) => {
                        if let Some(code) = extract_code(&response.text) {
                            caches[ci].insert_program(query, backend, code);
                        }
                        let answer = outcome.value.render();
                        caches[ci].insert_answer(query, backend, epoch, outcome);
                        (CacheOutcome::Miss, answer)
                    }
                    Err(reason) => {
                        let answer = format!("error: {reason}");
                        caches[ci].insert_error(query, backend, epoch, &answer);
                        (CacheOutcome::Miss, answer)
                    }
                }
            }
        };
        Reply {
            client,
            backend,
            query: query.to_string(),
            epoch,
            cache,
            answer,
            latency_ms: start.elapsed().as_secs_f64() * 1e3,
        }
    }

    /// Handles one typed request.
    ///
    /// A mutation *conflict* is part of normal operation and comes back as
    /// [`Response::Rejected`] — but a storage or corruption error from the
    /// durable log is not: rendering it as "rejected" would make a dying
    /// disk indistinguishable from a benign duplicate, so those propagate
    /// as errors instead. The *first* poisoning failure therefore
    /// surfaces loudly as an error (and flips the server into degraded
    /// read-only mode); every mutation after that comes back as
    /// [`Response::Degraded`] while queries keep answering.
    pub fn handle(&mut self, request: &Request) -> Result<Response, ServeError> {
        // Mint the request's trace root; every span below (routing, cache,
        // WAL, fsync, group commit) hangs off it. A no-op when the tracer
        // is disabled.
        let _trace = self.tracer.begin(match request {
            Request::Mutate { .. } => "request.mutate",
            Request::Query { .. } => "request.query",
            Request::Sync => "request.sync",
            Request::Stats => "request.stats",
            Request::Trace { .. } => "request.trace",
        });
        match request {
            Request::Mutate { at_ms, mutation } => {
                self.metrics.requests_mutate.inc();
                let _timer = self.registry.span("mutate", &self.metrics.mutate_micros);
                match self.apply_mutation_inner(*at_ms, mutation.clone()) {
                    Ok(epoch) => Ok(Response::Mutated {
                        epoch,
                        at_ms: *at_ms,
                        description: mutation.describe(),
                    }),
                    Err(e @ ServeError::Conflict(_)) => Ok(Response::Rejected {
                        epoch: self.net.global_epoch(),
                        at_ms: *at_ms,
                        reason: e.to_string(),
                    }),
                    // A degraded server stays up: the rejection is part of
                    // normal (read-only) operation, rendered as a typed
                    // response so schedules keep running and queries keep
                    // answering.
                    Err(ServeError::Degraded {
                        shard,
                        last_durable_epoch,
                        cause,
                    }) => Ok(Response::Degraded {
                        epoch: self.net.global_epoch(),
                        at_ms: *at_ms,
                        shard,
                        last_durable_epoch,
                        cause,
                    }),
                    Err(storage_or_corrupt) => Err(storage_or_corrupt),
                }
            }
            Request::Query { client, query } => {
                self.metrics.requests_query.inc();
                Ok(Response::Answered(self.handle_query(*client, query)))
            }
            Request::Sync => {
                self.metrics.requests_sync.inc();
                let _timer = self.registry.span("sync", &self.metrics.sync_micros);
                self.sync_persistence()?;
                Ok(Response::Synced)
            }
            Request::Stats => {
                self.metrics.requests_stats.inc();
                Ok(Response::Stats(self.stats()))
            }
            Request::Trace { last_n } => {
                self.metrics.requests_trace.inc();
                // Snapshotted while this request's own trace is still
                // open, so the answer never includes itself.
                let doc = JsonValue::parse(&self.tracer.to_doc(*last_n as usize))
                    .expect("trace documents serialize to valid JSON");
                Ok(Response::Trace { doc })
            }
        }
    }

    /// Processes one event through the typed protocol and renders its
    /// deterministic transcript line (the historical line formats, byte
    /// for byte).
    pub fn process(&mut self, event: &ServeEvent) -> Result<(String, Option<Reply>), ServeError> {
        let response = self.handle(&Request::from_event(event))?;
        let line = response
            .transcript_line()
            .expect("mutate and query responses always render a line");
        let reply = match response {
            Response::Answered(reply) => Some(reply),
            _ => None,
        };
        Ok((line, reply))
    }

    /// Runs a whole schedule, returning the transcript and every reply.
    /// With persistence attached, the WAL is fsynced at every
    /// mutation-batch boundary (the last mutation before a query, and the
    /// end of the schedule), so "every applied mutation batch is durably
    /// logged" holds under [`crate::FsyncPolicy::EveryBatch`]. A failed
    /// boundary fsync aborts the schedule with the error (the transcript
    /// up to that point is lost to the caller by design — it was not
    /// durable). Without persistence the call is infallible.
    ///
    /// Each boundary also executes a small budget of deferred store
    /// removals ([`Server::sweep_persistence`]) — off the apply path, so
    /// snapshot pruning and WAL compaction never stall a mutation.
    ///
    /// On a **degraded** server the boundaries are no-ops and every
    /// mutation renders a `mutate degraded:` line; the schedule still
    /// completes and its queries are still answered.
    pub fn run_schedule(
        &mut self,
        events: &[ServeEvent],
    ) -> Result<(Vec<String>, Vec<Reply>), ServeError> {
        /// Deferred removals paid per batch boundary: enough to keep up
        /// with any realistic install rate, small enough to bound the
        /// boundary's filesystem work.
        const SWEEP_BUDGET: usize = 64;
        let mut transcript = Vec::with_capacity(events.len());
        let mut replies = Vec::new();
        for (i, event) in events.iter().enumerate() {
            let (line, reply) = self.process(event)?;
            transcript.push(line);
            replies.extend(reply);
            let batch_ends = matches!(event, ServeEvent::Mutate(_))
                && !matches!(events.get(i + 1), Some(ServeEvent::Mutate(_)));
            if batch_ends {
                self.sync_persistence()?;
                self.sweep_persistence(SWEEP_BUDGET)?;
            }
        }
        Ok((transcript, replies))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nemo_core::ScriptedLlm;
    use trafficgen::{generate, NetEvent, TrafficConfig};

    fn live() -> LiveNetwork {
        LiveNetwork::from_workload(&generate(&TrafficConfig {
            nodes: 10,
            edges: 14,
            prefixes: 2,
            seed: 9,
        }))
    }

    fn scripted(replies: usize) -> ScriptedLlm {
        // The same correct program every time it is actually consulted.
        ScriptedLlm::new(
            "scripted",
            vec!["```graphscript\nresult = G.number_of_edges()\n```".to_string(); replies],
        )
    }

    fn server_with(shards: u32, llm: ScriptedLlm) -> Server<ScriptedLlm> {
        ServerBuilder::new()
            .shards(shards)
            .build(
                live(),
                vec![Session {
                    client: 0,
                    backend: Backend::NetworkX,
                    llm,
                }],
            )
            .expect("in-memory build")
    }

    #[test]
    fn cache_hierarchy_hit_path() {
        // The same behavioural contract at every shard count.
        for shards in [1u32, 4] {
            let mut server = server_with(shards, scripted(8));
            let q = "How many edges are there?";
            let first = server.handle_query(0, q);
            assert_eq!(first.cache, CacheOutcome::Miss);
            assert_eq!(first.answer, "14");
            let second = server.handle_query(0, q);
            assert_eq!(second.cache, CacheOutcome::AnswerHit);
            assert_eq!(second.answer, first.answer);
            assert!(server
                .cached_program(q, Backend::NetworkX)
                .unwrap()
                .contains("number_of_edges"));

            // A mutation bumps the global epoch: next request re-executes
            // the cached program over the *new* merged state without
            // touching the model.
            let flow = trafficgen::Flow {
                source: trafficgen::Ipv4::new(203, 0, 0, 1),
                target: trafficgen::Ipv4::new(203, 0, 0, 2),
                bytes: 10,
                connections: 1,
                packets: 1,
            };
            for endpoint in [flow.source, flow.target] {
                server
                    .apply_mutation(&TimedEvent {
                        at_ms: 1,
                        event: NetEvent::NewEndpoint { endpoint },
                    })
                    .unwrap();
            }
            server
                .apply_mutation(&TimedEvent {
                    at_ms: 2,
                    event: NetEvent::NewFlow { flow },
                })
                .unwrap();
            let third = server.handle_query(0, q);
            assert_eq!(third.cache, CacheOutcome::ProgramHit, "shards={shards}");
            assert_eq!(third.answer, "15");
            let stats = server.cache_stats();
            assert_eq!(stats.misses, 1);
            assert_eq!(stats.answer_hits, 1);
            assert_eq!(stats.program_hits, 1);
            assert_eq!(stats.invalidated, 1);
            // The model was consulted exactly once.
            let session_llm = &server.sessions[0].llm;
            assert_eq!(session_llm.prompts_seen.len(), 1);
        }
    }

    #[test]
    fn unknown_clients_get_an_error_reply_not_a_panic() {
        let mut server = server_with(1, scripted(1));
        let reply = server.handle_query(7, "How many edges are there?");
        assert!(reply.answer.contains("no session for client 7"));
        assert_eq!(reply.client, 7);
        // The serving loop is still alive.
        assert_eq!(
            server.handle_query(0, "How many edges are there?").answer,
            "14"
        );
    }

    #[test]
    fn transcript_lines_are_deterministic_and_shard_invariant() {
        let q = "How many edges are there?".to_string();
        let schedule = vec![
            ServeEvent::Query {
                client: 0,
                query: q.clone(),
            },
            ServeEvent::Query {
                client: 0,
                query: q,
            },
        ];
        let run = |shards: u32| {
            let mut server = server_with(shards, scripted(4));
            server.run_schedule(&schedule).expect("no persistence").0
        };
        let a = run(1);
        let b = run(1);
        assert_eq!(a, b);
        assert!(a[0].contains("miss"));
        assert!(a[1].contains("hit"));
        // The same transcript at any shard count.
        for shards in [2, 4] {
            assert_eq!(run(shards), a, "shards={shards}");
        }
    }

    #[test]
    fn programs_that_stop_running_are_evicted_and_retried() {
        // The model first writes a program tied to a specific edge; once a
        // mutation removes that edge the cached program starts failing, is
        // evicted, and the next post-mutation request goes back to the
        // model instead of replaying the failure forever.
        let workload = generate(&TrafficConfig {
            nodes: 10,
            edges: 14,
            prefixes: 2,
            seed: 9,
        });
        let flow = workload.flows[0].clone();
        let (s, t) = (
            flow.source.to_string_dotted(),
            flow.target.to_string_dotted(),
        );
        let fragile =
            format!("```graphscript\nresult = G.get_edge_attr(\"{s}\", \"{t}\", \"bytes\")\n```");
        let mut server = ServerBuilder::new()
            .shards(3)
            .build(
                LiveNetwork::from_workload(&workload),
                vec![Session {
                    client: 0,
                    backend: Backend::NetworkX,
                    llm: ScriptedLlm::new(
                        "adaptive",
                        vec![
                            fragile,
                            "```graphscript\nresult = G.number_of_edges()\n```".to_string(),
                        ],
                    ),
                }],
            )
            .expect("in-memory build");
        let q = "How many bytes on the first flow?";
        assert_eq!(server.handle_query(0, q).cache, CacheOutcome::Miss);
        server
            .apply_mutation(&TimedEvent {
                at_ms: 1,
                event: NetEvent::DropFlow {
                    source: flow.source,
                    target: flow.target,
                },
            })
            .unwrap();
        // Cached program now fails against the mutated state: reported as
        // an error, program evicted.
        let broken = server.handle_query(0, q);
        assert_eq!(broken.cache, CacheOutcome::ProgramHit);
        assert!(broken.answer.starts_with("error:"));
        assert!(server.cached_program(q, Backend::NetworkX).is_none());
        // After the next mutation the request is a true miss: the model is
        // consulted again and the new program succeeds.
        server
            .apply_mutation(&TimedEvent {
                at_ms: 2,
                event: NetEvent::NewEndpoint {
                    endpoint: trafficgen::Ipv4::new(203, 0, 0, 7),
                },
            })
            .unwrap();
        let healed = server.handle_query(0, q);
        assert_eq!(healed.cache, CacheOutcome::Miss);
        assert_eq!(healed.answer, "13");
    }

    #[test]
    fn failures_are_negatively_cached_and_retried_after_mutations() {
        let mut server = ServerBuilder::new()
            .build(
                live(),
                vec![Session {
                    client: 0,
                    backend: Backend::NetworkX,
                    llm: ScriptedLlm::new(
                        "flaky",
                        vec![
                            "```graphscript\nresult = G.frobnicate()\n```".to_string(),
                            "```graphscript\nresult = G.number_of_nodes()\n```".to_string(),
                        ],
                    ),
                }],
            )
            .expect("in-memory build");
        let q = "How many nodes are there?";
        let bad = server.handle_query(0, q);
        assert_eq!(bad.cache, CacheOutcome::Miss);
        assert!(bad.answer.starts_with("error:"));
        // Same state, same request: the error itself is the cached answer;
        // the model is not consulted again.
        let repeat = server.handle_query(0, q);
        assert_eq!(repeat.cache, CacheOutcome::AnswerHit);
        assert_eq!(repeat.answer, bad.answer);
        // A mutation invalidates the negative entry; with no program
        // cached, the retry consults the model for real and succeeds.
        server
            .apply_mutation(&TimedEvent {
                at_ms: 1,
                event: NetEvent::NewEndpoint {
                    endpoint: trafficgen::Ipv4::new(203, 0, 0, 9),
                },
            })
            .unwrap();
        let good = server.handle_query(0, q);
        assert_eq!(good.cache, CacheOutcome::Miss);
        assert_eq!(good.answer, "11");
        assert!(server.cached_program(q, Backend::NetworkX).is_some());
    }

    #[test]
    fn deprecated_constructors_build_equivalent_servers() {
        #![allow(deprecated)]
        let q = "How many edges are there?";
        let mut old_style = Server::new(
            live(),
            vec![Session {
                client: 0,
                backend: Backend::NetworkX,
                llm: scripted(2),
            }],
        );
        let mut new_style = server_with(1, scripted(2));
        let a = old_style.handle_query(0, q);
        let b = new_style.handle_query(0, q);
        assert_eq!((a.answer, a.cache, a.epoch), (b.answer, b.cache, b.epoch));
        // The metrics documents differ in physical timings; everything
        // else in the report is identical.
        let (mut old_stats, mut new_stats) = (old_style.stats(), new_style.stats());
        old_stats.metrics = JsonValue::Null;
        new_stats.metrics = JsonValue::Null;
        assert_eq!(old_stats, new_stats);
        assert_eq!(old_style.live(), new_style.merged_view());
    }

    #[test]
    fn a_poisoned_write_path_degrades_to_read_only_serving() {
        use nemo_store::{FaultFs, FaultKind};
        let dir = std::env::temp_dir().join(format!("nemo-server-degraded-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let event = |at_ms: u64, i: u8| TimedEvent {
            at_ms,
            event: NetEvent::NewEndpoint {
                endpoint: trafficgen::Ipv4::new(203, 0, 0, i),
            },
        };
        let options = || PersistOptions {
            fsync: crate::FsyncPolicy::EveryRecord,
            ..PersistOptions::default()
        };
        let build = |vfs: Arc<dyn Vfs>, root: &std::path::Path| {
            ServerBuilder::new()
                .options(options())
                .vfs(vfs)
                .persist_at(root)
                .build(
                    live(),
                    vec![Session {
                        client: 0,
                        backend: Backend::NetworkX,
                        llm: scripted(4),
                    }],
                )
                .expect("fresh build")
        };
        // Calibrate: count the filesystem ops through create + the first
        // applied record, with a fault that can never fire.
        let calibrate = FaultFs::new(FaultKind::FailedFsync, u64::MAX);
        let mut server = build(Arc::new(calibrate.clone()), &dir);
        server.apply_mutation(&event(1, 1)).unwrap();
        let cut = calibrate.ops();
        drop(server);
        std::fs::remove_dir_all(&dir).unwrap();

        // Same run with the first fsync past the cut failing: that is the
        // commit fsync of the SECOND record, so record 1 is durable and
        // record 2 must be refused — fsyncgate, never retried.
        let fault = FaultFs::new(FaultKind::FailedFsync, cut);
        let mut server = build(Arc::new(fault.clone()), &dir);
        server.apply_mutation(&event(1, 1)).unwrap();
        let err = server.apply_mutation(&event(2, 2)).unwrap_err();
        assert!(
            matches!(&err, ServeError::Store { .. }),
            "first failure is loud and typed: {err:?}"
        );
        assert!(!err.retryable());
        assert!(fault.injection().is_some(), "the fault fired: {fault:?}");
        assert_eq!(
            server.degraded(),
            Some((None, 1)),
            "poisoned store => degraded at the last durable epoch"
        );
        // Mutations now come back as typed degraded responses (no error,
        // no epoch consumed)...
        let response = server
            .handle(&Request::from_event(&ServeEvent::Mutate(event(3, 3))))
            .unwrap();
        match response {
            Response::Degraded {
                epoch,
                at_ms,
                shard,
                last_durable_epoch,
                cause,
            } => {
                assert_eq!((epoch, at_ms, shard, last_durable_epoch), (1, 3, None, 1));
                // The cause names the poisoning operation (here the failed
                // commit fsync), so fsyncgate is distinguishable from
                // ENOSPC at the protocol surface.
                assert!(cause.contains("fsync"), "cause names the op: {cause:?}");
            }
            other => panic!("expected a degraded response, got {other:?}"),
        }
        // ...boundaries are no-ops instead of aborts...
        server.sync_persistence().unwrap();
        server.sweep_persistence(usize::MAX).unwrap();
        // ...and queries keep answering from the in-memory state (which
        // includes applied epoch 1, but not the refused record 2).
        let reply = server.handle_query(0, "How many edges are there?");
        assert_eq!(reply.answer, "14");
        assert_eq!(reply.epoch, 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn typed_sync_and_stats_requests_work() {
        let mut server = server_with(2, scripted(2));
        assert_eq!(server.handle(&Request::Sync).unwrap(), Response::Synced);
        let Response::Stats(stats) = server.handle(&Request::Stats).unwrap() else {
            panic!("expected stats");
        };
        assert_eq!(stats.shards, 2);
        assert_eq!(stats.epochs, vec![0, 0]);
        assert_eq!(stats.global_epoch, server.network().global_epoch());
        // The embedded metrics document is a schema-valid nemo-metrics/v1
        // doc covering every family, even for an in-memory server.
        crate::metrics::validate_metrics_doc(&stats.metrics).expect("stats doc validates");
    }

    #[test]
    fn logical_metrics_track_the_request_stream() {
        let mut server = server_with(2, scripted(4));
        let q = "How many edges are there?";
        server.handle_query(0, q);
        server.handle_query(0, q);
        server
            .apply_mutation(&TimedEvent {
                at_ms: 1,
                event: NetEvent::NewEndpoint {
                    endpoint: trafficgen::Ipv4::new(203, 0, 0, 1),
                },
            })
            .unwrap();
        // A duplicate endpoint is a conflict: rejected, no epoch consumed.
        let err = server
            .apply_mutation(&TimedEvent {
                at_ms: 2,
                event: NetEvent::NewEndpoint {
                    endpoint: trafficgen::Ipv4::new(203, 0, 0, 1),
                },
            })
            .unwrap_err();
        assert!(matches!(err, ServeError::Conflict(_)));
        let stats = server.stats();
        let JsonValue::Object(root) = &stats.metrics else {
            panic!("metrics doc is an object");
        };
        let Some(JsonValue::Object(metrics)) = root.get("metrics") else {
            panic!("doc has a metrics object");
        };
        for (name, want) in [
            ("serve_requests_query", 0.0), // direct handle_query calls are not typed requests
            ("serve_queries_answered", 2.0),
            ("serve_mutations_applied", 1.0),
            ("serve_mutations_rejected", 1.0),
            ("serve_global_epoch", 1.0),
        ] {
            let Some(JsonValue::Object(entry)) = metrics.get(name) else {
                panic!("{name} missing from the doc");
            };
            assert_eq!(
                entry.get("class"),
                Some(&JsonValue::String("logical".to_string())),
                "{name} is logical"
            );
            assert_eq!(
                entry.get("value"),
                Some(&JsonValue::Number(want)),
                "{name} tracks the stream"
            );
        }
    }
}
