//! Per-shard durable persistence: one `nemo-store` directory per shard.
//!
//! A sharded server keeps `shards` independent stores under
//! `root/shard-<k>/`, each holding exactly one partition's slice of the
//! state. The discipline mirrors [`crate::persist`] — genesis snapshot
//! before any record, newest-valid-snapshot recovery with loud failures,
//! positional replay checks, WAL compaction on snapshot — with two
//! shard-specific twists:
//!
//! * **Records carry two epochs.** The store's positional epoch is the
//!   shard's *local* epoch (so each store's contiguity and torn-tail
//!   machinery works unchanged), and the *global* epoch rides along in the
//!   payload ([`crate::codec::encode_shard_record`]) so recovery can
//!   rebuild the cross-shard sequence numbers that make the merged view
//!   byte-identical to an unsharded run. The segment magic is
//!   [`SHARD_WAL_MAGIC`], so a shard store can never be mistaken for an
//!   unsharded one (or vice versa).
//! * **Snapshots are shard documents.** A full `nemo-shard/v1` document
//!   wraps an ordinary inner snapshot (at the *local* epoch) together with
//!   the shard's identity (`shard`/`shards`), the sequence-number bases
//!   fixed at partition time, the per-row sequence vectors, and the
//!   highest global epoch the shard had observed. A `nemo-shard/v2`
//!   *delta* document instead carries just the records logged since the
//!   previous snapshot (each with its global epoch), so mid-stream
//!   installs are O(delta); recovery resolves the chain down to a full
//!   base exactly like the unsharded reader, with the same loud fallback
//!   past a damaged link.
//!
//! Each shard recovers from its own directory with **no cross-shard
//! coordination** — ghost endpoints make every per-shard stream
//! independently applicable — and [`recover_or_create_sharded`]
//! reassembles the [`ShardedNetwork`] from the recovered partitions,
//! cross-checking that all shards agree on the partition metadata.

use crate::codec::{self, decode_shard_record, encode_shard_record, SHARD_WAL_MAGIC};
use crate::error::ServeError;
use crate::mutation::{Epoch, WalRecord};
use crate::persist::{
    with_storage_retry, PersistOptions, RecoveryReport, RetryMetrics, MAX_DELTA_CHAIN,
    MAX_DELTA_RECORDS,
};
use crate::shard::{SeqBases, ShardPartition, ShardedNetwork};
use crate::snapshot::{read_snapshot, write_snapshot};
use nemo_bench::pool;
use nemo_store::{Store, StoreConfig, StoreMetrics, SweepOutcome};
use netgraph::json::JsonValue;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// Schema tag of the full per-shard snapshot document.
pub const SHARD_SCHEMA: &str = "nemo-shard/v1";

/// Schema tag of the *delta* per-shard snapshot document: base epoch plus
/// the records logged since it, each carrying its global epoch.
pub const SHARD_DELTA_SCHEMA: &str = "nemo-shard/v2";

/// The directory one shard's store lives in, under the server's
/// persistence root.
pub fn shard_dir(root: &Path, shard: u32) -> PathBuf {
    root.join(format!("shard-{shard}"))
}

fn shard_store_config(options: &PersistOptions) -> StoreConfig {
    StoreConfig {
        magic: SHARD_WAL_MAGIC.to_string(),
        fsync: options.fsync,
        segment_max_bytes: options.segment_max_bytes,
        snapshot_every_bytes: options.snapshot_every_bytes,
        snapshot_every_epochs: options.snapshot_every_epochs,
        keep_snapshots: options.keep_snapshots,
    }
}

/// One shard's durable storage handle (the sharded counterpart of
/// [`crate::Persistence`]).
#[derive(Debug)]
pub struct ShardPersistence {
    store: Store,
    shard: u32,
    shards: u32,
    bases: SeqBases,
    /// Highest global epoch this shard has logged or recovered.
    last_global: Epoch,
    /// Records (with their global epochs) logged since the newest
    /// snapshot, kept for the next delta document. Cleared (with
    /// `since_overflow` raised) once it exceeds [`MAX_DELTA_RECORDS`].
    since_snapshot: Vec<(WalRecord, Epoch)>,
    /// True when `since_snapshot` was discarded as too large — the next
    /// snapshot must be full.
    since_overflow: bool,
    /// Consecutive delta snapshots installed since the last full one.
    chain_len: usize,
    /// Retry/surfaced-fault counters shared with the options' registry.
    retry: RetryMetrics,
}

impl ShardPersistence {
    /// Creates the shard's store in an empty (or absent) directory and
    /// installs the genesis shard snapshot. Errors if the directory
    /// already holds store files.
    pub(crate) fn create(
        dir: &Path,
        options: &PersistOptions,
        shard: u32,
        shards: u32,
        bases: SeqBases,
        partition: &ShardPartition,
    ) -> Result<ShardPersistence, ServeError> {
        let retry = RetryMetrics::register(&options.registry);
        let (mut store, _) = with_storage_retry(&retry, || {
            Ok(Store::open_with(
                dir,
                shard_store_config(options),
                options.vfs.clone(),
            )?)
        })?;
        if !store.is_empty() {
            return Err(ServeError::Storage(format!(
                "{} already holds store files; use recover()",
                dir.display()
            )));
        }
        store.attach_metrics(StoreMetrics::register(&options.registry));
        store.attach_tracer(options.tracer.clone());
        let mut persistence = ShardPersistence {
            store,
            shard,
            shards,
            bases,
            last_global: bases.base_epoch,
            since_snapshot: Vec::new(),
            since_overflow: false,
            chain_len: 0,
            retry,
        };
        persistence.force_full_snapshot(partition)?;
        Ok(persistence)
    }

    /// Rebuilds one shard's partition from its directory: newest valid
    /// shard snapshot plus the per-shard WAL suffix. Same repair/fallback/
    /// fail-loudly split as [`crate::Persistence::recover`], plus the
    /// shard-identity checks (`shard`, `shards`) on every candidate
    /// document.
    pub(crate) fn recover(
        dir: &Path,
        options: &PersistOptions,
        shard: u32,
        shards: u32,
    ) -> Result<(ShardPartition, ShardPersistence, RecoveryReport), ServeError> {
        let retry = RetryMetrics::register(&options.registry);
        let (mut store, open_report) = with_storage_retry(&retry, || {
            Ok(Store::open_with(
                dir,
                shard_store_config(options),
                options.vfs.clone(),
            )?)
        })?;
        if store.is_empty() {
            return Err(ServeError::Storage(format!(
                "{} holds no store files; use create()",
                dir.display()
            )));
        }
        store.attach_metrics(StoreMetrics::register(&options.registry));
        store.attach_tracer(options.tracer.clone());
        let mut report = RecoveryReport {
            truncated_bytes: open_report.truncated_bytes,
            ..RecoveryReport::default()
        };
        // Newest shard document whose chain (a delta resolves down to a
        // full base) still validates; a damaged link fails the candidate
        // loudly and recovery falls back to the next older one.
        let mut base: Option<(u64, ShardDocument)> = None;
        for &epoch in store.snapshot_epochs().iter().rev() {
            match resolve_shard_chain(&store, epoch, shard, shards) {
                Ok(doc) => {
                    base = Some((epoch, doc));
                    break;
                }
                Err(reason) => report.skipped_snapshots.push((epoch, reason.to_string())),
            }
        }
        let Some((snapshot_epoch, doc)) = base else {
            let reasons: Vec<String> = report
                .skipped_snapshots
                .iter()
                .map(|(epoch, reason)| format!("epoch {epoch}: {reason}"))
                .collect();
            return Err(ServeError::Corrupt(format!(
                "{}: no usable snapshot — every candidate failed validation ({})",
                dir.display(),
                reasons.join("; "),
            )));
        };
        let ShardDocument {
            mut partition,
            bases,
            last_global,
        } = doc;
        report.snapshot_epoch = snapshot_epoch;
        // Replay the per-shard WAL suffix, cross-checking the store's
        // positional (local) epochs against the records' own, and folding
        // the carried global epochs back into the sequence numbers.
        let mut last_global = last_global;
        for (epoch, payload) in store.replay(snapshot_epoch)? {
            let (record, global) = decode_shard_record(&payload)?;
            if record.epoch != epoch {
                return Err(ServeError::Corrupt(format!(
                    "shard WAL record at log position {epoch} carries epoch {}",
                    record.epoch
                )));
            }
            if record.epoch != partition.live.epoch() + 1 {
                return Err(ServeError::Corrupt(format!(
                    "WAL gap: shard state is at epoch {}, next record is epoch {}",
                    partition.live.epoch(),
                    record.epoch
                )));
            }
            partition.apply_record(global, record.at_ms, record.mutation, &bases)?;
            last_global = last_global.max(global);
            report.replayed_records += 1;
        }
        // Completeness: recovering below the newest epoch the store ever
        // held would be silent data loss.
        if let Some(last) = store.last_epoch() {
            if partition.live.epoch() < last {
                return Err(ServeError::Corrupt(format!(
                    "recovery reached epoch {} but the store once held epoch {last}; \
                     the WAL covering the difference is gone (compacted or deleted)",
                    partition.live.epoch()
                )));
            }
        }
        // The chain counter starts saturated: the next snapshot is
        // written in full, anchoring a fresh chain.
        let persistence = ShardPersistence {
            store,
            shard,
            shards,
            bases,
            last_global,
            since_snapshot: Vec::new(),
            since_overflow: true,
            chain_len: MAX_DELTA_CHAIN,
            retry,
        };
        Ok((partition, persistence, report))
    }

    /// Durably logs one applied record: positional epoch is the shard's
    /// local epoch, `global` rides along in the payload.
    pub(crate) fn log(&mut self, record: &WalRecord, global: Epoch) -> Result<(), ServeError> {
        // Same logical span name as the unsharded path: the skeleton must
        // not reveal the shard layout.
        let _log_span = self
            .store
            .tracer()
            .span("wal.log", nemo_obs::Class::Logical);
        let payload = encode_shard_record(record, global);
        let retry = self.retry.clone();
        with_storage_retry(&retry, || Ok(self.store.append(record.epoch, &payload)?))?;
        self.last_global = self.last_global.max(global);
        if self.since_snapshot.len() >= MAX_DELTA_RECORDS {
            self.since_snapshot.clear();
            self.since_overflow = true;
        } else if !self.since_overflow {
            self.since_snapshot.push((record.clone(), global));
        }
        Ok(())
    }

    /// Batch-boundary fsync.
    pub(crate) fn sync(&mut self) -> Result<(), ServeError> {
        self.store.sync()?;
        Ok(())
    }

    /// Writes and installs a shard snapshot if the store's thresholds say
    /// one is due; returns whether it did.
    pub(crate) fn maybe_snapshot(
        &mut self,
        partition: &ShardPartition,
    ) -> Result<bool, ServeError> {
        if !self.store.snapshot_due(partition.live.epoch()) {
            return Ok(false);
        }
        self.force_snapshot(partition)?;
        Ok(true)
    }

    /// Unconditionally writes and installs a shard snapshot: a
    /// [`SHARD_DELTA_SCHEMA`] delta document when the backlog since the
    /// newest snapshot is small, contiguous and the chain is short
    /// (O(delta) install), a full document otherwise.
    pub(crate) fn force_snapshot(&mut self, partition: &ShardPartition) -> Result<(), ServeError> {
        let base = self.store.snapshot_metas().last().map(|m| m.epoch);
        let local = partition.live.epoch();
        let delta_eligible = !self.since_overflow
            && self.chain_len < MAX_DELTA_CHAIN
            && base.is_some_and(|b| {
                local > b
                    && self
                        .since_snapshot
                        .first()
                        .is_some_and(|(r, _)| r.epoch == b + 1)
                    && self
                        .since_snapshot
                        .last()
                        .is_some_and(|(r, _)| r.epoch == local)
                    && self.since_snapshot.len() as u64 == local - b
            });
        if delta_eligible {
            let base = base.expect("checked above");
            let document = self.shard_delta_document(local, base);
            let retry = self.retry.clone();
            with_storage_retry(&retry, || {
                Ok(self
                    .store
                    .install_delta_snapshot(local, base, document.as_bytes())?)
            })?;
            self.chain_len += 1;
            self.since_snapshot.clear();
            self.since_overflow = false;
            return Ok(());
        }
        self.force_full_snapshot(partition)
    }

    /// Unconditionally writes and installs a *full* shard snapshot,
    /// anchoring a fresh delta chain. Full shard documents skip the
    /// CSV-prefix reuse of the unsharded writer — it is a pure
    /// optimization this path does not need.
    pub(crate) fn force_full_snapshot(
        &mut self,
        partition: &ShardPartition,
    ) -> Result<(), ServeError> {
        let document = self.shard_document(partition);
        let retry = self.retry.clone();
        with_storage_retry(&retry, || {
            Ok(self
                .store
                .install_snapshot(partition.live.epoch(), document.as_bytes())?)
        })?;
        self.chain_len = 0;
        self.since_snapshot.clear();
        self.since_overflow = false;
        Ok(())
    }

    /// Executes up to `max_removals` deferred removals (snapshot pruning,
    /// WAL compaction) on this shard's store.
    pub(crate) fn sweep(&mut self, max_removals: usize) -> Result<SweepOutcome, ServeError> {
        let retry = self.retry.clone();
        with_storage_retry(&retry, || Ok(self.store.sweep(max_removals)?))
    }

    fn shard_delta_document(&self, epoch: u64, base: u64) -> String {
        let records = JsonValue::Array(
            self.since_snapshot
                .iter()
                .map(|(record, global)| {
                    codec::obj(vec![
                        ("epoch", JsonValue::Number(record.epoch as f64)),
                        ("global", JsonValue::Number(*global as f64)),
                        ("at_ms", JsonValue::Number(record.at_ms as f64)),
                        ("mutation", codec::mutation_to_json(&record.mutation)),
                    ])
                })
                .collect(),
        );
        codec::obj(vec![
            ("schema", codec::s(SHARD_DELTA_SCHEMA)),
            ("kind", codec::s("delta")),
            ("shard", codec::n(self.shard as i64)),
            ("shards", codec::n(self.shards as i64)),
            ("epoch", JsonValue::Number(epoch as f64)),
            ("delta_base", JsonValue::Number(base as f64)),
            ("last_global", JsonValue::Number(self.last_global as f64)),
            ("records", records),
        ])
        .to_json()
    }

    fn shard_document(&self, partition: &ShardPartition) -> String {
        let seqs =
            |values: &[u64]| JsonValue::Array(values.iter().map(|&v| codec::n(v as i64)).collect());
        codec::obj(vec![
            ("schema", codec::s(SHARD_SCHEMA)),
            ("shard", codec::n(self.shard as i64)),
            ("shards", codec::n(self.shards as i64)),
            ("base_epoch", codec::n(self.bases.base_epoch as i64)),
            ("node_seq_base", codec::n(self.bases.node_seq_base as i64)),
            ("edge_seq_base", codec::n(self.bases.edge_seq_base as i64)),
            ("last_global", codec::n(self.last_global as i64)),
            ("node_seqs", seqs(&partition.node_seqs)),
            ("edge_seqs", seqs(&partition.edge_seqs)),
            ("snapshot", codec::s(&write_snapshot(&partition.live))),
        ])
        .to_json()
    }

    /// Which shard this store belongs to.
    pub fn shard(&self) -> u32 {
        self.shard
    }

    /// Highest global epoch this shard has logged or recovered.
    pub fn last_global(&self) -> Epoch {
        self.last_global
    }

    /// The underlying store (inspection, benchmarks, tests).
    pub fn store(&self) -> &Store {
        &self.store
    }
}

/// What a parsed (or chain-resolved) shard snapshot yields.
struct ShardDocument {
    partition: ShardPartition,
    bases: SeqBases,
    last_global: Epoch,
}

/// A parsed `nemo-shard/v2` delta document, before chain resolution.
struct ShardDelta {
    epoch: u64,
    delta_base: u64,
    last_global: Epoch,
    records: Vec<(WalRecord, Epoch)>,
}

enum ShardDoc {
    // Boxed: a restored partition dwarfs a delta link's header.
    Full(Box<ShardDocument>),
    Delta(ShardDelta),
}

fn get_seqs(root: &BTreeMap<String, JsonValue>, key: &str) -> Result<Vec<u64>, ServeError> {
    let Some(JsonValue::Array(items)) = root.get(key) else {
        return Err(ServeError::Corrupt(format!(
            "shard snapshot field {key:?} is missing or not an array"
        )));
    };
    items
        .iter()
        .map(|item| match item {
            JsonValue::Number(x) if x.fract() == 0.0 && *x >= 0.0 => Ok(*x as u64),
            other => Err(ServeError::Corrupt(format!(
                "shard snapshot {key} entry is {other:?}, want a non-negative integer"
            ))),
        })
        .collect()
}

/// Parses either flavor of shard snapshot document, dispatching on the
/// schema field. A schema version newer than v2 is refused with a
/// message that stays distinguishable from disk corruption.
fn parse_shard_any(text: &str, want_shard: u32, want_shards: u32) -> Result<ShardDoc, ServeError> {
    let corrupt = |msg: String| ServeError::Corrupt(msg);
    let doc = JsonValue::parse(text).map_err(|e| corrupt(format!("not JSON: {e}")))?;
    let JsonValue::Object(root) = &doc else {
        return Err(corrupt("shard snapshot root is not an object".to_string()));
    };
    let schema = match root.get("schema") {
        Some(JsonValue::String(s)) => s.clone(),
        other => {
            return Err(corrupt(format!(
                "schema field is {other:?}, want \"{SHARD_SCHEMA}\" or \"{SHARD_DELTA_SCHEMA}\""
            )))
        }
    };
    check_shard_identity(root, want_shard, want_shards)?;
    if schema == SHARD_SCHEMA {
        return Ok(ShardDoc::Full(Box::new(parse_full_shard_body(root)?)));
    }
    if schema == SHARD_DELTA_SCHEMA {
        return Ok(ShardDoc::Delta(parse_delta_shard_body(root)?));
    }
    if let Some(version) = schema
        .strip_prefix("nemo-shard/v")
        .and_then(|v| v.parse::<u64>().ok())
    {
        if version > 2 {
            return Err(corrupt(format!(
                "shard snapshot format version {version} is newer than this build supports \
                 (v2); refusing to load"
            )));
        }
    }
    Err(corrupt(format!(
        "schema field is {schema:?}, want \"{SHARD_SCHEMA}\" or \"{SHARD_DELTA_SCHEMA}\""
    )))
}

fn check_shard_identity(
    root: &BTreeMap<String, JsonValue>,
    want_shard: u32,
    want_shards: u32,
) -> Result<(), ServeError> {
    let shard = codec::get_u64(root, "shard")?;
    let shards = codec::get_u64(root, "shards")?;
    if shard != want_shard as u64 || shards != want_shards as u64 {
        return Err(ServeError::Corrupt(format!(
            "snapshot belongs to shard {shard} of {shards}, want shard {want_shard} of \
             {want_shards} — the directory layout and the documents disagree"
        )));
    }
    Ok(())
}

fn parse_delta_shard_body(root: &BTreeMap<String, JsonValue>) -> Result<ShardDelta, ServeError> {
    let corrupt = |msg: String| ServeError::Corrupt(msg);
    match root.get("kind") {
        Some(JsonValue::String(kind)) if kind == "delta" => {}
        other => {
            return Err(corrupt(format!(
                "shard delta kind field is {other:?}, want \"delta\""
            )))
        }
    }
    let epoch = codec::get_u64(root, "epoch")?;
    let delta_base = codec::get_u64(root, "delta_base")?;
    if delta_base >= epoch {
        return Err(corrupt(format!(
            "shard delta at epoch {epoch} claims base {delta_base} (bases must be older)"
        )));
    }
    let last_global = codec::get_u64(root, "last_global")?;
    let Some(JsonValue::Array(items)) = root.get("records") else {
        return Err(corrupt(
            "shard delta field \"records\" is missing or not an array".to_string(),
        ));
    };
    if items.len() as u64 != epoch - delta_base {
        return Err(corrupt(format!(
            "shard delta covering ({delta_base}, {epoch}] carries {} records, want {}",
            items.len(),
            epoch - delta_base
        )));
    }
    let mut records = Vec::with_capacity(items.len());
    for (i, item) in items.iter().enumerate() {
        let JsonValue::Object(m) = item else {
            return Err(corrupt(format!("shard delta record {i} is not an object")));
        };
        let record_epoch = codec::get_u64(m, "epoch")?;
        if record_epoch != delta_base + 1 + i as u64 {
            return Err(corrupt(format!(
                "shard delta record {i} carries epoch {record_epoch}, want {} \
                 (records must be contiguous from the base)",
                delta_base + 1 + i as u64
            )));
        }
        let global = codec::get_u64(m, "global")?;
        let at_ms = codec::get_u64(m, "at_ms")?;
        let Some(JsonValue::Object(mutation)) = m.get("mutation") else {
            return Err(corrupt(format!(
                "shard delta record {i} mutation is missing or not an object"
            )));
        };
        records.push((
            WalRecord {
                epoch: record_epoch,
                at_ms,
                mutation: codec::mutation_from_json(mutation)?,
            },
            global,
        ));
    }
    Ok(ShardDelta {
        epoch,
        delta_base,
        last_global,
        records,
    })
}

fn parse_full_shard_body(root: &BTreeMap<String, JsonValue>) -> Result<ShardDocument, ServeError> {
    let corrupt = |msg: String| ServeError::Corrupt(msg);
    let bases = SeqBases {
        base_epoch: codec::get_u64(root, "base_epoch")?,
        node_seq_base: codec::get_u64(root, "node_seq_base")?,
        edge_seq_base: codec::get_u64(root, "edge_seq_base")?,
    };
    let last_global = codec::get_u64(root, "last_global")?;
    let inner = codec::get_str(root, "snapshot")?;
    let live = read_snapshot(&inner)?;
    let node_seqs = get_seqs(root, "node_seqs")?;
    let edge_seqs = get_seqs(root, "edge_seqs")?;
    if node_seqs.len() != live.nodes().n_rows() || edge_seqs.len() != live.edges().n_rows() {
        return Err(corrupt(format!(
            "sequence vectors ({} nodes, {} edges) do not match the frames ({} nodes, {} edges)",
            node_seqs.len(),
            edge_seqs.len(),
            live.nodes().n_rows(),
            live.edges().n_rows()
        )));
    }
    Ok(ShardDocument {
        partition: ShardPartition {
            live,
            node_seqs,
            edge_seqs,
        },
        bases,
        last_global,
    })
}

/// Resolves the shard snapshot at `epoch` into a restored partition,
/// following a delta chain down to its full base. Any damaged link —
/// unreadable file, failed validation, a replay that does not reach the
/// link's epoch — fails the whole chain with the failing link named in
/// the error, so the caller can fall back past it loudly.
fn resolve_shard_chain(
    store: &Store,
    epoch: u64,
    shard: u32,
    shards: u32,
) -> Result<ShardDocument, ServeError> {
    let bytes = store.read_snapshot(epoch)?;
    let text = String::from_utf8(bytes)
        .map_err(|_| ServeError::Corrupt("shard snapshot document is not UTF-8".to_string()))?;
    match parse_shard_any(&text, shard, shards)? {
        ShardDoc::Full(doc) => {
            if doc.partition.live.epoch() != epoch {
                return Err(ServeError::Corrupt(format!(
                    "shard snapshot file for epoch {epoch} carries state at epoch {}",
                    doc.partition.live.epoch()
                )));
            }
            Ok(*doc)
        }
        ShardDoc::Delta(delta) => {
            if delta.epoch != epoch {
                return Err(ServeError::Corrupt(format!(
                    "shard snapshot file for epoch {epoch} carries a delta at epoch {}",
                    delta.epoch
                )));
            }
            let mut doc =
                resolve_shard_chain(store, delta.delta_base, shard, shards).map_err(|e| {
                    ServeError::Corrupt(format!(
                        "delta shard snapshot at epoch {epoch}: base {}: {e}",
                        delta.delta_base
                    ))
                })?;
            for (record, global) in &delta.records {
                if record.epoch != doc.partition.live.epoch() + 1 {
                    return Err(ServeError::Corrupt(format!(
                        "delta shard snapshot at epoch {epoch}: shard state is at epoch {}, \
                         next record is epoch {}",
                        doc.partition.live.epoch(),
                        record.epoch
                    )));
                }
                doc.partition
                    .apply_record(*global, record.at_ms, record.mutation.clone(), &doc.bases)
                    .map_err(|e| {
                        ServeError::Corrupt(format!("delta shard snapshot at epoch {epoch}: {e}"))
                    })?;
                doc.last_global = doc.last_global.max(*global);
            }
            if doc.partition.live.epoch() != epoch {
                return Err(ServeError::Corrupt(format!(
                    "delta shard snapshot at epoch {epoch} resolved to state at epoch {}",
                    doc.partition.live.epoch()
                )));
            }
            // The document records the shard's last observed global epoch
            // at install time; the resolved chain must compute the same
            // value or a record was altered.
            if doc.last_global != delta.last_global {
                return Err(ServeError::Corrupt(format!(
                    "delta shard snapshot at epoch {epoch} carries last_global {}, but the \
                     resolved chain computes {}",
                    delta.last_global, doc.last_global
                )));
            }
            Ok(doc)
        }
    }
}

/// Opens (or creates) the whole sharded layout under `root`: either every
/// shard directory is recovered — in parallel over `threads` workers, each
/// shard independently — or, when `root/shard-0` is empty, the network is
/// built fresh from `init()`, partitioned, and every shard's genesis
/// snapshot installed. A half-and-half layout (some shards occupied, some
/// empty: a crash mid-create) fails loudly from the per-shard
/// create/recover preconditions.
pub(crate) fn recover_or_create_sharded(
    root: &Path,
    options: &PersistOptions,
    shards: u32,
    threads: usize,
    init: impl FnOnce() -> crate::live::LiveNetwork,
) -> Result<(ShardedNetwork, Vec<ShardPersistence>, Vec<RecoveryReport>), ServeError> {
    assert!(shards > 0, "a sharded layout needs at least one shard");
    // Probe with plain fs (not Store::open) so the real open below is the
    // only one — a probe open would repair torn tails and silently drop
    // the truncation out of the recovery report.
    let probe = shard_dir(root, 0);
    let occupied = match std::fs::read_dir(&probe) {
        Ok(mut entries) => entries.next().is_some(),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => false,
        Err(e) => {
            return Err(ServeError::Storage(format!(
                "probing {}: {e}",
                probe.display()
            )))
        }
    };
    if !occupied {
        let net = ShardedNetwork::from_live(&init(), shards)?;
        let mut persists = Vec::with_capacity(shards as usize);
        for k in 0..shards {
            persists.push(ShardPersistence::create(
                &shard_dir(root, k),
                options,
                k,
                shards,
                net.bases(),
                net.partition(k),
            )?);
        }
        let reports = vec![RecoveryReport::default(); shards as usize];
        return Ok((net, persists, reports));
    }
    let pool_metrics = pool::PoolMetrics::register(&options.registry);
    let results = pool::run_indexed_observed(shards as usize, threads, Some(&pool_metrics), |k| {
        ShardPersistence::recover(&shard_dir(root, k as u32), options, k as u32, shards)
    });
    let mut partitions = Vec::with_capacity(shards as usize);
    let mut persists = Vec::with_capacity(shards as usize);
    let mut reports = Vec::with_capacity(shards as usize);
    for (k, result) in results.into_iter().enumerate() {
        let (partition, persistence, report) = result.map_err(|e| e.with_shard(k as u32, None))?;
        partitions.push(partition);
        persists.push(persistence);
        reports.push(report);
    }
    // Every shard must agree on the partition-time metadata; a mix means
    // the directories come from different partitionings.
    let bases = persists[0].bases;
    for persistence in &persists[1..] {
        if persistence.bases != bases {
            return Err(ServeError::Corrupt(format!(
                "shard {}: partition metadata disagrees with shard 0 \
                 (the shard directories come from different partitionings)",
                persistence.shard
            )));
        }
    }
    let next_global = persists
        .iter()
        .map(|p| p.last_global)
        .max()
        .expect("shards > 0")
        .max(bases.base_epoch);
    let net = ShardedNetwork::from_recovered(partitions, bases, next_global);
    Ok((net, persists, reports))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::live::LiveNetwork;
    use crate::persist::FsyncPolicy;
    use crate::snapshot::write_snapshot;
    use trafficgen::{evolve, generate, StreamConfig, TrafficConfig};

    fn temp_root(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("nemo-shard-persist-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn test_options() -> PersistOptions {
        PersistOptions {
            fsync: FsyncPolicy::Never,
            segment_max_bytes: 512,
            snapshot_every_bytes: 0,
            snapshot_every_epochs: 0,
            ..PersistOptions::default()
        }
    }

    fn evolved_live(events: usize) -> LiveNetwork {
        let w = generate(&TrafficConfig {
            nodes: 16,
            edges: 22,
            prefixes: 2,
            seed: 8,
        });
        let mut live = LiveNetwork::from_workload(&w);
        for event in &evolve(&w, &StreamConfig { events, seed: 4 }) {
            live.apply_event(event).unwrap();
        }
        live
    }

    #[test]
    fn sharded_log_then_recover_merges_identically() {
        let root = temp_root("roundtrip");
        let shards = 3u32;
        let mut reference = evolved_live(0);
        let (mut net, mut persists, _) =
            recover_or_create_sharded(&root, &test_options(), shards, 2, || reference.clone())
                .unwrap();
        let w = generate(&TrafficConfig {
            nodes: 16,
            edges: 22,
            prefixes: 2,
            seed: 8,
        });
        for event in &evolve(
            &w,
            &StreamConfig {
                events: 50,
                seed: 12,
            },
        ) {
            let mutation = crate::mutation::Mutation::from_event(&event.event);
            let expected = reference.apply(event.at_ms, mutation.clone());
            match net.apply(event.at_ms, mutation.clone()) {
                Ok(global) => {
                    assert_eq!(Ok(global), expected);
                    let k = net.route(&mutation);
                    let record = WalRecord {
                        epoch: net.local_epoch(k),
                        at_ms: event.at_ms,
                        mutation,
                    };
                    persists[k as usize].log(&record, global).unwrap();
                }
                Err(e) => assert_eq!(Err(e), expected),
            }
        }
        for p in &mut persists {
            p.sync().unwrap();
        }
        drop(persists);
        drop(net);

        let (recovered, persists, reports) =
            recover_or_create_sharded(&root, &test_options(), shards, 2, || unreachable!())
                .unwrap();
        assert_eq!(recovered.global_epoch(), reference.epoch());
        assert_eq!(
            write_snapshot(&recovered.merged()),
            write_snapshot(&reference)
        );
        assert!(reports.iter().all(|r| r.truncated_bytes == 0));
        // Each shard remembers the global epoch of *its* last record; the
        // final mutation landed on exactly one of them.
        assert!(persists
            .iter()
            .all(|p| p.last_global() <= reference.epoch()));
        assert_eq!(
            persists.iter().map(|p| p.last_global()).max(),
            Some(reference.epoch())
        );
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn recovery_refuses_a_different_shard_count() {
        let root = temp_root("count");
        let live = evolved_live(10);
        recover_or_create_sharded(&root, &test_options(), 4, 1, || live.clone()).unwrap();
        let err =
            recover_or_create_sharded(&root, &test_options(), 2, 1, || unreachable!()).unwrap_err();
        assert!(
            matches!(&err, ServeError::Corrupt(msg) if msg.contains("want shard 0 of 2")),
            "got {err}"
        );
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn per_shard_snapshots_compact_and_still_recover() {
        let root = temp_root("compact");
        let shards = 2u32;
        let w = generate(&TrafficConfig {
            nodes: 16,
            edges: 22,
            prefixes: 2,
            seed: 8,
        });
        let mut reference = LiveNetwork::from_workload(&w);
        let (mut net, mut persists, _) =
            recover_or_create_sharded(&root, &test_options(), shards, 1, || reference.clone())
                .unwrap();
        let events = evolve(
            &w,
            &StreamConfig {
                events: 40,
                seed: 21,
            },
        );
        for (i, event) in events.iter().enumerate() {
            let mutation = crate::mutation::Mutation::from_event(&event.event);
            if reference.apply(event.at_ms, mutation.clone()).is_err() {
                assert!(net.apply(event.at_ms, mutation).is_err());
                continue;
            }
            let global = net
                .apply(event.at_ms, mutation.clone())
                .unwrap_or_else(|_| unreachable!("reference accepted the mutation"));
            let k = net.route(&mutation);
            let record = WalRecord {
                epoch: net.local_epoch(k),
                at_ms: event.at_ms,
                mutation,
            };
            persists[k as usize].log(&record, global).unwrap();
            if i == 19 {
                for k in 0..shards {
                    persists[k as usize]
                        .force_snapshot(net.partition(k))
                        .unwrap();
                }
            }
        }
        drop(persists);
        let (recovered, _, reports) =
            recover_or_create_sharded(&root, &test_options(), shards, 1, || unreachable!())
                .unwrap();
        assert!(reports.iter().any(|r| r.snapshot_epoch > 0));
        assert_eq!(
            write_snapshot(&recovered.merged()),
            write_snapshot(&reference)
        );
        std::fs::remove_dir_all(&root).unwrap();
    }

    /// Drives `events` through a fresh sharded layout, force-snapshotting
    /// every shard (whose local epoch advanced) at each stream index in
    /// `snapshot_at`. Returns the unsharded reference state and the
    /// per-shard persistence handles.
    fn drive_sharded(
        root: &Path,
        shards: u32,
        events: usize,
        snapshot_at: &[usize],
    ) -> (LiveNetwork, Vec<ShardPersistence>) {
        let w = generate(&TrafficConfig {
            nodes: 16,
            edges: 22,
            prefixes: 2,
            seed: 8,
        });
        let mut reference = LiveNetwork::from_workload(&w);
        let (mut net, mut persists, _) =
            recover_or_create_sharded(root, &test_options(), shards, 1, || reference.clone())
                .unwrap();
        for (i, event) in evolve(&w, &StreamConfig { events, seed: 21 })
            .iter()
            .enumerate()
        {
            let mutation = crate::mutation::Mutation::from_event(&event.event);
            if reference.apply(event.at_ms, mutation.clone()).is_err() {
                assert!(net.apply(event.at_ms, mutation).is_err());
                continue;
            }
            let global = net
                .apply(event.at_ms, mutation.clone())
                .unwrap_or_else(|_| unreachable!("reference accepted the mutation"));
            let k = net.route(&mutation);
            let record = WalRecord {
                epoch: net.local_epoch(k),
                at_ms: event.at_ms,
                mutation,
            };
            persists[k as usize].log(&record, global).unwrap();
            if snapshot_at.contains(&i) {
                for k in 0..shards {
                    let newest = persists[k as usize]
                        .store()
                        .snapshot_metas()
                        .last()
                        .map(|m| m.epoch)
                        .unwrap();
                    if net.local_epoch(k) > newest {
                        persists[k as usize]
                            .force_snapshot(net.partition(k))
                            .unwrap();
                    }
                }
            }
        }
        for p in &mut persists {
            p.sync().unwrap();
        }
        (reference, persists)
    }

    #[test]
    fn shard_delta_chains_recover_and_merge_identically() {
        let root = temp_root("delta");
        let shards = 2u32;
        let (reference, persists) = drive_sharded(&root, shards, 40, &[9, 19, 29]);
        // The mid-stream snapshots took the O(delta) path on every shard
        // that had logged records since its previous snapshot.
        assert!(
            persists
                .iter()
                .any(|p| p.store().snapshot_metas().iter().any(|m| m.base.is_some())),
            "at least one shard must have installed a delta snapshot"
        );
        drop(persists);
        let (recovered, _, reports) =
            recover_or_create_sharded(&root, &test_options(), shards, 1, || unreachable!())
                .unwrap();
        assert!(reports.iter().all(|r| r.skipped_snapshots.is_empty()));
        assert!(reports.iter().any(|r| r.snapshot_epoch > 0));
        assert_eq!(recovered.global_epoch(), reference.epoch());
        assert_eq!(
            write_snapshot(&recovered.merged()),
            write_snapshot(&reference)
        );
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn a_damaged_shard_delta_link_falls_back_loudly() {
        let root = temp_root("delta-damage");
        let shards = 2u32;
        let (reference, persists) = drive_sharded(&root, shards, 40, &[9, 19, 29]);
        // Pick a shard with at least two chained deltas and damage the
        // *middle* link, so the tip's failure must name its broken base.
        let victim = persists
            .iter()
            .find(|p| {
                let metas = p.store().snapshot_metas();
                metas.len() >= 3 && metas[1].base.is_some() && metas[2].base.is_some()
            })
            .expect("some shard chained at least two deltas");
        let shard = victim.shard();
        let metas = victim.store().snapshot_metas().to_vec();
        let damaged = metas[1];
        let path = shard_dir(&root, shard).join(nemo_store::delta_snapshot_file_name(
            damaged.epoch,
            damaged.base.unwrap(),
        ));
        drop(persists);
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x20;
        std::fs::write(&path, &bytes).unwrap();
        let (recovered, _, reports) =
            recover_or_create_sharded(&root, &test_options(), shards, 1, || unreachable!())
                .unwrap();
        let report = &reports[shard as usize];
        // Every snapshot above the damaged link was skipped — each with
        // the failing base named — and the survivor is the one below it.
        assert!(!report.skipped_snapshots.is_empty(), "{report:?}");
        assert!(
            report
                .skipped_snapshots
                .iter()
                .any(|(_, reason)| reason.contains(&format!("base {}", damaged.epoch))),
            "{:?}",
            report.skipped_snapshots
        );
        assert!(report.snapshot_epoch < damaged.epoch, "{report:?}");
        assert_eq!(
            write_snapshot(&recovered.merged()),
            write_snapshot(&reference)
        );
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn newer_or_malformed_shard_schemas_are_refused_with_clear_reasons() {
        fn parse_err(text: &str) -> ServeError {
            match parse_shard_any(text, 0, 1) {
                Err(e) => e,
                Ok(_) => panic!("document must be refused: {text}"),
            }
        }
        let future = r#"{"schema":"nemo-shard/v3","shard":0,"shards":1}"#;
        let err = parse_err(future);
        assert!(
            err.to_string().contains("newer than this build supports"),
            "{err}"
        );
        let wrong_kind = r#"{"schema":"nemo-shard/v2","kind":"full","shard":0,"shards":1}"#;
        let err = parse_err(wrong_kind);
        assert!(err.to_string().contains("want \"delta\""), "{err}");
        let inverted = r#"{"schema":"nemo-shard/v2","kind":"delta","shard":0,"shards":1,"epoch":4,"delta_base":7,"last_global":9,"records":[]}"#;
        let err = parse_err(inverted);
        assert!(err.to_string().contains("bases must be older"), "{err}");
        let short = r#"{"schema":"nemo-shard/v2","kind":"delta","shard":0,"shards":1,"epoch":4,"delta_base":2,"last_global":9,"records":[]}"#;
        let err = parse_err(short);
        assert!(
            err.to_string().contains("carries 0 records, want 2"),
            "{err}"
        );
    }
}
