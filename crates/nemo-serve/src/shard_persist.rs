//! Per-shard durable persistence: one `nemo-store` directory per shard.
//!
//! A sharded server keeps `shards` independent stores under
//! `root/shard-<k>/`, each holding exactly one partition's slice of the
//! state. The discipline mirrors [`crate::persist`] — genesis snapshot
//! before any record, newest-valid-snapshot recovery with loud failures,
//! positional replay checks, WAL compaction on snapshot — with two
//! shard-specific twists:
//!
//! * **Records carry two epochs.** The store's positional epoch is the
//!   shard's *local* epoch (so each store's contiguity and torn-tail
//!   machinery works unchanged), and the *global* epoch rides along in the
//!   payload ([`crate::codec::encode_shard_record`]) so recovery can
//!   rebuild the cross-shard sequence numbers that make the merged view
//!   byte-identical to an unsharded run. The segment magic is
//!   [`SHARD_WAL_MAGIC`], so a shard store can never be mistaken for an
//!   unsharded one (or vice versa).
//! * **Snapshots are shard documents.** A `nemo-shard/v1` document wraps
//!   an ordinary inner snapshot (at the *local* epoch) together with the
//!   shard's identity (`shard`/`shards`), the sequence-number bases fixed
//!   at partition time, the per-row sequence vectors, and the highest
//!   global epoch the shard had observed.
//!
//! Each shard recovers from its own directory with **no cross-shard
//! coordination** — ghost endpoints make every per-shard stream
//! independently applicable — and [`recover_or_create_sharded`]
//! reassembles the [`ShardedNetwork`] from the recovered partitions,
//! cross-checking that all shards agree on the partition metadata.

use crate::codec::{self, decode_shard_record, encode_shard_record, SHARD_WAL_MAGIC};
use crate::error::ServeError;
use crate::mutation::{Epoch, WalRecord};
use crate::persist::{PersistOptions, RecoveryReport};
use crate::shard::{SeqBases, ShardPartition, ShardedNetwork};
use crate::snapshot::{read_snapshot, write_snapshot};
use nemo_bench::pool;
use nemo_store::{Store, StoreConfig};
use netgraph::json::JsonValue;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// Schema tag of the per-shard snapshot document.
pub const SHARD_SCHEMA: &str = "nemo-shard/v1";

/// The directory one shard's store lives in, under the server's
/// persistence root.
pub fn shard_dir(root: &Path, shard: u32) -> PathBuf {
    root.join(format!("shard-{shard}"))
}

fn shard_store_config(options: &PersistOptions) -> StoreConfig {
    StoreConfig {
        magic: SHARD_WAL_MAGIC.to_string(),
        fsync: options.fsync,
        segment_max_bytes: options.segment_max_bytes,
        snapshot_every_bytes: options.snapshot_every_bytes,
        snapshot_every_epochs: options.snapshot_every_epochs,
        keep_snapshots: options.keep_snapshots,
    }
}

/// One shard's durable storage handle (the sharded counterpart of
/// [`crate::Persistence`]).
#[derive(Debug)]
pub struct ShardPersistence {
    store: Store,
    shard: u32,
    shards: u32,
    bases: SeqBases,
    /// Highest global epoch this shard has logged or recovered.
    last_global: Epoch,
}

impl ShardPersistence {
    /// Creates the shard's store in an empty (or absent) directory and
    /// installs the genesis shard snapshot. Errors if the directory
    /// already holds store files.
    pub(crate) fn create(
        dir: &Path,
        options: &PersistOptions,
        shard: u32,
        shards: u32,
        bases: SeqBases,
        partition: &ShardPartition,
    ) -> Result<ShardPersistence, ServeError> {
        let (store, _) = Store::open(dir, shard_store_config(options))?;
        if !store.is_empty() {
            return Err(ServeError::Storage(format!(
                "{} already holds store files; use recover()",
                dir.display()
            )));
        }
        let mut persistence = ShardPersistence {
            store,
            shard,
            shards,
            bases,
            last_global: bases.base_epoch,
        };
        persistence.force_snapshot(partition)?;
        Ok(persistence)
    }

    /// Rebuilds one shard's partition from its directory: newest valid
    /// shard snapshot plus the per-shard WAL suffix. Same repair/fallback/
    /// fail-loudly split as [`crate::Persistence::recover`], plus the
    /// shard-identity checks (`shard`, `shards`) on every candidate
    /// document.
    pub(crate) fn recover(
        dir: &Path,
        options: &PersistOptions,
        shard: u32,
        shards: u32,
    ) -> Result<(ShardPartition, ShardPersistence, RecoveryReport), ServeError> {
        let (store, open_report) = Store::open(dir, shard_store_config(options))?;
        if store.is_empty() {
            return Err(ServeError::Storage(format!(
                "{} holds no store files; use create()",
                dir.display()
            )));
        }
        let mut report = RecoveryReport {
            truncated_bytes: open_report.truncated_bytes,
            ..RecoveryReport::default()
        };
        // Newest shard document that still validates.
        let mut base: Option<(u64, ShardDocument)> = None;
        for &epoch in store.snapshot_epochs().iter().rev() {
            let parsed = store
                .read_snapshot(epoch)
                .map_err(ServeError::from)
                .and_then(|bytes| {
                    String::from_utf8(bytes).map_err(|_| {
                        ServeError::Corrupt("shard snapshot document is not UTF-8".to_string())
                    })
                })
                .and_then(|text| parse_shard_document(&text, shard, shards));
            match parsed {
                Ok(doc) => {
                    base = Some((epoch, doc));
                    break;
                }
                Err(reason) => report.skipped_snapshots.push((epoch, reason.to_string())),
            }
        }
        let Some((snapshot_epoch, doc)) = base else {
            let reasons: Vec<String> = report
                .skipped_snapshots
                .iter()
                .map(|(epoch, reason)| format!("epoch {epoch}: {reason}"))
                .collect();
            return Err(ServeError::Corrupt(format!(
                "{}: no usable snapshot — every candidate failed validation ({})",
                dir.display(),
                reasons.join("; "),
            )));
        };
        let ShardDocument {
            mut partition,
            bases,
            last_global,
        } = doc;
        if partition.live.epoch() != snapshot_epoch {
            return Err(ServeError::Corrupt(format!(
                "shard snapshot file for epoch {snapshot_epoch} carries state at epoch {}",
                partition.live.epoch()
            )));
        }
        report.snapshot_epoch = snapshot_epoch;
        // Replay the per-shard WAL suffix, cross-checking the store's
        // positional (local) epochs against the records' own, and folding
        // the carried global epochs back into the sequence numbers.
        let mut last_global = last_global;
        for (epoch, payload) in store.replay(snapshot_epoch)? {
            let (record, global) = decode_shard_record(&payload)?;
            if record.epoch != epoch {
                return Err(ServeError::Corrupt(format!(
                    "shard WAL record at log position {epoch} carries epoch {}",
                    record.epoch
                )));
            }
            if record.epoch != partition.live.epoch() + 1 {
                return Err(ServeError::Corrupt(format!(
                    "WAL gap: shard state is at epoch {}, next record is epoch {}",
                    partition.live.epoch(),
                    record.epoch
                )));
            }
            partition.apply_record(global, record.at_ms, record.mutation, &bases)?;
            last_global = last_global.max(global);
            report.replayed_records += 1;
        }
        // Completeness: recovering below the newest epoch the store ever
        // held would be silent data loss.
        if let Some(last) = store.last_epoch() {
            if partition.live.epoch() < last {
                return Err(ServeError::Corrupt(format!(
                    "recovery reached epoch {} but the store once held epoch {last}; \
                     the WAL covering the difference is gone (compacted or deleted)",
                    partition.live.epoch()
                )));
            }
        }
        let persistence = ShardPersistence {
            store,
            shard,
            shards,
            bases,
            last_global,
        };
        Ok((partition, persistence, report))
    }

    /// Durably logs one applied record: positional epoch is the shard's
    /// local epoch, `global` rides along in the payload.
    pub(crate) fn log(&mut self, record: &WalRecord, global: Epoch) -> Result<(), ServeError> {
        self.store
            .append(record.epoch, &encode_shard_record(record, global))?;
        self.last_global = self.last_global.max(global);
        Ok(())
    }

    /// Batch-boundary fsync.
    pub(crate) fn sync(&mut self) -> Result<(), ServeError> {
        self.store.sync()?;
        Ok(())
    }

    /// Writes and installs a shard snapshot if the store's thresholds say
    /// one is due; returns whether it did.
    pub(crate) fn maybe_snapshot(
        &mut self,
        partition: &ShardPartition,
    ) -> Result<bool, ServeError> {
        if !self.store.snapshot_due(partition.live.epoch()) {
            return Ok(false);
        }
        self.force_snapshot(partition)?;
        Ok(true)
    }

    /// Unconditionally writes and installs a shard snapshot. Shard
    /// snapshots are always written in full — the CSV-prefix reuse of the
    /// unsharded writer is a pure optimization this path skips.
    pub(crate) fn force_snapshot(&mut self, partition: &ShardPartition) -> Result<(), ServeError> {
        let document = self.shard_document(partition);
        self.store
            .install_snapshot(partition.live.epoch(), document.as_bytes())?;
        Ok(())
    }

    fn shard_document(&self, partition: &ShardPartition) -> String {
        let seqs =
            |values: &[u64]| JsonValue::Array(values.iter().map(|&v| codec::n(v as i64)).collect());
        codec::obj(vec![
            ("schema", codec::s(SHARD_SCHEMA)),
            ("shard", codec::n(self.shard as i64)),
            ("shards", codec::n(self.shards as i64)),
            ("base_epoch", codec::n(self.bases.base_epoch as i64)),
            ("node_seq_base", codec::n(self.bases.node_seq_base as i64)),
            ("edge_seq_base", codec::n(self.bases.edge_seq_base as i64)),
            ("last_global", codec::n(self.last_global as i64)),
            ("node_seqs", seqs(&partition.node_seqs)),
            ("edge_seqs", seqs(&partition.edge_seqs)),
            ("snapshot", codec::s(&write_snapshot(&partition.live))),
        ])
        .to_json()
    }

    /// Which shard this store belongs to.
    pub fn shard(&self) -> u32 {
        self.shard
    }

    /// Highest global epoch this shard has logged or recovered.
    pub fn last_global(&self) -> Epoch {
        self.last_global
    }

    /// The underlying store (inspection, benchmarks, tests).
    pub fn store(&self) -> &Store {
        &self.store
    }
}

/// What a parsed `nemo-shard/v1` document yields.
struct ShardDocument {
    partition: ShardPartition,
    bases: SeqBases,
    last_global: Epoch,
}

fn get_seqs(root: &BTreeMap<String, JsonValue>, key: &str) -> Result<Vec<u64>, ServeError> {
    let Some(JsonValue::Array(items)) = root.get(key) else {
        return Err(ServeError::Corrupt(format!(
            "shard snapshot field {key:?} is missing or not an array"
        )));
    };
    items
        .iter()
        .map(|item| match item {
            JsonValue::Number(x) if x.fract() == 0.0 && *x >= 0.0 => Ok(*x as u64),
            other => Err(ServeError::Corrupt(format!(
                "shard snapshot {key} entry is {other:?}, want a non-negative integer"
            ))),
        })
        .collect()
}

fn parse_shard_document(
    text: &str,
    want_shard: u32,
    want_shards: u32,
) -> Result<ShardDocument, ServeError> {
    let corrupt = |msg: String| ServeError::Corrupt(msg);
    let doc = JsonValue::parse(text).map_err(|e| corrupt(format!("not JSON: {e}")))?;
    let JsonValue::Object(root) = &doc else {
        return Err(corrupt("shard snapshot root is not an object".to_string()));
    };
    match root.get("schema") {
        Some(JsonValue::String(s)) if s == SHARD_SCHEMA => {}
        other => {
            return Err(corrupt(format!(
                "schema field is {other:?}, want \"{SHARD_SCHEMA}\""
            )))
        }
    }
    let shard = codec::get_u64(root, "shard")?;
    let shards = codec::get_u64(root, "shards")?;
    if shard != want_shard as u64 || shards != want_shards as u64 {
        return Err(corrupt(format!(
            "snapshot belongs to shard {shard} of {shards}, want shard {want_shard} of \
             {want_shards} — the directory layout and the documents disagree"
        )));
    }
    let bases = SeqBases {
        base_epoch: codec::get_u64(root, "base_epoch")?,
        node_seq_base: codec::get_u64(root, "node_seq_base")?,
        edge_seq_base: codec::get_u64(root, "edge_seq_base")?,
    };
    let last_global = codec::get_u64(root, "last_global")?;
    let inner = codec::get_str(root, "snapshot")?;
    let live = read_snapshot(&inner)?;
    let node_seqs = get_seqs(root, "node_seqs")?;
    let edge_seqs = get_seqs(root, "edge_seqs")?;
    if node_seqs.len() != live.nodes().n_rows() || edge_seqs.len() != live.edges().n_rows() {
        return Err(corrupt(format!(
            "sequence vectors ({} nodes, {} edges) do not match the frames ({} nodes, {} edges)",
            node_seqs.len(),
            edge_seqs.len(),
            live.nodes().n_rows(),
            live.edges().n_rows()
        )));
    }
    Ok(ShardDocument {
        partition: ShardPartition {
            live,
            node_seqs,
            edge_seqs,
        },
        bases,
        last_global,
    })
}

/// Opens (or creates) the whole sharded layout under `root`: either every
/// shard directory is recovered — in parallel over `threads` workers, each
/// shard independently — or, when `root/shard-0` is empty, the network is
/// built fresh from `init()`, partitioned, and every shard's genesis
/// snapshot installed. A half-and-half layout (some shards occupied, some
/// empty: a crash mid-create) fails loudly from the per-shard
/// create/recover preconditions.
pub(crate) fn recover_or_create_sharded(
    root: &Path,
    options: &PersistOptions,
    shards: u32,
    threads: usize,
    init: impl FnOnce() -> crate::live::LiveNetwork,
) -> Result<(ShardedNetwork, Vec<ShardPersistence>, Vec<RecoveryReport>), ServeError> {
    assert!(shards > 0, "a sharded layout needs at least one shard");
    // Probe with plain fs (not Store::open) so the real open below is the
    // only one — a probe open would repair torn tails and silently drop
    // the truncation out of the recovery report.
    let probe = shard_dir(root, 0);
    let occupied = match std::fs::read_dir(&probe) {
        Ok(mut entries) => entries.next().is_some(),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => false,
        Err(e) => {
            return Err(ServeError::Storage(format!(
                "probing {}: {e}",
                probe.display()
            )))
        }
    };
    if !occupied {
        let net = ShardedNetwork::from_live(&init(), shards);
        let mut persists = Vec::with_capacity(shards as usize);
        for k in 0..shards {
            persists.push(ShardPersistence::create(
                &shard_dir(root, k),
                options,
                k,
                shards,
                net.bases(),
                net.partition(k),
            )?);
        }
        let reports = vec![RecoveryReport::default(); shards as usize];
        return Ok((net, persists, reports));
    }
    let results = pool::run_indexed(shards as usize, threads, |k| {
        ShardPersistence::recover(&shard_dir(root, k as u32), options, k as u32, shards)
    });
    let mut partitions = Vec::with_capacity(shards as usize);
    let mut persists = Vec::with_capacity(shards as usize);
    let mut reports = Vec::with_capacity(shards as usize);
    for (k, result) in results.into_iter().enumerate() {
        let (partition, persistence, report) = result.map_err(|e| e.with_shard(k as u32, None))?;
        partitions.push(partition);
        persists.push(persistence);
        reports.push(report);
    }
    // Every shard must agree on the partition-time metadata; a mix means
    // the directories come from different partitionings.
    let bases = persists[0].bases;
    for persistence in &persists[1..] {
        if persistence.bases != bases {
            return Err(ServeError::Corrupt(format!(
                "shard {}: partition metadata disagrees with shard 0 \
                 (the shard directories come from different partitionings)",
                persistence.shard
            )));
        }
    }
    let next_global = persists
        .iter()
        .map(|p| p.last_global)
        .max()
        .expect("shards > 0")
        .max(bases.base_epoch);
    let net = ShardedNetwork::from_recovered(partitions, bases, next_global);
    Ok((net, persists, reports))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::live::LiveNetwork;
    use crate::persist::FsyncPolicy;
    use crate::snapshot::write_snapshot;
    use trafficgen::{evolve, generate, StreamConfig, TrafficConfig};

    fn temp_root(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("nemo-shard-persist-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn test_options() -> PersistOptions {
        PersistOptions {
            fsync: FsyncPolicy::Never,
            segment_max_bytes: 512,
            snapshot_every_bytes: 0,
            snapshot_every_epochs: 0,
            ..PersistOptions::default()
        }
    }

    fn evolved_live(events: usize) -> LiveNetwork {
        let w = generate(&TrafficConfig {
            nodes: 16,
            edges: 22,
            prefixes: 2,
            seed: 8,
        });
        let mut live = LiveNetwork::from_workload(&w);
        for event in &evolve(&w, &StreamConfig { events, seed: 4 }) {
            live.apply_event(event).unwrap();
        }
        live
    }

    #[test]
    fn sharded_log_then_recover_merges_identically() {
        let root = temp_root("roundtrip");
        let shards = 3u32;
        let mut reference = evolved_live(0);
        let (mut net, mut persists, _) =
            recover_or_create_sharded(&root, &test_options(), shards, 2, || reference.clone())
                .unwrap();
        let w = generate(&TrafficConfig {
            nodes: 16,
            edges: 22,
            prefixes: 2,
            seed: 8,
        });
        for event in &evolve(
            &w,
            &StreamConfig {
                events: 50,
                seed: 12,
            },
        ) {
            let mutation = crate::mutation::Mutation::from_event(&event.event);
            let expected = reference.apply(event.at_ms, mutation.clone());
            match net.apply(event.at_ms, mutation.clone()) {
                Ok(global) => {
                    assert_eq!(Ok(global), expected);
                    let k = net.route(&mutation);
                    let record = WalRecord {
                        epoch: net.local_epoch(k),
                        at_ms: event.at_ms,
                        mutation,
                    };
                    persists[k as usize].log(&record, global).unwrap();
                }
                Err(e) => assert_eq!(Err(e), expected),
            }
        }
        for p in &mut persists {
            p.sync().unwrap();
        }
        drop(persists);
        drop(net);

        let (recovered, persists, reports) =
            recover_or_create_sharded(&root, &test_options(), shards, 2, || unreachable!())
                .unwrap();
        assert_eq!(recovered.global_epoch(), reference.epoch());
        assert_eq!(
            write_snapshot(&recovered.merged()),
            write_snapshot(&reference)
        );
        assert!(reports.iter().all(|r| r.truncated_bytes == 0));
        // Each shard remembers the global epoch of *its* last record; the
        // final mutation landed on exactly one of them.
        assert!(persists
            .iter()
            .all(|p| p.last_global() <= reference.epoch()));
        assert_eq!(
            persists.iter().map(|p| p.last_global()).max(),
            Some(reference.epoch())
        );
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn recovery_refuses_a_different_shard_count() {
        let root = temp_root("count");
        let live = evolved_live(10);
        recover_or_create_sharded(&root, &test_options(), 4, 1, || live.clone()).unwrap();
        let err =
            recover_or_create_sharded(&root, &test_options(), 2, 1, || unreachable!()).unwrap_err();
        assert!(
            matches!(&err, ServeError::Corrupt(msg) if msg.contains("want shard 0 of 2")),
            "got {err}"
        );
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn per_shard_snapshots_compact_and_still_recover() {
        let root = temp_root("compact");
        let shards = 2u32;
        let w = generate(&TrafficConfig {
            nodes: 16,
            edges: 22,
            prefixes: 2,
            seed: 8,
        });
        let mut reference = LiveNetwork::from_workload(&w);
        let (mut net, mut persists, _) =
            recover_or_create_sharded(&root, &test_options(), shards, 1, || reference.clone())
                .unwrap();
        let events = evolve(
            &w,
            &StreamConfig {
                events: 40,
                seed: 21,
            },
        );
        for (i, event) in events.iter().enumerate() {
            let mutation = crate::mutation::Mutation::from_event(&event.event);
            if reference.apply(event.at_ms, mutation.clone()).is_err() {
                assert!(net.apply(event.at_ms, mutation).is_err());
                continue;
            }
            let global = net
                .apply(event.at_ms, mutation.clone())
                .unwrap_or_else(|_| unreachable!("reference accepted the mutation"));
            let k = net.route(&mutation);
            let record = WalRecord {
                epoch: net.local_epoch(k),
                at_ms: event.at_ms,
                mutation,
            };
            persists[k as usize].log(&record, global).unwrap();
            if i == 19 {
                for k in 0..shards {
                    persists[k as usize]
                        .force_snapshot(net.partition(k))
                        .unwrap();
                }
            }
        }
        drop(persists);
        let (recovered, _, reports) =
            recover_or_create_sharded(&root, &test_options(), shards, 1, || unreachable!())
                .unwrap();
        assert!(reports.iter().any(|r| r.snapshot_epoch > 0));
        assert_eq!(
            write_snapshot(&recovered.merged()),
            write_snapshot(&reference)
        );
        std::fs::remove_dir_all(&root).unwrap();
    }
}
