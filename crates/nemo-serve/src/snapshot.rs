//! Versioned snapshots and WAL replay.
//!
//! A snapshot is a single JSON document carrying the schema tag
//! [`SNAPSHOT_SCHEMA`], the epoch, the property graph in node-link form
//! (reusing `netgraph::json`) and the two frames as lossless CSV (reusing
//! `dataframe::csv`). Because every encoder involved is canonical — graph
//! JSON iterates nodes and edges in sorted order, CSV preserves row order
//! and value types exactly — two equal states serialize to byte-identical
//! documents, which is how the replay property tests phrase their proof:
//! `write_snapshot(snapshot(e) + WAL[e..]) == write_snapshot(direct
//! build)`.

use crate::error::ServeError;
use crate::live::LiveNetwork;
use crate::mutation::WalRecord;
use dataframe::csv::{from_csv, to_csv};
use netgraph::json::{graph_from_json, graph_to_json, JsonValue};
use std::collections::BTreeMap;

/// Schema tag written into (and required from) every snapshot document.
pub const SNAPSHOT_SCHEMA: &str = "nemo-snapshot/v1";

/// Serializes a live network into a versioned snapshot document.
pub fn write_snapshot(live: &LiveNetwork) -> String {
    let mut root = BTreeMap::new();
    root.insert(
        "schema".to_string(),
        JsonValue::String(SNAPSHOT_SCHEMA.to_string()),
    );
    root.insert("epoch".to_string(), JsonValue::Number(live.epoch() as f64));
    root.insert("graph".to_string(), graph_to_json(live.graph()));
    root.insert(
        "nodes_csv".to_string(),
        JsonValue::String(to_csv(live.nodes())),
    );
    root.insert(
        "edges_csv".to_string(),
        JsonValue::String(to_csv(live.edges())),
    );
    JsonValue::Object(root).to_json()
}

/// Restores a live network from a snapshot document. The restored WAL is
/// empty — the snapshot is the log's compacted prefix — and the epoch
/// counter continues from the snapshot's epoch.
pub fn read_snapshot(text: &str) -> Result<LiveNetwork, ServeError> {
    let corrupt = |msg: String| ServeError::Corrupt(msg);
    let doc = JsonValue::parse(text).map_err(|e| corrupt(format!("not JSON: {e}")))?;
    let root = match &doc {
        JsonValue::Object(map) => map,
        _ => return Err(corrupt("snapshot root is not an object".to_string())),
    };
    match root.get("schema") {
        Some(JsonValue::String(s)) if s == SNAPSHOT_SCHEMA => {}
        other => {
            return Err(corrupt(format!(
                "schema field is {other:?}, want \"{SNAPSHOT_SCHEMA}\""
            )))
        }
    }
    let epoch = match root.get("epoch") {
        Some(JsonValue::Number(n)) if n.fract() == 0.0 && *n >= 0.0 => *n as u64,
        other => return Err(corrupt(format!("epoch field is {other:?}"))),
    };
    let graph = match root.get("graph") {
        Some(value) => graph_from_json(value).map_err(|e| corrupt(format!("graph: {e}")))?,
        None => return Err(corrupt("missing 'graph'".to_string())),
    };
    let csv_frame = |key: &str| match root.get(key) {
        Some(JsonValue::String(text)) => from_csv(text).map_err(|e| corrupt(format!("{key}: {e}"))),
        _ => Err(corrupt(format!("missing string '{key}'"))),
    };
    let nodes = csv_frame("nodes_csv")?;
    let edges = csv_frame("edges_csv")?;
    Ok(LiveNetwork::from_parts(graph, nodes, edges, epoch))
}

/// Restores a snapshot and replays a WAL segment on top of it.
///
/// Records at or below the snapshot's epoch are skipped (the snapshot
/// already contains them); the remainder must continue the epoch sequence
/// contiguously, and every mutation must apply cleanly — a conflict in a
/// WAL that the live network accepted means the snapshot does not match
/// the log, so both cases surface as [`ServeError`].
pub fn replay(snapshot: &str, wal: &[WalRecord]) -> Result<LiveNetwork, ServeError> {
    let mut live = read_snapshot(snapshot)?;
    for record in wal {
        if record.epoch <= live.epoch() {
            continue;
        }
        if record.epoch != live.epoch() + 1 {
            return Err(ServeError::Corrupt(format!(
                "WAL gap: state is at epoch {}, next record is epoch {}",
                live.epoch(),
                record.epoch
            )));
        }
        let applied = live.apply(record.at_ms, record.mutation.clone())?;
        debug_assert_eq!(applied, record.epoch);
    }
    Ok(live)
}

#[cfg(test)]
mod tests {
    use super::*;
    use trafficgen::{evolve, generate, StreamConfig, TrafficConfig};

    fn evolved(events: usize) -> LiveNetwork {
        let w = generate(&TrafficConfig {
            nodes: 12,
            edges: 16,
            prefixes: 2,
            seed: 6,
        });
        let mut live = LiveNetwork::from_workload(&w);
        for event in evolve(&w, &StreamConfig { events, seed: 2 }) {
            live.apply_event(&event).unwrap();
        }
        live
    }

    #[test]
    fn snapshot_round_trip_is_byte_identical() {
        let live = evolved(40);
        let text = write_snapshot(&live);
        let restored = read_snapshot(&text).unwrap();
        assert_eq!(restored, live);
        assert_eq!(write_snapshot(&restored), text);
        assert_eq!(restored.epoch(), 40);
        assert!(restored.wal().is_empty());
    }

    #[test]
    fn replay_from_mid_snapshot_reconstructs_the_tip() {
        let w = generate(&TrafficConfig {
            nodes: 12,
            edges: 16,
            prefixes: 2,
            seed: 6,
        });
        let mut live = LiveNetwork::from_workload(&w);
        let events = evolve(
            &w,
            &StreamConfig {
                events: 50,
                seed: 2,
            },
        );
        let mut mid = None;
        for (i, event) in events.iter().enumerate() {
            if i == 20 {
                mid = Some(write_snapshot(&live));
            }
            live.apply_event(event).unwrap();
        }
        let replayed = replay(&mid.unwrap(), live.wal()).unwrap();
        assert_eq!(replayed, live);
        assert_eq!(write_snapshot(&replayed), write_snapshot(&live));
    }

    #[test]
    fn corrupt_documents_and_wal_gaps_are_rejected() {
        assert!(read_snapshot("not json").is_err());
        assert!(read_snapshot("{}").is_err());
        assert!(read_snapshot(r#"{"schema":"nemo-snapshot/v9"}"#).is_err());
        let live = evolved(10);
        let snapshot = write_snapshot(&live);
        // A WAL whose epochs do not continue the snapshot is a gap.
        let mut gapped = live.wal()[..0].to_vec();
        gapped.push(WalRecord {
            epoch: 99,
            ..live.wal()[9].clone()
        });
        let err = replay(&snapshot, &gapped);
        // Snapshot is at epoch 10; record 99 does not continue it.
        assert!(matches!(err, Err(ServeError::Corrupt(_))));
    }
}
