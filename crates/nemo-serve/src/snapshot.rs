//! Versioned snapshots and WAL replay.
//!
//! A snapshot is a single JSON document carrying the schema tag
//! [`SNAPSHOT_SCHEMA`], the epoch, the property graph in node-link form
//! (reusing `netgraph::json`) and the two frames as lossless CSV (reusing
//! `dataframe::csv`). Because every encoder involved is canonical — graph
//! JSON iterates nodes and edges in sorted order, CSV preserves row order
//! and value types exactly — two equal states serialize to byte-identical
//! documents, which is how the replay property tests phrase their proof:
//! `write_snapshot(snapshot(e) + WAL[e..]) == write_snapshot(direct
//! build)`.

use crate::error::ServeError;
use crate::live::LiveNetwork;
use crate::mutation::WalRecord;
use dataframe::csv::{from_csv, to_csv};
use netgraph::json::{graph_from_json, graph_to_json, JsonValue};
use std::collections::BTreeMap;

/// Schema tag written into (and required from) every snapshot document.
pub const SNAPSHOT_SCHEMA: &str = "nemo-snapshot/v1";

/// The format version this build writes and reads.
pub const SNAPSHOT_VERSION: u64 = 1;

/// Serializes a live network into a versioned snapshot document.
pub fn write_snapshot(live: &LiveNetwork) -> String {
    write_snapshot_with_frames(live, &to_csv(live.nodes()), &to_csv(live.edges()))
}

/// [`write_snapshot`] with the frame CSV supplied by the caller, for
/// incremental writers that reuse the previous snapshot's unchanged prefix
/// and encode only appended rows (`export_flows_since`-style). The
/// supplied strings must equal a fresh `to_csv` of the live frames — the
/// output is then byte-identical to [`write_snapshot`].
pub fn write_snapshot_with_frames(live: &LiveNetwork, nodes_csv: &str, edges_csv: &str) -> String {
    let mut root = BTreeMap::new();
    root.insert(
        "schema".to_string(),
        JsonValue::String(SNAPSHOT_SCHEMA.to_string()),
    );
    root.insert("epoch".to_string(), JsonValue::Number(live.epoch() as f64));
    // Stable provenance header: the epoch the writer observed when the
    // document was produced. Always equal to "epoch" for full snapshots;
    // kept as its own field so readers of any future delta format can rely
    // on it unconditionally.
    root.insert(
        "created_epoch".to_string(),
        JsonValue::Number(live.epoch() as f64),
    );
    root.insert("graph".to_string(), graph_to_json(live.graph()));
    root.insert(
        "nodes_csv".to_string(),
        JsonValue::String(nodes_csv.to_string()),
    );
    root.insert(
        "edges_csv".to_string(),
        JsonValue::String(edges_csv.to_string()),
    );
    JsonValue::Object(root).to_json()
}

/// Restores a live network from a snapshot document. The restored WAL is
/// empty — the snapshot is the log's compacted prefix — and the epoch
/// counter continues from the snapshot's epoch.
pub fn read_snapshot(text: &str) -> Result<LiveNetwork, ServeError> {
    let corrupt = |msg: String| ServeError::Corrupt(msg);
    let doc = JsonValue::parse(text).map_err(|e| corrupt(format!("not JSON: {e}")))?;
    let root = match &doc {
        JsonValue::Object(map) => map,
        _ => return Err(corrupt("snapshot root is not an object".to_string())),
    };
    match root.get("schema") {
        Some(JsonValue::String(s)) if s == SNAPSHOT_SCHEMA => {}
        Some(JsonValue::String(s)) => {
            // A versioned-but-newer document gets a clear refusal (not a
            // parse panic deeper in): the operator learns to upgrade, not
            // to suspect disk corruption.
            if let Some(version) = s
                .strip_prefix("nemo-snapshot/v")
                .and_then(|v| v.parse::<u64>().ok())
            {
                if version > SNAPSHOT_VERSION {
                    return Err(corrupt(format!(
                        "snapshot format version {version} is newer than this build \
                         supports (v{SNAPSHOT_VERSION}); refusing to load"
                    )));
                }
            }
            return Err(corrupt(format!(
                "schema field is {s:?}, want \"{SNAPSHOT_SCHEMA}\""
            )));
        }
        other => {
            return Err(corrupt(format!(
                "schema field is {other:?}, want \"{SNAPSHOT_SCHEMA}\""
            )))
        }
    }
    let epoch = match root.get("epoch") {
        Some(JsonValue::Number(n)) if n.fract() == 0.0 && *n >= 0.0 => *n as u64,
        other => return Err(corrupt(format!("epoch field is {other:?}"))),
    };
    // The provenance header is optional under v1 (documents written
    // before it existed stay readable), but when present it must agree
    // with the state epoch — a mismatch means a corrupted or hand-edited
    // file.
    match root.get("created_epoch") {
        None => {}
        Some(JsonValue::Number(n)) if n.fract() == 0.0 && *n as u64 == epoch => {}
        Some(other) => {
            return Err(corrupt(format!(
                "created_epoch field is {other:?}, want {epoch}"
            )))
        }
    }
    let graph = match root.get("graph") {
        Some(value) => graph_from_json(value).map_err(|e| corrupt(format!("graph: {e}")))?,
        None => return Err(corrupt("missing 'graph'".to_string())),
    };
    let csv_frame = |key: &str| match root.get(key) {
        Some(JsonValue::String(text)) => from_csv(text).map_err(|e| corrupt(format!("{key}: {e}"))),
        _ => Err(corrupt(format!("missing string '{key}'"))),
    };
    let nodes = csv_frame("nodes_csv")?;
    let edges = csv_frame("edges_csv")?;
    Ok(LiveNetwork::from_parts(graph, nodes, edges, epoch))
}

/// Restores a snapshot and replays a WAL segment on top of it.
///
/// Records at or below the snapshot's epoch are skipped (the snapshot
/// already contains them); the remainder must continue the epoch sequence
/// contiguously, and every mutation must apply cleanly — a conflict in a
/// WAL that the live network accepted means the snapshot does not match
/// the log, so both cases surface as [`ServeError`].
pub fn replay(snapshot: &str, wal: &[WalRecord]) -> Result<LiveNetwork, ServeError> {
    let mut live = read_snapshot(snapshot)?;
    apply_wal(&mut live, wal)?;
    Ok(live)
}

/// Applies a WAL suffix to an already-restored network: records at or
/// below the current epoch are skipped, the rest must continue the epoch
/// sequence contiguously and apply cleanly. Returns the number of records
/// actually applied. This is the shared replay loop of [`replay`] and the
/// disk-recovery path in [`crate::persist`].
pub fn apply_wal(live: &mut LiveNetwork, wal: &[WalRecord]) -> Result<u64, ServeError> {
    let mut applied_count = 0;
    for record in wal {
        if record.epoch <= live.epoch() {
            continue;
        }
        if record.epoch != live.epoch() + 1 {
            return Err(ServeError::Corrupt(format!(
                "WAL gap: state is at epoch {}, next record is epoch {}",
                live.epoch(),
                record.epoch
            )));
        }
        let applied = live.apply(record.at_ms, record.mutation.clone())?;
        debug_assert_eq!(applied, record.epoch);
        applied_count += 1;
    }
    Ok(applied_count)
}

#[cfg(test)]
mod tests {
    use super::*;
    use trafficgen::{evolve, generate, StreamConfig, TrafficConfig};

    fn evolved(events: usize) -> LiveNetwork {
        let w = generate(&TrafficConfig {
            nodes: 12,
            edges: 16,
            prefixes: 2,
            seed: 6,
        });
        let mut live = LiveNetwork::from_workload(&w);
        for event in evolve(&w, &StreamConfig { events, seed: 2 }) {
            live.apply_event(&event).unwrap();
        }
        live
    }

    #[test]
    fn snapshot_round_trip_is_byte_identical() {
        let live = evolved(40);
        let text = write_snapshot(&live);
        let restored = read_snapshot(&text).unwrap();
        assert_eq!(restored, live);
        assert_eq!(write_snapshot(&restored), text);
        assert_eq!(restored.epoch(), 40);
        assert!(restored.wal().is_empty());
    }

    #[test]
    fn replay_from_mid_snapshot_reconstructs_the_tip() {
        let w = generate(&TrafficConfig {
            nodes: 12,
            edges: 16,
            prefixes: 2,
            seed: 6,
        });
        let mut live = LiveNetwork::from_workload(&w);
        let events = evolve(
            &w,
            &StreamConfig {
                events: 50,
                seed: 2,
            },
        );
        let mut mid = None;
        for (i, event) in events.iter().enumerate() {
            if i == 20 {
                mid = Some(write_snapshot(&live));
            }
            live.apply_event(event).unwrap();
        }
        let replayed = replay(&mid.unwrap(), live.wal()).unwrap();
        assert_eq!(replayed, live);
        assert_eq!(write_snapshot(&replayed), write_snapshot(&live));
    }

    #[test]
    fn snapshot_carries_a_stable_created_epoch_header() {
        let live = evolved(7);
        let text = write_snapshot(&live);
        assert!(text.contains("\"created_epoch\":7"));
        // Tampering with the provenance header is rejected.
        let tampered = text.replace("\"created_epoch\":7", "\"created_epoch\":9");
        assert!(matches!(
            read_snapshot(&tampered),
            Err(ServeError::Corrupt(_))
        ));
        // A pre-header v1 document (the field absent entirely) stays
        // readable: the field was added without a version bump.
        let legacy = text.replace("\"created_epoch\":7,", "");
        assert!(legacy != text && read_snapshot(&legacy).is_ok());
    }

    #[test]
    fn future_format_versions_are_refused_with_a_clear_error() {
        let live = evolved(3);
        let future = write_snapshot(&live).replace("nemo-snapshot/v1", "nemo-snapshot/v2");
        match read_snapshot(&future) {
            Err(ServeError::Corrupt(msg)) => {
                assert!(msg.contains("version 2"), "{msg}");
                assert!(msg.contains("refusing to load"), "{msg}");
            }
            other => panic!("expected a clear refusal, got {other:?}"),
        }
        // A non-versioned unknown schema still gets the generic error.
        let alien = write_snapshot(&live).replace("nemo-snapshot/v1", "other-format");
        assert!(matches!(read_snapshot(&alien), Err(ServeError::Corrupt(_))));
    }

    #[test]
    fn frame_injection_matches_the_full_writer_byte_for_byte() {
        let live = evolved(12);
        let full = write_snapshot(&live);
        let injected = write_snapshot_with_frames(
            &live,
            &dataframe::csv::to_csv(live.nodes()),
            &dataframe::csv::to_csv(live.edges()),
        );
        assert_eq!(injected, full);
    }

    #[test]
    fn corrupt_documents_and_wal_gaps_are_rejected() {
        assert!(read_snapshot("not json").is_err());
        assert!(read_snapshot("{}").is_err());
        assert!(read_snapshot(r#"{"schema":"nemo-snapshot/v9"}"#).is_err());
        let live = evolved(10);
        let snapshot = write_snapshot(&live);
        // A WAL whose epochs do not continue the snapshot is a gap.
        let mut gapped = live.wal()[..0].to_vec();
        gapped.push(WalRecord {
            epoch: 99,
            ..live.wal()[9].clone()
        });
        let err = replay(&snapshot, &gapped);
        // Snapshot is at epoch 10; record 99 does not continue it.
        assert!(matches!(err, Err(ServeError::Corrupt(_))));
    }
}
