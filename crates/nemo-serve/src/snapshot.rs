//! Versioned snapshots and WAL replay.
//!
//! A *full* snapshot is a single JSON document carrying the schema tag
//! [`SNAPSHOT_SCHEMA`], the epoch, the property graph in node-link form
//! (reusing `netgraph::json`) and the two frames as lossless CSV (reusing
//! `dataframe::csv`). Because every encoder involved is canonical — graph
//! JSON iterates nodes and edges in sorted order, CSV preserves row order
//! and value types exactly — two equal states serialize to byte-identical
//! documents, which is how the replay property tests phrase their proof:
//! `write_snapshot(snapshot(e) + WAL[e..]) == write_snapshot(direct
//! build)`.
//!
//! A *delta* snapshot ([`DELTA_SCHEMA`], `nemo-snapshot/v2`) captures the
//! same state as a base epoch plus the WAL records appended since that
//! base — the rows added to the frames and the patch to the graph,
//! exactly as the mutations expressed them — so writing one is O(delta),
//! not O(state). A delta cannot be restored alone; recovery resolves the
//! chain back to a full base with [`read_snapshot_document`] and replays
//! each link's records. Full documents intentionally stay `v1`: their
//! bytes are the canonical state encoding that transcript digests and
//! byte-equality proofs are built on, and the delta format changes
//! nothing about them.

use crate::codec;
use crate::error::ServeError;
use crate::live::LiveNetwork;
use crate::mutation::WalRecord;
use dataframe::csv::{from_csv, to_csv};
use netgraph::json::{graph_from_json, graph_to_json, JsonValue};
use std::collections::BTreeMap;

/// Schema tag written into (and required from) every *full* snapshot
/// document.
pub const SNAPSHOT_SCHEMA: &str = "nemo-snapshot/v1";

/// Schema tag of *delta* snapshot documents.
pub const DELTA_SCHEMA: &str = "nemo-snapshot/v2";

/// The newest format version this build reads. Documents tagged with a
/// higher `nemo-snapshot/v<N>` are refused with a clear upgrade message
/// instead of a parse error deeper in.
pub const SNAPSHOT_VERSION: u64 = 2;

/// Serializes a live network into a versioned snapshot document.
pub fn write_snapshot(live: &LiveNetwork) -> String {
    write_snapshot_with_frames(live, &to_csv(live.nodes()), &to_csv(live.edges()))
}

/// [`write_snapshot`] with the frame CSV supplied by the caller, for
/// incremental writers that reuse the previous snapshot's unchanged prefix
/// and encode only appended rows (`export_flows_since`-style). The
/// supplied strings must equal a fresh `to_csv` of the live frames — the
/// output is then byte-identical to [`write_snapshot`].
pub fn write_snapshot_with_frames(live: &LiveNetwork, nodes_csv: &str, edges_csv: &str) -> String {
    let mut root = BTreeMap::new();
    root.insert(
        "schema".to_string(),
        JsonValue::String(SNAPSHOT_SCHEMA.to_string()),
    );
    root.insert("epoch".to_string(), JsonValue::Number(live.epoch() as f64));
    // Stable provenance header: the epoch the writer observed when the
    // document was produced. Always equal to "epoch" for full snapshots;
    // kept as its own field so readers of any future delta format can rely
    // on it unconditionally.
    root.insert(
        "created_epoch".to_string(),
        JsonValue::Number(live.epoch() as f64),
    );
    root.insert("graph".to_string(), graph_to_json(live.graph()));
    root.insert(
        "nodes_csv".to_string(),
        JsonValue::String(nodes_csv.to_string()),
    );
    root.insert(
        "edges_csv".to_string(),
        JsonValue::String(edges_csv.to_string()),
    );
    JsonValue::Object(root).to_json()
}

/// Serializes the difference between the snapshot at `base_epoch` and the
/// state at `epoch` as a delta document: the WAL records covering
/// `(base_epoch, epoch]` — the appended frame rows and the graph patch,
/// exactly as the mutations expressed them. `records` must be that exact
/// contiguous range.
pub fn write_delta_snapshot(epoch: u64, base_epoch: u64, records: &[WalRecord]) -> String {
    debug_assert!(base_epoch < epoch);
    debug_assert_eq!(records.len() as u64, epoch - base_epoch);
    let encoded: Vec<JsonValue> = records
        .iter()
        .map(|r| {
            codec::obj(vec![
                ("epoch", JsonValue::Number(r.epoch as f64)),
                ("at_ms", JsonValue::Number(r.at_ms as f64)),
                ("mutation", codec::mutation_to_json(&r.mutation)),
            ])
        })
        .collect();
    codec::obj(vec![
        ("schema", codec::s(DELTA_SCHEMA)),
        ("kind", codec::s("delta")),
        ("epoch", JsonValue::Number(epoch as f64)),
        // The same provenance header full snapshots carry.
        ("created_epoch", JsonValue::Number(epoch as f64)),
        ("base_epoch", JsonValue::Number(base_epoch as f64)),
        ("records", JsonValue::Array(encoded)),
    ])
    .to_json()
}

/// One parsed snapshot document: either a self-contained state or one
/// link of a delta chain.
#[derive(Debug, Clone, PartialEq)]
pub enum SnapshotDoc {
    /// A full (`nemo-snapshot/v1`) document, restored. Boxed: a restored
    /// state is much larger than a delta link's header.
    Full(Box<LiveNetwork>),
    /// A delta (`nemo-snapshot/v2`) document: the state at `epoch` equals
    /// the state of the snapshot at `base_epoch` with `records` replayed
    /// on top.
    Delta {
        /// Epoch of the state the delta captures.
        epoch: u64,
        /// Epoch of the snapshot the records build on.
        base_epoch: u64,
        /// The WAL records covering `(base_epoch, epoch]`, contiguous.
        records: Vec<WalRecord>,
    },
}

fn parse_root(text: &str) -> Result<BTreeMap<String, JsonValue>, ServeError> {
    let doc = JsonValue::parse(text).map_err(|e| ServeError::Corrupt(format!("not JSON: {e}")))?;
    match doc {
        JsonValue::Object(map) => Ok(map),
        _ => Err(ServeError::Corrupt(
            "snapshot root is not an object".to_string(),
        )),
    }
}

/// The version gate: a schema naming a version newer than this build
/// reads gets a clear refusal instead of a parse error deeper in — the
/// operator learns to upgrade, not to suspect disk corruption.
fn refuse_newer(schema: &str) -> Result<(), ServeError> {
    if let Some(version) = schema
        .strip_prefix("nemo-snapshot/v")
        .and_then(|v| v.parse::<u64>().ok())
    {
        if version > SNAPSHOT_VERSION {
            return Err(ServeError::Corrupt(format!(
                "snapshot format version {version} is newer than this build \
                 supports (v{SNAPSHOT_VERSION}); refusing to load"
            )));
        }
    }
    Ok(())
}

fn get_epoch_field(root: &BTreeMap<String, JsonValue>, key: &str) -> Result<u64, ServeError> {
    match root.get(key) {
        Some(JsonValue::Number(n)) if n.fract() == 0.0 && *n >= 0.0 => Ok(*n as u64),
        other => Err(ServeError::Corrupt(format!("{key} field is {other:?}"))),
    }
}

/// Restores a full (v1) document from its parsed root.
fn read_full_document(root: &BTreeMap<String, JsonValue>) -> Result<LiveNetwork, ServeError> {
    let corrupt = |msg: String| ServeError::Corrupt(msg);
    let epoch = get_epoch_field(root, "epoch")?;
    // The provenance header is optional under v1 (documents written
    // before it existed stay readable), but when present it must agree
    // with the state epoch — a mismatch means a corrupted or hand-edited
    // file.
    match root.get("created_epoch") {
        None => {}
        Some(JsonValue::Number(n)) if n.fract() == 0.0 && *n as u64 == epoch => {}
        Some(other) => {
            return Err(corrupt(format!(
                "created_epoch field is {other:?}, want {epoch}"
            )))
        }
    }
    let graph = match root.get("graph") {
        Some(value) => graph_from_json(value).map_err(|e| corrupt(format!("graph: {e}")))?,
        None => return Err(corrupt("missing 'graph'".to_string())),
    };
    let csv_frame = |key: &str| match root.get(key) {
        Some(JsonValue::String(text)) => from_csv(text).map_err(|e| corrupt(format!("{key}: {e}"))),
        _ => Err(corrupt(format!("missing string '{key}'"))),
    };
    let nodes = csv_frame("nodes_csv")?;
    let edges = csv_frame("edges_csv")?;
    Ok(LiveNetwork::from_parts(graph, nodes, edges, epoch))
}

/// Parses a delta (v2) document from its parsed root, validating that
/// its records cover exactly `(base_epoch, epoch]`, contiguously.
fn read_delta_document(root: &BTreeMap<String, JsonValue>) -> Result<SnapshotDoc, ServeError> {
    let corrupt = |msg: String| ServeError::Corrupt(msg);
    match root.get("kind") {
        Some(JsonValue::String(kind)) if kind == "delta" => {}
        other => {
            return Err(corrupt(format!(
                "v2 snapshot kind is {other:?}, want \"delta\""
            )))
        }
    }
    let epoch = get_epoch_field(root, "epoch")?;
    // Unlike v1, the provenance header predates v2: it is required.
    let created = get_epoch_field(root, "created_epoch")?;
    if created != epoch {
        return Err(corrupt(format!(
            "created_epoch field is {created}, want {epoch}"
        )));
    }
    let base_epoch = get_epoch_field(root, "base_epoch")?;
    if base_epoch >= epoch {
        return Err(corrupt(format!(
            "delta base epoch {base_epoch} is not older than its own epoch {epoch}"
        )));
    }
    let entries = match root.get("records") {
        Some(JsonValue::Array(items)) => items,
        other => {
            return Err(corrupt(format!(
                "records field is {other:?}, want an array"
            )))
        }
    };
    if entries.len() as u64 != epoch - base_epoch {
        return Err(corrupt(format!(
            "delta over ({base_epoch}, {epoch}] must carry {} records, found {}",
            epoch - base_epoch,
            entries.len()
        )));
    }
    let mut records = Vec::with_capacity(entries.len());
    for (i, entry) in entries.iter().enumerate() {
        let JsonValue::Object(map) = entry else {
            return Err(corrupt(format!("delta record {i} is not an object")));
        };
        let record_epoch = get_epoch_field(map, "epoch")?;
        let expected = base_epoch + 1 + i as u64;
        if record_epoch != expected {
            return Err(corrupt(format!(
                "delta record {i} carries epoch {record_epoch}, want {expected} \
                 (records must cover the delta contiguously)"
            )));
        }
        let at_ms = get_epoch_field(map, "at_ms")?;
        let JsonValue::Object(m) = map
            .get("mutation")
            .ok_or_else(|| corrupt(format!("delta record {i} missing 'mutation'")))?
        else {
            return Err(corrupt(format!(
                "delta record {i} mutation is not an object"
            )));
        };
        records.push(WalRecord {
            epoch: record_epoch,
            at_ms,
            mutation: codec::mutation_from_json(m)?,
        });
    }
    Ok(SnapshotDoc::Delta {
        epoch,
        base_epoch,
        records,
    })
}

/// Parses either snapshot flavor, version-gated: full documents come back
/// restored, delta documents come back as their chain link for the
/// caller to resolve against the base.
pub fn read_snapshot_document(text: &str) -> Result<SnapshotDoc, ServeError> {
    let root = parse_root(text)?;
    match root.get("schema") {
        Some(JsonValue::String(s)) if s == SNAPSHOT_SCHEMA => {
            read_full_document(&root).map(|live| SnapshotDoc::Full(Box::new(live)))
        }
        Some(JsonValue::String(s)) if s == DELTA_SCHEMA => read_delta_document(&root),
        Some(JsonValue::String(s)) => {
            refuse_newer(s)?;
            Err(ServeError::Corrupt(format!(
                "schema field is {s:?}, want \"{SNAPSHOT_SCHEMA}\" or \"{DELTA_SCHEMA}\""
            )))
        }
        other => Err(ServeError::Corrupt(format!(
            "schema field is {other:?}, want \"{SNAPSHOT_SCHEMA}\" or \"{DELTA_SCHEMA}\""
        ))),
    }
}

/// Restores a live network from a *full* snapshot document. The restored
/// WAL is empty — the snapshot is the log's compacted prefix — and the
/// epoch counter continues from the snapshot's epoch. A delta document is
/// refused with a clear error: it cannot be restored alone (use
/// [`read_snapshot_document`] and resolve the chain).
pub fn read_snapshot(text: &str) -> Result<LiveNetwork, ServeError> {
    let corrupt = |msg: String| ServeError::Corrupt(msg);
    let root = parse_root(text)?;
    match root.get("schema") {
        Some(JsonValue::String(s)) if s == SNAPSHOT_SCHEMA => {}
        Some(JsonValue::String(s)) if s == DELTA_SCHEMA => {
            return Err(corrupt(format!(
                "document is a delta snapshot ({DELTA_SCHEMA}); it cannot be restored \
                 alone — resolve it against its base snapshot"
            )));
        }
        Some(JsonValue::String(s)) => {
            refuse_newer(s)?;
            return Err(corrupt(format!(
                "schema field is {s:?}, want \"{SNAPSHOT_SCHEMA}\""
            )));
        }
        other => {
            return Err(corrupt(format!(
                "schema field is {other:?}, want \"{SNAPSHOT_SCHEMA}\""
            )))
        }
    }
    read_full_document(&root)
}

/// Restores a snapshot and replays a WAL segment on top of it.
///
/// Records at or below the snapshot's epoch are skipped (the snapshot
/// already contains them); the remainder must continue the epoch sequence
/// contiguously, and every mutation must apply cleanly — a conflict in a
/// WAL that the live network accepted means the snapshot does not match
/// the log, so both cases surface as [`ServeError`].
pub fn replay(snapshot: &str, wal: &[WalRecord]) -> Result<LiveNetwork, ServeError> {
    let mut live = read_snapshot(snapshot)?;
    apply_wal(&mut live, wal)?;
    Ok(live)
}

/// Applies a WAL suffix to an already-restored network: records at or
/// below the current epoch are skipped, the rest must continue the epoch
/// sequence contiguously and apply cleanly. Returns the number of records
/// actually applied. This is the shared replay loop of [`replay`] and the
/// disk-recovery path in [`crate::persist`].
pub fn apply_wal(live: &mut LiveNetwork, wal: &[WalRecord]) -> Result<u64, ServeError> {
    let mut applied_count = 0;
    for record in wal {
        if record.epoch <= live.epoch() {
            continue;
        }
        if record.epoch != live.epoch() + 1 {
            return Err(ServeError::Corrupt(format!(
                "WAL gap: state is at epoch {}, next record is epoch {}",
                live.epoch(),
                record.epoch
            )));
        }
        let applied = live.apply(record.at_ms, record.mutation.clone())?;
        debug_assert_eq!(applied, record.epoch);
        applied_count += 1;
    }
    Ok(applied_count)
}

#[cfg(test)]
mod tests {
    use super::*;
    use trafficgen::{evolve, generate, StreamConfig, TrafficConfig};

    fn evolved(events: usize) -> LiveNetwork {
        let w = generate(&TrafficConfig {
            nodes: 12,
            edges: 16,
            prefixes: 2,
            seed: 6,
        });
        let mut live = LiveNetwork::from_workload(&w);
        for event in evolve(&w, &StreamConfig { events, seed: 2 }) {
            live.apply_event(&event).unwrap();
        }
        live
    }

    #[test]
    fn snapshot_round_trip_is_byte_identical() {
        let live = evolved(40);
        let text = write_snapshot(&live);
        let restored = read_snapshot(&text).unwrap();
        assert_eq!(restored, live);
        assert_eq!(write_snapshot(&restored), text);
        assert_eq!(restored.epoch(), 40);
        assert!(restored.wal().is_empty());
    }

    #[test]
    fn replay_from_mid_snapshot_reconstructs_the_tip() {
        let w = generate(&TrafficConfig {
            nodes: 12,
            edges: 16,
            prefixes: 2,
            seed: 6,
        });
        let mut live = LiveNetwork::from_workload(&w);
        let events = evolve(
            &w,
            &StreamConfig {
                events: 50,
                seed: 2,
            },
        );
        let mut mid = None;
        for (i, event) in events.iter().enumerate() {
            if i == 20 {
                mid = Some(write_snapshot(&live));
            }
            live.apply_event(event).unwrap();
        }
        let replayed = replay(&mid.unwrap(), live.wal()).unwrap();
        assert_eq!(replayed, live);
        assert_eq!(write_snapshot(&replayed), write_snapshot(&live));
    }

    #[test]
    fn snapshot_carries_a_stable_created_epoch_header() {
        let live = evolved(7);
        let text = write_snapshot(&live);
        assert!(text.contains("\"created_epoch\":7"));
        // Tampering with the provenance header is rejected.
        let tampered = text.replace("\"created_epoch\":7", "\"created_epoch\":9");
        assert!(matches!(
            read_snapshot(&tampered),
            Err(ServeError::Corrupt(_))
        ));
        // A pre-header v1 document (the field absent entirely) stays
        // readable: the field was added without a version bump.
        let legacy = text.replace("\"created_epoch\":7,", "");
        assert!(legacy != text && read_snapshot(&legacy).is_ok());
    }

    #[test]
    fn future_format_versions_are_refused_with_a_clear_error() {
        let live = evolved(3);
        let future = write_snapshot(&live).replace("nemo-snapshot/v1", "nemo-snapshot/v3");
        for result in [
            read_snapshot(&future).map(|_| ()),
            read_snapshot_document(&future).map(|_| ()),
        ] {
            match result {
                Err(ServeError::Corrupt(msg)) => {
                    assert!(msg.contains("version 3"), "{msg}");
                    assert!(msg.contains("refusing to load"), "{msg}");
                }
                other => panic!("expected a clear refusal, got {other:?}"),
            }
        }
        // A non-versioned unknown schema still gets the generic error.
        let alien = write_snapshot(&live).replace("nemo-snapshot/v1", "other-format");
        assert!(matches!(read_snapshot(&alien), Err(ServeError::Corrupt(_))));
        assert!(matches!(
            read_snapshot_document(&alien),
            Err(ServeError::Corrupt(_))
        ));
    }

    #[test]
    fn v1_documents_read_identically_through_both_readers() {
        // Reader compatibility across the version bump: every v1 document
        // the old reader accepted parses identically through the new
        // delta-aware entry point.
        let live = evolved(25);
        let text = write_snapshot(&live);
        assert_eq!(
            read_snapshot_document(&text).unwrap(),
            SnapshotDoc::Full(Box::new(read_snapshot(&text).unwrap()))
        );
        // Including pre-created_epoch v1 documents.
        let legacy = text.replace(&format!("\"created_epoch\":{},", live.epoch()), "");
        assert_ne!(legacy, text);
        assert_eq!(
            read_snapshot_document(&legacy).unwrap(),
            SnapshotDoc::Full(Box::new(read_snapshot(&legacy).unwrap()))
        );
    }

    #[test]
    fn delta_documents_round_trip_and_resolve_to_the_full_state() {
        let w = generate(&TrafficConfig {
            nodes: 12,
            edges: 16,
            prefixes: 2,
            seed: 6,
        });
        let mut live = LiveNetwork::from_workload(&w);
        let events = evolve(
            &w,
            &StreamConfig {
                events: 50,
                seed: 2,
            },
        );
        let mut base = None;
        for (i, event) in events.iter().enumerate() {
            if i == 30 {
                base = Some((write_snapshot(&live), live.epoch()));
            }
            live.apply_event(event).unwrap();
        }
        let (base_doc, base_epoch) = base.unwrap();
        let since: Vec<WalRecord> = live
            .wal()
            .iter()
            .filter(|r| r.epoch > base_epoch)
            .cloned()
            .collect();
        let delta = write_delta_snapshot(live.epoch(), base_epoch, &since);
        // The delta is O(delta): far smaller than the full document.
        assert!(delta.len() < write_snapshot(&live).len() / 2);
        // It parses back to the same chain link...
        let SnapshotDoc::Delta {
            epoch,
            base_epoch: parsed_base,
            records,
        } = read_snapshot_document(&delta).unwrap()
        else {
            panic!("delta document must parse as a delta");
        };
        assert_eq!(epoch, live.epoch());
        assert_eq!(parsed_base, base_epoch);
        assert_eq!(records, since);
        // ...and resolving it against the base reproduces the tip,
        // byte-identically.
        let mut resolved = read_snapshot(&base_doc).unwrap();
        apply_wal(&mut resolved, &records).unwrap();
        assert_eq!(write_snapshot(&resolved), write_snapshot(&live));
        // The v1 restorer refuses a delta with a clear pointer.
        match read_snapshot(&delta) {
            Err(ServeError::Corrupt(msg)) => assert!(msg.contains("delta"), "{msg}"),
            other => panic!("expected refusal, got {other:?}"),
        }
    }

    #[test]
    fn torn_or_tampered_delta_documents_are_rejected() {
        let records: Vec<WalRecord> = (6..=8)
            .map(|epoch| WalRecord {
                epoch,
                at_ms: epoch * 10,
                mutation: crate::mutation::Mutation::AddNode {
                    id: format!("10.0.0.{epoch}"),
                    prefix16: "10.0".into(),
                    prefix24: "10.0.0".into(),
                },
            })
            .collect();
        let good = write_delta_snapshot(8, 5, &records);
        assert!(read_snapshot_document(&good).is_ok());
        // A record count that does not cover the range is rejected.
        let short = good
            .replace("\"created_epoch\":8", "\"created_epoch\":9")
            .replace("\"epoch\":8,\"kind\"", "\"epoch\":9,\"kind\"");
        assert!(matches!(
            read_snapshot_document(&short),
            Err(ServeError::Corrupt(_))
        ));
        // Non-contiguous records are rejected.
        let gapped = good.replace("\"epoch\":7", "\"epoch\":9");
        assert_ne!(gapped, good);
        assert!(matches!(
            read_snapshot_document(&gapped),
            Err(ServeError::Corrupt(_))
        ));
        // A base at or past the delta's own epoch is rejected.
        let inverted = good.replace("\"base_epoch\":5", "\"base_epoch\":8");
        assert!(matches!(
            read_snapshot_document(&inverted),
            Err(ServeError::Corrupt(_))
        ));
        // The provenance header is required and must match under v2.
        let tampered = good.replace("\"created_epoch\":8", "\"created_epoch\":9");
        assert!(matches!(
            read_snapshot_document(&tampered),
            Err(ServeError::Corrupt(_))
        ));
    }

    #[test]
    fn frame_injection_matches_the_full_writer_byte_for_byte() {
        let live = evolved(12);
        let full = write_snapshot(&live);
        let injected = write_snapshot_with_frames(
            &live,
            &dataframe::csv::to_csv(live.nodes()),
            &dataframe::csv::to_csv(live.edges()),
        );
        assert_eq!(injected, full);
    }

    #[test]
    fn corrupt_documents_and_wal_gaps_are_rejected() {
        assert!(read_snapshot("not json").is_err());
        assert!(read_snapshot("{}").is_err());
        assert!(read_snapshot(r#"{"schema":"nemo-snapshot/v9"}"#).is_err());
        let live = evolved(10);
        let snapshot = write_snapshot(&live);
        // A WAL whose epochs do not continue the snapshot is a gap.
        let mut gapped = live.wal()[..0].to_vec();
        gapped.push(WalRecord {
            epoch: 99,
            ..live.wal()[9].clone()
        });
        let err = replay(&snapshot, &gapped);
        // Snapshot is at epoch 10; record 99 does not continue it.
        assert!(matches!(err, Err(ServeError::Corrupt(_))));
    }
}
