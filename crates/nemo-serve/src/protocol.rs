//! The typed client/server protocol: every unit of serving work is a
//! [`Request`], every outcome a [`Response`].
//!
//! [`Server::handle`](crate::Server::handle) is the single entry point the
//! drivers and transcripts route through; the legacy `(String,
//! Option<Reply>)` shape of [`Server::process`](crate::Server::process) is
//! now a thin rendering of a [`Response`]
//! ([`Response::transcript_line`] reproduces the exact historical line
//! formats byte for byte).
//!
//! Both types serialize to single-line JSON documents with the same
//! hand-rolled canonical encoder the WAL codec uses, and the round trip is
//! **lossless** — every field, including the `f64` latency sample, decodes
//! back to the exact value that was encoded (the property test in this
//! module's tests pins it). That makes the protocol suitable as a wire or
//! replay format, not just an in-process enum.

use crate::cache::{CacheOutcome, CacheStats};
use crate::codec::{self, get_str, get_u64, mutation_from_json, mutation_to_json};
use crate::error::ServeError;
use crate::mutation::{Epoch, Mutation};
use crate::server::{Reply, ServeEvent};
use nemo_core::Backend;
use netgraph::json::JsonValue;
use std::collections::BTreeMap;

/// One unit of serving work, typed.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Apply one timestamped mutation.
    Mutate {
        /// Stream timestamp in milliseconds.
        at_ms: u64,
        /// The mutation to apply.
        mutation: Mutation,
    },
    /// Answer one natural-language query for one client.
    Query {
        /// The asking client's id.
        client: usize,
        /// The query text.
        query: String,
    },
    /// Fsync all attached persistence (a batch boundary).
    Sync,
    /// Report the server's epoch vector and cache counters.
    Stats,
    /// Dump the newest `last_n` completed traces from the server's
    /// flight recorder (`0` = all retained).
    Trace {
        /// How many of the newest completed traces to return.
        last_n: u64,
    },
}

/// What handling a [`Request`] produced.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// The mutation applied and was assigned this global epoch.
    Mutated {
        /// The global epoch the mutation consumed.
        epoch: Epoch,
        /// The request's stream timestamp.
        at_ms: u64,
        /// [`Mutation::describe`] of the applied mutation.
        description: String,
    },
    /// The mutation conflicted with the current state; nothing moved and
    /// no epoch was consumed.
    Rejected {
        /// The (unchanged) global epoch.
        epoch: Epoch,
        /// The request's stream timestamp.
        at_ms: u64,
        /// The conflict, rendered (`mutation conflict: ...`).
        reason: String,
    },
    /// The query was answered.
    Answered(Reply),
    /// The mutation was refused because the server is in degraded
    /// read-only mode: a store's write path is poisoned
    /// ([`nemo_store::StoreError::Poisoned`]), so no epoch was consumed
    /// and no further mutations will be accepted, while queries keep
    /// answering from the in-memory state.
    Degraded {
        /// The (unchanged) global epoch.
        epoch: Epoch,
        /// The request's stream timestamp.
        at_ms: u64,
        /// Index of the poisoned shard, when the server is sharded.
        shard: Option<u32>,
        /// Global epoch through which state is known durable.
        last_durable_epoch: u64,
        /// The poisoning cause — the first [`nemo_store::StoreError`] that
        /// poisoned the write path, rendered, so an operator can tell a
        /// failed fsync from ENOSPC. Empty when unrecorded. Deliberately
        /// absent from the transcript line: causes embed filesystem paths,
        /// which would make transcripts machine-dependent.
        cause: String,
    },
    /// Persistence was fsynced.
    Synced,
    /// The server's current statistics.
    Stats(StatsReport),
    /// The flight recorder's contents.
    Trace {
        /// The versioned `nemo-trace/v1` document
        /// ([`nemo_obs::trace::Tracer::to_doc`] parsed back into a
        /// [`JsonValue`]): drop counters, slow-log counters, and the
        /// requested trace trees.
        doc: JsonValue,
    },
}

/// A server's observable counters: the sharding layout, the cross-shard
/// epoch vector, the aggregated cache statistics, and the full
/// `nemo-metrics/v1` document from the server's metrics registry.
#[derive(Debug, Clone, PartialEq)]
pub struct StatsReport {
    /// Number of shards.
    pub shards: u32,
    /// The global epoch (highest applied anywhere).
    pub global_epoch: Epoch,
    /// Mutations applied per shard since partition time — sums to
    /// `global_epoch - base_epoch` in normal operation.
    pub epochs: Vec<Epoch>,
    /// Cache counters summed over every cache shard.
    pub cache: CacheStats,
    /// The versioned `nemo-metrics/v1` document
    /// ([`nemo_obs::Snapshot::to_json`] parsed back into a [`JsonValue`]):
    /// every registered counter, gauge and histogram with its
    /// logical/physical class. [`JsonValue::Null`] when the server has no
    /// registry attached (or the report predates one).
    pub metrics: JsonValue,
}

impl Request {
    /// The typed form of a legacy [`ServeEvent`].
    pub fn from_event(event: &ServeEvent) -> Request {
        match event {
            ServeEvent::Mutate(timed) => Request::Mutate {
                at_ms: timed.at_ms,
                mutation: Mutation::from_event(&timed.event),
            },
            ServeEvent::Query { client, query } => Request::Query {
                client: *client,
                query: query.clone(),
            },
        }
    }

    /// Serializes the request as a single-line JSON document.
    pub fn to_json(&self) -> String {
        match self {
            Request::Mutate { at_ms, mutation } => codec::obj(vec![
                ("type", codec::s("mutate")),
                ("at_ms", codec::n(*at_ms as i64)),
                ("mutation", mutation_to_json(mutation)),
            ]),
            Request::Query { client, query } => codec::obj(vec![
                ("type", codec::s("query")),
                ("client", codec::n(*client as i64)),
                ("query", codec::s(query)),
            ]),
            Request::Sync => codec::obj(vec![("type", codec::s("sync"))]),
            Request::Stats => codec::obj(vec![("type", codec::s("stats"))]),
            Request::Trace { last_n } => codec::obj(vec![
                ("type", codec::s("trace")),
                ("last_n", codec::n(*last_n as i64)),
            ]),
        }
        .to_json()
    }

    /// Parses a request document; malformed input is a
    /// [`ServeError::Corrupt`].
    pub fn from_json(text: &str) -> Result<Request, ServeError> {
        let root = parse_root(text, "request")?;
        match get_str(&root, "type")?.as_str() {
            "mutate" => Ok(Request::Mutate {
                at_ms: get_u64(&root, "at_ms")?,
                mutation: mutation_from_json(get_obj(&root, "mutation")?)?,
            }),
            "query" => Ok(Request::Query {
                client: get_u64(&root, "client")? as usize,
                query: get_str(&root, "query")?,
            }),
            "sync" => Ok(Request::Sync),
            "stats" => Ok(Request::Stats),
            "trace" => Ok(Request::Trace {
                last_n: get_u64(&root, "last_n")?,
            }),
            other => Err(ServeError::Corrupt(format!(
                "unknown request type {other:?}"
            ))),
        }
    }
}

impl Response {
    /// Serializes the response as a single-line JSON document.
    pub fn to_json(&self) -> String {
        match self {
            Response::Mutated {
                epoch,
                at_ms,
                description,
            } => codec::obj(vec![
                ("type", codec::s("mutated")),
                ("epoch", codec::n(*epoch as i64)),
                ("at_ms", codec::n(*at_ms as i64)),
                ("description", codec::s(description)),
            ]),
            Response::Rejected {
                epoch,
                at_ms,
                reason,
            } => codec::obj(vec![
                ("type", codec::s("rejected")),
                ("epoch", codec::n(*epoch as i64)),
                ("at_ms", codec::n(*at_ms as i64)),
                ("reason", codec::s(reason)),
            ]),
            Response::Answered(reply) => codec::obj(vec![
                ("type", codec::s("answered")),
                (
                    "reply",
                    codec::obj(vec![
                        ("client", codec::n(reply.client as i64)),
                        ("backend", codec::s(reply.backend.name())),
                        ("query", codec::s(&reply.query)),
                        ("epoch", codec::n(reply.epoch as i64)),
                        ("cache", codec::s(reply.cache.tag())),
                        ("answer", codec::s(&reply.answer)),
                        ("latency_ms", JsonValue::Number(reply.latency_ms)),
                    ]),
                ),
            ]),
            Response::Degraded {
                epoch,
                at_ms,
                shard,
                last_durable_epoch,
                cause,
            } => codec::obj(vec![
                ("type", codec::s("degraded")),
                ("epoch", codec::n(*epoch as i64)),
                ("at_ms", codec::n(*at_ms as i64)),
                (
                    "shard",
                    match shard {
                        Some(k) => codec::n(*k as i64),
                        None => JsonValue::Null,
                    },
                ),
                ("last_durable_epoch", codec::n(*last_durable_epoch as i64)),
                ("cause", codec::s(cause)),
            ]),
            Response::Synced => codec::obj(vec![("type", codec::s("synced"))]),
            Response::Stats(stats) => codec::obj(vec![
                ("type", codec::s("stats")),
                ("shards", codec::n(stats.shards as i64)),
                ("global_epoch", codec::n(stats.global_epoch as i64)),
                (
                    "epochs",
                    JsonValue::Array(stats.epochs.iter().map(|&e| codec::n(e as i64)).collect()),
                ),
                (
                    "cache",
                    codec::obj(vec![
                        ("answer_hits", codec::n(stats.cache.answer_hits as i64)),
                        ("program_hits", codec::n(stats.cache.program_hits as i64)),
                        ("misses", codec::n(stats.cache.misses as i64)),
                        ("invalidated", codec::n(stats.cache.invalidated as i64)),
                        ("evictions", codec::n(stats.cache.evictions as i64)),
                    ]),
                ),
                ("metrics", stats.metrics.clone()),
            ]),
            Response::Trace { doc } => {
                codec::obj(vec![("type", codec::s("trace")), ("doc", doc.clone())])
            }
        }
        .to_json()
    }

    /// Parses a response document; malformed input is a
    /// [`ServeError::Corrupt`].
    pub fn from_json(text: &str) -> Result<Response, ServeError> {
        let root = parse_root(text, "response")?;
        match get_str(&root, "type")?.as_str() {
            "mutated" => Ok(Response::Mutated {
                epoch: get_u64(&root, "epoch")?,
                at_ms: get_u64(&root, "at_ms")?,
                description: get_str(&root, "description")?,
            }),
            "rejected" => Ok(Response::Rejected {
                epoch: get_u64(&root, "epoch")?,
                at_ms: get_u64(&root, "at_ms")?,
                reason: get_str(&root, "reason")?,
            }),
            "answered" => {
                let reply = get_obj(&root, "reply")?;
                Ok(Response::Answered(Reply {
                    client: get_u64(reply, "client")? as usize,
                    backend: parse_backend(&get_str(reply, "backend")?)?,
                    query: get_str(reply, "query")?,
                    epoch: get_u64(reply, "epoch")?,
                    cache: parse_cache_tag(&get_str(reply, "cache")?)?,
                    answer: get_str(reply, "answer")?,
                    latency_ms: get_f64(reply, "latency_ms")?,
                }))
            }
            "degraded" => Ok(Response::Degraded {
                epoch: get_u64(&root, "epoch")?,
                at_ms: get_u64(&root, "at_ms")?,
                shard: match root.get("shard") {
                    Some(JsonValue::Null) => None,
                    _ => Some(get_u64(&root, "shard")? as u32),
                },
                last_durable_epoch: get_u64(&root, "last_durable_epoch")?,
                // Absent in pre-cause documents: decode as unrecorded.
                cause: match root.get("cause") {
                    Some(_) => get_str(&root, "cause")?,
                    None => String::new(),
                },
            }),
            "synced" => Ok(Response::Synced),
            "stats" => Ok(Response::Stats(StatsReport {
                shards: get_u64(&root, "shards")? as u32,
                global_epoch: get_u64(&root, "global_epoch")?,
                epochs: get_epochs(&root)?,
                cache: {
                    let cache = get_obj(&root, "cache")?;
                    CacheStats {
                        answer_hits: get_u64(cache, "answer_hits")?,
                        program_hits: get_u64(cache, "program_hits")?,
                        misses: get_u64(cache, "misses")?,
                        invalidated: get_u64(cache, "invalidated")?,
                        // Absent in pre-eviction-counter documents.
                        evictions: match cache.get("evictions") {
                            Some(_) => get_u64(cache, "evictions")?,
                            None => 0,
                        },
                    }
                },
                metrics: root.get("metrics").cloned().unwrap_or(JsonValue::Null),
            })),
            "trace" => Ok(Response::Trace {
                doc: root.get("doc").cloned().unwrap_or(JsonValue::Null),
            }),
            other => Err(ServeError::Corrupt(format!(
                "unknown response type {other:?}"
            ))),
        }
    }

    /// Renders the response's deterministic transcript line — byte for
    /// byte the format [`Server::process`](crate::Server::process) has
    /// always printed. [`Response::Synced`], [`Response::Stats`] and
    /// [`Response::Trace`] have no transcript representation and return
    /// `None`.
    pub fn transcript_line(&self) -> Option<String> {
        match self {
            Response::Mutated {
                epoch,
                at_ms,
                description,
            } => Some(format!("[e{epoch}] t={at_ms}ms mutate {description}")),
            Response::Rejected {
                epoch,
                at_ms,
                reason,
            } => Some(format!("[e{epoch}] t={at_ms}ms mutate rejected: {reason}")),
            Response::Answered(reply) => Some(format!(
                "[e{}] client={} {} {} {:?} => {}",
                reply.epoch,
                reply.client,
                reply.backend,
                reply.cache.tag(),
                reply.query,
                one_line(&reply.answer),
            )),
            Response::Degraded {
                epoch,
                at_ms,
                shard,
                last_durable_epoch,
                // The cause never reaches the transcript: it renders
                // filesystem paths, which differ run to run.
                cause: _,
            } => {
                let at = match shard {
                    Some(k) => format!("shard {k} "),
                    None => String::new(),
                };
                Some(format!(
                    "[e{epoch}] t={at_ms}ms mutate degraded: {at}write path poisoned, \
                     read-only at durable epoch {last_durable_epoch}"
                ))
            }
            Response::Synced | Response::Stats(_) | Response::Trace { .. } => None,
        }
    }
}

/// Collapses an answer to a single whitespace-normalized line.
pub(crate) fn one_line(text: &str) -> String {
    text.split_whitespace().collect::<Vec<_>>().join(" ")
}

fn parse_root(text: &str, what: &str) -> Result<BTreeMap<String, JsonValue>, ServeError> {
    let doc = JsonValue::parse(text)
        .map_err(|e| ServeError::Corrupt(format!("{what} is not JSON: {e}")))?;
    match doc {
        JsonValue::Object(map) => Ok(map),
        _ => Err(ServeError::Corrupt(format!("{what} root is not an object"))),
    }
}

fn get_obj<'a>(
    map: &'a BTreeMap<String, JsonValue>,
    key: &str,
) -> Result<&'a BTreeMap<String, JsonValue>, ServeError> {
    match map.get(key) {
        Some(JsonValue::Object(inner)) => Ok(inner),
        other => Err(ServeError::Corrupt(format!(
            "protocol field {key:?} is {other:?}, want an object"
        ))),
    }
}

fn get_f64(map: &BTreeMap<String, JsonValue>, key: &str) -> Result<f64, ServeError> {
    match map.get(key) {
        Some(JsonValue::Number(x)) => Ok(*x),
        other => Err(ServeError::Corrupt(format!(
            "protocol field {key:?} is {other:?}, want a number"
        ))),
    }
}

fn get_epochs(map: &BTreeMap<String, JsonValue>) -> Result<Vec<Epoch>, ServeError> {
    let Some(JsonValue::Array(items)) = map.get("epochs") else {
        return Err(ServeError::Corrupt(
            "protocol field \"epochs\" is missing or not an array".to_string(),
        ));
    };
    items
        .iter()
        .map(|item| match item {
            JsonValue::Number(x) if x.fract() == 0.0 && *x >= 0.0 => Ok(*x as u64),
            other => Err(ServeError::Corrupt(format!(
                "epochs entry is {other:?}, want a non-negative integer"
            ))),
        })
        .collect()
}

fn parse_backend(name: &str) -> Result<Backend, ServeError> {
    Backend::ALL
        .iter()
        .copied()
        .find(|b| b.name() == name)
        .ok_or_else(|| ServeError::Corrupt(format!("unknown backend {name:?}")))
}

fn parse_cache_tag(tag: &str) -> Result<CacheOutcome, ServeError> {
    [
        CacheOutcome::AnswerHit,
        CacheOutcome::ProgramHit,
        CacheOutcome::Miss,
    ]
    .into_iter()
    .find(|outcome| outcome.tag() == tag)
    .ok_or_else(|| ServeError::Corrupt(format!("unknown cache outcome {tag:?}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use netgraph::AttrValue;

    fn requests() -> Vec<Request> {
        vec![
            Request::Mutate {
                at_ms: 125,
                mutation: Mutation::AddEdge {
                    source: "10.0.0.1".into(),
                    target: "10.0.0.2".into(),
                    bytes: 4096,
                    connections: 3,
                    packets: 77,
                },
            },
            Request::Mutate {
                at_ms: 0,
                mutation: Mutation::SetNodeAttr {
                    id: "10.0.0.1".into(),
                    key: "weight".into(),
                    // The lossless case untagged JSON gets wrong.
                    value: AttrValue::Float(5.0),
                },
            },
            Request::Query {
                client: 3,
                query: "How many \"edges\" are there?\nreally".into(),
            },
            Request::Sync,
            Request::Stats,
            Request::Trace { last_n: 16 },
        ]
    }

    fn responses() -> Vec<Response> {
        vec![
            Response::Mutated {
                epoch: 41,
                at_ms: 125,
                description: "add edge 10.0.0.1->10.0.0.2".into(),
            },
            Response::Rejected {
                epoch: 41,
                at_ms: 126,
                reason: "mutation conflict: edge 10.0.0.1->10.0.0.2 already exists".into(),
            },
            Response::Answered(Reply {
                client: 3,
                backend: Backend::NetworkX,
                query: "How many edges are there?".into(),
                epoch: 41,
                cache: CacheOutcome::ProgramHit,
                answer: "14".into(),
                // Deliberately not representable in fewer bits: the round
                // trip must carry the exact f64.
                latency_ms: 0.123456789012345,
            }),
            Response::Degraded {
                epoch: 41,
                at_ms: 127,
                shard: Some(2),
                last_durable_epoch: 39,
                cause: "storage I/O error: fsync wal-0000000000000028.seg: disk gone".into(),
            },
            Response::Degraded {
                epoch: 41,
                at_ms: 128,
                shard: None,
                last_durable_epoch: 41,
                cause: String::new(),
            },
            Response::Synced,
            Response::Stats(StatsReport {
                shards: 4,
                global_epoch: 41,
                epochs: vec![12, 9, 11, 9],
                cache: CacheStats {
                    answer_hits: 5,
                    program_hits: 7,
                    misses: 11,
                    invalidated: 2,
                    evictions: 1,
                },
                metrics: JsonValue::parse(
                    r#"{"metrics":{"serve_queries_answered":{"class":"logical","kind":"counter","value":23}},"schema":"nemo-metrics/v1"}"#,
                )
                .unwrap(),
            }),
            Response::Trace {
                doc: JsonValue::parse(
                    r#"{"dropped":0,"schema":"nemo-trace/v1","slow_dropped":0,"slow_retained":0,"slow_total":0,"traces":[{"base_micros":12,"spans":[{"class":"logical","duration_micros":80,"name":"request.mutate","parent_id":null,"span_id":1,"start_micros":0}],"trace_id":1}]}"#,
                )
                .unwrap(),
            },
        ]
    }

    #[test]
    fn requests_round_trip_losslessly() {
        for request in requests() {
            let encoded = request.to_json();
            let back = Request::from_json(&encoded).unwrap();
            assert_eq!(back, request);
            // Canonical: re-encoding is byte-stable.
            assert_eq!(back.to_json(), encoded);
            assert!(!encoded.contains('\n'), "single-line documents");
        }
    }

    #[test]
    fn responses_round_trip_losslessly() {
        for response in responses() {
            let encoded = response.to_json();
            let back = Response::from_json(&encoded).unwrap();
            assert_eq!(back, response);
            assert_eq!(back.to_json(), encoded);
        }
    }

    #[test]
    fn legacy_documents_without_new_fields_still_decode() {
        // Documents written before `cause`, `evictions` and `metrics`
        // existed must keep decoding (replay logs outlive releases).
        let degraded =
            r#"{"at_ms":127,"epoch":41,"last_durable_epoch":39,"shard":2,"type":"degraded"}"#;
        match Response::from_json(degraded).unwrap() {
            Response::Degraded { cause, .. } => assert_eq!(cause, ""),
            other => panic!("expected degraded, got {other:?}"),
        }
        let stats = r#"{"cache":{"answer_hits":1,"invalidated":0,"misses":2,"program_hits":3},"epochs":[4],"global_epoch":4,"shards":1,"type":"stats"}"#;
        match Response::from_json(stats).unwrap() {
            Response::Stats(report) => {
                assert_eq!(report.cache.evictions, 0);
                assert_eq!(report.metrics, JsonValue::Null);
            }
            other => panic!("expected stats, got {other:?}"),
        }
    }

    #[test]
    fn malformed_documents_are_corrupt_errors() {
        for bad in [
            "not json",
            "[]",
            r#"{"type":"warp"}"#,
            r#"{"type":"query","client":"three","query":"q"}"#,
            r#"{"type":"mutate","at_ms":1}"#,
        ] {
            assert!(
                matches!(Request::from_json(bad), Err(ServeError::Corrupt(_))),
                "request {bad:?} must be rejected"
            );
            assert!(
                matches!(Response::from_json(bad), Err(ServeError::Corrupt(_))),
                "response {bad:?} must be rejected"
            );
        }
        assert!(matches!(
            Response::from_json(r#"{"type":"answered","reply":{"client":0,"backend":"cobol","query":"q","epoch":1,"cache":"hit","answer":"a","latency_ms":1}}"#),
            Err(ServeError::Corrupt(msg)) if msg.contains("unknown backend")
        ));
    }

    #[test]
    fn transcript_lines_match_the_historical_formats() {
        let lines: Vec<Option<String>> =
            responses().iter().map(Response::transcript_line).collect();
        assert_eq!(
            lines[0].as_deref(),
            Some("[e41] t=125ms mutate add edge 10.0.0.1->10.0.0.2")
        );
        assert_eq!(
            lines[1].as_deref(),
            Some(
                "[e41] t=126ms mutate rejected: mutation conflict: \
                 edge 10.0.0.1->10.0.0.2 already exists"
            )
        );
        assert_eq!(
            lines[2].as_deref(),
            Some("[e41] client=3 networkx code \"How many edges are there?\" => 14")
        );
        assert_eq!(
            lines[3].as_deref(),
            Some(
                "[e41] t=127ms mutate degraded: shard 2 write path poisoned, \
                 read-only at durable epoch 39"
            )
        );
        assert_eq!(
            lines[4].as_deref(),
            Some(
                "[e41] t=128ms mutate degraded: write path poisoned, \
                 read-only at durable epoch 41"
            )
        );
        assert_eq!(lines[5], None);
        assert_eq!(lines[6], None);
        assert_eq!(lines[7], None, "trace responses have no transcript line");
    }
}
