//! The `nemo-wal/v1` record codec: [`WalRecord`] ⇄ bytes.
//!
//! A WAL record's on-disk payload is a small JSON document carrying the
//! epoch, the stream timestamp and the serialized [`Mutation`]. The format
//! version lives in the segment header magic ([`WAL_MAGIC`], written and
//! verified by `nemo-store`), so every record in a segment shares one
//! version and a future `v2` codec can coexist file by file.
//!
//! The encoding is **lossless**, which the snapshot substrate is not
//! required to be: [`netgraph::AttrValue`]s are tagged with their type
//! (`{"t":"float","v":5.0}` stays a float instead of collapsing to the
//! integer 5 as untagged JSON would), so a decoded record replays exactly
//! the mutation that was logged. Integers are carried in JSON numbers and
//! therefore exact up to 2^53 — far beyond any flow counter the generators
//! produce.

use crate::error::ServeError;
use crate::mutation::{Mutation, WalRecord};
use netgraph::json::JsonValue;
use netgraph::AttrValue;
use std::collections::BTreeMap;

/// Segment-header magic naming this codec; `nemo-store` writes it into
/// every WAL segment and refuses segments carrying anything else.
pub const WAL_MAGIC: &str = "nemo-wal/v1";

/// Segment-header magic of *per-shard* WALs, whose records additionally
/// carry the global epoch ([`encode_shard_record`]). A distinct magic
/// keeps a sharded store from ever being opened as an unsharded one.
pub const SHARD_WAL_MAGIC: &str = "nemo-shard-wal/v1";

pub(crate) fn obj(fields: Vec<(&str, JsonValue)>) -> JsonValue {
    JsonValue::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect::<BTreeMap<_, _>>(),
    )
}

pub(crate) fn s(text: &str) -> JsonValue {
    JsonValue::String(text.to_string())
}

pub(crate) fn n(value: i64) -> JsonValue {
    JsonValue::Number(value as f64)
}

/// Type-tagged [`AttrValue`] encoding (lossless, unlike
/// [`JsonValue::from_attr`] which merges integral floats into ints on the
/// way back).
fn value_to_json(value: &AttrValue) -> JsonValue {
    match value {
        AttrValue::Null => obj(vec![("t", s("null"))]),
        AttrValue::Bool(b) => obj(vec![("t", s("bool")), ("v", JsonValue::Bool(*b))]),
        AttrValue::Int(i) => obj(vec![("t", s("int")), ("v", n(*i))]),
        AttrValue::Float(f) => obj(vec![("t", s("float")), ("v", JsonValue::Number(*f))]),
        AttrValue::Str(text) => obj(vec![("t", s("str")), ("v", s(text))]),
        AttrValue::List(items) => obj(vec![
            ("t", s("list")),
            (
                "v",
                JsonValue::Array(items.iter().map(value_to_json).collect()),
            ),
        ]),
    }
}

fn value_from_json(value: &JsonValue) -> Result<AttrValue, ServeError> {
    let bad = |msg: &str| Err(ServeError::Corrupt(format!("WAL value: {msg}")));
    let JsonValue::Object(map) = value else {
        return bad("not an object");
    };
    let Some(JsonValue::String(tag)) = map.get("t") else {
        return bad("missing type tag");
    };
    let v = map.get("v");
    match (tag.as_str(), v) {
        ("null", _) => Ok(AttrValue::Null),
        ("bool", Some(JsonValue::Bool(b))) => Ok(AttrValue::Bool(*b)),
        ("int", Some(JsonValue::Number(x))) if x.fract() == 0.0 => Ok(AttrValue::Int(*x as i64)),
        ("float", Some(JsonValue::Number(x))) => Ok(AttrValue::Float(*x)),
        ("str", Some(JsonValue::String(text))) => Ok(AttrValue::Str(text.as_str().into())),
        ("list", Some(JsonValue::Array(items))) => Ok(AttrValue::List(
            items
                .iter()
                .map(value_from_json)
                .collect::<Result<Vec<_>, _>>()?,
        )),
        _ => bad(&format!("malformed value of type {tag:?}")),
    }
}

/// The canonical JSON form of one [`Mutation`] (shared by the WAL codec
/// and the typed request/response protocol).
pub(crate) fn mutation_to_json(mutation: &Mutation) -> JsonValue {
    match mutation {
        Mutation::AddNode {
            id,
            prefix16,
            prefix24,
        } => obj(vec![
            ("op", s("add_node")),
            ("id", s(id)),
            ("prefix16", s(prefix16)),
            ("prefix24", s(prefix24)),
        ]),
        Mutation::AddEdge {
            source,
            target,
            bytes,
            connections,
            packets,
        } => obj(vec![
            ("op", s("add_edge")),
            ("source", s(source)),
            ("target", s(target)),
            ("bytes", n(*bytes)),
            ("connections", n(*connections)),
            ("packets", n(*packets)),
        ]),
        Mutation::SetFlow {
            source,
            target,
            bytes,
            connections,
            packets,
        } => obj(vec![
            ("op", s("set_flow")),
            ("source", s(source)),
            ("target", s(target)),
            ("bytes", n(*bytes)),
            ("connections", n(*connections)),
            ("packets", n(*packets)),
        ]),
        Mutation::SetNodeAttr { id, key, value } => obj(vec![
            ("op", s("set_node_attr")),
            ("id", s(id)),
            ("key", s(key)),
            ("value", value_to_json(value)),
        ]),
        Mutation::RemoveEdge { source, target } => obj(vec![
            ("op", s("remove_edge")),
            ("source", s(source)),
            ("target", s(target)),
        ]),
    }
}

/// Encodes one WAL record as its on-disk payload.
pub fn encode_record(record: &WalRecord) -> Vec<u8> {
    obj(vec![
        ("epoch", JsonValue::Number(record.epoch as f64)),
        ("at_ms", JsonValue::Number(record.at_ms as f64)),
        ("mutation", mutation_to_json(&record.mutation)),
    ])
    .to_json()
    .into_bytes()
}

/// Encodes one *shard* WAL record: the record's `epoch` field is the
/// shard's local epoch (what the store's positional check verifies), and
/// the global epoch rides along in a `global` root field so recovery can
/// rebuild the cross-shard sequence numbers.
pub fn encode_shard_record(record: &WalRecord, global: u64) -> Vec<u8> {
    obj(vec![
        ("epoch", JsonValue::Number(record.epoch as f64)),
        ("global", JsonValue::Number(global as f64)),
        ("at_ms", JsonValue::Number(record.at_ms as f64)),
        ("mutation", mutation_to_json(&record.mutation)),
    ])
    .to_json()
    .into_bytes()
}

pub(crate) fn get_str(map: &BTreeMap<String, JsonValue>, key: &str) -> Result<String, ServeError> {
    match map.get(key) {
        Some(JsonValue::String(text)) => Ok(text.clone()),
        other => Err(ServeError::Corrupt(format!(
            "WAL record field {key:?} is {other:?}, want a string"
        ))),
    }
}

pub(crate) fn get_u64(map: &BTreeMap<String, JsonValue>, key: &str) -> Result<u64, ServeError> {
    match map.get(key) {
        Some(JsonValue::Number(x)) if x.fract() == 0.0 && *x >= 0.0 => Ok(*x as u64),
        other => Err(ServeError::Corrupt(format!(
            "WAL record field {key:?} is {other:?}, want a non-negative integer"
        ))),
    }
}

fn get_i64(map: &BTreeMap<String, JsonValue>, key: &str) -> Result<i64, ServeError> {
    match map.get(key) {
        Some(JsonValue::Number(x)) if x.fract() == 0.0 => Ok(*x as i64),
        other => Err(ServeError::Corrupt(format!(
            "WAL record field {key:?} is {other:?}, want an integer"
        ))),
    }
}

/// Decodes the canonical JSON form of one [`Mutation`].
pub(crate) fn mutation_from_json(m: &BTreeMap<String, JsonValue>) -> Result<Mutation, ServeError> {
    let mutation = match get_str(m, "op")?.as_str() {
        "add_node" => Mutation::AddNode {
            id: get_str(m, "id")?,
            prefix16: get_str(m, "prefix16")?,
            prefix24: get_str(m, "prefix24")?,
        },
        "add_edge" => Mutation::AddEdge {
            source: get_str(m, "source")?,
            target: get_str(m, "target")?,
            bytes: get_i64(m, "bytes")?,
            connections: get_i64(m, "connections")?,
            packets: get_i64(m, "packets")?,
        },
        "set_flow" => Mutation::SetFlow {
            source: get_str(m, "source")?,
            target: get_str(m, "target")?,
            bytes: get_i64(m, "bytes")?,
            connections: get_i64(m, "connections")?,
            packets: get_i64(m, "packets")?,
        },
        "set_node_attr" => Mutation::SetNodeAttr {
            id: get_str(m, "id")?,
            key: get_str(m, "key")?,
            value: value_from_json(m.get("value").ok_or_else(|| {
                ServeError::Corrupt("set_node_attr record missing 'value'".to_string())
            })?)?,
        },
        "remove_edge" => Mutation::RemoveEdge {
            source: get_str(m, "source")?,
            target: get_str(m, "target")?,
        },
        other => {
            return Err(ServeError::Corrupt(format!(
                "unknown WAL mutation op {other:?} (a newer writer?)"
            )))
        }
    };
    Ok(mutation)
}

/// Shared decode of a record document; `want_global` selects the shard
/// flavor (which requires the extra `global` root field).
fn decode_record_doc(payload: &[u8], want_global: bool) -> Result<(WalRecord, u64), ServeError> {
    let text = std::str::from_utf8(payload)
        .map_err(|_| ServeError::Corrupt("WAL record is not UTF-8".to_string()))?;
    let doc = JsonValue::parse(text)
        .map_err(|e| ServeError::Corrupt(format!("WAL record is not JSON: {e}")))?;
    let JsonValue::Object(root) = &doc else {
        return Err(ServeError::Corrupt(
            "WAL record root is not an object".to_string(),
        ));
    };
    let epoch = get_u64(root, "epoch")?;
    let at_ms = get_u64(root, "at_ms")?;
    let global = if want_global {
        get_u64(root, "global")?
    } else {
        epoch
    };
    let JsonValue::Object(m) = root
        .get("mutation")
        .ok_or_else(|| ServeError::Corrupt("WAL record missing 'mutation'".to_string()))?
    else {
        return Err(ServeError::Corrupt(
            "WAL record 'mutation' is not an object".to_string(),
        ));
    };
    let mutation = mutation_from_json(m)?;
    Ok((
        WalRecord {
            epoch,
            at_ms,
            mutation,
        },
        global,
    ))
}

/// Decodes one on-disk payload back into a [`WalRecord`].
pub fn decode_record(payload: &[u8]) -> Result<WalRecord, ServeError> {
    decode_record_doc(payload, false).map(|(record, _)| record)
}

/// Decodes one per-shard payload: the record (local epoch) plus the
/// global epoch it carried.
pub fn decode_shard_record(payload: &[u8]) -> Result<(WalRecord, u64), ServeError> {
    decode_record_doc(payload, true)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(record: WalRecord) {
        let bytes = encode_record(&record);
        let back = decode_record(&bytes).unwrap();
        assert_eq!(back, record);
        // Re-encoding is byte-stable (canonical object ordering).
        assert_eq!(encode_record(&back), bytes);
    }

    #[test]
    fn every_mutation_variant_round_trips() {
        let mutations = vec![
            Mutation::AddNode {
                id: "10.0.0.1".into(),
                prefix16: "10.0".into(),
                prefix24: "10.0.0".into(),
            },
            Mutation::AddEdge {
                source: "10.0.0.1".into(),
                target: "10.0.0.2".into(),
                bytes: 123_456,
                connections: 7,
                packets: 999,
            },
            Mutation::SetFlow {
                source: "10.0.0.1".into(),
                target: "10.0.0.2".into(),
                bytes: 0,
                connections: -1,
                packets: i64::from(u32::MAX),
            },
            Mutation::RemoveEdge {
                source: "10.0.0.1".into(),
                target: "10.0.0.2".into(),
            },
        ];
        for (i, mutation) in mutations.into_iter().enumerate() {
            round_trip(WalRecord {
                epoch: i as u64 + 1,
                at_ms: 17 * i as u64,
                mutation,
            });
        }
    }

    #[test]
    fn attr_values_round_trip_losslessly() {
        let values = vec![
            AttrValue::Null,
            AttrValue::Bool(true),
            AttrValue::Int(5),
            // The case untagged JSON gets wrong: a float with an integral
            // value must come back as a float.
            AttrValue::Float(5.0),
            AttrValue::Float(2.25),
            AttrValue::Str("app:web \"quoted\"\nline".into()),
            AttrValue::List(vec![
                AttrValue::Int(1),
                AttrValue::Str("x".into()),
                AttrValue::List(vec![AttrValue::Null]),
            ]),
        ];
        for value in values {
            let record = WalRecord {
                epoch: 9,
                at_ms: 4,
                mutation: Mutation::SetNodeAttr {
                    id: "10.0.0.1".into(),
                    key: "weight".into(),
                    value: value.clone(),
                },
            };
            let back = decode_record(&encode_record(&record)).unwrap();
            let Mutation::SetNodeAttr { value: decoded, .. } = back.mutation else {
                panic!("wrong variant");
            };
            // Exact variant match, not just the numeric-loose PartialEq.
            assert_eq!(
                std::mem::discriminant(&decoded),
                std::mem::discriminant(&value)
            );
            assert_eq!(decoded, value);
        }
    }

    #[test]
    fn shard_records_carry_the_global_epoch() {
        let record = WalRecord {
            epoch: 3,
            at_ms: 250,
            mutation: Mutation::RemoveEdge {
                source: "10.0.0.1".into(),
                target: "10.0.0.2".into(),
            },
        };
        let bytes = encode_shard_record(&record, 11);
        let (back, global) = decode_shard_record(&bytes).unwrap();
        assert_eq!(back, record);
        assert_eq!(global, 11);
        assert_eq!(encode_shard_record(&back, global), bytes);
        // A plain record is not a shard record: the global field is required.
        assert!(matches!(
            decode_shard_record(&encode_record(&record)),
            Err(ServeError::Corrupt(_))
        ));
    }

    #[test]
    fn malformed_payloads_are_corrupt_errors() {
        for bad in [
            b"\xff\xfe".as_slice(),
            b"not json",
            b"{}",
            br#"{"epoch":1,"at_ms":0,"mutation":{"op":"warp_core_breach"}}"#,
            br#"{"epoch":1.5,"at_ms":0,"mutation":{"op":"remove_edge","source":"a","target":"b"}}"#,
            br#"{"epoch":1,"at_ms":0,"mutation":{"op":"add_node","id":"a"}}"#,
        ] {
            assert!(
                matches!(decode_record(bad), Err(ServeError::Corrupt(_))),
                "payload {:?} must be rejected",
                String::from_utf8_lossy(bad)
            );
        }
    }
}
