//! # nemo-serve
//!
//! The deterministic live-state serving layer: where the paper's pipeline
//! answers one query over a frozen snapshot, this crate keeps a network
//! *changing* under a stream of mutations and serves natural-language
//! queries against the current state — the ROADMAP's "heavy traffic over a
//! network that keeps changing" direction.
//!
//! Four pieces:
//!
//! * **Write path** — [`LiveNetwork`] wraps the property-graph and tabular
//!   substrates behind an event-sourced API: every [`Mutation`] is applied
//!   to all backends in lockstep and appended to an in-memory write-ahead
//!   log ([`WalRecord`]) with a monotonically increasing epoch.
//!   [`trafficgen::evolve`] generates the deterministic timestamped
//!   mutation streams that feed it.
//! * **Snapshot + replay** — [`snapshot::write_snapshot`] serializes a live
//!   network to a versioned document (node-link graph JSON + lossless frame
//!   CSV) and [`snapshot::replay`] proves `snapshot(e) + WAL[e..]`
//!   reconstructs byte-identical state and identical query answers.
//! * **Read path** — a [`Server`] interleaves mutation batches with query
//!   requests from N simulated client [`Session`]s, reusing `nemo-core`'s
//!   prompt → LLM → sandbox pipeline, behind a [`ProgramCache`] keyed by
//!   `(query, backend)`: answers are invalidated by epoch, compiled
//!   programs survive mutations, and a warm cache skips the LLM and the
//!   compiler entirely.
//! * **Load driver** — [`driver::drive`] runs a closed-loop multi-client
//!   workload over `nemo_bench::pool`; every client transcript is a pure
//!   function of `(config, client, seed)`, so the combined transcript is
//!   bit-identical at any `NEMO_THREADS`.
//! * **Durability** — [`Persistence`] puts a `nemo-store` segmented,
//!   checksummed on-disk WAL plus snapshot files under the live state
//!   ([`codec`] defines the `nemo-wal/v1` record payload): mutations are
//!   durably logged as they apply, snapshots compact the log on
//!   thresholds, and [`Persistence::recover`] rebuilds the exact state
//!   after a crash — torn tails truncated, corruption refused loudly.
//!   [`durability`] drives crash/resume transcripts over it.
//!
//! ```
//! use nemo_serve::{LiveNetwork, Mutation};
//! use trafficgen::{generate, TrafficConfig};
//!
//! let workload = generate(&TrafficConfig { nodes: 8, edges: 10, prefixes: 2, seed: 1 });
//! let mut live = LiveNetwork::from_workload(&workload);
//! let epoch = live
//!     .apply(5, Mutation::SetNodeAttr {
//!         id: workload.endpoints[0].to_string_dotted(),
//!         key: "label".to_string(),
//!         value: "app:web".into(),
//!     })
//!     .unwrap();
//! assert_eq!(epoch, 1);
//! assert_eq!(live.wal().len(), 1);
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod codec;
pub mod driver;
pub mod durability;
mod error;
mod live;
pub mod metrics;
mod mutation;
pub mod persist;
pub mod protocol;
pub mod server;
pub mod shard;
pub mod shard_persist;
pub mod snapshot;

pub use cache::{CacheOutcome, CacheStats, ProgramCache};
pub use error::ServeError;
pub use live::LiveNetwork;
pub use metrics::{validate_chrome_doc, validate_metrics_doc, validate_trace_doc, ServeMetrics};
pub use mutation::{Epoch, Mutation, WalRecord};
pub use nemo_obs::trace::Tracer;
pub use persist::{FsyncPolicy, PersistOptions, Persistence, RecoveryReport};
pub use protocol::{Request, Response, StatsReport};
pub use server::{Reply, ServeEvent, Server, ServerBuilder, Session};
pub use shard::{shard_of, ShardedNetwork};
pub use shard_persist::ShardPersistence;
