//! The deterministic closed-loop multi-client load driver.
//!
//! Each client's entire run — its backend, its model session, the shared
//! mutation stream and its query sequence — is a pure function of
//! `(config, client id)`: no wall-clock, no cross-client state. Clients
//! therefore fan out over the `nemo_bench::pool` worker pool
//! (`NEMO_THREADS`), and the combined transcript, reassembled in client
//! order, is bit-for-bit identical at any thread count. This is the
//! property the CI `serve-smoke` job checks by diffing a 1-thread run
//! against a 4-thread run.

use crate::live::LiveNetwork;
use crate::server::{Reply, ServeEvent, Server, ServerBuilder, Session};
use nemo_bench::{pool, traffic_queries};
use nemo_core::llm::{hash_parts, profiles, CodeKnowledge, KnownTask, SimulatedLlm};
use nemo_core::Backend;
use trafficgen::{evolve, generate, StreamConfig, TimedEvent, TrafficConfig};

/// Sizing of one driver run.
#[derive(Debug, Clone)]
pub struct DriveConfig {
    /// The initial workload every client's server starts from.
    pub traffic: TrafficConfig,
    /// Number of simulated clients (one server + one session each).
    pub clients: usize,
    /// Rounds per client: each round applies a mutation batch, then issues
    /// queries.
    pub rounds: usize,
    /// Queries issued per round per client.
    pub queries_per_round: usize,
    /// Mutations applied per round (the same shared stream for every
    /// client, so all clients see the same evolving network).
    pub mutations_per_round: usize,
    /// Seed for the mutation stream and the query schedule.
    pub seed: u64,
}

impl DriveConfig {
    /// The committed-benchmark configuration.
    pub fn full() -> Self {
        DriveConfig {
            traffic: TrafficConfig::default(),
            clients: 6,
            rounds: 8,
            queries_per_round: 6,
            mutations_per_round: 4,
            seed: 2023,
        }
    }

    /// A seconds-scale smoke configuration for CI.
    pub fn small() -> Self {
        DriveConfig {
            traffic: TrafficConfig {
                nodes: 40,
                edges: 40,
                prefixes: 4,
                seed: 7,
            },
            clients: 4,
            rounds: 3,
            queries_per_round: 3,
            mutations_per_round: 3,
            seed: 2023,
        }
    }

    /// Picks [`DriveConfig::small`] when `NEMO_SMALL` is set, else
    /// [`DriveConfig::full`].
    pub fn from_env() -> Self {
        if std::env::var("NEMO_SMALL").is_ok() {
            DriveConfig::small()
        } else {
            DriveConfig::full()
        }
    }
}

/// The knowledge base a serving model needs: every traffic query's golden
/// programs, straight from the benchmark specs. Unlike the accuracy
/// benchmark, no golden *outcomes* are executed up front — the serving
/// layer computes answers live — so this is cheap to build per client.
pub fn serving_knowledge() -> CodeKnowledge {
    CodeKnowledge::new(
        traffic_queries()
            .into_iter()
            .map(|spec| KnownTask {
                id: spec.id.to_string(),
                query: spec.text.to_string(),
                application: spec.application,
                complexity: spec.complexity,
                programs: spec.programs(),
                direct_answer: String::new(),
            })
            .collect(),
    )
}

/// The shared mutation stream of one driver run (every client sees the
/// same evolving network).
fn shared_stream(config: &DriveConfig, workload: &trafficgen::TrafficWorkload) -> Vec<TimedEvent> {
    evolve(
        workload,
        &StreamConfig {
            events: config.rounds * config.mutations_per_round,
            seed: config.seed,
        },
    )
}

/// Builds one client's schedule from an already-evolved stream.
fn schedule_from_stream(
    config: &DriveConfig,
    client: usize,
    stream: &[TimedEvent],
) -> Vec<ServeEvent> {
    let queries = traffic_queries();
    let seed = config.seed.to_string();
    let client_tag = client.to_string();
    let mut events = Vec::new();
    for round in 0..config.rounds {
        let start = round * config.mutations_per_round;
        for timed in &stream[start..start + config.mutations_per_round] {
            events.push(ServeEvent::Mutate(timed.clone()));
        }
        for k in 0..config.queries_per_round {
            let pick = hash_parts(&[
                "serve-query",
                &seed,
                &client_tag,
                &round.to_string(),
                &k.to_string(),
            ]) as usize
                % queries.len();
            events.push(ServeEvent::Query {
                client,
                query: queries[pick].text.to_string(),
            });
        }
    }
    events
}

/// Builds one client's server from an already-generated workload.
fn server_from_workload(
    config: &DriveConfig,
    client: usize,
    workload: &trafficgen::TrafficWorkload,
) -> Server<SimulatedLlm> {
    let live = LiveNetwork::from_workload(workload);
    let backend = Backend::CODEGEN[client % Backend::CODEGEN.len()];
    let llm = SimulatedLlm::new(
        profiles::gpt4(),
        serving_knowledge(),
        config.seed ^ client as u64,
    );
    ServerBuilder::new()
        .build(
            live,
            vec![Session {
                client,
                backend,
                llm,
            }],
        )
        .expect("in-memory builds cannot fail")
}

/// One session per client, all attached to the same shared server —
/// backend and model seed derive from the client id exactly as in the
/// per-client driver.
fn sessions_for(config: &DriveConfig) -> Vec<Session<SimulatedLlm>> {
    (0..config.clients)
        .map(|client| Session {
            client,
            backend: Backend::CODEGEN[client % Backend::CODEGEN.len()],
            llm: SimulatedLlm::new(
                profiles::gpt4(),
                serving_knowledge(),
                config.seed ^ client as u64,
            ),
        })
        .collect()
}

/// Drives every client against **one shared sharded server** — the
/// multi-tenant shape, as opposed to [`drive`]'s one-server-per-client
/// shape. Per round, the shared mutation batch is applied once, then each
/// client's queries are issued round-robin (`for k { for client }`).
/// Mutation lines appear unprefixed; query lines carry the asking
/// client's `c<id>| ` prefix. The transcript is sequential by
/// construction and byte-identical at any shard count: epochs in the
/// lines are global, answers come from the merged view, and each
/// `(query, backend)` pair walks the same cache history regardless of
/// which cache shard holds it.
///
/// In-memory runs never fail in practice; the `Result` exists so a
/// storage-backed variant (or a corrupt initial state) surfaces as a
/// typed error instead of a panic in the serving loop.
pub fn drive_sharded(
    config: &DriveConfig,
    shards: u32,
) -> Result<Vec<String>, crate::error::ServeError> {
    let workload = generate(&config.traffic);
    let stream = shared_stream(config, &workload);
    let mut server = ServerBuilder::new()
        .shards(shards)
        .build(LiveNetwork::from_workload(&workload), sessions_for(config))?;
    let queries = traffic_queries();
    let seed = config.seed.to_string();
    let mut lines = Vec::new();
    for round in 0..config.rounds {
        let start = round * config.mutations_per_round;
        for timed in &stream[start..start + config.mutations_per_round] {
            let (line, _) = server.process(&ServeEvent::Mutate(timed.clone()))?;
            lines.push(line);
        }
        for k in 0..config.queries_per_round {
            for client in 0..config.clients {
                let pick = hash_parts(&[
                    "serve-query",
                    &seed,
                    &client.to_string(),
                    &round.to_string(),
                    &k.to_string(),
                ]) as usize
                    % queries.len();
                let (line, _) = server.process(&ServeEvent::Query {
                    client,
                    query: queries[pick].text.to_string(),
                })?;
                lines.push(format!("c{client}| {line}"));
            }
        }
    }
    Ok(lines)
}

/// The deterministic schedule of one client: `rounds` batches of the
/// shared mutation stream followed by that client's queries, drawn from
/// the traffic suite by a seeded hash.
pub fn client_schedule(config: &DriveConfig, client: usize) -> Vec<ServeEvent> {
    let workload = generate(&config.traffic);
    schedule_from_stream(config, client, &shared_stream(config, &workload))
}

/// Builds one client's server: its own copy of the initial live state and
/// a single session whose backend and model seed derive from the client id.
pub fn client_server(config: &DriveConfig, client: usize) -> Server<SimulatedLlm> {
    server_from_workload(config, client, &generate(&config.traffic))
}

/// Runs one client over pre-generated inputs.
fn run_client_with(
    config: &DriveConfig,
    client: usize,
    workload: &trafficgen::TrafficWorkload,
    stream: &[TimedEvent],
) -> (Vec<String>, Vec<Reply>) {
    let mut server = server_from_workload(config, client, workload);
    let schedule = schedule_from_stream(config, client, stream);
    let (lines, replies) = server
        .run_schedule(&schedule)
        .expect("load-driver servers have no persistence attached");
    let lines = lines
        .into_iter()
        .map(|line| format!("c{client}| {line}"))
        .collect();
    (lines, replies)
}

/// Runs one client end to end; the transcript is a pure function of
/// `(config, client)`.
pub fn run_client(config: &DriveConfig, client: usize) -> (Vec<String>, Vec<Reply>) {
    let workload = generate(&config.traffic);
    let stream = shared_stream(config, &workload);
    run_client_with(config, client, &workload, &stream)
}

/// Drives every client over `threads` pool workers and returns the
/// combined transcript in client order — bit-identical at any thread
/// count.
pub fn drive(config: &DriveConfig, threads: usize) -> Vec<String> {
    drive_with_replies(config, threads).0
}

/// Like [`drive`], but also returns every reply (for latency accounting);
/// replies are concatenated in client order. The workload and the shared
/// mutation stream are generated once and borrowed by every worker.
pub fn drive_with_replies(config: &DriveConfig, threads: usize) -> (Vec<String>, Vec<Reply>) {
    let workload = generate(&config.traffic);
    let stream = shared_stream(config, &workload);
    let per_client = pool::run_indexed(config.clients, threads, |client| {
        run_client_with(config, client, &workload, &stream)
    });
    let mut lines = Vec::new();
    let mut replies = Vec::new();
    for (client_lines, client_replies) in per_client {
        lines.extend(client_lines);
        replies.extend(client_replies);
    }
    (lines, replies)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CacheOutcome;

    fn tiny() -> DriveConfig {
        DriveConfig {
            traffic: TrafficConfig {
                nodes: 16,
                edges: 20,
                prefixes: 2,
                seed: 7,
            },
            clients: 3,
            rounds: 2,
            queries_per_round: 2,
            mutations_per_round: 2,
            seed: 11,
        }
    }

    #[test]
    fn transcripts_are_identical_across_thread_counts() {
        let config = tiny();
        let one = drive(&config, 1);
        for threads in [2, 4] {
            assert_eq!(drive(&config, threads), one, "threads={threads}");
        }
        assert!(!one.is_empty());
    }

    #[test]
    fn schedules_interleave_mutations_and_queries() {
        let config = tiny();
        let schedule = client_schedule(&config, 0);
        assert_eq!(
            schedule.len(),
            config.rounds * (config.mutations_per_round + config.queries_per_round)
        );
        assert!(matches!(schedule[0], ServeEvent::Mutate(_)));
        assert!(matches!(
            schedule[config.mutations_per_round],
            ServeEvent::Query { .. }
        ));
        // Different clients ask different query sequences...
        let other = client_schedule(&config, 1);
        assert_ne!(schedule, other);
        // ...but share the same mutation stream.
        let mutations = |s: &[ServeEvent]| -> Vec<ServeEvent> {
            s.iter()
                .filter(|e| matches!(e, ServeEvent::Mutate(_)))
                .cloned()
                .collect()
        };
        assert_eq!(mutations(&schedule), mutations(&other));
    }

    #[test]
    fn shared_server_transcripts_are_shard_count_invariant() {
        let config = tiny();
        let one = drive_sharded(&config, 1).unwrap();
        assert!(!one.is_empty());
        // Mutation lines are unprefixed, query lines carry client prefixes.
        assert!(one.iter().any(|l| l.starts_with("[e")));
        assert!(one.iter().any(|l| l.starts_with("c0| ")));
        for shards in [2u32, 4] {
            assert_eq!(
                drive_sharded(&config, shards).unwrap(),
                one,
                "shards={shards}"
            );
        }
    }

    #[test]
    fn repeated_queries_warm_the_cache() {
        // With enough draws from the 24-query pool the schedule repeats
        // queries; repeats must be served from the cache hierarchy.
        let config = DriveConfig {
            rounds: 8,
            queries_per_round: 8,
            ..tiny()
        };
        let schedule = client_schedule(&config, 0);
        let texts: Vec<&String> = schedule
            .iter()
            .filter_map(|e| match e {
                ServeEvent::Query { query, .. } => Some(query),
                _ => None,
            })
            .collect();
        let distinct: std::collections::HashSet<&String> = texts.iter().copied().collect();
        assert!(
            distinct.len() < texts.len(),
            "deterministic schedule has no repeated queries; enlarge the config"
        );
        let (_, replies) = run_client(&config, 0);
        assert_eq!(replies.len(), texts.len());
        assert!(replies
            .iter()
            .any(|r| matches!(r.cache, CacheOutcome::AnswerHit | CacheOutcome::ProgramHit)));
    }
}
