//! Durable persistence for the serving layer: `nemo-store` under
//! [`LiveNetwork`](crate::LiveNetwork).
//!
//! A [`Persistence`] handle owns one `nemo_store::Store` directory and the
//! serving-side policy around it:
//!
//! * **Genesis snapshot** — [`Persistence::create`] installs a snapshot of
//!   the initial state (epoch 0 for a fresh workload) before any record is
//!   logged, so recovery never depends on re-generating the workload.
//! * **Logging** — [`Persistence::log`] encodes each applied
//!   [`WalRecord`] with the `nemo-wal/v1` codec and appends it; the
//!   store's [`FsyncPolicy`] decides when it hits the platter, and
//!   [`Persistence::sync`] marks batch boundaries.
//! * **Snapshots** — [`Persistence::maybe_snapshot`] writes a snapshot
//!   when the store's byte/epoch thresholds fire. A short delta chain
//!   keeps installs O(state-delta): when the records since the newest
//!   snapshot are few and contiguous, the writer emits a
//!   `nemo-snapshot/v2` delta document (just those records) instead of
//!   re-encoding the whole state; every [`MAX_DELTA_CHAIN`] installs —
//!   or whenever the delta would be large — it writes a full
//!   `nemo-snapshot/v1` document. For full documents, when only
//!   `AddNode`/`AddEdge` mutations happened since the previous full
//!   snapshot, the frames only *grew*, so the writer reuses the previous
//!   snapshot's CSV verbatim and encodes just the appended rows
//!   (`trafficgen::export_flows_since`-style) — the output is proven
//!   byte-identical to a full rewrite.
//! * **Sweep** — installing deletes nothing. Pruning old snapshots and
//!   deleting covered WAL segments is [`Persistence::sweep`], which the
//!   server calls at batch boundaries so `append` never waits on
//!   filesystem removals.
//! * **Recovery** — [`Persistence::recover`] rebuilds the live state from
//!   the newest *valid* snapshot plus the WAL suffix. A delta snapshot
//!   is resolved down its chain to a full base; a damaged link fails
//!   that candidate loudly (recorded in the report) and recovery falls
//!   back to the next older snapshot. A torn tail record is truncated
//!   (by the store), and every unrecoverable condition — CRC mismatch,
//!   missing segment, epoch gap, conflicting replay — fails loudly.

use crate::codec::{decode_record, encode_record, WAL_MAGIC};
use crate::error::ServeError;
use crate::live::LiveNetwork;
use crate::mutation::{Mutation, WalRecord};
use crate::snapshot::{self, write_snapshot_with_frames, SnapshotDoc};
use dataframe::csv::{to_csv, to_csv_rows};
use nemo_obs::trace::Tracer;
use nemo_obs::{Class, Counter, Registry};
use nemo_store::{RealFs, Store, StoreConfig, StoreMetrics, SweepOutcome, Vfs};
use std::path::Path;
use std::sync::Arc;

pub use nemo_store::FsyncPolicy;

/// Longest run of consecutive delta snapshots before a full one is
/// forced. Bounds both recovery's chain-resolution work and the blast
/// radius of a damaged link (a broken base invalidates every delta above
/// it).
pub const MAX_DELTA_CHAIN: usize = 3;

/// Largest record count a delta document may carry; a bigger backlog
/// falls back to a full snapshot (re-encoding the state is then cheaper
/// than replaying the delta on every recovery).
pub const MAX_DELTA_RECORDS: usize = 4096;

/// Attempts beyond the first that a transient storage fault is retried
/// before the error propagates.
pub const STORAGE_RETRY_BUDGET: u32 = 3;

/// Counters around [`with_storage_retry`], both [`Class::Physical`]
/// (retry counts follow the fault schedule, which follows the op
/// interleaving). `Default` yields detached cells.
#[derive(Debug, Clone, Default)]
pub(crate) struct RetryMetrics {
    /// Retryable storage faults absorbed by a retry (per retried attempt).
    pub absorbed: Counter,
    /// Storage errors that escaped the retry budget (non-retryable, or
    /// the budget ran out) and surfaced to the caller.
    pub surfaced: Counter,
}

impl RetryMetrics {
    /// Binds the counters to `registry` under the `store_*` names.
    pub(crate) fn register(registry: &Registry) -> RetryMetrics {
        RetryMetrics {
            absorbed: registry.counter("store_retries_absorbed", Class::Physical),
            surfaced: registry.counter("store_faults_surfaced", Class::Physical),
        }
    }
}

/// Runs a storage operation, retrying [retryable](ServeError::retryable)
/// failures up to [`STORAGE_RETRY_BUDGET`] times with deterministic
/// exponential backoff (50µs, 100µs, 200µs). Only operations the store
/// rolled back qualify as retryable — a failed fsync never does
/// (fsyncgate: the kernel may have dropped the dirty pages), so this
/// helper can never re-ack lost data. Each absorbed retry and each
/// surfaced error is counted on `retry`.
pub(crate) fn with_storage_retry<T>(
    retry: &RetryMetrics,
    mut op: impl FnMut() -> Result<T, ServeError>,
) -> Result<T, ServeError> {
    let mut attempt = 0u32;
    loop {
        match op() {
            Err(e) if e.retryable() && attempt < STORAGE_RETRY_BUDGET => {
                retry.absorbed.inc();
                std::thread::sleep(std::time::Duration::from_micros(50u64 << attempt));
                attempt += 1;
            }
            Err(e) => {
                retry.surfaced.inc();
                return Err(e);
            }
            ok => return ok,
        }
    }
}

/// Durability and sizing knobs for one persistence directory.
#[derive(Debug, Clone)]
pub struct PersistOptions {
    /// When appended records are fsynced.
    pub fsync: FsyncPolicy,
    /// WAL segment rotation threshold in bytes.
    pub segment_max_bytes: u64,
    /// Snapshot once this many WAL bytes accumulated (0 disables).
    pub snapshot_every_bytes: u64,
    /// Snapshot once this many epochs passed since the last one
    /// (0 disables).
    pub snapshot_every_epochs: u64,
    /// Snapshots retained on disk.
    pub keep_snapshots: usize,
    /// Filesystem the store runs on: [`nemo_store::RealFs`] in production,
    /// [`nemo_store::FaultFs`] under fault-injection tests.
    pub vfs: Arc<dyn Vfs>,
    /// Metrics registry every store opened with these options records
    /// into (`store_*` counters, gauges and histograms; several stores —
    /// e.g. one per shard — aggregate into the same names). A fresh
    /// private registry by default.
    pub registry: Registry,
    /// Flight recorder every store opened with these options tags its
    /// spans (WAL log, fsync) and poison causes onto. A fresh disabled
    /// tracer by default.
    pub tracer: Tracer,
}

impl Default for PersistOptions {
    fn default() -> Self {
        PersistOptions {
            fsync: FsyncPolicy::EveryBatch,
            segment_max_bytes: 1 << 20,
            snapshot_every_bytes: 256 << 10,
            snapshot_every_epochs: 1024,
            keep_snapshots: 2,
            vfs: Arc::new(RealFs),
            registry: Registry::new(),
            tracer: Tracer::new(),
        }
    }
}

impl PersistOptions {
    fn store_config(&self) -> StoreConfig {
        StoreConfig {
            magic: WAL_MAGIC.to_string(),
            fsync: self.fsync,
            segment_max_bytes: self.segment_max_bytes,
            snapshot_every_bytes: self.snapshot_every_bytes,
            snapshot_every_epochs: self.snapshot_every_epochs,
            keep_snapshots: self.keep_snapshots,
        }
    }
}

/// What [`Persistence::recover`] found and did.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RecoveryReport {
    /// Epoch of the snapshot the state was rebuilt from.
    pub snapshot_epoch: u64,
    /// WAL records replayed on top of the snapshot.
    pub replayed_records: u64,
    /// Bytes truncated off a torn tail record (0 on a clean start).
    pub truncated_bytes: u64,
    /// Newer snapshots that were skipped because their documents failed
    /// validation (recovery fell back past them), with the reason each
    /// one was refused — a version mismatch must stay distinguishable
    /// from disk corruption.
    pub skipped_snapshots: Vec<(u64, String)>,
}

/// The previous snapshot's reusable encoding state.
#[derive(Debug)]
struct PrevSnapshot {
    nodes_csv: String,
    edges_csv: String,
    node_rows: usize,
    edge_rows: usize,
}

/// A live network's durable storage handle.
#[derive(Debug)]
pub struct Persistence {
    store: Store,
    /// Cached CSV of the newest installed *full* snapshot, for prefix
    /// reuse.
    prev: Option<PrevSnapshot>,
    /// True while every mutation logged since the newest full snapshot
    /// only *appended* frame rows (`AddNode`/`AddEdge`): the previous CSV
    /// is then an unchanged prefix of the current one.
    append_only: bool,
    /// Records logged since the newest snapshot (any kind), kept for the
    /// next delta document. Cleared (with `since_overflow` raised) once
    /// it exceeds [`MAX_DELTA_RECORDS`].
    since_snapshot: Vec<WalRecord>,
    /// True when `since_snapshot` was discarded as too large — the next
    /// snapshot must be full.
    since_overflow: bool,
    /// Consecutive delta snapshots installed since the last full one.
    chain_len: usize,
    /// Retry/surfaced-fault counters shared with the options' registry.
    retry: RetryMetrics,
}

impl Persistence {
    /// Creates persistence for a fresh live state in an empty (or absent)
    /// directory, installing the genesis snapshot before returning. Errors
    /// if the directory already holds store files — recover those with
    /// [`Persistence::recover`] instead of silently shadowing them.
    pub fn create(
        dir: &Path,
        options: &PersistOptions,
        live: &LiveNetwork,
    ) -> Result<Persistence, ServeError> {
        let retry = RetryMetrics::register(&options.registry);
        let (mut store, _) = with_storage_retry(&retry, || {
            Ok(Store::open_with(
                dir,
                options.store_config(),
                options.vfs.clone(),
            )?)
        })?;
        if !store.is_empty() {
            return Err(ServeError::Storage(format!(
                "{} already holds store files; use recover()",
                dir.display()
            )));
        }
        store.attach_metrics(StoreMetrics::register(&options.registry));
        store.attach_tracer(options.tracer.clone());
        let mut persistence = Persistence {
            store,
            prev: None,
            append_only: true,
            since_snapshot: Vec::new(),
            since_overflow: false,
            chain_len: 0,
            retry,
        };
        persistence.force_full_snapshot(live)?;
        Ok(persistence)
    }

    /// Rebuilds the live state from disk: newest valid snapshot plus the
    /// WAL suffix. See the module docs for what is repaired silently (a
    /// torn tail), what is fallen back from (a corrupt snapshot document)
    /// and what fails loudly (everything else).
    pub fn recover(
        dir: &Path,
        options: &PersistOptions,
    ) -> Result<(LiveNetwork, Persistence, RecoveryReport), ServeError> {
        let retry = RetryMetrics::register(&options.registry);
        let (mut store, open_report) = with_storage_retry(&retry, || {
            Ok(Store::open_with(
                dir,
                options.store_config(),
                options.vfs.clone(),
            )?)
        })?;
        if store.is_empty() {
            return Err(ServeError::Storage(format!(
                "{} holds no store files; use create()",
                dir.display()
            )));
        }
        store.attach_metrics(StoreMetrics::register(&options.registry));
        store.attach_tracer(options.tracer.clone());
        Self::recover_opened(store, open_report, retry)
    }

    /// The recovery body over an already-opened (and tail-repaired) store.
    fn recover_opened(
        store: Store,
        open_report: nemo_store::OpenReport,
        retry: RetryMetrics,
    ) -> Result<(LiveNetwork, Persistence, RecoveryReport), ServeError> {
        let dir = store.dir().to_path_buf();
        let mut report = RecoveryReport {
            truncated_bytes: open_report.truncated_bytes,
            ..RecoveryReport::default()
        };
        // Newest snapshot whose document (and, for a delta, its whole
        // chain down to a full base) still validates. A damaged chain
        // link fails the candidate loudly — the reason lands in the
        // report — and recovery falls back to the next older snapshot.
        let mut base: Option<(u64, LiveNetwork)> = None;
        for &epoch in store.snapshot_epochs().iter().rev() {
            match resolve_snapshot_chain(&store, epoch) {
                Ok(live) => {
                    base = Some((epoch, live));
                    break;
                }
                Err(reason) => report.skipped_snapshots.push((epoch, reason.to_string())),
            }
        }
        let Some((snapshot_epoch, mut live)) = base else {
            let reasons: Vec<String> = report
                .skipped_snapshots
                .iter()
                .map(|(epoch, reason)| format!("epoch {epoch}: {reason}"))
                .collect();
            return Err(ServeError::Corrupt(format!(
                "{}: no usable snapshot — every candidate failed validation ({})",
                dir.display(),
                reasons.join("; "),
            )));
        };
        report.snapshot_epoch = snapshot_epoch;
        // Replay the WAL suffix, cross-checking the store's positional
        // epochs against the ones the records themselves carry.
        let mut records = Vec::new();
        for (epoch, payload) in store.replay(snapshot_epoch)? {
            let record = decode_record(&payload)?;
            if record.epoch != epoch {
                return Err(ServeError::Corrupt(format!(
                    "WAL record at log position {epoch} carries epoch {}",
                    record.epoch
                )));
            }
            records.push(record);
        }
        report.replayed_records = snapshot::apply_wal(&mut live, &records)?;
        // Completeness: the store knows the newest epoch it ever held
        // (from segment contents and snapshot file names). Recovering to
        // anything earlier would be *silent* data loss — e.g. falling back
        // past a corrupt snapshot whose covered WAL was compacted away —
        // so it fails loudly instead.
        if let Some(last) = store.last_epoch() {
            if live.epoch() < last {
                return Err(ServeError::Corrupt(format!(
                    "recovery reached epoch {} but the store once held epoch {last}; \
                     the WAL covering the difference is gone (compacted or deleted)",
                    live.epoch()
                )));
            }
        }
        // The reusable-prefix cache restarts from the recovered state,
        // and the chain counter starts saturated: the next snapshot is
        // written in full, anchoring a fresh chain.
        let persistence = Persistence {
            store,
            prev: None,
            append_only: false,
            since_snapshot: Vec::new(),
            since_overflow: true,
            chain_len: MAX_DELTA_CHAIN,
            retry,
        };
        Ok((live, persistence, report))
    }

    /// Either [`Persistence::recover`] (store files present) or
    /// [`Persistence::create`] over `init()` (fresh directory) — the
    /// restart-safe entry point for drivers.
    pub fn recover_or_create(
        dir: &Path,
        options: &PersistOptions,
        init: impl FnOnce() -> LiveNetwork,
    ) -> Result<(LiveNetwork, Persistence, RecoveryReport), ServeError> {
        let retry = RetryMetrics::register(&options.registry);
        let (mut store, open_report) = with_storage_retry(&retry, || {
            Ok(Store::open_with(
                dir,
                options.store_config(),
                options.vfs.clone(),
            )?)
        })?;
        store.attach_metrics(StoreMetrics::register(&options.registry));
        store.attach_tracer(options.tracer.clone());
        if store.is_empty() {
            let live = init();
            let mut persistence = Persistence {
                store,
                prev: None,
                append_only: true,
                since_snapshot: Vec::new(),
                since_overflow: false,
                chain_len: 0,
                retry,
            };
            persistence.force_full_snapshot(&live)?;
            Ok((live, persistence, RecoveryReport::default()))
        } else {
            // Single open: the repair report (torn-tail truncation) flows
            // into the recovery report instead of being discarded by a
            // probe-and-reopen.
            Self::recover_opened(store, open_report, retry)
        }
    }

    /// Durably logs one applied WAL record. A transient write fault the
    /// store rolled back is retried within [`STORAGE_RETRY_BUDGET`]; a
    /// failed fsync or a poisoned store propagates immediately.
    pub fn log(&mut self, record: &WalRecord) -> Result<(), ServeError> {
        // Logical span: exactly one WAL log per applied mutation, on the
        // sharded and unsharded paths alike.
        let _log_span = self.store.tracer().span("wal.log", Class::Logical);
        let payload = encode_record(record);
        let retry = self.retry.clone();
        with_storage_retry(&retry, || Ok(self.store.append(record.epoch, &payload)?))?;
        if !matches!(
            record.mutation,
            Mutation::AddNode { .. } | Mutation::AddEdge { .. }
        ) {
            self.append_only = false;
        }
        if self.since_snapshot.len() >= MAX_DELTA_RECORDS {
            self.since_snapshot.clear();
            self.since_overflow = true;
        } else if !self.since_overflow {
            self.since_snapshot.push(record.clone());
        }
        Ok(())
    }

    /// Batch-boundary fsync (see [`FsyncPolicy::EveryBatch`]).
    pub fn sync(&mut self) -> Result<(), ServeError> {
        self.store.sync()?;
        Ok(())
    }

    /// Writes and installs a snapshot if the store's thresholds say one is
    /// due; returns whether it did.
    pub fn maybe_snapshot(&mut self, live: &LiveNetwork) -> Result<bool, ServeError> {
        if !self.store.snapshot_due(live.epoch()) {
            return Ok(false);
        }
        self.force_snapshot(live)?;
        Ok(true)
    }

    /// Unconditionally writes and installs a snapshot of `live`: a delta
    /// document when the backlog since the newest snapshot is small,
    /// contiguous and the chain is short (O(delta) install), a full
    /// document otherwise.
    pub fn force_snapshot(&mut self, live: &LiveNetwork) -> Result<(), ServeError> {
        let base = self.store.snapshot_metas().last().map(|m| m.epoch);
        let delta_eligible = !self.since_overflow
            && self.chain_len < MAX_DELTA_CHAIN
            && base.is_some_and(|b| {
                live.epoch() > b
                    && self
                        .since_snapshot
                        .first()
                        .is_some_and(|r| r.epoch == b + 1)
                    && self
                        .since_snapshot
                        .last()
                        .is_some_and(|r| r.epoch == live.epoch())
                    && self.since_snapshot.len() as u64 == live.epoch() - b
            });
        if delta_eligible {
            let base = base.expect("checked above");
            let document = snapshot::write_delta_snapshot(live.epoch(), base, &self.since_snapshot);
            let retry = self.retry.clone();
            with_storage_retry(&retry, || {
                Ok(self
                    .store
                    .install_delta_snapshot(live.epoch(), base, document.as_bytes())?)
            })?;
            self.chain_len += 1;
            self.since_snapshot.clear();
            self.since_overflow = false;
            return Ok(());
        }
        self.force_full_snapshot(live)
    }

    /// Unconditionally writes and installs a *full* snapshot of `live`
    /// (anchoring a fresh delta chain), reusing the previous full
    /// snapshot's unchanged CSV prefix when every mutation since it was
    /// append-only.
    pub fn force_full_snapshot(&mut self, live: &LiveNetwork) -> Result<(), ServeError> {
        let reusable = self.append_only
            && self.prev.as_ref().is_some_and(|prev| {
                prev.node_rows <= live.nodes().n_rows() && prev.edge_rows <= live.edges().n_rows()
            });
        let (nodes_csv, edges_csv) = if reusable {
            let prev = self.prev.as_ref().expect("checked above");
            (
                format!(
                    "{}{}",
                    prev.nodes_csv,
                    to_csv_rows(live.nodes(), prev.node_rows)
                ),
                format!(
                    "{}{}",
                    prev.edges_csv,
                    to_csv_rows(live.edges(), prev.edge_rows)
                ),
            )
        } else {
            (to_csv(live.nodes()), to_csv(live.edges()))
        };
        let document = write_snapshot_with_frames(live, &nodes_csv, &edges_csv);
        let retry = self.retry.clone();
        with_storage_retry(&retry, || {
            Ok(self
                .store
                .install_snapshot(live.epoch(), document.as_bytes())?)
        })?;
        self.prev = Some(PrevSnapshot {
            nodes_csv,
            edges_csv,
            node_rows: live.nodes().n_rows(),
            edge_rows: live.edges().n_rows(),
        });
        self.append_only = true;
        self.chain_len = 0;
        self.since_snapshot.clear();
        self.since_overflow = false;
        Ok(())
    }

    /// Executes up to `max_removals` deferred removals (snapshot pruning,
    /// WAL compaction) — see `nemo_store::Store::sweep`. The server calls
    /// this at batch boundaries so the apply path never blocks on
    /// filesystem deletions.
    pub fn sweep(&mut self, max_removals: usize) -> Result<SweepOutcome, ServeError> {
        let retry = self.retry.clone();
        with_storage_retry(&retry, || Ok(self.store.sweep(max_removals)?))
    }

    /// The underlying store (inspection, benchmarks, tests).
    pub fn store(&self) -> &Store {
        &self.store
    }
}

/// Resolves the snapshot at `epoch` into a restored state, following a
/// delta chain down to its full base. Any damaged link — unreadable
/// file, failed validation, a replay that does not reach the link's
/// epoch — fails the whole chain with the failing link named in the
/// error, so the caller can fall back past it loudly.
fn resolve_snapshot_chain(store: &Store, epoch: u64) -> Result<LiveNetwork, ServeError> {
    let bytes = store.read_snapshot(epoch)?;
    let text = String::from_utf8(bytes)
        .map_err(|_| ServeError::Corrupt("snapshot document is not UTF-8".to_string()))?;
    match snapshot::read_snapshot_document(&text)? {
        SnapshotDoc::Full(live) => {
            if live.epoch() != epoch {
                return Err(ServeError::Corrupt(format!(
                    "snapshot file for epoch {epoch} carries state at epoch {}",
                    live.epoch()
                )));
            }
            Ok(*live)
        }
        SnapshotDoc::Delta {
            epoch: doc_epoch,
            base_epoch,
            records,
        } => {
            if doc_epoch != epoch {
                return Err(ServeError::Corrupt(format!(
                    "snapshot file for epoch {epoch} carries a delta at epoch {doc_epoch}"
                )));
            }
            let mut live = resolve_snapshot_chain(store, base_epoch).map_err(|e| {
                ServeError::Corrupt(format!(
                    "delta snapshot at epoch {epoch}: base {base_epoch}: {e}"
                ))
            })?;
            if live.epoch() != base_epoch {
                return Err(ServeError::Corrupt(format!(
                    "delta snapshot at epoch {epoch}: base resolved to epoch {}, want {base_epoch}",
                    live.epoch()
                )));
            }
            snapshot::apply_wal(&mut live, &records).map_err(|e| {
                ServeError::Corrupt(format!("delta snapshot at epoch {epoch}: {e}"))
            })?;
            if live.epoch() != epoch {
                return Err(ServeError::Corrupt(format!(
                    "delta snapshot at epoch {epoch} resolved to state at epoch {}",
                    live.epoch()
                )));
            }
            Ok(live)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::write_snapshot;
    use std::path::PathBuf;
    use trafficgen::{evolve, generate, StreamConfig, TrafficConfig};

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("nemo-persist-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn test_options() -> PersistOptions {
        PersistOptions {
            fsync: FsyncPolicy::Never,
            segment_max_bytes: 512,
            snapshot_every_bytes: 0,
            snapshot_every_epochs: 0,
            ..PersistOptions::default()
        }
    }

    fn workload() -> trafficgen::TrafficWorkload {
        generate(&TrafficConfig {
            nodes: 12,
            edges: 16,
            prefixes: 2,
            seed: 5,
        })
    }

    #[test]
    fn log_then_recover_rebuilds_identical_state() {
        let dir = temp_dir("roundtrip");
        let w = workload();
        let mut live = LiveNetwork::from_workload(&w);
        let mut persistence = Persistence::create(&dir, &test_options(), &live).unwrap();
        for event in evolve(
            &w,
            &StreamConfig {
                events: 60,
                seed: 2,
            },
        ) {
            live.apply_event(&event).unwrap();
            persistence
                .log(live.wal().last().expect("apply appended"))
                .unwrap();
        }
        persistence.sync().unwrap();
        drop(persistence);

        let (recovered, _, report) = Persistence::recover(&dir, &test_options()).unwrap();
        assert_eq!(report.snapshot_epoch, 0);
        assert_eq!(report.replayed_records, 60);
        assert_eq!(report.truncated_bytes, 0);
        assert!(recovered == live);
        assert_eq!(write_snapshot(&recovered), write_snapshot(&live));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn recovery_uses_the_newest_snapshot_and_compaction_survives() {
        let dir = temp_dir("compact");
        let w = workload();
        let mut live = LiveNetwork::from_workload(&w);
        let mut persistence = Persistence::create(&dir, &test_options(), &live).unwrap();
        let events = evolve(
            &w,
            &StreamConfig {
                events: 50,
                seed: 9,
            },
        );
        for (i, event) in events.iter().enumerate() {
            live.apply_event(event).unwrap();
            persistence.log(live.wal().last().unwrap()).unwrap();
            if i == 29 {
                persistence.force_snapshot(&live).unwrap();
            }
        }
        // The epoch-30 snapshot installed (a delta — force_snapshot took
        // the O(delta) path); recovery resolves it and replays the rest.
        assert!(persistence.store().snapshot_epochs().contains(&30));
        drop(persistence);
        let (recovered, persistence, report) = Persistence::recover(&dir, &test_options()).unwrap();
        assert_eq!(report.snapshot_epoch, 30);
        assert_eq!(report.replayed_records, 20);
        assert!(recovered == live);
        // The log continues seamlessly after recovery.
        drop(persistence);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_newest_snapshot_falls_back_to_the_older_one() {
        let dir = temp_dir("fallback");
        let w = workload();
        let mut live = LiveNetwork::from_workload(&w);
        let mut persistence = Persistence::create(&dir, &test_options(), &live).unwrap();
        for event in evolve(
            &w,
            &StreamConfig {
                events: 20,
                seed: 3,
            },
        ) {
            live.apply_event(&event).unwrap();
            persistence.log(live.wal().last().unwrap()).unwrap();
        }
        persistence.force_full_snapshot(&live).unwrap();
        drop(persistence);
        // Damage the newest snapshot file so its frame CRC fails. Both
        // snapshots are retained and the WAL is compacted only to the
        // oldest retained one, so the genesis fallback can fully replay.
        let path = dir.join(nemo_store::snapshot_file_name(20));
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x20;
        std::fs::write(&path, &bytes).unwrap();
        let (recovered, _, report) = Persistence::recover(&dir, &test_options()).unwrap();
        assert_eq!(report.snapshot_epoch, 0);
        assert_eq!(report.skipped_snapshots.len(), 1);
        assert_eq!(report.skipped_snapshots[0].0, 20);
        assert!(report.skipped_snapshots[0].1.contains("checksum"));
        assert_eq!(report.replayed_records, 20);
        assert!(recovered == live);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn incremental_snapshot_bytes_equal_full_rewrite() {
        let dir = temp_dir("incremental");
        let w = workload();
        let mut live = LiveNetwork::from_workload(&w);
        let mut persistence = Persistence::create(&dir, &test_options(), &live).unwrap();
        // Append-only growth: new endpoints and new flows.
        let mut at = 0;
        let mut add =
            |live: &mut LiveNetwork, persistence: &mut Persistence, mutation: Mutation| {
                at += 1;
                live.apply(at, mutation).unwrap();
                persistence.log(live.wal().last().unwrap()).unwrap();
            };
        for i in 0..6u8 {
            add(
                &mut live,
                &mut persistence,
                Mutation::AddNode {
                    id: format!("203.0.{i}.1"),
                    prefix16: "203.0".into(),
                    prefix24: format!("203.0.{i}"),
                },
            );
        }
        for i in 0..5u8 {
            add(
                &mut live,
                &mut persistence,
                Mutation::AddEdge {
                    source: format!("203.0.{i}.1"),
                    target: format!("203.0.{}.1", i + 1),
                    bytes: 10 + i as i64,
                    connections: 1,
                    packets: 2,
                },
            );
        }
        assert!(
            persistence.append_only,
            "append-only run must keep the flag"
        );
        persistence.force_full_snapshot(&live).unwrap();
        let stored = persistence.store().read_snapshot(live.epoch()).unwrap();
        assert_eq!(
            String::from_utf8(stored).unwrap(),
            write_snapshot(&live),
            "prefix-reusing snapshot must be byte-identical to a full write"
        );
        // A non-append mutation clears the flag; the next snapshot is a
        // full rewrite and still byte-identical.
        add(
            &mut live,
            &mut persistence,
            Mutation::RemoveEdge {
                source: "203.0.0.1".into(),
                target: "203.0.1.1".into(),
            },
        );
        assert!(!persistence.append_only);
        persistence.force_full_snapshot(&live).unwrap();
        let stored = persistence.store().read_snapshot(live.epoch()).unwrap();
        assert_eq!(String::from_utf8(stored).unwrap(), write_snapshot(&live));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Drives `events` stream events through a fresh persistence dir,
    /// snapshotting (via the delta-aware `force_snapshot`) at each epoch
    /// in `snapshot_at`. Returns the final live state.
    fn drive(
        dir: &std::path::Path,
        events: usize,
        snapshot_at: &[u64],
    ) -> (LiveNetwork, Persistence) {
        let w = workload();
        let mut live = LiveNetwork::from_workload(&w);
        let mut persistence = Persistence::create(dir, &test_options(), &live).unwrap();
        for event in evolve(&w, &StreamConfig { events, seed: 2 }) {
            live.apply_event(&event).unwrap();
            persistence.log(live.wal().last().unwrap()).unwrap();
            if snapshot_at.contains(&live.epoch()) {
                persistence.force_snapshot(&live).unwrap();
            }
        }
        persistence.sync().unwrap();
        (live, persistence)
    }

    #[test]
    fn delta_snapshots_chain_and_recover_to_the_exact_tip() {
        let dir = temp_dir("delta-chain");
        let (live, persistence) = drive(&dir, 40, &[15, 30]);
        // Both mid-stream snapshots took the O(delta) path: their file
        // names carry the base they build on.
        let metas = persistence.store().snapshot_metas().to_vec();
        assert_eq!(
            metas,
            vec![
                nemo_store::SnapshotMeta::full(0),
                nemo_store::SnapshotMeta::delta(15, 0),
                nemo_store::SnapshotMeta::delta(30, 15),
            ]
        );
        drop(persistence);
        let (recovered, persistence, report) = Persistence::recover(&dir, &test_options()).unwrap();
        assert_eq!(report.snapshot_epoch, 30, "{report:?}");
        assert_eq!(report.replayed_records, 10);
        assert!(report.skipped_snapshots.is_empty());
        assert!(recovered == live);
        assert_eq!(write_snapshot(&recovered), write_snapshot(&live));
        drop(persistence);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn a_full_snapshot_is_forced_once_the_chain_is_long_enough() {
        let dir = temp_dir("chain-cap");
        let snapshot_at: Vec<u64> = (1..=5).map(|i| i * 8).collect();
        let (_, persistence) = drive(&dir, 40, &snapshot_at);
        let metas = persistence.store().snapshot_metas();
        // Genesis full, then MAX_DELTA_CHAIN deltas, then a full anchor,
        // then the chain restarts.
        assert_eq!(metas[0], nemo_store::SnapshotMeta::full(0));
        for meta in &metas[1..=MAX_DELTA_CHAIN] {
            assert!(meta.base.is_some(), "{metas:?}");
        }
        assert_eq!(metas[MAX_DELTA_CHAIN + 1].base, None, "{metas:?}");
        assert!(metas[MAX_DELTA_CHAIN + 2].base.is_some(), "{metas:?}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn a_damaged_delta_link_fails_the_chain_loudly_and_recovery_falls_back() {
        let dir = temp_dir("delta-damage");
        let (live, persistence) = drive(&dir, 40, &[15, 30]);
        drop(persistence);
        // Damage the *middle* link: every delta above it must fail too.
        let path = dir.join(nemo_store::delta_snapshot_file_name(15, 0));
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x20;
        std::fs::write(&path, &bytes).unwrap();
        let (recovered, _, report) = Persistence::recover(&dir, &test_options()).unwrap();
        // Recovery fell back past both deltas to the genesis snapshot,
        // recording why each candidate failed — the tip's reason names
        // the broken base link.
        assert_eq!(report.snapshot_epoch, 0);
        assert_eq!(report.skipped_snapshots.len(), 2);
        assert_eq!(report.skipped_snapshots[0].0, 30);
        assert!(
            report.skipped_snapshots[0].1.contains("base 15"),
            "{:?}",
            report.skipped_snapshots
        );
        assert_eq!(report.skipped_snapshots[1].0, 15);
        assert_eq!(report.replayed_records, 40);
        assert!(recovered == live);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sweep_prunes_aged_out_chains_and_recovery_still_works() {
        let dir = temp_dir("persist-sweep");
        // Deltas at 8/16/24 chain to genesis; the chain cap forces a full
        // at 32 and the delta at 40 builds on it — so with keep=2 the
        // retained roots are {32, 40} and the whole old chain ages out.
        let (live, mut persistence) = drive(&dir, 40, &[8, 16, 24, 32, 40]);
        let pending = persistence.store().sweep_plan().removals();
        assert!(pending > 0, "aged-out snapshots must be deletable");
        let outcome = persistence.sweep(usize::MAX).unwrap();
        assert_eq!(outcome.remaining, 0);
        assert!(outcome.pruned_snapshots > 0);
        drop(persistence);
        let (recovered, _, report) = Persistence::recover(&dir, &test_options()).unwrap();
        assert!(report.skipped_snapshots.is_empty(), "{report:?}");
        assert!(recovered == live);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn create_refuses_an_occupied_directory_and_recover_an_empty_one() {
        let dir = temp_dir("occupied");
        let live = LiveNetwork::from_workload(&workload());
        let _p = Persistence::create(&dir, &test_options(), &live).unwrap();
        assert!(matches!(
            Persistence::create(&dir, &test_options(), &live),
            Err(ServeError::Storage(_))
        ));
        let empty = temp_dir("empty");
        assert!(matches!(
            Persistence::recover(&empty, &test_options()),
            Err(ServeError::Storage(_))
        ));
        // recover_or_create handles both.
        let (state, _, report) =
            Persistence::recover_or_create(&empty, &test_options(), || live.clone()).unwrap();
        assert!(state == live);
        assert_eq!(report, RecoveryReport::default());
        std::fs::remove_dir_all(&dir).unwrap();
        std::fs::remove_dir_all(&empty).unwrap();
    }
}
