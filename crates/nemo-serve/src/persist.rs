//! Durable persistence for the serving layer: `nemo-store` under
//! [`LiveNetwork`](crate::LiveNetwork).
//!
//! A [`Persistence`] handle owns one `nemo_store::Store` directory and the
//! serving-side policy around it:
//!
//! * **Genesis snapshot** — [`Persistence::create`] installs a snapshot of
//!   the initial state (epoch 0 for a fresh workload) before any record is
//!   logged, so recovery never depends on re-generating the workload.
//! * **Logging** — [`Persistence::log`] encodes each applied
//!   [`WalRecord`] with the `nemo-wal/v1` codec and appends it; the
//!   store's [`FsyncPolicy`] decides when it hits the platter, and
//!   [`Persistence::sync`] marks batch boundaries.
//! * **Snapshot + compaction** — [`Persistence::maybe_snapshot`] writes a
//!   snapshot when the store's byte/epoch thresholds fire. When only
//!   `AddNode`/`AddEdge` mutations happened since the previous snapshot,
//!   the frames only *grew*, so the writer reuses the previous snapshot's
//!   CSV verbatim and encodes just the appended rows
//!   (`trafficgen::export_flows_since`-style) — the output is proven
//!   byte-identical to a full rewrite. Installing a snapshot deletes WAL
//!   segments it wholly covers.
//! * **Recovery** — [`Persistence::recover`] rebuilds the live state from
//!   the newest *valid* snapshot plus the WAL suffix: a torn tail record
//!   is truncated (by the store), a corrupt snapshot falls back to an
//!   older one, and every unrecoverable condition — CRC mismatch, missing
//!   segment, epoch gap, conflicting replay — fails loudly.

use crate::codec::{decode_record, encode_record, WAL_MAGIC};
use crate::error::ServeError;
use crate::live::LiveNetwork;
use crate::mutation::{Mutation, WalRecord};
use crate::snapshot::{self, write_snapshot_with_frames};
use dataframe::csv::{to_csv, to_csv_rows};
use nemo_store::{Store, StoreConfig};
use std::path::Path;

pub use nemo_store::FsyncPolicy;

/// Durability and sizing knobs for one persistence directory.
#[derive(Debug, Clone)]
pub struct PersistOptions {
    /// When appended records are fsynced.
    pub fsync: FsyncPolicy,
    /// WAL segment rotation threshold in bytes.
    pub segment_max_bytes: u64,
    /// Snapshot once this many WAL bytes accumulated (0 disables).
    pub snapshot_every_bytes: u64,
    /// Snapshot once this many epochs passed since the last one
    /// (0 disables).
    pub snapshot_every_epochs: u64,
    /// Snapshots retained on disk.
    pub keep_snapshots: usize,
}

impl Default for PersistOptions {
    fn default() -> Self {
        PersistOptions {
            fsync: FsyncPolicy::EveryBatch,
            segment_max_bytes: 1 << 20,
            snapshot_every_bytes: 256 << 10,
            snapshot_every_epochs: 1024,
            keep_snapshots: 2,
        }
    }
}

impl PersistOptions {
    fn store_config(&self) -> StoreConfig {
        StoreConfig {
            magic: WAL_MAGIC.to_string(),
            fsync: self.fsync,
            segment_max_bytes: self.segment_max_bytes,
            snapshot_every_bytes: self.snapshot_every_bytes,
            snapshot_every_epochs: self.snapshot_every_epochs,
            keep_snapshots: self.keep_snapshots,
        }
    }
}

/// What [`Persistence::recover`] found and did.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RecoveryReport {
    /// Epoch of the snapshot the state was rebuilt from.
    pub snapshot_epoch: u64,
    /// WAL records replayed on top of the snapshot.
    pub replayed_records: u64,
    /// Bytes truncated off a torn tail record (0 on a clean start).
    pub truncated_bytes: u64,
    /// Newer snapshots that were skipped because their documents failed
    /// validation (recovery fell back past them), with the reason each
    /// one was refused — a version mismatch must stay distinguishable
    /// from disk corruption.
    pub skipped_snapshots: Vec<(u64, String)>,
}

/// The previous snapshot's reusable encoding state.
#[derive(Debug)]
struct PrevSnapshot {
    nodes_csv: String,
    edges_csv: String,
    node_rows: usize,
    edge_rows: usize,
}

/// A live network's durable storage handle.
#[derive(Debug)]
pub struct Persistence {
    store: Store,
    /// Cached CSV of the newest installed snapshot, for prefix reuse.
    prev: Option<PrevSnapshot>,
    /// True while every mutation logged since the newest snapshot only
    /// *appended* frame rows (`AddNode`/`AddEdge`): the previous CSV is
    /// then an unchanged prefix of the current one.
    append_only: bool,
}

impl Persistence {
    /// Creates persistence for a fresh live state in an empty (or absent)
    /// directory, installing the genesis snapshot before returning. Errors
    /// if the directory already holds store files — recover those with
    /// [`Persistence::recover`] instead of silently shadowing them.
    pub fn create(
        dir: &Path,
        options: &PersistOptions,
        live: &LiveNetwork,
    ) -> Result<Persistence, ServeError> {
        let (store, _) = Store::open(dir, options.store_config())?;
        if !store.is_empty() {
            return Err(ServeError::Storage(format!(
                "{} already holds store files; use recover()",
                dir.display()
            )));
        }
        let mut persistence = Persistence {
            store,
            prev: None,
            append_only: true,
        };
        persistence.force_snapshot(live)?;
        Ok(persistence)
    }

    /// Rebuilds the live state from disk: newest valid snapshot plus the
    /// WAL suffix. See the module docs for what is repaired silently (a
    /// torn tail), what is fallen back from (a corrupt snapshot document)
    /// and what fails loudly (everything else).
    pub fn recover(
        dir: &Path,
        options: &PersistOptions,
    ) -> Result<(LiveNetwork, Persistence, RecoveryReport), ServeError> {
        let (store, open_report) = Store::open(dir, options.store_config())?;
        if store.is_empty() {
            return Err(ServeError::Storage(format!(
                "{} holds no store files; use create()",
                dir.display()
            )));
        }
        Self::recover_opened(store, open_report)
    }

    /// The recovery body over an already-opened (and tail-repaired) store.
    fn recover_opened(
        store: Store,
        open_report: nemo_store::OpenReport,
    ) -> Result<(LiveNetwork, Persistence, RecoveryReport), ServeError> {
        let dir = store.dir().to_path_buf();
        let mut report = RecoveryReport {
            truncated_bytes: open_report.truncated_bytes,
            ..RecoveryReport::default()
        };
        // Newest snapshot whose document still validates.
        let mut base: Option<(u64, LiveNetwork)> = None;
        for &epoch in store.snapshot_epochs().iter().rev() {
            let parsed = store
                .read_snapshot(epoch)
                .map_err(ServeError::from)
                .and_then(|bytes| {
                    String::from_utf8(bytes).map_err(|_| {
                        ServeError::Corrupt("snapshot document is not UTF-8".to_string())
                    })
                })
                .and_then(|text| snapshot::read_snapshot(&text));
            match parsed {
                Ok(live) => {
                    base = Some((epoch, live));
                    break;
                }
                Err(reason) => report.skipped_snapshots.push((epoch, reason.to_string())),
            }
        }
        let Some((snapshot_epoch, mut live)) = base else {
            let reasons: Vec<String> = report
                .skipped_snapshots
                .iter()
                .map(|(epoch, reason)| format!("epoch {epoch}: {reason}"))
                .collect();
            return Err(ServeError::Corrupt(format!(
                "{}: no usable snapshot — every candidate failed validation ({})",
                dir.display(),
                reasons.join("; "),
            )));
        };
        if live.epoch() != snapshot_epoch {
            return Err(ServeError::Corrupt(format!(
                "snapshot file for epoch {snapshot_epoch} carries state at epoch {}",
                live.epoch()
            )));
        }
        report.snapshot_epoch = snapshot_epoch;
        // Replay the WAL suffix, cross-checking the store's positional
        // epochs against the ones the records themselves carry.
        let mut records = Vec::new();
        for (epoch, payload) in store.replay(snapshot_epoch)? {
            let record = decode_record(&payload)?;
            if record.epoch != epoch {
                return Err(ServeError::Corrupt(format!(
                    "WAL record at log position {epoch} carries epoch {}",
                    record.epoch
                )));
            }
            records.push(record);
        }
        report.replayed_records = snapshot::apply_wal(&mut live, &records)?;
        // Completeness: the store knows the newest epoch it ever held
        // (from segment contents and snapshot file names). Recovering to
        // anything earlier would be *silent* data loss — e.g. falling back
        // past a corrupt snapshot whose covered WAL was compacted away —
        // so it fails loudly instead.
        if let Some(last) = store.last_epoch() {
            if live.epoch() < last {
                return Err(ServeError::Corrupt(format!(
                    "recovery reached epoch {} but the store once held epoch {last}; \
                     the WAL covering the difference is gone (compacted or deleted)",
                    live.epoch()
                )));
            }
        }
        // The reusable-prefix cache restarts from the recovered state; the
        // next snapshot is written in full.
        let persistence = Persistence {
            store,
            prev: None,
            append_only: false,
        };
        Ok((live, persistence, report))
    }

    /// Either [`Persistence::recover`] (store files present) or
    /// [`Persistence::create`] over `init()` (fresh directory) — the
    /// restart-safe entry point for drivers.
    pub fn recover_or_create(
        dir: &Path,
        options: &PersistOptions,
        init: impl FnOnce() -> LiveNetwork,
    ) -> Result<(LiveNetwork, Persistence, RecoveryReport), ServeError> {
        let (store, open_report) = Store::open(dir, options.store_config())?;
        if store.is_empty() {
            let live = init();
            let mut persistence = Persistence {
                store,
                prev: None,
                append_only: true,
            };
            persistence.force_snapshot(&live)?;
            Ok((live, persistence, RecoveryReport::default()))
        } else {
            // Single open: the repair report (torn-tail truncation) flows
            // into the recovery report instead of being discarded by a
            // probe-and-reopen.
            Self::recover_opened(store, open_report)
        }
    }

    /// Durably logs one applied WAL record.
    pub fn log(&mut self, record: &WalRecord) -> Result<(), ServeError> {
        self.store.append(record.epoch, &encode_record(record))?;
        if !matches!(
            record.mutation,
            Mutation::AddNode { .. } | Mutation::AddEdge { .. }
        ) {
            self.append_only = false;
        }
        Ok(())
    }

    /// Batch-boundary fsync (see [`FsyncPolicy::EveryBatch`]).
    pub fn sync(&mut self) -> Result<(), ServeError> {
        self.store.sync()?;
        Ok(())
    }

    /// Writes and installs a snapshot if the store's thresholds say one is
    /// due; returns whether it did.
    pub fn maybe_snapshot(&mut self, live: &LiveNetwork) -> Result<bool, ServeError> {
        if !self.store.snapshot_due(live.epoch()) {
            return Ok(false);
        }
        self.force_snapshot(live)?;
        Ok(true)
    }

    /// Unconditionally writes and installs a snapshot of `live`, reusing
    /// the previous snapshot's unchanged CSV prefix when every mutation
    /// since it was append-only.
    pub fn force_snapshot(&mut self, live: &LiveNetwork) -> Result<(), ServeError> {
        let reusable = self.append_only
            && self.prev.as_ref().is_some_and(|prev| {
                prev.node_rows <= live.nodes().n_rows() && prev.edge_rows <= live.edges().n_rows()
            });
        let (nodes_csv, edges_csv) = if reusable {
            let prev = self.prev.as_ref().expect("checked above");
            (
                format!(
                    "{}{}",
                    prev.nodes_csv,
                    to_csv_rows(live.nodes(), prev.node_rows)
                ),
                format!(
                    "{}{}",
                    prev.edges_csv,
                    to_csv_rows(live.edges(), prev.edge_rows)
                ),
            )
        } else {
            (to_csv(live.nodes()), to_csv(live.edges()))
        };
        let document = write_snapshot_with_frames(live, &nodes_csv, &edges_csv);
        self.store
            .install_snapshot(live.epoch(), document.as_bytes())?;
        self.prev = Some(PrevSnapshot {
            nodes_csv,
            edges_csv,
            node_rows: live.nodes().n_rows(),
            edge_rows: live.edges().n_rows(),
        });
        self.append_only = true;
        Ok(())
    }

    /// The underlying store (inspection, benchmarks, tests).
    pub fn store(&self) -> &Store {
        &self.store
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::write_snapshot;
    use std::path::PathBuf;
    use trafficgen::{evolve, generate, StreamConfig, TrafficConfig};

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("nemo-persist-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn test_options() -> PersistOptions {
        PersistOptions {
            fsync: FsyncPolicy::Never,
            segment_max_bytes: 512,
            snapshot_every_bytes: 0,
            snapshot_every_epochs: 0,
            ..PersistOptions::default()
        }
    }

    fn workload() -> trafficgen::TrafficWorkload {
        generate(&TrafficConfig {
            nodes: 12,
            edges: 16,
            prefixes: 2,
            seed: 5,
        })
    }

    #[test]
    fn log_then_recover_rebuilds_identical_state() {
        let dir = temp_dir("roundtrip");
        let w = workload();
        let mut live = LiveNetwork::from_workload(&w);
        let mut persistence = Persistence::create(&dir, &test_options(), &live).unwrap();
        for event in evolve(
            &w,
            &StreamConfig {
                events: 60,
                seed: 2,
            },
        ) {
            live.apply_event(&event).unwrap();
            persistence
                .log(live.wal().last().expect("apply appended"))
                .unwrap();
        }
        persistence.sync().unwrap();
        drop(persistence);

        let (recovered, _, report) = Persistence::recover(&dir, &test_options()).unwrap();
        assert_eq!(report.snapshot_epoch, 0);
        assert_eq!(report.replayed_records, 60);
        assert_eq!(report.truncated_bytes, 0);
        assert!(recovered == live);
        assert_eq!(write_snapshot(&recovered), write_snapshot(&live));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn recovery_uses_the_newest_snapshot_and_compaction_survives() {
        let dir = temp_dir("compact");
        let w = workload();
        let mut live = LiveNetwork::from_workload(&w);
        let mut persistence = Persistence::create(&dir, &test_options(), &live).unwrap();
        let events = evolve(
            &w,
            &StreamConfig {
                events: 50,
                seed: 9,
            },
        );
        for (i, event) in events.iter().enumerate() {
            live.apply_event(event).unwrap();
            persistence.log(live.wal().last().unwrap()).unwrap();
            if i == 29 {
                persistence.force_snapshot(&live).unwrap();
            }
        }
        // Compaction deleted segments wholly covered by the epoch-30
        // snapshot, yet recovery still reproduces the tip exactly.
        assert!(persistence.store().snapshot_epochs().contains(&30));
        drop(persistence);
        let (recovered, persistence, report) = Persistence::recover(&dir, &test_options()).unwrap();
        assert_eq!(report.snapshot_epoch, 30);
        assert_eq!(report.replayed_records, 20);
        assert!(recovered == live);
        // The log continues seamlessly after recovery.
        drop(persistence);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_newest_snapshot_falls_back_to_the_older_one() {
        let dir = temp_dir("fallback");
        let w = workload();
        let mut live = LiveNetwork::from_workload(&w);
        let mut persistence = Persistence::create(&dir, &test_options(), &live).unwrap();
        for event in evolve(
            &w,
            &StreamConfig {
                events: 20,
                seed: 3,
            },
        ) {
            live.apply_event(&event).unwrap();
            persistence.log(live.wal().last().unwrap()).unwrap();
        }
        persistence.force_snapshot(&live).unwrap();
        drop(persistence);
        // Damage the newest snapshot file so its frame CRC fails. Both
        // snapshots are retained and the WAL is compacted only to the
        // oldest retained one, so the genesis fallback can fully replay.
        let path = dir.join(nemo_store::snapshot_file_name(20));
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x20;
        std::fs::write(&path, &bytes).unwrap();
        let (recovered, _, report) = Persistence::recover(&dir, &test_options()).unwrap();
        assert_eq!(report.snapshot_epoch, 0);
        assert_eq!(report.skipped_snapshots.len(), 1);
        assert_eq!(report.skipped_snapshots[0].0, 20);
        assert!(report.skipped_snapshots[0].1.contains("checksum"));
        assert_eq!(report.replayed_records, 20);
        assert!(recovered == live);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn incremental_snapshot_bytes_equal_full_rewrite() {
        let dir = temp_dir("incremental");
        let w = workload();
        let mut live = LiveNetwork::from_workload(&w);
        let mut persistence = Persistence::create(&dir, &test_options(), &live).unwrap();
        // Append-only growth: new endpoints and new flows.
        let mut at = 0;
        let mut add =
            |live: &mut LiveNetwork, persistence: &mut Persistence, mutation: Mutation| {
                at += 1;
                live.apply(at, mutation).unwrap();
                persistence.log(live.wal().last().unwrap()).unwrap();
            };
        for i in 0..6u8 {
            add(
                &mut live,
                &mut persistence,
                Mutation::AddNode {
                    id: format!("203.0.{i}.1"),
                    prefix16: "203.0".into(),
                    prefix24: format!("203.0.{i}"),
                },
            );
        }
        for i in 0..5u8 {
            add(
                &mut live,
                &mut persistence,
                Mutation::AddEdge {
                    source: format!("203.0.{i}.1"),
                    target: format!("203.0.{}.1", i + 1),
                    bytes: 10 + i as i64,
                    connections: 1,
                    packets: 2,
                },
            );
        }
        assert!(
            persistence.append_only,
            "append-only run must keep the flag"
        );
        persistence.force_snapshot(&live).unwrap();
        let stored = persistence.store().read_snapshot(live.epoch()).unwrap();
        assert_eq!(
            String::from_utf8(stored).unwrap(),
            write_snapshot(&live),
            "prefix-reusing snapshot must be byte-identical to a full write"
        );
        // A non-append mutation clears the flag; the next snapshot is a
        // full rewrite and still byte-identical.
        add(
            &mut live,
            &mut persistence,
            Mutation::RemoveEdge {
                source: "203.0.0.1".into(),
                target: "203.0.1.1".into(),
            },
        );
        assert!(!persistence.append_only);
        persistence.force_snapshot(&live).unwrap();
        let stored = persistence.store().read_snapshot(live.epoch()).unwrap();
        assert_eq!(String::from_utf8(stored).unwrap(), write_snapshot(&live));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn create_refuses_an_occupied_directory_and_recover_an_empty_one() {
        let dir = temp_dir("occupied");
        let live = LiveNetwork::from_workload(&workload());
        let _p = Persistence::create(&dir, &test_options(), &live).unwrap();
        assert!(matches!(
            Persistence::create(&dir, &test_options(), &live),
            Err(ServeError::Storage(_))
        ));
        let empty = temp_dir("empty");
        assert!(matches!(
            Persistence::recover(&empty, &test_options()),
            Err(ServeError::Storage(_))
        ));
        // recover_or_create handles both.
        let (state, _, report) =
            Persistence::recover_or_create(&empty, &test_options(), || live.clone()).unwrap();
        assert!(state == live);
        assert_eq!(report, RecoveryReport::default());
        std::fs::remove_dir_all(&dir).unwrap();
        std::fs::remove_dir_all(&empty).unwrap();
    }
}
