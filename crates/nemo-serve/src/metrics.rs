//! The serving layer's metric bundle and the `nemo-metrics/v1` document
//! validator.
//!
//! Every metric is classified **logical** or **physical** at registration:
//!
//! * *Logical* metrics are pure functions of the request stream — request
//!   type counts, mutations applied/rejected, queries answered, the global
//!   epoch. They are byte-identical across `NEMO_THREADS` and shard
//!   counts, and the determinism suite asserts exactly that.
//! * *Physical* metrics describe how this particular run executed —
//!   timings, fsync counts, cache hit rates (bounded-cache eviction
//!   depends on the shard layout), per-shard epochs, retries absorbed.
//!   They are excluded from transcripts and from logical snapshots.

use nemo_obs::{Class, Counter, Gauge, Histogram, Registry};
use netgraph::json::JsonValue;

/// The serving layer's own metric families, registered once per server.
///
/// Store (`store_*`), committer (`commit_*`) and worker-pool (`pool_*`)
/// families are registered by their owning crates against the same
/// [`Registry`]; [`ServeMetrics::register`] pre-registers all of them so
/// a `Stats` document covers every family (at zero) even for a server
/// that never touched disk.
#[derive(Debug, Clone)]
pub struct ServeMetrics {
    /// Typed `Mutate` requests handled (logical).
    pub requests_mutate: Counter,
    /// Typed `Query` requests handled (logical).
    pub requests_query: Counter,
    /// Typed `Sync` requests handled (logical).
    pub requests_sync: Counter,
    /// Typed `Stats` requests handled (logical).
    pub requests_stats: Counter,
    /// Typed `Trace` requests handled (logical).
    pub requests_trace: Counter,
    /// Requests whose root span crossed the slow-request threshold,
    /// sampled from the tracer at each `stats()` call (physical: wall
    /// clock decides).
    pub slow_requests: Gauge,
    /// Mutations applied — epoch consumed (logical).
    pub mutations_applied: Counter,
    /// Mutations rejected as conflicts — no epoch consumed (logical).
    pub mutations_rejected: Counter,
    /// Query replies produced, including cached and error replies
    /// (logical).
    pub queries_answered: Counter,
    /// The current global epoch, sampled at each `stats()` call (logical).
    pub global_epoch: Gauge,
    /// Healthy→degraded transitions of the write path (physical: fault
    /// timing depends on the run).
    pub degraded_transitions: Counter,
    /// Wall-clock microseconds per mutation request (physical).
    pub mutate_micros: Histogram,
    /// Wall-clock microseconds per query request (physical).
    pub query_micros: Histogram,
    /// Wall-clock microseconds per sync request (physical).
    pub sync_micros: Histogram,
    /// Answer-cache hits, sampled from [`crate::cache::CacheStats`]
    /// (physical: per-shard caches make totals layout-dependent once
    /// capacity bounds bite).
    pub cache_answer_hits: Gauge,
    /// Program-cache hits (physical).
    pub cache_program_hits: Gauge,
    /// Full cache misses (physical).
    pub cache_misses: Gauge,
    /// Stale answers invalidated by epoch bumps (physical).
    pub cache_invalidated: Gauge,
    /// Programs evicted — FIFO displacement plus explicit drops
    /// (physical).
    pub cache_evictions: Gauge,
    /// Per-shard local epoch gauges, indexed by shard (physical).
    pub shard_epochs: Vec<Gauge>,
    /// Per-shard durability lag gauges — local epoch minus the shard
    /// store's durable epoch (physical).
    pub shard_lags: Vec<Gauge>,
}

impl ServeMetrics {
    /// Binds the serving-layer families in `registry` and pre-registers
    /// the store, committer, retry and pool families so every `Stats`
    /// document carries all six prefixes. Idempotent: re-registering
    /// returns handles onto the same underlying metrics.
    pub fn register(registry: &Registry, shards: u32) -> ServeMetrics {
        // Pre-register the families owned by other crates.
        let _ = nemo_store::StoreMetrics::register(registry);
        let _ = nemo_store::CommitMetrics::register(registry);
        let _ = nemo_bench::pool::PoolMetrics::register(registry);
        let _ = crate::persist::RetryMetrics::register(registry);
        let shard_epochs = (0..shards)
            .map(|k| registry.gauge(&format!("shard{k}_epoch"), Class::Physical))
            .collect();
        let shard_lags = (0..shards)
            .map(|k| registry.gauge(&format!("shard{k}_lag"), Class::Physical))
            .collect();
        ServeMetrics {
            requests_mutate: registry.counter("serve_requests_mutate", Class::Logical),
            requests_query: registry.counter("serve_requests_query", Class::Logical),
            requests_sync: registry.counter("serve_requests_sync", Class::Logical),
            requests_stats: registry.counter("serve_requests_stats", Class::Logical),
            requests_trace: registry.counter("serve_requests_trace", Class::Logical),
            slow_requests: registry.gauge("serve_slow_requests", Class::Physical),
            mutations_applied: registry.counter("serve_mutations_applied", Class::Logical),
            mutations_rejected: registry.counter("serve_mutations_rejected", Class::Logical),
            queries_answered: registry.counter("serve_queries_answered", Class::Logical),
            global_epoch: registry.gauge("serve_global_epoch", Class::Logical),
            degraded_transitions: registry.counter("serve_degraded_transitions", Class::Physical),
            mutate_micros: registry.histogram("serve_mutate_micros", Class::Physical),
            query_micros: registry.histogram("serve_query_micros", Class::Physical),
            sync_micros: registry.histogram("serve_sync_micros", Class::Physical),
            cache_answer_hits: registry.gauge("cache_answer_hits", Class::Physical),
            cache_program_hits: registry.gauge("cache_program_hits", Class::Physical),
            cache_misses: registry.gauge("cache_misses", Class::Physical),
            cache_invalidated: registry.gauge("cache_invalidated", Class::Physical),
            cache_evictions: registry.gauge("cache_evictions", Class::Physical),
            shard_epochs,
            shard_lags,
        }
    }

    /// Copies a sampled [`CacheStats`](crate::cache::CacheStats) into the
    /// cache gauges.
    pub fn sample_cache(&self, stats: crate::cache::CacheStats) {
        self.cache_answer_hits.set(stats.answer_hits as i64);
        self.cache_program_hits.set(stats.program_hits as i64);
        self.cache_misses.set(stats.misses as i64);
        self.cache_invalidated.set(stats.invalidated as i64);
        self.cache_evictions.set(stats.evictions as i64);
    }
}

/// The metric-name prefixes a full `Stats` document must cover: one per
/// subsystem the paper's serving pipeline touches.
pub const METRIC_FAMILIES: [&str; 6] = ["serve_", "cache_", "shard", "store_", "commit_", "pool_"];

/// Validates a parsed `nemo-metrics/v1` document: schema tag, per-metric
/// shape (class, kind, value type) and family coverage. Returns the first
/// violation as a human-readable message.
pub fn validate_metrics_doc(doc: &JsonValue) -> Result<(), String> {
    let root = match doc {
        JsonValue::Object(map) => map,
        other => return Err(format!("metrics document is not an object: {other:?}")),
    };
    match root.get("schema") {
        Some(JsonValue::String(s)) if s == nemo_obs::SCHEMA => {}
        Some(other) => {
            return Err(format!(
                "schema tag is {other:?}, want {}",
                nemo_obs::SCHEMA
            ))
        }
        None => return Err("missing schema tag".to_string()),
    }
    let metrics = match root.get("metrics") {
        Some(JsonValue::Object(map)) => map,
        Some(other) => return Err(format!("\"metrics\" is not an object: {other:?}")),
        None => return Err("missing \"metrics\" object".to_string()),
    };
    for (name, entry) in metrics {
        let fields = match entry {
            JsonValue::Object(map) => map,
            other => return Err(format!("{name}: entry is not an object: {other:?}")),
        };
        match fields.get("class") {
            Some(JsonValue::String(c)) if c == "logical" || c == "physical" => {}
            other => return Err(format!("{name}: bad class {other:?}")),
        }
        let kind = match fields.get("kind") {
            Some(JsonValue::String(k)) if k == "counter" || k == "gauge" || k == "histogram" => {
                k.clone()
            }
            other => return Err(format!("{name}: bad kind {other:?}")),
        };
        match (kind.as_str(), fields.get("value")) {
            ("counter", Some(JsonValue::Number(_))) => {}
            ("gauge", Some(JsonValue::Number(_))) => {}
            ("histogram", Some(JsonValue::Object(h))) => {
                for want in ["bounds", "buckets", "count", "sum"] {
                    if !h.contains_key(want) {
                        return Err(format!("{name}: histogram missing \"{want}\""));
                    }
                }
            }
            (_, other) => {
                return Err(format!(
                    "{name}: value does not match kind {kind}: {other:?}"
                ))
            }
        }
    }
    for family in METRIC_FAMILIES {
        if !metrics.keys().any(|name| name.starts_with(family)) {
            return Err(format!("no metric with family prefix \"{family}\""));
        }
    }
    Ok(())
}

/// Validates a parsed `nemo-trace/v1` document: schema tag, drop
/// counters, and per-trace shape — every span's fields, exactly one root
/// per trace, and every `parent_id` resolving to a span in the same
/// trace. Returns the first violation as a human-readable message.
pub fn validate_trace_doc(doc: &JsonValue) -> Result<(), String> {
    let root = match doc {
        JsonValue::Object(map) => map,
        other => return Err(format!("trace document is not an object: {other:?}")),
    };
    match root.get("schema") {
        Some(JsonValue::String(s)) if s == nemo_obs::trace::TRACE_SCHEMA => {}
        Some(other) => {
            return Err(format!(
                "schema tag is {other:?}, want {}",
                nemo_obs::trace::TRACE_SCHEMA
            ))
        }
        None => return Err("missing schema tag".to_string()),
    }
    for counter in ["dropped", "slow_dropped", "slow_retained", "slow_total"] {
        match root.get(counter) {
            Some(JsonValue::Number(_)) => {}
            other => return Err(format!("\"{counter}\" is not a number: {other:?}")),
        }
    }
    let traces = match root.get("traces") {
        Some(JsonValue::Array(items)) => items,
        Some(other) => return Err(format!("\"traces\" is not an array: {other:?}")),
        None => return Err("missing \"traces\" array".to_string()),
    };
    for (i, trace) in traces.iter().enumerate() {
        let trace = match trace {
            JsonValue::Object(map) => map,
            other => return Err(format!("trace[{i}] is not an object: {other:?}")),
        };
        for field in ["trace_id", "base_micros"] {
            match trace.get(field) {
                Some(JsonValue::Number(_)) => {}
                other => return Err(format!("trace[{i}].{field} is not a number: {other:?}")),
            }
        }
        let spans = match trace.get("spans") {
            Some(JsonValue::Array(items)) if !items.is_empty() => items,
            Some(JsonValue::Array(_)) => return Err(format!("trace[{i}] has no spans")),
            other => return Err(format!("trace[{i}].spans is not an array: {other:?}")),
        };
        let mut ids = Vec::new();
        let mut roots = 0usize;
        for (j, span) in spans.iter().enumerate() {
            let span = match span {
                JsonValue::Object(map) => map,
                other => return Err(format!("trace[{i}].spans[{j}] is not an object: {other:?}")),
            };
            let at = |field: &str| format!("trace[{i}].spans[{j}].{field}");
            for field in ["span_id", "start_micros", "duration_micros"] {
                match span.get(field) {
                    Some(JsonValue::Number(_)) => {}
                    other => return Err(format!("{} is not a number: {other:?}", at(field))),
                }
            }
            match span.get("name") {
                Some(JsonValue::String(_)) => {}
                other => return Err(format!("{} is not a string: {other:?}", at("name"))),
            }
            match span.get("class") {
                Some(JsonValue::String(c)) if c == "logical" || c == "physical" => {}
                other => return Err(format!("{} is bad: {other:?}", at("class"))),
            }
            if let Some(JsonValue::Number(id)) = span.get("span_id") {
                ids.push(*id as i64);
            }
            match span.get("parent_id") {
                Some(JsonValue::Null) => roots += 1,
                Some(JsonValue::Number(_)) => {}
                other => {
                    return Err(format!(
                        "{} is neither null nor a number: {other:?}",
                        at("parent_id")
                    ))
                }
            }
        }
        if roots != 1 {
            return Err(format!("trace[{i}] has {roots} roots, want exactly 1"));
        }
        for (j, span) in spans.iter().enumerate() {
            if let JsonValue::Object(span) = span {
                if let Some(JsonValue::Number(parent)) = span.get("parent_id") {
                    if !ids.contains(&(*parent as i64)) {
                        return Err(format!(
                            "trace[{i}].spans[{j}] parents missing span {parent}"
                        ));
                    }
                }
            }
        }
    }
    Ok(())
}

/// Validates a parsed Chrome trace-event export (the object
/// `chrome://tracing` / Perfetto loads): a `traceEvents` array of
/// complete (`"ph":"X"`) events, each with name, category, pid/tid,
/// timestamp, duration and a `trace_id` arg. Returns the first violation.
pub fn validate_chrome_doc(doc: &JsonValue) -> Result<(), String> {
    let root = match doc {
        JsonValue::Object(map) => map,
        other => return Err(format!("chrome document is not an object: {other:?}")),
    };
    let events = match root.get("traceEvents") {
        Some(JsonValue::Array(items)) => items,
        Some(other) => return Err(format!("\"traceEvents\" is not an array: {other:?}")),
        None => return Err("missing \"traceEvents\" array".to_string()),
    };
    for (i, event) in events.iter().enumerate() {
        let event = match event {
            JsonValue::Object(map) => map,
            other => return Err(format!("traceEvents[{i}] is not an object: {other:?}")),
        };
        match event.get("ph") {
            Some(JsonValue::String(ph)) if ph == "X" => {}
            other => return Err(format!("traceEvents[{i}].ph is not \"X\": {other:?}")),
        }
        match event.get("name") {
            Some(JsonValue::String(_)) => {}
            other => return Err(format!("traceEvents[{i}].name is not a string: {other:?}")),
        }
        match event.get("cat") {
            Some(JsonValue::String(c)) if c == "logical" || c == "physical" => {}
            other => return Err(format!("traceEvents[{i}].cat is bad: {other:?}")),
        }
        for field in ["pid", "tid", "ts", "dur"] {
            match event.get(field) {
                Some(JsonValue::Number(_)) => {}
                other => {
                    return Err(format!(
                        "traceEvents[{i}].{field} is not a number: {other:?}"
                    ))
                }
            }
        }
        match event.get("args") {
            Some(JsonValue::Object(args)) => match args.get("trace_id") {
                Some(JsonValue::Number(_)) => {}
                other => {
                    return Err(format!(
                        "traceEvents[{i}].args.trace_id is not a number: {other:?}"
                    ))
                }
            },
            other => return Err(format!("traceEvents[{i}].args is not an object: {other:?}")),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registered_families_produce_a_valid_document() {
        let registry = Registry::new();
        let metrics = ServeMetrics::register(&registry, 2);
        metrics.requests_query.inc();
        metrics.query_micros.record(120);
        metrics.shard_epochs[1].set(7);
        let doc = JsonValue::parse(&registry.snapshot().to_json()).expect("snapshot parses");
        validate_metrics_doc(&doc).expect("full registry validates");
    }

    #[test]
    fn registration_is_idempotent() {
        let registry = Registry::new();
        let a = ServeMetrics::register(&registry, 1);
        let b = ServeMetrics::register(&registry, 1);
        a.queries_answered.add(3);
        b.queries_answered.inc();
        assert_eq!(a.queries_answered.get(), 4, "same underlying counter");
    }

    #[test]
    fn validator_rejects_malformed_documents() {
        let missing_schema = JsonValue::parse(r#"{"metrics":{}}"#).unwrap();
        assert!(validate_metrics_doc(&missing_schema)
            .unwrap_err()
            .contains("schema"));
        let bad_class = JsonValue::parse(
            r#"{"metrics":{"serve_x":{"class":"spiritual","kind":"counter","value":1}},"schema":"nemo-metrics/v1"}"#,
        )
        .unwrap();
        assert!(validate_metrics_doc(&bad_class)
            .unwrap_err()
            .contains("bad class"));
        let sparse = JsonValue::parse(
            r#"{"metrics":{"serve_x":{"class":"logical","kind":"counter","value":1}},"schema":"nemo-metrics/v1"}"#,
        )
        .unwrap();
        assert!(validate_metrics_doc(&sparse)
            .unwrap_err()
            .contains("family prefix"));
    }

    #[test]
    fn trace_documents_from_a_live_tracer_validate() {
        let tracer = nemo_obs::trace::Tracer::new();
        tracer.enable(16);
        {
            let _root = tracer.begin("request.mutate");
            let _route = tracer.span("mutate.route", Class::Logical);
            let _wal = tracer.span("wal.log", Class::Logical);
        }
        let doc = JsonValue::parse(&tracer.to_doc(0)).expect("trace doc parses");
        validate_trace_doc(&doc).expect("live trace doc validates");
        let chrome = JsonValue::parse(&tracer.to_chrome(0)).expect("chrome doc parses");
        validate_chrome_doc(&chrome).expect("live chrome doc validates");
    }

    #[test]
    fn trace_validator_rejects_malformed_documents() {
        let missing_schema = JsonValue::parse(r#"{"traces":[]}"#).unwrap();
        assert!(validate_trace_doc(&missing_schema)
            .unwrap_err()
            .contains("schema"));
        let orphan = JsonValue::parse(
            r#"{"dropped":0,"schema":"nemo-trace/v1","slow_dropped":0,"slow_retained":0,"slow_total":0,"traces":[{"base_micros":0,"spans":[{"class":"logical","duration_micros":1,"name":"request.mutate","parent_id":null,"span_id":1,"start_micros":0},{"class":"logical","duration_micros":1,"name":"wal.log","parent_id":9,"span_id":2,"start_micros":0}],"trace_id":1}]}"#,
        )
        .unwrap();
        assert!(validate_trace_doc(&orphan)
            .unwrap_err()
            .contains("missing span 9"));
        let two_roots = JsonValue::parse(
            r#"{"dropped":0,"schema":"nemo-trace/v1","slow_dropped":0,"slow_retained":0,"slow_total":0,"traces":[{"base_micros":0,"spans":[{"class":"logical","duration_micros":1,"name":"a","parent_id":null,"span_id":1,"start_micros":0},{"class":"logical","duration_micros":1,"name":"b","parent_id":null,"span_id":2,"start_micros":0}],"trace_id":1}]}"#,
        )
        .unwrap();
        assert!(validate_trace_doc(&two_roots)
            .unwrap_err()
            .contains("roots"));
    }

    #[test]
    fn chrome_validator_rejects_malformed_documents() {
        let missing = JsonValue::parse(r#"{"events":[]}"#).unwrap();
        assert!(validate_chrome_doc(&missing)
            .unwrap_err()
            .contains("traceEvents"));
        let bad_phase = JsonValue::parse(
            r#"{"traceEvents":[{"args":{"trace_id":1},"cat":"logical","dur":1,"name":"x","ph":"B","pid":1,"tid":1,"ts":0}]}"#,
        )
        .unwrap();
        assert!(validate_chrome_doc(&bad_phase).unwrap_err().contains("ph"));
    }

    #[test]
    fn cache_sampling_copies_every_counter() {
        let registry = Registry::new();
        let metrics = ServeMetrics::register(&registry, 1);
        metrics.sample_cache(crate::cache::CacheStats {
            answer_hits: 1,
            program_hits: 2,
            misses: 3,
            invalidated: 4,
            evictions: 5,
        });
        assert_eq!(metrics.cache_answer_hits.get(), 1);
        assert_eq!(metrics.cache_program_hits.get(), 2);
        assert_eq!(metrics.cache_misses.get(), 3);
        assert_eq!(metrics.cache_invalidated.get(), 4);
        assert_eq!(metrics.cache_evictions.get(), 5);
    }
}
