//! The serving layer's metric bundle and the `nemo-metrics/v1` document
//! validator.
//!
//! Every metric is classified **logical** or **physical** at registration:
//!
//! * *Logical* metrics are pure functions of the request stream — request
//!   type counts, mutations applied/rejected, queries answered, the global
//!   epoch. They are byte-identical across `NEMO_THREADS` and shard
//!   counts, and the determinism suite asserts exactly that.
//! * *Physical* metrics describe how this particular run executed —
//!   timings, fsync counts, cache hit rates (bounded-cache eviction
//!   depends on the shard layout), per-shard epochs, retries absorbed.
//!   They are excluded from transcripts and from logical snapshots.

use nemo_obs::{Class, Counter, Gauge, Histogram, Registry};
use netgraph::json::JsonValue;

/// The serving layer's own metric families, registered once per server.
///
/// Store (`store_*`), committer (`commit_*`) and worker-pool (`pool_*`)
/// families are registered by their owning crates against the same
/// [`Registry`]; [`ServeMetrics::register`] pre-registers all of them so
/// a `Stats` document covers every family (at zero) even for a server
/// that never touched disk.
#[derive(Debug, Clone)]
pub struct ServeMetrics {
    /// Typed `Mutate` requests handled (logical).
    pub requests_mutate: Counter,
    /// Typed `Query` requests handled (logical).
    pub requests_query: Counter,
    /// Typed `Sync` requests handled (logical).
    pub requests_sync: Counter,
    /// Typed `Stats` requests handled (logical).
    pub requests_stats: Counter,
    /// Mutations applied — epoch consumed (logical).
    pub mutations_applied: Counter,
    /// Mutations rejected as conflicts — no epoch consumed (logical).
    pub mutations_rejected: Counter,
    /// Query replies produced, including cached and error replies
    /// (logical).
    pub queries_answered: Counter,
    /// The current global epoch, sampled at each `stats()` call (logical).
    pub global_epoch: Gauge,
    /// Healthy→degraded transitions of the write path (physical: fault
    /// timing depends on the run).
    pub degraded_transitions: Counter,
    /// Wall-clock microseconds per mutation request (physical).
    pub mutate_micros: Histogram,
    /// Wall-clock microseconds per query request (physical).
    pub query_micros: Histogram,
    /// Wall-clock microseconds per sync request (physical).
    pub sync_micros: Histogram,
    /// Answer-cache hits, sampled from [`crate::cache::CacheStats`]
    /// (physical: per-shard caches make totals layout-dependent once
    /// capacity bounds bite).
    pub cache_answer_hits: Gauge,
    /// Program-cache hits (physical).
    pub cache_program_hits: Gauge,
    /// Full cache misses (physical).
    pub cache_misses: Gauge,
    /// Stale answers invalidated by epoch bumps (physical).
    pub cache_invalidated: Gauge,
    /// Programs evicted — FIFO displacement plus explicit drops
    /// (physical).
    pub cache_evictions: Gauge,
    /// Per-shard local epoch gauges, indexed by shard (physical).
    pub shard_epochs: Vec<Gauge>,
    /// Per-shard durability lag gauges — local epoch minus the shard
    /// store's durable epoch (physical).
    pub shard_lags: Vec<Gauge>,
}

impl ServeMetrics {
    /// Binds the serving-layer families in `registry` and pre-registers
    /// the store, committer, retry and pool families so every `Stats`
    /// document carries all six prefixes. Idempotent: re-registering
    /// returns handles onto the same underlying metrics.
    pub fn register(registry: &Registry, shards: u32) -> ServeMetrics {
        // Pre-register the families owned by other crates.
        let _ = nemo_store::StoreMetrics::register(registry);
        let _ = nemo_store::CommitMetrics::register(registry);
        let _ = nemo_bench::pool::PoolMetrics::register(registry);
        let _ = crate::persist::RetryMetrics::register(registry);
        let shard_epochs = (0..shards)
            .map(|k| registry.gauge(&format!("shard{k}_epoch"), Class::Physical))
            .collect();
        let shard_lags = (0..shards)
            .map(|k| registry.gauge(&format!("shard{k}_lag"), Class::Physical))
            .collect();
        ServeMetrics {
            requests_mutate: registry.counter("serve_requests_mutate", Class::Logical),
            requests_query: registry.counter("serve_requests_query", Class::Logical),
            requests_sync: registry.counter("serve_requests_sync", Class::Logical),
            requests_stats: registry.counter("serve_requests_stats", Class::Logical),
            mutations_applied: registry.counter("serve_mutations_applied", Class::Logical),
            mutations_rejected: registry.counter("serve_mutations_rejected", Class::Logical),
            queries_answered: registry.counter("serve_queries_answered", Class::Logical),
            global_epoch: registry.gauge("serve_global_epoch", Class::Logical),
            degraded_transitions: registry.counter("serve_degraded_transitions", Class::Physical),
            mutate_micros: registry.histogram("serve_mutate_micros", Class::Physical),
            query_micros: registry.histogram("serve_query_micros", Class::Physical),
            sync_micros: registry.histogram("serve_sync_micros", Class::Physical),
            cache_answer_hits: registry.gauge("cache_answer_hits", Class::Physical),
            cache_program_hits: registry.gauge("cache_program_hits", Class::Physical),
            cache_misses: registry.gauge("cache_misses", Class::Physical),
            cache_invalidated: registry.gauge("cache_invalidated", Class::Physical),
            cache_evictions: registry.gauge("cache_evictions", Class::Physical),
            shard_epochs,
            shard_lags,
        }
    }

    /// Copies a sampled [`CacheStats`](crate::cache::CacheStats) into the
    /// cache gauges.
    pub fn sample_cache(&self, stats: crate::cache::CacheStats) {
        self.cache_answer_hits.set(stats.answer_hits as i64);
        self.cache_program_hits.set(stats.program_hits as i64);
        self.cache_misses.set(stats.misses as i64);
        self.cache_invalidated.set(stats.invalidated as i64);
        self.cache_evictions.set(stats.evictions as i64);
    }
}

/// The metric-name prefixes a full `Stats` document must cover: one per
/// subsystem the paper's serving pipeline touches.
pub const METRIC_FAMILIES: [&str; 6] = ["serve_", "cache_", "shard", "store_", "commit_", "pool_"];

/// Validates a parsed `nemo-metrics/v1` document: schema tag, per-metric
/// shape (class, kind, value type) and family coverage. Returns the first
/// violation as a human-readable message.
pub fn validate_metrics_doc(doc: &JsonValue) -> Result<(), String> {
    let root = match doc {
        JsonValue::Object(map) => map,
        other => return Err(format!("metrics document is not an object: {other:?}")),
    };
    match root.get("schema") {
        Some(JsonValue::String(s)) if s == nemo_obs::SCHEMA => {}
        Some(other) => {
            return Err(format!(
                "schema tag is {other:?}, want {}",
                nemo_obs::SCHEMA
            ))
        }
        None => return Err("missing schema tag".to_string()),
    }
    let metrics = match root.get("metrics") {
        Some(JsonValue::Object(map)) => map,
        Some(other) => return Err(format!("\"metrics\" is not an object: {other:?}")),
        None => return Err("missing \"metrics\" object".to_string()),
    };
    for (name, entry) in metrics {
        let fields = match entry {
            JsonValue::Object(map) => map,
            other => return Err(format!("{name}: entry is not an object: {other:?}")),
        };
        match fields.get("class") {
            Some(JsonValue::String(c)) if c == "logical" || c == "physical" => {}
            other => return Err(format!("{name}: bad class {other:?}")),
        }
        let kind = match fields.get("kind") {
            Some(JsonValue::String(k)) if k == "counter" || k == "gauge" || k == "histogram" => {
                k.clone()
            }
            other => return Err(format!("{name}: bad kind {other:?}")),
        };
        match (kind.as_str(), fields.get("value")) {
            ("counter", Some(JsonValue::Number(_))) => {}
            ("gauge", Some(JsonValue::Number(_))) => {}
            ("histogram", Some(JsonValue::Object(h))) => {
                for want in ["bounds", "buckets", "count", "sum"] {
                    if !h.contains_key(want) {
                        return Err(format!("{name}: histogram missing \"{want}\""));
                    }
                }
            }
            (_, other) => {
                return Err(format!(
                    "{name}: value does not match kind {kind}: {other:?}"
                ))
            }
        }
    }
    for family in METRIC_FAMILIES {
        if !metrics.keys().any(|name| name.starts_with(family)) {
            return Err(format!("no metric with family prefix \"{family}\""));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registered_families_produce_a_valid_document() {
        let registry = Registry::new();
        let metrics = ServeMetrics::register(&registry, 2);
        metrics.requests_query.inc();
        metrics.query_micros.record(120);
        metrics.shard_epochs[1].set(7);
        let doc = JsonValue::parse(&registry.snapshot().to_json()).expect("snapshot parses");
        validate_metrics_doc(&doc).expect("full registry validates");
    }

    #[test]
    fn registration_is_idempotent() {
        let registry = Registry::new();
        let a = ServeMetrics::register(&registry, 1);
        let b = ServeMetrics::register(&registry, 1);
        a.queries_answered.add(3);
        b.queries_answered.inc();
        assert_eq!(a.queries_answered.get(), 4, "same underlying counter");
    }

    #[test]
    fn validator_rejects_malformed_documents() {
        let missing_schema = JsonValue::parse(r#"{"metrics":{}}"#).unwrap();
        assert!(validate_metrics_doc(&missing_schema)
            .unwrap_err()
            .contains("schema"));
        let bad_class = JsonValue::parse(
            r#"{"metrics":{"serve_x":{"class":"spiritual","kind":"counter","value":1}},"schema":"nemo-metrics/v1"}"#,
        )
        .unwrap();
        assert!(validate_metrics_doc(&bad_class)
            .unwrap_err()
            .contains("bad class"));
        let sparse = JsonValue::parse(
            r#"{"metrics":{"serve_x":{"class":"logical","kind":"counter","value":1}},"schema":"nemo-metrics/v1"}"#,
        )
        .unwrap();
        assert!(validate_metrics_doc(&sparse)
            .unwrap_err()
            .contains("family prefix"));
    }

    #[test]
    fn cache_sampling_copies_every_counter() {
        let registry = Registry::new();
        let metrics = ServeMetrics::register(&registry, 1);
        metrics.sample_cache(crate::cache::CacheStats {
            answer_hits: 1,
            program_hits: 2,
            misses: 3,
            invalidated: 4,
            evictions: 5,
        });
        assert_eq!(metrics.cache_answer_hits.get(), 1);
        assert_eq!(metrics.cache_program_hits.get(), 2);
        assert_eq!(metrics.cache_misses.get(), 3);
        assert_eq!(metrics.cache_invalidated.get(), 4);
        assert_eq!(metrics.cache_evictions.get(), 5);
    }
}
