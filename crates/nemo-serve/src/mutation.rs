//! Mutations: the events of the serving layer's write path.
//!
//! A [`Mutation`] is the normalized form of one network change, applied to
//! every backend representation in lockstep by
//! [`LiveNetwork::apply`](crate::LiveNetwork::apply) and appended to the
//! in-memory write-ahead log as a [`WalRecord`]. The raw material usually
//! comes from [`trafficgen::stream`]'s timestamped event streams via
//! [`Mutation::from_event`].

use netgraph::AttrValue;
use trafficgen::{Flow, NetEvent};

/// Monotonically increasing state version: epoch `N` is the state after the
/// first `N` WAL records. Epoch 0 is the freshly exported workload.
pub type Epoch = u64;

/// One normalized network change.
#[derive(Debug, Clone, PartialEq)]
pub enum Mutation {
    /// Add an endpoint node (with its precomputed prefix attributes).
    AddNode {
        /// Node id (dotted address).
        id: String,
        /// The /16 prefix attribute.
        prefix16: String,
        /// The /24 prefix attribute.
        prefix24: String,
    },
    /// Add a flow edge between two *existing* endpoints that are not
    /// already connected.
    AddEdge {
        /// Source endpoint id.
        source: String,
        /// Target endpoint id.
        target: String,
        /// Bytes transferred.
        bytes: i64,
        /// Connections observed.
        connections: i64,
        /// Packets transferred.
        packets: i64,
    },
    /// Overwrite the weights of an existing flow edge (re-measured volume).
    SetFlow {
        /// Source endpoint id.
        source: String,
        /// Target endpoint id.
        target: String,
        /// New byte count.
        bytes: i64,
        /// New connection count.
        connections: i64,
        /// New packet count.
        packets: i64,
    },
    /// Set one attribute on an existing node. The property graph always
    /// stores the attribute; the tabular backends mirror it only when a
    /// column of that name exists in the node schema (`label`, `color`).
    SetNodeAttr {
        /// Node id.
        id: String,
        /// Attribute name.
        key: String,
        /// New value.
        value: AttrValue,
    },
    /// Remove an existing flow edge.
    RemoveEdge {
        /// Source endpoint id.
        source: String,
        /// Target endpoint id.
        target: String,
    },
}

fn flow_edge(flow: &Flow) -> (String, String, i64, i64, i64) {
    (
        flow.source.to_string_dotted(),
        flow.target.to_string_dotted(),
        flow.bytes as i64,
        flow.connections as i64,
        flow.packets as i64,
    )
}

impl Mutation {
    /// Normalizes a [`trafficgen`] stream event into a mutation.
    pub fn from_event(event: &NetEvent) -> Mutation {
        match event {
            NetEvent::NewEndpoint { endpoint } => Mutation::AddNode {
                id: endpoint.to_string_dotted(),
                prefix16: endpoint.prefix(2),
                prefix24: endpoint.prefix(3),
            },
            NetEvent::NewFlow { flow } => {
                let (source, target, bytes, connections, packets) = flow_edge(flow);
                Mutation::AddEdge {
                    source,
                    target,
                    bytes,
                    connections,
                    packets,
                }
            }
            NetEvent::AdjustFlow { flow } => {
                let (source, target, bytes, connections, packets) = flow_edge(flow);
                Mutation::SetFlow {
                    source,
                    target,
                    bytes,
                    connections,
                    packets,
                }
            }
            NetEvent::DropFlow { source, target } => Mutation::RemoveEdge {
                source: source.to_string_dotted(),
                target: target.to_string_dotted(),
            },
            NetEvent::Relabel { endpoint, label } => Mutation::SetNodeAttr {
                id: endpoint.to_string_dotted(),
                key: "label".to_string(),
                value: AttrValue::Str(label.as_str().into()),
            },
        }
    }

    /// One-line rendering for transcripts and logs.
    pub fn describe(&self) -> String {
        match self {
            Mutation::AddNode { id, prefix16, .. } => format!("add-node {id} ({prefix16})"),
            Mutation::AddEdge {
                source,
                target,
                bytes,
                ..
            } => format!("add-edge {source}->{target} bytes={bytes}"),
            Mutation::SetFlow {
                source,
                target,
                bytes,
                ..
            } => format!("set-flow {source}->{target} bytes={bytes}"),
            Mutation::SetNodeAttr { id, key, value } => format!("set-attr {id} {key}={value}"),
            Mutation::RemoveEdge { source, target } => format!("remove-edge {source}->{target}"),
        }
    }
}

/// One entry of the in-memory write-ahead log: the mutation, the epoch it
/// produced, and the (synthetic) timestamp at which it was observed.
#[derive(Debug, Clone, PartialEq)]
pub struct WalRecord {
    /// The epoch the state reached *after* this mutation was applied
    /// (1-based; the log's epochs are contiguous).
    pub epoch: Epoch,
    /// Stream timestamp in milliseconds.
    pub at_ms: u64,
    /// The mutation itself.
    pub mutation: Mutation,
}

#[cfg(test)]
mod tests {
    use super::*;
    use trafficgen::Ipv4;

    #[test]
    fn events_normalize_to_mutations() {
        let a = Ipv4::new(10, 0, 0, 1);
        let b = Ipv4::new(10, 0, 0, 2);
        let flow = Flow {
            source: a,
            target: b,
            bytes: 100,
            connections: 2,
            packets: 5,
        };
        assert_eq!(
            Mutation::from_event(&NetEvent::NewFlow { flow: flow.clone() }),
            Mutation::AddEdge {
                source: "10.0.0.1".into(),
                target: "10.0.0.2".into(),
                bytes: 100,
                connections: 2,
                packets: 5,
            }
        );
        assert!(matches!(
            Mutation::from_event(&NetEvent::AdjustFlow { flow }),
            Mutation::SetFlow { .. }
        ));
        let relabel = Mutation::from_event(&NetEvent::Relabel {
            endpoint: a,
            label: "app:web".into(),
        });
        assert_eq!(
            relabel,
            Mutation::SetNodeAttr {
                id: "10.0.0.1".into(),
                key: "label".into(),
                value: AttrValue::Str("app:web".into()),
            }
        );
        assert!(relabel.describe().contains("label=app:web"));
        let node = Mutation::from_event(&NetEvent::NewEndpoint {
            endpoint: Ipv4::new(203, 0, 0, 1),
        });
        assert_eq!(
            node,
            Mutation::AddNode {
                id: "203.0.0.1".into(),
                prefix16: "203.0".into(),
                prefix24: "203.0.0".into(),
            }
        );
    }
}
