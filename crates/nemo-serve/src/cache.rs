//! The compiled-program / answer cache — the serving loop's headline
//! throughput win.
//!
//! Two levels, both keyed by `(query text, backend)`:
//!
//! * **Programs** — the code the LLM wrote for a query. The NL→code
//!   mapping does not depend on network state, so programs survive
//!   mutations: after the first request, no query ever pays for the LLM
//!   again.
//! * **Answers** — the rendered outcome of running a program, stamped with
//!   the epoch it was computed at. A mutation bumps the epoch and thereby
//!   invalidates every cached answer (the stale entry is dropped on next
//!   lookup); the cached *program* is re-executed against the current
//!   state instead, skipping the LLM and the prompt entirely.
//!
//! Only the answer *value* and its pre-rendered text are retained — the
//! post-execution network state is dropped at insertion, so a long-lived
//! cache never pins whole network copies.

use crate::mutation::Epoch;
use nemo_core::{Backend, Outcome, OutputValue};
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

/// How a query request was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// Answer cache hit at the current epoch: no LLM, no compile, no
    /// execution.
    AnswerHit,
    /// Program cache hit: the stored program was re-executed against the
    /// current state (the answer cache was stale or empty).
    ProgramHit,
    /// Full miss: prompt → LLM → sandbox.
    Miss,
}

impl CacheOutcome {
    /// Short transcript tag.
    pub fn tag(&self) -> &'static str {
        match self {
            CacheOutcome::AnswerHit => "hit",
            CacheOutcome::ProgramHit => "code",
            CacheOutcome::Miss => "miss",
        }
    }
}

/// Cache hit/miss counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Answer-cache hits (current epoch).
    pub answer_hits: u64,
    /// Program-cache hits (answer stale or absent).
    pub program_hits: u64,
    /// Full misses.
    pub misses: u64,
    /// Stale answers evicted by epoch invalidation.
    pub invalidated: u64,
    /// Programs evicted: FIFO displacement at capacity, plus explicit
    /// [`ProgramCache::evict_program`] drops of failing programs.
    pub evictions: u64,
}

struct CachedAnswer {
    epoch: Epoch,
    /// The answer value; `None` for a negatively cached error reply (the
    /// request failed at this epoch; retried only after the next mutation
    /// invalidates it).
    value: Option<Arc<OutputValue>>,
    /// Pre-rendered answer text, so a hit does not re-render (table
    /// outcomes render in O(rows)).
    rendered: Arc<str>,
}

/// What a lookup found.
pub enum Lookup {
    /// A current-epoch answer: the value (`None` for a negatively cached
    /// error) and its pre-rendered text, both shared — an answer hit
    /// allocates nothing but refcounts.
    Answer(Option<Arc<OutputValue>>, Arc<str>),
    /// A program to re-execute.
    Program(String),
    /// Nothing cached.
    Miss,
}

/// The two-level cache. Both levels nest by backend first so lookups
/// probe with the borrowed query text — no per-request key allocation.
#[derive(Default)]
pub struct ProgramCache {
    programs: HashMap<Backend, HashMap<String, String>>,
    answers: HashMap<Backend, HashMap<String, CachedAnswer>>,
    /// Program keys in insertion order — the deterministic eviction queue
    /// when `capacity` bounds the program level.
    order: VecDeque<(Backend, String)>,
    /// Maximum stored programs across all backends; 0 is unbounded.
    capacity: usize,
    stats: CacheStats,
}

impl ProgramCache {
    /// An empty, unbounded cache.
    pub fn new() -> Self {
        ProgramCache::default()
    }

    /// An empty cache holding at most `capacity` programs (0 = unbounded).
    /// When full, the oldest-**inserted** program is evicted first — FIFO,
    /// not LRU, because eviction order must not depend on the query
    /// arrival interleaving if transcripts are to stay deterministic.
    pub fn with_capacity(capacity: usize) -> Self {
        ProgramCache {
            capacity,
            ..ProgramCache::default()
        }
    }

    /// Looks up a query at the current epoch, maintaining hit/miss/eviction
    /// counters. A stale answer is evicted here; the program level is
    /// consulted next.
    pub fn lookup(&mut self, query: &str, backend: Backend, epoch: Epoch) -> Lookup {
        if let Some(per_backend) = self.answers.get_mut(&backend) {
            if let Some(cached) = per_backend.get(query) {
                if cached.epoch == epoch {
                    self.stats.answer_hits += 1;
                    return Lookup::Answer(cached.value.clone(), Arc::clone(&cached.rendered));
                }
                per_backend.remove(query);
                self.stats.invalidated += 1;
            }
        }
        if let Some(program) = self.programs.get(&backend).and_then(|m| m.get(query)) {
            self.stats.program_hits += 1;
            return Lookup::Program(program.clone());
        }
        self.stats.misses += 1;
        Lookup::Miss
    }

    /// Stores the program the LLM wrote for a query, evicting the
    /// oldest-inserted program first when the cache is at capacity.
    pub fn insert_program(&mut self, query: &str, backend: Backend, program: String) {
        let fresh = self
            .programs
            .entry(backend)
            .or_default()
            .insert(query.to_string(), program)
            .is_none();
        if fresh {
            self.order.push_back((backend, query.to_string()));
            if self.capacity > 0 && self.order.len() > self.capacity {
                if let Some((old_backend, old_query)) = self.order.pop_front() {
                    if let Some(per_backend) = self.programs.get_mut(&old_backend) {
                        per_backend.remove(&old_query);
                        self.stats.evictions += 1;
                    }
                }
            }
        }
    }

    /// Stores an answer computed at `epoch`, pre-rendering its reply text
    /// and dropping the post-execution state.
    pub fn insert_answer(&mut self, query: &str, backend: Backend, epoch: Epoch, outcome: Outcome) {
        let rendered: Arc<str> = outcome.value.render().into();
        self.answers.entry(backend).or_default().insert(
            query.to_string(),
            CachedAnswer {
                epoch,
                value: Some(Arc::new(outcome.value)),
                rendered,
            },
        );
    }

    /// Negatively caches an error reply at `epoch`: the same request at the
    /// same state serves the same error without re-running anything; the
    /// next mutation invalidates it and the request is retried for real.
    pub fn insert_error(&mut self, query: &str, backend: Backend, epoch: Epoch, rendered: &str) {
        self.answers.entry(backend).or_default().insert(
            query.to_string(),
            CachedAnswer {
                epoch,
                value: None,
                rendered: rendered.into(),
            },
        );
    }

    /// Drops a cached program. Used when a stored program stops executing
    /// cleanly against the current state: keeping it would replay the same
    /// failure forever, whereas evicting makes the next request after
    /// invalidation a full miss — a real retry through the model.
    pub fn evict_program(&mut self, query: &str, backend: Backend) {
        if let Some(per_backend) = self.programs.get_mut(&backend) {
            if per_backend.remove(query).is_some() {
                self.order.retain(|(b, q)| !(*b == backend && q == query));
                self.stats.evictions += 1;
            }
        }
    }

    /// The cached program for a query, if any.
    pub fn program(&self, query: &str, backend: Backend) -> Option<&str> {
        self.programs
            .get(&backend)
            .and_then(|m| m.get(query))
            .map(String::as_str)
    }

    /// The counters so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nemo_core::{NetworkState, ScriptValue};
    use netgraph::Graph;

    fn outcome(n: i64) -> Outcome {
        Outcome {
            value: OutputValue::Script(ScriptValue::Int(n)),
            state: NetworkState::Graph(Graph::directed()),
            printed: Vec::new(),
        }
    }

    #[test]
    fn answers_invalidate_by_epoch_programs_survive() {
        let mut cache = ProgramCache::new();
        assert!(matches!(cache.lookup("q", Backend::Sql, 0), Lookup::Miss));
        cache.insert_program("q", Backend::Sql, "SELECT 1".to_string());
        cache.insert_answer("q", Backend::Sql, 0, outcome(1));
        match cache.lookup("q", Backend::Sql, 0) {
            Lookup::Answer(value, rendered) => {
                assert!(value.unwrap().approx_eq(&outcome(1).value));
                assert_eq!(&*rendered, "1");
            }
            _ => panic!("expected answer hit"),
        }
        // Epoch moved: the answer is stale, the program still serves.
        match cache.lookup("q", Backend::Sql, 3) {
            Lookup::Program(p) => assert_eq!(p, "SELECT 1"),
            _ => panic!("expected program hit"),
        }
        // Backends are separate key spaces.
        assert!(matches!(
            cache.lookup("q", Backend::Pandas, 3),
            Lookup::Miss
        ));
        let stats = cache.stats();
        assert_eq!(stats.answer_hits, 1);
        assert_eq!(stats.program_hits, 1);
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.invalidated, 1);
        assert_eq!(cache.program("q", Backend::Sql), Some("SELECT 1"));
    }

    #[test]
    fn errors_are_negatively_cached_per_epoch() {
        let mut cache = ProgramCache::new();
        cache.insert_error("q", Backend::Sql, 2, "error: no such column");
        match cache.lookup("q", Backend::Sql, 2) {
            Lookup::Answer(value, rendered) => {
                assert!(value.is_none());
                assert_eq!(&*rendered, "error: no such column");
            }
            _ => panic!("expected negative answer hit"),
        }
        // The next epoch invalidates the error; with no program cached the
        // request becomes a full miss (a real retry).
        assert!(matches!(cache.lookup("q", Backend::Sql, 3), Lookup::Miss));
        assert_eq!(cache.stats().invalidated, 1);
    }

    #[test]
    fn bounded_caches_evict_the_oldest_program_first() {
        let mut cache = ProgramCache::with_capacity(2);
        cache.insert_program("a", Backend::Sql, "A".to_string());
        cache.insert_program("b", Backend::Sql, "B".to_string());
        // Re-inserting an existing key must not count as a new entry.
        cache.insert_program("a", Backend::Sql, "A2".to_string());
        cache.insert_program("c", Backend::Sql, "C".to_string());
        // "a" was the oldest *insertion*; it goes first despite the update.
        assert_eq!(cache.program("a", Backend::Sql), None);
        assert_eq!(cache.program("b", Backend::Sql), Some("B"));
        assert_eq!(cache.program("c", Backend::Sql), Some("C"));
        assert_eq!(cache.stats().evictions, 1, "FIFO displacement counts");
        // Manual eviction frees a slot rather than leaking a ghost entry.
        cache.evict_program("b", Backend::Sql);
        assert_eq!(cache.stats().evictions, 2, "explicit eviction counts");
        cache.insert_program("d", Backend::Sql, "D".to_string());
        assert_eq!(cache.program("c", Backend::Sql), Some("C"));
        assert_eq!(cache.program("d", Backend::Sql), Some("D"));
        assert_eq!(cache.stats().evictions, 2);
    }
}
