//! Sharding semantics, end to end: any interleaving of per-shard applies
//! yields a consistent cut (the merged view equals the unsharded state at
//! the same global epoch), transcripts are invariant under the shard
//! count, and per-shard crash/resume — including jagged cuts where the
//! shards die at different local epochs — reconstructs the uninterrupted
//! transcript byte for byte.

use nemo_serve::durability::{run_sharded, DurabilityConfig};
use nemo_serve::snapshot::write_snapshot;
use nemo_serve::{FsyncPolicy, LiveNetwork, Mutation, PersistOptions, ShardedNetwork};
use proptest::prelude::*;
use std::path::PathBuf;
use trafficgen::{evolve, generate, StreamConfig, TimedEvent, TrafficConfig};

fn base_workload() -> trafficgen::TrafficWorkload {
    generate(&TrafficConfig {
        nodes: 16,
        edges: 22,
        prefixes: 2,
        seed: 3,
    })
}

fn stream(events: usize, seed: u64) -> Vec<TimedEvent> {
    evolve(&base_workload(), &StreamConfig { events, seed })
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("nemo-sharding-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn tiny(seed: u64) -> DurabilityConfig {
    DurabilityConfig {
        traffic: TrafficConfig {
            nodes: 14,
            edges: 18,
            prefixes: 2,
            seed: 7,
        },
        clients: 3,
        events: 20,
        queries: 2,
        seed,
        options: PersistOptions {
            fsync: FsyncPolicy::Never, // tests: speed over platters
            segment_max_bytes: 2048,
            snapshot_every_bytes: 0,
            snapshot_every_epochs: 8,
            keep_snapshots: 2,
            ..PersistOptions::default()
        },
    }
}

proptest! {
    /// Any cross-shard interleaving that preserves each shard's own order
    /// reaches a consistent cut: after applying all records with global
    /// epoch `<= g` (in a seed-chosen interleaving), the epoch vector sums
    /// to `g`, the global epoch is `g`, and the merged view is
    /// snapshot-byte-equal to an unsharded network that applied the same
    /// prefix in order.
    #[test]
    fn interleaved_applies_reach_a_consistent_cut(
        seed in 0u64..200,
        cut in 1usize..30,
        shards in 2u32..5,
    ) {
        let events = stream(30, 5);
        let base = LiveNetwork::from_workload(&base_workload());

        // The unsharded reference at global epoch `cut`.
        let mut reference = base.clone();
        for timed in &events[..cut] {
            reference.apply_event(timed).unwrap();
        }

        // Queue each record (with its global epoch) at its owner shard.
        let mut net = ShardedNetwork::from_live(&base, shards).unwrap();
        let mut queues: Vec<std::collections::VecDeque<(u64, TimedEvent)>> =
            vec![Default::default(); shards as usize];
        for (i, timed) in events[..cut].iter().enumerate() {
            let mutation = Mutation::from_event(&timed.event);
            queues[net.route(&mutation) as usize].push_back((i as u64 + 1, timed.clone()));
        }
        // Drain the queues in a seed-chosen cross-shard interleaving.
        let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).max(1);
        while queues.iter().any(|q| !q.is_empty()) {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let nonempty: Vec<usize> = (0..queues.len())
                .filter(|&k| !queues[k].is_empty())
                .collect();
            let k = nonempty[(state as usize) % nonempty.len()];
            let (global, timed) = queues[k].pop_front().unwrap();
            net.apply_at(global, timed.at_ms, Mutation::from_event(&timed.event))
                .unwrap();
        }

        prop_assert_eq!(net.global_epoch(), cut as u64);
        prop_assert_eq!(net.epoch_vector().iter().sum::<u64>(), cut as u64);
        prop_assert_eq!(write_snapshot(&net.merged()), write_snapshot(&reference));
    }
}

#[test]
fn sharded_transcripts_are_invariant_under_shards_and_threads() {
    let config = tiny(31);
    let dir_one = temp_dir("inv-1");
    let (one, crashed) = run_sharded(&config, &dir_one, 1, 1, None).unwrap();
    assert!(!crashed);
    assert!(one.last().unwrap().starts_with("final epoch="));
    for (shards, threads) in [(2u32, 1usize), (4, 1), (4, 2)] {
        let dir = temp_dir(&format!("inv-{shards}-{threads}"));
        let (lines, crashed) = run_sharded(&config, &dir, shards, threads, None).unwrap();
        assert!(!crashed);
        assert_eq!(lines, one, "shards={shards} threads={threads}");
        std::fs::remove_dir_all(&dir).unwrap();
    }
    std::fs::remove_dir_all(&dir_one).unwrap();
}

#[test]
fn sharded_crash_then_resume_matches_uninterrupted() {
    let config = tiny(32);
    let full_dir = temp_dir("crash-full");
    let (uninterrupted, crashed) = run_sharded(&config, &full_dir, 3, 2, None).unwrap();
    assert!(!crashed);

    let crash_dir = temp_dir("crash-cut");
    let (partial, crashed) = run_sharded(&config, &crash_dir, 3, 2, Some(7)).unwrap();
    assert!(crashed);
    assert!(partial.len() < uninterrupted.len());
    // Resume on the same stores: the jagged per-shard recovery plus the
    // deterministic re-walk reconstructs the full transcript exactly.
    let (resumed, crashed) = run_sharded(&config, &crash_dir, 3, 2, None).unwrap();
    assert!(!crashed);
    assert_eq!(resumed, uninterrupted);

    // Resuming a completed run is a no-op that regenerates the same
    // transcript from disk state alone.
    let (again, _) = run_sharded(&config, &full_dir, 3, 1, None).unwrap();
    assert_eq!(again, uninterrupted);
    for dir in [full_dir, crash_dir] {
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

#[test]
fn torn_tails_on_individual_shards_recover_and_resume() {
    // Complete a sharded run, then tear the tail off every shard's newest
    // WAL segment at a different byte count — the jaggedest possible cut.
    // Recovery must truncate each torn record independently and the resume
    // must still reproduce the uninterrupted transcript.
    let config = tiny(33);
    let dir = temp_dir("torn");
    let (uninterrupted, _) = run_sharded(&config, &dir, 3, 1, None).unwrap();
    for (k, tear) in [(0u32, 1u64), (1, 3), (2, 7)] {
        let shard_dir = dir.join(format!("shard-{k}"));
        let mut segments: Vec<PathBuf> = std::fs::read_dir(&shard_dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .filter(|p| {
                p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with("wal-"))
            })
            .collect();
        segments.sort();
        let newest = segments.last().expect("every shard has a segment");
        let len = std::fs::metadata(newest).unwrap().len();
        if len > tear {
            let file = std::fs::OpenOptions::new()
                .write(true)
                .open(newest)
                .unwrap();
            file.set_len(len - tear).unwrap();
        }
    }
    let (resumed, crashed) = run_sharded(&config, &dir, 3, 2, None).unwrap();
    assert!(!crashed);
    assert_eq!(resumed, uninterrupted);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn group_commit_runs_match_every_record_runs() {
    // The commit policy changes *when* bytes hit the platter, never what
    // the serving layer computes: transcripts under GroupCommit equal the
    // EveryRecord transcripts, and the stores recover identically.
    let strict = tiny(34);
    let grouped = DurabilityConfig {
        options: PersistOptions {
            fsync: FsyncPolicy::GroupCommit {
                max_batch: 8,
                max_wait_micros: 200,
            },
            ..strict.options.clone()
        },
        ..strict.clone()
    };
    let strict_dir = temp_dir("gc-strict");
    let grouped_dir = temp_dir("gc-grouped");
    let (a, _) = run_sharded(&strict, &strict_dir, 2, 1, None).unwrap();
    let (b, _) = run_sharded(&grouped, &grouped_dir, 2, 1, None).unwrap();
    assert_eq!(a, b);
    // Re-open the group-commit stores: recovery sees the same state.
    let (recovered, crashed) = run_sharded(&grouped, &grouped_dir, 2, 1, None).unwrap();
    assert!(!crashed);
    assert_eq!(recovered, a);
    for dir in [strict_dir, grouped_dir] {
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
