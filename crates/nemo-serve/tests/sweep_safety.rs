//! Sweep safety, randomized: under arbitrary interleavings of appends,
//! full/delta snapshot installs, budget-limited sweeps, and crash-reopens,
//! [`Store::sweep`] never deletes a snapshot or WAL segment that replay
//! from the oldest retained snapshot still needs. After every step the
//! store must satisfy: every retained snapshot document is readable, every
//! retained delta still has its base in the manifest, and replaying from
//! the oldest retained snapshot epoch reproduces exactly the appended
//! records above it, all the way to the tip.
//!
//! The proptest lives in nemo-serve (nemo-store carries no dev-deps) but
//! drives a raw [`Store`] directly — the serving layer is not involved.

use nemo_store::{FsyncPolicy, Store, StoreConfig};
use proptest::prelude::*;
use std::path::{Path, PathBuf};

fn temp_root(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("nemo-sweep-safety-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn config() -> StoreConfig {
    StoreConfig {
        magic: "nemo-wal/v1".to_string(),
        fsync: FsyncPolicy::Never, // tests: speed over platters
        segment_max_bytes: 96,     // tiny segments: sweeps have many targets
        snapshot_every_bytes: 0,
        snapshot_every_epochs: 0,
        keep_snapshots: 2,
    }
}

/// Simulates a kill: clones whatever is on disk into a fresh directory,
/// file by file, without closing the original store (its buffers were
/// flushed by an explicit `sync`, matching a kill right after a batch
/// boundary — the torn-write cases are nemo-store's own kill-step tests).
fn clone_dir(from: &Path, to: &Path) {
    std::fs::create_dir_all(to).expect("create incarnation dir");
    for entry in std::fs::read_dir(from).expect("read store dir") {
        let entry = entry.expect("dir entry");
        if entry.file_type().expect("file type").is_file() {
            std::fs::copy(entry.path(), to.join(entry.file_name())).expect("copy store file");
        }
    }
}

/// Everything the store must still be able to prove after any step.
fn check_invariants(store: &Store, appended: &[(u64, Vec<u8>)], context: &str) {
    let metas = store.snapshot_metas().to_vec();
    // Every retained snapshot document must still be readable, and every
    // retained delta must still find its base in the manifest (sweeping a
    // base out from under a retained delta would orphan the chain).
    for meta in &metas {
        let doc = store
            .read_snapshot(meta.epoch)
            .unwrap_or_else(|e| panic!("{context}: snapshot {} unreadable: {e}", meta.epoch));
        assert!(
            !doc.is_empty(),
            "{context}: snapshot {} is empty",
            meta.epoch
        );
        if let Some(base) = meta.base {
            assert!(
                metas.iter().any(|m| m.epoch == base),
                "{context}: delta snapshot {} lost its base {base}",
                meta.epoch
            );
        }
    }
    // Replay from the oldest retained snapshot must reach the tip with
    // exactly the records appended above it — no swept-away segment may
    // leave a hole.
    let from = metas.first().map(|m| m.epoch).unwrap_or(0);
    let replayed = store
        .replay(from)
        .unwrap_or_else(|e| panic!("{context}: replay from {from} failed: {e}"));
    let expected: Vec<(u64, Vec<u8>)> = appended
        .iter()
        .filter(|(epoch, _)| *epoch > from)
        .cloned()
        .collect();
    assert_eq!(
        replayed, expected,
        "{context}: replay from {from} diverges from the appended record log"
    );
    assert_eq!(
        store.last_epoch(),
        appended.last().map(|(e, _)| *e),
        "{context}: tip epoch diverges"
    );
}

proptest! {
    /// Random install/append/sweep/crash interleavings: sweep never
    /// deletes a segment or snapshot that replay from the oldest retained
    /// snapshot still needs.
    #[test]
    fn sweep_never_strands_recovery(
        seed in 0u64..1_000_000,
        ops in proptest::collection::vec((0u8..=9, 0u8..=255), 4..48),
    ) {
        let root = temp_root(&format!("{seed}"));
        let mut incarnation = 0usize;
        let dir = root.join(format!("inc{incarnation}"));
        let (mut store, _) = Store::open(&dir, config()).expect("open fresh store");

        let mut appended: Vec<(u64, Vec<u8>)> = Vec::new();
        let mut next_epoch = 1u64;

        for (step, (op, arg)) in ops.iter().copied().enumerate() {
            let context = format!("seed {seed}, step {step} (op {op}, arg {arg})");
            match op {
                // Append: the most common op, so chains of WAL build up
                // between snapshots and sweeps have segments to cover.
                0..=4 => {
                    let payload = format!("record {next_epoch} arg {arg}").into_bytes();
                    store.append(next_epoch, &payload).expect("append");
                    appended.push((next_epoch, payload));
                    next_epoch += 1;
                }
                // Install a snapshot at the tip — a delta on the newest
                // snapshot when one exists and the arg says so, else full.
                5 | 6 => {
                    let Some(tip) = store.last_epoch() else { continue };
                    let newest = store.snapshot_metas().last().map(|m| m.epoch);
                    if newest.is_some_and(|n| n >= tip) {
                        continue; // nothing appended since the last install
                    }
                    let doc = format!("state at {tip} arg {arg}").into_bytes();
                    match newest {
                        Some(base) if arg % 3 != 0 => store
                            .install_delta_snapshot(tip, base, &doc)
                            .expect("install delta snapshot"),
                        _ => store.install_snapshot(tip, &doc).expect("install full snapshot"),
                    }
                }
                // Sweep with a small random budget — most sweeps stop
                // mid-plan, exactly the partial state that must stay safe.
                7 | 8 => {
                    let budget = 1 + (arg as usize % 3);
                    store.sweep(budget).expect("sweep");
                }
                // Crash: clone the on-disk state into a fresh directory
                // and reopen there; a half-executed sweep plan must be
                // recomputable from what survived.
                _ => {
                    store.sync().expect("sync before kill");
                    incarnation += 1;
                    let next_dir = root.join(format!("inc{incarnation}"));
                    clone_dir(store.dir(), &next_dir);
                    let (reopened, _report) =
                        Store::open(&next_dir, config()).expect("reopen after kill");
                    store = reopened;
                }
            }
            check_invariants(&store, &appended, &context);
        }

        // A final unbounded sweep must drain the plan completely and leave
        // the same invariants standing.
        store.sweep(usize::MAX).expect("final sweep");
        prop_assert_eq!(store.sweep_plan().removals(), 0);
        check_invariants(&store, &appended, &format!("seed {seed}, final sweep"));

        let _ = std::fs::remove_dir_all(&root);
    }
}
