//! Randomized fault scripts: the property-based twin of
//! `fault_injection.rs`'s exhaustive sweep (and of `sweep_safety.rs`'s
//! random op interleavings). A random workload shape (stream length,
//! snapshot points, sweep budgets) meets a random single-shot fault
//! (kind × op index), and the durability contract must hold on every
//! combination:
//!
//! * a completed run ends in the canonical tip state, and reopening it
//!   recovers that exact state;
//! * a surfaced error is typed, non-retryable (retryable ones are
//!   absorbed within the serving layer's bounded retry), and never a
//!   panic;
//! * reopening after any fault recovers an exact canonical epoch prefix
//!   that contains every acked record (at most one unacked in-flight
//!   record may additionally survive), with every retained snapshot
//!   readable.

use nemo_serve::persist::{FsyncPolicy, PersistOptions, Persistence};
use nemo_serve::{LiveNetwork, ServeError};
use nemo_store::{FaultFs, FaultKind, RealFs, Vfs};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::Arc;
use trafficgen::{evolve, generate, StreamConfig, TrafficConfig};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("nemo-fault-script-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn options(vfs: Arc<dyn Vfs>) -> PersistOptions {
    PersistOptions {
        fsync: FsyncPolicy::EveryRecord,
        segment_max_bytes: 256,
        snapshot_every_bytes: 0,
        snapshot_every_epochs: 0,
        keep_snapshots: 2,
        vfs,
        ..PersistOptions::default()
    }
}

fn workload() -> trafficgen::TrafficWorkload {
    generate(&TrafficConfig {
        nodes: 10,
        edges: 12,
        prefixes: 2,
        seed: 8,
    })
}

proptest! {
    #[test]
    fn random_fault_scripts_never_lose_acked_data(
        seed in 0u64..100_000,
        events in 4usize..20,
        // Snapshot after roughly every `gap` events; `sweep_budget`
        // bounds each compaction step like the server's batch boundary.
        snapshot_gap in 2usize..8,
        sweep_budget in 1usize..12,
        fault_at in 0u64..220,
        kind_pick in 0usize..FaultKind::ALL.len(),
    ) {
        let kind = FaultKind::ALL[kind_pick];
        let w = workload();
        let stream = evolve(&w, &StreamConfig { events, seed });

        // Canonical in-memory states per epoch, for prefix comparison.
        let mut canon = LiveNetwork::from_workload(&w);
        let mut states = vec![canon.clone()];
        for event in &stream {
            canon.apply_event(event).expect("in-memory apply is faultless");
            states.push(canon.clone());
        }

        let dir = temp_dir(&format!("{}-{seed}-{fault_at}", kind.name()));
        let fault = Arc::new(FaultFs::new(kind, fault_at));
        let mut live = LiveNetwork::from_workload(&w);
        let mut acked = None;
        let mut error = None;
        match Persistence::create(&dir, &options(fault.clone()), &live) {
            Err(e) => error = Some(e),
            Ok(mut persistence) => {
                acked = Some(0u64);
                for (i, event) in stream.iter().enumerate() {
                    live.apply_event(event).expect("in-memory apply is faultless");
                    let record = live.wal().last().expect("apply appended").clone();
                    if let Err(e) = persistence.log(&record) {
                        error = Some(e);
                        break;
                    }
                    acked = Some(live.epoch());
                    if (i + 1) % snapshot_gap == 0 {
                        if let Err(e) = persistence
                            .force_snapshot(&live)
                            .and_then(|_| persistence.sweep(sweep_budget).map(|_| ()))
                        {
                            error = Some(e);
                            break;
                        }
                    }
                }
                if error.is_none() {
                    if let Err(e) = persistence.sync() {
                        error = Some(e);
                    }
                }
                if error.is_some() && persistence.store().poisoned().is_some() {
                    // A poisoned write path must reject further appends.
                    let next = live.wal().last().expect("stream is non-empty").clone();
                    prop_assert!(
                        persistence.log(&next).is_err(),
                        "poisoned store accepted an append"
                    );
                }
            }
        }

        if let Some(e) = &error {
            prop_assert!(
                fault.injection().is_some(),
                "error without an injected fault: {e}"
            );
            prop_assert!(
                matches!(e, ServeError::Store { .. }),
                "fault surfaced untyped: {e:?}"
            );
            prop_assert!(!e.retryable(), "a retryable error escaped the retry budget");
        } else if fault.injection().is_none() {
            // The fault never fired: plain completed run.
            prop_assert_eq!(acked, Some(events as u64));
        }

        // Reopen with the real filesystem: always recovers, to an exact
        // canonical prefix containing everything acked.
        let (recovered, _, report) = Persistence::recover_or_create(
            &dir,
            &options(Arc::new(RealFs)),
            || LiveNetwork::from_workload(&w),
        )
        .map_err(|e| format!("reopen after {} fault failed: {e}", kind.name()))?;
        prop_assert!(
            report.skipped_snapshots.is_empty(),
            "reopen skipped snapshots: {:?}",
            report.skipped_snapshots
        );
        let epoch = recovered.epoch();
        let floor = acked.unwrap_or(0);
        prop_assert!(epoch >= floor, "acked epoch {floor} lost, recovery reached {epoch}");
        prop_assert!(epoch <= floor + 1, "recovery reached {epoch}, acked only {floor}");
        prop_assert!(
            recovered == states[epoch as usize],
            "recovered state diverged from the canonical epoch-{epoch} prefix"
        );
        if error.is_none() {
            prop_assert_eq!(epoch, events as u64);
        }

        std::fs::remove_dir_all(&dir).unwrap();
    }
}
