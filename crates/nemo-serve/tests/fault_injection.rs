//! Deterministic fault injection, end to end: a scripted single-shot
//! filesystem fault (`nemo_store::FaultFs`) is swept across **every**
//! operation index of a fixed persistence workload, for every
//! [`FaultKind`] — the fault-space twin of `crash_recovery.rs`'s
//! truncation-offset sweep. At every (kind, op index) point one of three
//! things must happen, and nothing else:
//!
//! * **Absorbed** — the fault was retryable (the store rolled the
//!   operation back) and the serving layer's bounded retry made the run
//!   complete with a final state identical to the fault-free canonical
//!   run. All kinds except a failed fsync land here.
//! * **Surfaced** — the run stopped with a *typed* error carrying the
//!   failing operation and path; never a panic, never a silently wrong
//!   state. If the fault poisoned the store (a failed fsync over appended
//!   records — fsyncgate: the kernel may have dropped the dirty pages, so
//!   retrying would re-ack lost data), the next append must be rejected.
//! * **Not fired** — the index lies past the workload's last applicable
//!   operation; the run completes canonically.
//!
//! After a surfaced fault, reopening the directory with the real
//! filesystem must recover to an exact canonical epoch prefix that
//! contains **every acked record** (at most one unacked in-flight record
//! may additionally survive), with every retained snapshot readable.

use nemo_serve::persist::{FsyncPolicy, PersistOptions, Persistence};
use nemo_serve::{LiveNetwork, Mutation, ServeError, WalRecord};
use nemo_store::{FaultFs, FaultKind, RealFs, Vfs};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use trafficgen::{evolve, generate, StreamConfig, TimedEvent, TrafficConfig};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("nemo-fault-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn options(vfs: Arc<dyn Vfs>) -> PersistOptions {
    PersistOptions {
        // Every append carries its own commit fsync — the strictest
        // policy, and the one that makes "acked" mean "durable".
        fsync: FsyncPolicy::EveryRecord,
        // Tiny segments: the sweep crosses several rotation boundaries.
        segment_max_bytes: 256,
        snapshot_every_bytes: 0,
        snapshot_every_epochs: 0,
        keep_snapshots: 2,
        vfs,
        ..PersistOptions::default()
    }
}

fn workload() -> trafficgen::TrafficWorkload {
    generate(&TrafficConfig {
        nodes: 10,
        edges: 12,
        prefixes: 2,
        seed: 8,
    })
}

fn stream_len() -> usize {
    if std::env::var("NEMO_SMALL").is_ok() {
        10
    } else {
        18
    }
}

fn stream(events: usize) -> Vec<TimedEvent> {
    evolve(&workload(), &StreamConfig { events, seed: 11 })
}

/// Epochs at which the workload installs a snapshot (delta-aware) and then
/// runs a budgeted sweep — a quarter, half and three-quarters of the way
/// through, so installs, chains and compaction all sit inside the swept op
/// space.
fn snapshot_epochs(events: usize) -> Vec<u64> {
    let n = events as u64;
    vec![n / 4, n / 2, 3 * n / 4]
}

/// What one workload run under a given filesystem did.
struct Run {
    /// Highest epoch whose log (or genesis install) returned `Ok` —
    /// `None` when even `create` failed.
    acked: Option<u64>,
    error: Option<ServeError>,
    /// The store reported itself poisoned when the error surfaced.
    poisoned: bool,
    /// A post-poison append attempt was rejected (vacuously true when the
    /// store was not poisoned).
    post_poison_rejected: bool,
}

/// Drives the fixed workload through one fresh persistence directory:
/// create (genesis snapshot), then apply + log every stream event with a
/// delta-aware snapshot and a budgeted sweep at the fixed epochs, then a
/// final sync. Stops at the first error.
fn run_workload(dir: &Path, vfs: Arc<dyn Vfs>, events: &[TimedEvent], snaps: &[u64]) -> Run {
    let mut live = LiveNetwork::from_workload(&workload());
    let mut persistence = match Persistence::create(dir, &options(vfs), &live) {
        Ok(p) => p,
        Err(e) => {
            return Run {
                acked: None,
                error: Some(e),
                poisoned: false,
                post_poison_rejected: true,
            }
        }
    };
    let mut acked = 0u64;
    let fail = |persistence: &mut Persistence, acked: u64, e: ServeError| {
        let poisoned = persistence.store().poisoned().is_some();
        Run {
            acked: Some(acked),
            error: Some(e),
            poisoned,
            post_poison_rejected: !poisoned
                || persistence
                    .log(&WalRecord {
                        epoch: acked + 1,
                        at_ms: 0,
                        mutation: Mutation::AddNode {
                            id: "198.51.100.1".to_string(),
                            prefix16: "198.51".to_string(),
                            prefix24: "198.51.100".to_string(),
                        },
                    })
                    .is_err(),
        }
    };
    for event in events {
        live.apply_event(event)
            .expect("in-memory apply is faultless");
        let record = live.wal().last().expect("apply appended").clone();
        if let Err(e) = persistence.log(&record) {
            return fail(&mut persistence, acked, e);
        }
        acked = live.epoch();
        if snaps.contains(&live.epoch()) {
            if let Err(e) = persistence.force_snapshot(&live) {
                return fail(&mut persistence, acked, e);
            }
            if let Err(e) = persistence.sweep(8) {
                return fail(&mut persistence, acked, e);
            }
        }
    }
    if let Err(e) = persistence.sync() {
        return fail(&mut persistence, acked, e);
    }
    Run {
        acked: Some(acked),
        error: None,
        poisoned: persistence.store().poisoned().is_some(),
        post_poison_rejected: true,
    }
}

/// The fault-free run: canonical per-epoch states (`states[e]` = the live
/// state after epoch `e`) for prefix comparison.
fn canonical_states(events: &[TimedEvent]) -> Vec<LiveNetwork> {
    let mut live = LiveNetwork::from_workload(&workload());
    let mut states = vec![live.clone()];
    for event in events {
        live.apply_event(event)
            .expect("in-memory apply is faultless");
        states.push(live.clone());
    }
    states
}

/// Reopens a post-fault directory with the real filesystem and checks the
/// recovery contract: it succeeds, lands on an exact canonical prefix, and
/// that prefix contains every acked record (plus at most one in-flight).
fn verify_reopen(dir: &Path, states: &[LiveNetwork], acked: Option<u64>, context: &str) {
    let (recovered, _, report) =
        Persistence::recover_or_create(dir, &options(Arc::new(RealFs)), || {
            LiveNetwork::from_workload(&workload())
        })
        .unwrap_or_else(|e| panic!("{context}: reopen after fault failed: {e}"));
    assert!(
        report.skipped_snapshots.is_empty(),
        "{context}: reopen skipped snapshots: {:?}",
        report.skipped_snapshots
    );
    let epoch = recovered.epoch();
    let floor = acked.unwrap_or(0);
    assert!(
        epoch >= floor,
        "{context}: acked epoch {floor} lost — recovery reached only {epoch}"
    );
    assert!(
        epoch <= floor + 1,
        "{context}: recovery reached {epoch}, more than one record past acked {floor}"
    );
    assert!(
        (epoch as usize) < states.len(),
        "{context}: recovered epoch {epoch} is past the workload"
    );
    assert!(
        recovered == states[epoch as usize],
        "{context}: recovered state diverged from the canonical epoch-{epoch} prefix"
    );
}

/// The exhaustive sweep for one fault kind: every op index from 0 to the
/// calibrated op count (the fault armed past every op doubles as the
/// "never fires" case).
fn sweep_kind(kind: FaultKind) {
    let events = stream(stream_len());
    let snaps = snapshot_epochs(events.len());
    let states = canonical_states(&events);
    let tip = events.len() as u64;

    // Calibration: a disarmed injector counts the workload's op space.
    let calibrate_dir = temp_dir(&format!("calibrate-{}", kind.name()));
    let calibrate = Arc::new(FaultFs::new(kind, u64::MAX));
    let run = run_workload(&calibrate_dir, calibrate.clone(), &events, &snaps);
    assert!(run.error.is_none(), "disarmed run failed: {:?}", run.error);
    assert_eq!(run.acked, Some(tip));
    let op_count = calibrate.ops();
    assert!(op_count > 0, "calibration observed no filesystem ops");
    std::fs::remove_dir_all(&calibrate_dir).unwrap();

    let mut absorbed = 0u64;
    let mut surfaced = 0u64;
    for k in 0..=op_count {
        let context = format!("kind {} at op {k}", kind.name());
        let dir = temp_dir(&format!("{}-{k}", kind.name()));
        let fault = Arc::new(FaultFs::new(kind, k));
        let run = run_workload(&dir, fault.clone(), &events, &snaps);
        match &run.error {
            None => {
                // Absorbed or never fired: the run must be canonically
                // complete either way.
                assert_eq!(
                    run.acked,
                    Some(tip),
                    "{context}: short run without an error"
                );
                assert!(!run.poisoned, "{context}: clean run left a poisoned store");
                if fault.injection().is_some() {
                    absorbed += 1;
                }
            }
            Some(e) => {
                surfaced += 1;
                let fired = fault
                    .injection()
                    .unwrap_or_else(|| panic!("{context}: error without an injected fault: {e}"));
                // Typed, with op + path context from the injector's op —
                // never a panic (a panic would abort this test), never
                // retryable (those were absorbed within budget).
                assert!(
                    matches!(e, ServeError::Store { .. }),
                    "{context}: fault surfaced as {e:?} (injected: {fired})"
                );
                assert!(
                    !e.retryable(),
                    "{context}: a retryable error escaped the retry budget"
                );
                assert!(
                    run.post_poison_rejected,
                    "{context}: poisoned store accepted another append"
                );
                verify_reopen(&dir, &states, run.acked, &context);
            }
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
    // Every kind has at least one index where its fault actually fires;
    // only the fsync kind may surface (everything else is rolled back by
    // the store and absorbed by the serving layer's retry budget).
    assert!(
        absorbed + surfaced > 0,
        "fault for {} never fired",
        kind.name()
    );
    if kind != FaultKind::FailedFsync {
        assert_eq!(
            surfaced,
            0,
            "{}: a rolled-back fault kind surfaced instead of being retried",
            kind.name()
        );
    } else {
        assert!(surfaced > 0, "a failed fsync never surfaced");
    }
}

#[test]
fn enospc_swept_across_every_op_is_absorbed() {
    sweep_kind(FaultKind::Enospc);
}

#[test]
fn eio_swept_across_every_op_is_absorbed() {
    sweep_kind(FaultKind::Eio);
}

#[test]
fn short_write_swept_across_every_op_is_absorbed() {
    sweep_kind(FaultKind::ShortWrite);
}

#[test]
fn failed_fsync_swept_across_every_op_surfaces_or_degrades_never_loses_acked_data() {
    sweep_kind(FaultKind::FailedFsync);
}

#[test]
fn failed_rename_swept_across_every_op_is_absorbed() {
    sweep_kind(FaultKind::FailedRename);
}

#[test]
fn torn_rename_swept_across_every_op_is_absorbed() {
    sweep_kind(FaultKind::TornRename);
}

/// The op counter is a deterministic function of the workload: two
/// disarmed runs observe identical op counts, so a calibrated `fault_at`
/// targets the same operation on every execution.
#[test]
fn op_space_is_deterministic_across_runs() {
    let events = stream(6);
    let snaps = snapshot_epochs(events.len());
    let mut counts = Vec::new();
    for round in 0..2 {
        let dir = temp_dir(&format!("determinism-{round}"));
        let fault = Arc::new(FaultFs::new(FaultKind::Eio, u64::MAX));
        let run = run_workload(&dir, fault.clone(), &events, &snaps);
        assert!(run.error.is_none());
        counts.push(fault.ops());
        std::fs::remove_dir_all(&dir).unwrap();
    }
    assert_eq!(
        counts[0], counts[1],
        "op space drifted between identical runs"
    );
}
