//! Request-scoped trace trees, end to end.
//!
//! Three properties the flight recorder must hold under real serving
//! traffic, not just unit fixtures:
//!
//! * **Well-formedness** — every captured trace is a tree: exactly one
//!   root span, every `parent_id` resolves within the same trace, and a
//!   child's `[start, start+duration]` window nests inside its parent's
//!   (the tracer measures both ends on one trace-relative clock, so this
//!   is exact, not approximate). Checked by proptest over random
//!   workloads and shard counts, plus the `nemo-trace/v1` and Chrome
//!   `traceEvents` document validators.
//! * **Determinism** — the *logical skeleton* (span names, parent/child
//!   structure, per-request span counts, causal order; no ids, no
//!   timing) is a pure function of the request stream: byte-identical
//!   across shard counts, and multiset-identical across worker-pool
//!   thread counts when concurrent clients share one recorder.
//! * **Fault attribution** — a surfaced `FailedFsync` fault appears
//!   *inside* the owning request's trace as an error-tagged `store.fsync`
//!   span carrying the poison cause.

use nemo_bench::pool;
use nemo_core::{Backend, ScriptedLlm};
use nemo_obs::trace::Tracer;
use nemo_serve::{
    validate_chrome_doc, validate_trace_doc, FsyncPolicy, LiveNetwork, PersistOptions, Request,
    Response, ServeEvent, ServerBuilder, Session,
};
use nemo_store::{FaultFs, FaultKind, Vfs};
use netgraph::json::JsonValue;
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::Arc;
use trafficgen::{evolve, generate, NetEvent, StreamConfig, TimedEvent, TrafficConfig};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("nemo-trace-trees-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn scripted_session() -> Session<ScriptedLlm> {
    Session {
        client: 0,
        backend: Backend::NetworkX,
        llm: ScriptedLlm::new(
            "scripted",
            vec!["```graphscript\nresult = G.number_of_edges()\n```".to_string(); 8],
        ),
    }
}

/// Drives a fixed typed request mix — a mutation stream, a deliberate
/// conflict, repeated queries (miss, then hits), a sync, a stats and a
/// trace request — through a persisted `shards`-way server recording into
/// `tracer`. Returns the `Request::Trace` response document.
fn drive(shards: u32, tracer: &Tracer, tag: &str, seed: u64, events: usize) -> JsonValue {
    let dir = temp_dir(tag);
    let options = PersistOptions {
        fsync: FsyncPolicy::Never,
        tracer: tracer.clone(),
        ..PersistOptions::default()
    };
    let traffic = TrafficConfig {
        nodes: 12,
        edges: 16,
        prefixes: 2,
        seed,
    };
    let workload = generate(&traffic);
    let mut server = ServerBuilder::new()
        .shards(shards)
        .options(options)
        .persist_at(&dir)
        .build(
            LiveNetwork::from_workload(&workload),
            vec![scripted_session()],
        )
        .expect("persisted build");
    for timed in evolve(
        &workload,
        &StreamConfig {
            events,
            seed: seed + 1,
        },
    ) {
        server
            .handle(&Request::from_event(&ServeEvent::Mutate(timed)))
            .expect("conflict-free stream applies");
    }
    // A duplicate endpoint conflicts at every shard count: the rejected
    // request must still produce a complete (shard-invariant) trace.
    let dup = TimedEvent {
        at_ms: 99,
        event: NetEvent::NewEndpoint {
            endpoint: trafficgen::Ipv4::new(203, 0, 0, 200),
        },
    };
    for _ in 0..2 {
        server
            .handle(&Request::from_event(&ServeEvent::Mutate(dup.clone())))
            .expect("a conflict renders as a rejected response, not an error");
    }
    for _ in 0..2 {
        server
            .handle(&Request::Query {
                client: 0,
                query: "How many edges are there?".to_string(),
            })
            .expect("query");
    }
    server.handle(&Request::Sync).expect("sync");
    server.handle(&Request::Stats).expect("stats");
    let response = server
        .handle(&Request::Trace { last_n: 0 })
        .expect("trace request");
    std::fs::remove_dir_all(&dir).expect("cleanup");
    match response {
        Response::Trace { doc } => doc,
        other => panic!("trace request answered with {other:?}"),
    }
}

/// Every captured trace is a well-formed tree with exact interval
/// nesting.
fn assert_well_formed(tracer: &Tracer) {
    let traces = tracer.traces(0);
    assert!(!traces.is_empty(), "the drive captured traces");
    for trace in &traces {
        let roots = trace.spans.iter().filter(|s| s.parent_id.is_none()).count();
        assert_eq!(roots, 1, "trace {} has one root", trace.trace_id);
        for span in &trace.spans {
            let Some(parent_id) = span.parent_id else {
                continue;
            };
            let parent = trace
                .spans
                .iter()
                .find(|s| s.span_id == parent_id)
                .unwrap_or_else(|| {
                    panic!(
                        "trace {}: span {} parents missing span {parent_id}",
                        trace.trace_id, span.span_id
                    )
                });
            assert!(
                parent.start_micros <= span.start_micros,
                "child starts within its parent"
            );
            assert!(
                span.start_micros + span.duration_micros
                    <= parent.start_micros + parent.duration_micros,
                "child ends within its parent"
            );
        }
    }
}

proptest! {
    /// Random workloads at random shard counts: every trace the recorder
    /// captures is a well-formed tree, and both export documents
    /// validate.
    #[test]
    fn captured_traces_are_well_formed_trees(
        seed in 0u64..1000,
        events in 1usize..10,
        shard_pick in 0usize..3,
    ) {
        let shards = [1u32, 2, 4][shard_pick];
        let tracer = Tracer::new();
        tracer.enable(1024);
        let doc = drive(
            shards,
            &tracer,
            &format!("prop-{seed}-{events}-{shards}"),
            seed,
            events,
        );
        assert_well_formed(&tracer);
        validate_trace_doc(&doc).expect("served trace document validates");
        let full = JsonValue::parse(&tracer.to_doc(0)).expect("trace doc parses");
        validate_trace_doc(&full).expect("recorder document validates");
        let chrome = JsonValue::parse(&tracer.to_chrome(0)).expect("chrome doc parses");
        validate_chrome_doc(&chrome).expect("chrome export validates");
    }
}

#[test]
fn logical_skeletons_are_shard_invariant() {
    let skeletons_at = |shards: u32| {
        let tracer = Tracer::new();
        tracer.enable(1024);
        drive(shards, &tracer, &format!("shard{shards}"), 9, 10);
        assert_eq!(tracer.dropped(), 0, "the ring held the whole drive");
        tracer.logical_skeletons(0)
    };
    let baseline = skeletons_at(1);
    assert!(baseline.contains("request.mutate"));
    assert!(baseline.contains("mutate.route"));
    assert!(baseline.contains("wal.log"), "persisted writes log spans");
    assert!(baseline.contains("query.cache"));
    assert!(baseline.contains("request.sync"));
    assert!(baseline.contains("request.trace"));
    assert!(
        !baseline.contains("store.fsync"),
        "physical spans stay out of the skeleton"
    );
    for shards in [2u32, 4] {
        assert_eq!(
            skeletons_at(shards),
            baseline,
            "logical skeletons diverged at {shards} shards"
        );
    }
}

#[test]
fn logical_skeletons_are_thread_invariant() {
    // Three concurrent in-memory clients share one recorder, fanned out
    // over the deterministic worker pool. The *order* traces retire in is
    // scheduling-dependent, but the multiset of per-request skeletons is
    // not.
    let skeleton_multiset = |threads: usize| {
        let tracer = Tracer::new();
        tracer.enable(4096);
        let shared = tracer.clone();
        pool::run_indexed(3, threads, move |client| {
            let options = PersistOptions {
                tracer: shared.clone(),
                ..PersistOptions::default()
            };
            let traffic = TrafficConfig {
                nodes: 12,
                edges: 16,
                prefixes: 2,
                seed: 20 + client as u64,
            };
            let workload = generate(&traffic);
            let mut server = ServerBuilder::new()
                .options(options)
                .build(
                    LiveNetwork::from_workload(&workload),
                    vec![scripted_session()],
                )
                .expect("in-memory build");
            for timed in evolve(
                &workload,
                &StreamConfig {
                    events: 8,
                    seed: 30 + client as u64,
                },
            ) {
                server
                    .handle(&Request::from_event(&ServeEvent::Mutate(timed)))
                    .expect("stream applies");
            }
            server
                .handle(&Request::Query {
                    client: 0,
                    query: "How many edges are there?".to_string(),
                })
                .expect("query");
        });
        assert_eq!(tracer.dropped(), 0, "the ring held every client");
        let mut skeletons: Vec<String> = tracer
            .traces(0)
            .iter()
            .map(|t| t.logical_skeleton())
            .collect();
        skeletons.sort();
        skeletons
    };
    let single = skeleton_multiset(1);
    assert!(!single.is_empty());
    assert_eq!(
        skeleton_multiset(4),
        single,
        "skeleton multiset diverged across thread counts"
    );
}

#[test]
fn a_failed_fsync_is_error_tagged_inside_the_owning_request_trace() {
    let traffic = TrafficConfig {
        nodes: 10,
        edges: 12,
        prefixes: 2,
        seed: 8,
    };
    let stream = |workload| {
        evolve(
            &workload,
            &StreamConfig {
                events: 12,
                seed: 11,
            },
        )
    };
    // Calibration run: count the workload's total vfs operations so the
    // fault can be scripted mid-stream, past store creation.
    let calibrate = Arc::new(FaultFs::new(FaultKind::FailedFsync, u64::MAX));
    {
        let workload = generate(&traffic);
        let dir = temp_dir("fault-calibrate");
        let mut server = ServerBuilder::new()
            .options(PersistOptions {
                fsync: FsyncPolicy::EveryRecord,
                snapshot_every_bytes: 0,
                snapshot_every_epochs: 0,
                vfs: calibrate.clone() as Arc<dyn Vfs>,
                ..PersistOptions::default()
            })
            .persist_at(&dir)
            .build::<ScriptedLlm>(LiveNetwork::from_workload(&workload), Vec::new())
            .expect("persisted build");
        for timed in stream(workload) {
            server
                .handle(&Request::from_event(&ServeEvent::Mutate(timed)))
                .expect("fault-free stream applies");
        }
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }
    // Faulted run: with EveryRecord commits, the first fsync past the
    // midpoint sits under some mutation's append — fsyncgate poisons the
    // store and the failure must land inside that request's trace.
    let tracer = Tracer::new();
    tracer.enable(256);
    let workload = generate(&traffic);
    let dir = temp_dir("fault-trace");
    let mut server = ServerBuilder::new()
        .options(PersistOptions {
            fsync: FsyncPolicy::EveryRecord,
            snapshot_every_bytes: 0,
            snapshot_every_epochs: 0,
            vfs: Arc::new(FaultFs::new(FaultKind::FailedFsync, calibrate.ops() / 2)),
            tracer: tracer.clone(),
            ..PersistOptions::default()
        })
        .persist_at(&dir)
        .build::<ScriptedLlm>(LiveNetwork::from_workload(&workload), Vec::new())
        .expect("persisted build");
    let mut surfaced = false;
    for timed in stream(workload) {
        if server
            .handle(&Request::from_event(&ServeEvent::Mutate(timed)))
            .is_err()
        {
            surfaced = true;
            break;
        }
    }
    std::fs::remove_dir_all(&dir).expect("cleanup");
    assert!(surfaced, "the scripted fsync fault surfaces as an error");
    let traces = tracer.traces(0);
    let tagged: Vec<_> = traces
        .iter()
        .flat_map(|t| t.spans.iter().map(move |s| (t, s)))
        .filter(|(_, s)| s.error.is_some())
        .collect();
    assert!(
        !tagged.is_empty(),
        "the poison cause was tagged onto a span"
    );
    // The store tags the failing fsync span itself; the serving layer
    // additionally tags the request's innermost still-open span when it
    // flips to degraded. The precise attribution is the fsync one.
    let (trace, span) = *tagged
        .iter()
        .find(|(_, s)| s.name == "store.fsync")
        .expect("the tag lands on the failing fsync span itself");
    assert!(
        span.error.as_deref().unwrap_or_default().contains("fsync"),
        "the tag carries the poison cause: {:?}",
        span.error
    );
    assert_eq!(
        trace.spans[0].name, "request.mutate",
        "the error-tagged span sits inside the owning request's trace"
    );
    assert!(
        span.parent_id.is_some(),
        "the fsync span is a descendant, not the root"
    );
}
