//! Logical metrics are pure functions of the request stream: the
//! `nemo-metrics/v1` logical subset must be byte-identical across shard
//! counts and `NEMO_THREADS`-style worker counts, which is what licenses
//! asserting on it in CI while physical metrics (timings, cache layout,
//! fsyncs) float freely.

use nemo_core::{Backend, ScriptedLlm};
use nemo_obs::Registry;
use nemo_serve::durability::{run, DurabilityConfig};
use nemo_serve::{
    FsyncPolicy, LiveNetwork, PersistOptions, Request, ServeEvent, ServerBuilder, Session,
};
use trafficgen::{evolve, generate, NetEvent, StreamConfig, TimedEvent, TrafficConfig};

/// Drives one fixed request stream — mutations, a deliberate conflict,
/// queries, a stats request — through a `shards`-way server recording
/// into a fresh registry, and returns the logical subset of the final
/// metrics document.
fn logical_doc_at(shards: u32) -> String {
    let registry = Registry::new();
    let options = PersistOptions {
        registry: registry.clone(),
        ..PersistOptions::default()
    };
    let traffic = TrafficConfig {
        nodes: 12,
        edges: 16,
        prefixes: 2,
        seed: 9,
    };
    let workload = generate(&traffic);
    let mut server = ServerBuilder::new()
        .shards(shards)
        .options(options)
        .build(
            LiveNetwork::from_workload(&workload),
            vec![Session {
                client: 0,
                backend: Backend::NetworkX,
                llm: ScriptedLlm::new(
                    "scripted",
                    vec!["```graphscript\nresult = G.number_of_edges()\n```".to_string(); 4],
                ),
            }],
        )
        .expect("in-memory build");
    for timed in evolve(
        &workload,
        &StreamConfig {
            events: 10,
            seed: 5,
        },
    ) {
        server
            .handle(&Request::from_event(&ServeEvent::Mutate(timed)))
            .expect("conflict-free stream applies");
    }
    // A duplicate endpoint is a conflict at every shard count: it lands in
    // serve_mutations_rejected without consuming an epoch.
    let dup = TimedEvent {
        at_ms: 99,
        event: NetEvent::NewEndpoint {
            endpoint: trafficgen::Ipv4::new(203, 0, 0, 200),
        },
    };
    server
        .handle(&Request::from_event(&ServeEvent::Mutate(dup.clone())))
        .expect("first apply succeeds");
    server
        .handle(&Request::from_event(&ServeEvent::Mutate(dup)))
        .expect("a conflict renders as a rejected response, not an error");
    for _ in 0..2 {
        server
            .handle(&Request::Query {
                client: 0,
                query: "How many edges are there?".to_string(),
            })
            .expect("query");
    }
    // Stats samples the gauges (global epoch is logical) and embeds the
    // full document; we return only the logical subset.
    server.handle(&Request::Stats).expect("stats");
    registry.snapshot().logical_only().to_json()
}

#[test]
fn logical_metrics_are_shard_invariant() {
    let baseline = logical_doc_at(1);
    assert!(baseline.contains("serve_mutations_applied"));
    assert!(baseline.contains("serve_mutations_rejected"));
    for shards in [2u32, 4] {
        assert_eq!(
            logical_doc_at(shards),
            baseline,
            "logical metrics diverged at {shards} shards"
        );
    }
}

#[test]
fn logical_metrics_are_thread_invariant() {
    // The multi-client durability driver fans clients out over the worker
    // pool; every client's server records into the same shared registry.
    // The logical subset must not notice the worker count.
    let doc_at = |threads: usize, tag: &str| {
        let registry = Registry::new();
        let config = DurabilityConfig {
            traffic: TrafficConfig {
                nodes: 14,
                edges: 18,
                prefixes: 2,
                seed: 7,
            },
            clients: 3,
            events: 12,
            queries: 2,
            seed: 11,
            options: PersistOptions {
                fsync: FsyncPolicy::Never,
                registry: registry.clone(),
                ..PersistOptions::default()
            },
        };
        let dir = std::env::temp_dir().join(format!(
            "nemo-metrics-determinism-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let (transcript, crashed) = run(&config, &dir, threads, None).expect("run");
        assert!(!crashed);
        std::fs::remove_dir_all(&dir).expect("cleanup");
        (transcript, registry.snapshot().logical_only().to_json())
    };
    let (transcript_1, logical_1) = doc_at(1, "t1");
    let (transcript_4, logical_4) = doc_at(4, "t4");
    assert_eq!(
        transcript_1, transcript_4,
        "transcripts are thread-invariant"
    );
    assert_eq!(logical_1, logical_4, "logical metrics are thread-invariant");
    // The logical subset actually saw traffic: the query round routes
    // through the typed serving path.
    assert!(logical_1.contains("serve_queries_answered"));
    assert!(!logical_1.contains("pool_"), "pool metrics are physical");
    assert!(!logical_1.contains("store_"), "store metrics are physical");
}
