//! WAL semantics, randomized: replay-from-snapshot must equal the directly
//! built state (byte-identical snapshot, equal graph/frames, identical
//! SQL / pandas / NetworkX answers), and a cached-program answer must equal
//! a fresh execution of the same program at every epoch.

use nemo_core::sandbox::execute_code;
use nemo_core::Backend;
use nemo_serve::driver::{self, DriveConfig};
use nemo_serve::snapshot::{replay, write_snapshot};
use nemo_serve::{CacheOutcome, LiveNetwork};
use proptest::prelude::*;
use trafficgen::{evolve, generate, StreamConfig, TrafficConfig};

fn base_workload() -> trafficgen::TrafficWorkload {
    generate(&TrafficConfig {
        nodes: 14,
        edges: 18,
        prefixes: 2,
        seed: 3,
    })
}

/// Renders probe answers over all three backends: edge count and byte
/// totals through SQL, the byte total through the dataframe API, and node
/// and edge counts through the graph API.
fn probe_answers(live: &LiveNetwork) -> Vec<String> {
    let sql = execute_code(
        Backend::Sql,
        "SELECT COUNT(*) AS n FROM edges; SELECT SUM(bytes) AS s FROM edges;",
        &live.state(Backend::Sql),
    )
    .expect("SQL probe runs");
    let pandas = execute_code(
        Backend::Pandas,
        "result = edges.sum(\"bytes\")",
        &live.state(Backend::Pandas),
    )
    .expect("pandas probe runs");
    let networkx = execute_code(
        Backend::NetworkX,
        "result = G.number_of_nodes() * 100000 + G.number_of_edges()",
        &live.state(Backend::NetworkX),
    )
    .expect("networkx probe runs");
    vec![
        sql.value.render(),
        pandas.value.render(),
        networkx.value.render(),
    ]
}

proptest! {
    /// `snapshot(at e) + replay(WAL[e..])` reconstructs the direct build:
    /// equal state, byte-identical snapshot bytes, identical answers on
    /// every backend.
    #[test]
    fn replay_from_snapshot_equals_direct_build(
        seed in 0u64..400,
        events in 1usize..50,
        split in 0usize..64,
    ) {
        let workload = base_workload();
        let stream = evolve(&workload, &StreamConfig { events, seed });
        let split = split % (stream.len() + 1);
        let mut live = LiveNetwork::from_workload(&workload);
        let mut mid = None;
        for (i, event) in stream.iter().enumerate() {
            if i == split {
                mid = Some(write_snapshot(&live));
            }
            live.apply_event(event).unwrap();
        }
        let mid = mid.unwrap_or_else(|| write_snapshot(&live));
        let replayed = replay(&mid, live.wal()).unwrap();
        prop_assert!(replayed == live, "replayed state diverged at seed {}", seed);
        prop_assert_eq!(write_snapshot(&replayed), write_snapshot(&live));
        prop_assert_eq!(probe_answers(&replayed), probe_answers(&live));
    }

    /// Serving equivalence at every epoch: an answer-cache hit repeats the
    /// computed answer exactly, and after mutations a program-cache hit
    /// equals a fresh execution of the cached program over the new state.
    #[test]
    fn cached_answers_equal_fresh_runs_at_every_epoch(seed in 0u64..200) {
        let config = DriveConfig {
            traffic: TrafficConfig {
                nodes: 16,
                edges: 20,
                prefixes: 2,
                seed: 7,
            },
            clients: 3,
            rounds: 3,
            queries_per_round: 3,
            mutations_per_round: 3,
            seed,
        };
        let client = (seed % 3) as usize;
        let mut server = driver::client_server(&config, client);
        let backend = Backend::CODEGEN[client % Backend::CODEGEN.len()];
        let queries: Vec<String> = nemo_bench::traffic_queries()
            .into_iter()
            .take(4)
            .map(|spec| spec.text.to_string())
            .collect();
        let workload = generate(&config.traffic);
        let stream = evolve(
            &workload,
            &StreamConfig {
                events: 3 * config.mutations_per_round,
                seed: config.seed,
            },
        );

        for (epoch_round, batch) in stream.chunks(config.mutations_per_round).enumerate() {
            for query in &queries {
                let first = server.handle_query(client, query);
                if first.answer.starts_with("error:") {
                    // Failed programs are not cached; nothing to compare.
                    continue;
                }
                // Same epoch, same query: answer-cache hit, same answer.
                let again = server.handle_query(client, query);
                prop_assert_eq!(again.cache, CacheOutcome::AnswerHit);
                prop_assert_eq!(&again.answer, &first.answer);
                // The cached program re-executed fresh gives the same
                // rendered answer the server returned.
                let program = server
                    .cached_program(query, backend)
                    .expect("successful answers cache their program")
                    .to_string();
                let fresh = execute_code(backend, &program, &server.merged_view().state(backend))
                    .expect("cached program re-executes");
                prop_assert_eq!(fresh.value.render(), first.answer);
            }
            // Advance the epoch; cached answers must now be recomputed
            // (program hits), never served stale.
            for event in batch {
                server.apply_mutation(event).unwrap();
            }
            let _ = epoch_round;
        }
    }
}

#[test]
fn snapshot_at_tip_replays_to_itself() {
    let workload = base_workload();
    let mut live = LiveNetwork::from_workload(&workload);
    for event in evolve(
        &workload,
        &StreamConfig {
            events: 25,
            seed: 1,
        },
    ) {
        live.apply_event(&event).unwrap();
    }
    let tip = write_snapshot(&live);
    let replayed = replay(&tip, live.wal()).unwrap();
    assert!(replayed == live);
    assert_eq!(write_snapshot(&replayed), tip);
}
