//! Crash-recovery properties of the durable store, end to end:
//!
//! * **Crash anywhere**: truncating the on-disk WAL at *every byte offset*
//!   and recovering yields state byte-identical (snapshot bytes, and
//!   SQL/pandas/NetworkX probe answers on sampled offsets) to replaying
//!   the surviving epoch prefix in memory — a torn tail record is
//!   truncated, never misread.
//! * **Corruption is loud**: a single-bit flip in any record's checksum or
//!   payload region, a deleted middle segment, or a missing genesis
//!   snapshot all fail recovery with a corruption error — never a silently
//!   wrong state.

use nemo_core::sandbox::execute_code;
use nemo_core::Backend;
use nemo_serve::persist::{FsyncPolicy, PersistOptions, Persistence};
use nemo_serve::snapshot::write_snapshot;
use nemo_serve::{LiveNetwork, ServeError};
use nemo_store::segment::scan_segment;
use proptest::prelude::*;
use std::path::{Path, PathBuf};
use trafficgen::{evolve, generate, StreamConfig, TrafficConfig};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("nemo-crash-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn options() -> PersistOptions {
    PersistOptions {
        fsync: FsyncPolicy::Never,
        // Tiny segments: the byte sweep crosses several rotation
        // boundaries, headers included.
        segment_max_bytes: 400,
        snapshot_every_bytes: 0,
        snapshot_every_epochs: 0,
        ..PersistOptions::default()
    }
}

/// Backend probes rendered over the current state (same shape as the PR 4
/// replay property tests).
fn probe_answers(live: &LiveNetwork) -> Vec<String> {
    let sql = execute_code(
        Backend::Sql,
        "SELECT COUNT(*) AS n FROM edges; SELECT SUM(bytes) AS s FROM edges;",
        &live.state(Backend::Sql),
    )
    .expect("SQL probe runs");
    let pandas = execute_code(
        Backend::Pandas,
        "result = edges.sum(\"bytes\")",
        &live.state(Backend::Pandas),
    )
    .expect("pandas probe runs");
    let networkx = execute_code(
        Backend::NetworkX,
        "result = G.number_of_nodes() * 100000 + G.number_of_edges()",
        &live.state(Backend::NetworkX),
    )
    .expect("networkx probe runs");
    vec![
        sql.value.render(),
        pandas.value.render(),
        networkx.value.render(),
    ]
}

/// One persisted run: every stream event applied + logged, no mid-stream
/// snapshots (the full WAL survives for the sweep). Returns the in-memory
/// snapshot bytes at every epoch prefix plus the store's on-disk layout.
struct PersistedRun {
    dir: PathBuf,
    /// `expected[k]` = snapshot bytes after the first `k` events.
    expected: Vec<String>,
    /// Live networks at sampled epochs for probe comparison.
    states: Vec<LiveNetwork>,
    /// Segment files in epoch order: `(path, bytes, record ends)` where
    /// record ends are `(global_end_offset, epoch)`.
    segments: Vec<(PathBuf, Vec<u8>)>,
    /// `(global byte offset where the record ends, epoch)` per record.
    record_ends: Vec<(u64, u64)>,
    total_bytes: u64,
}

fn persisted_run(tag: &str, traffic: &TrafficConfig, events: usize, seed: u64) -> PersistedRun {
    let dir = temp_dir(tag);
    let workload = generate(traffic);
    let mut live = LiveNetwork::from_workload(&workload);
    let mut persistence = Persistence::create(&dir, &options(), &live).unwrap();
    let mut expected = vec![write_snapshot(&live)];
    let mut states = vec![live.clone()];
    for event in evolve(&workload, &StreamConfig { events, seed }) {
        live.apply_event_persisted(&event, &mut persistence)
            .unwrap();
        expected.push(write_snapshot(&live));
        states.push(live.clone());
    }
    let segment_paths = persistence.store().segment_paths();
    drop(persistence);

    let mut segments = Vec::new();
    let mut record_ends = Vec::new();
    let mut base = 0u64;
    for path in segment_paths {
        let scan = scan_segment(&path, nemo_serve::codec::WAL_MAGIC).unwrap();
        let first_epoch = scan.first_epoch.unwrap();
        for (i, frame) in scan.frames.iter().enumerate() {
            record_ends.push((
                base + (frame.offset + frame.len) as u64,
                first_epoch + i as u64,
            ));
        }
        let bytes = std::fs::read(&path).unwrap();
        base += bytes.len() as u64;
        segments.push((path, bytes));
    }
    PersistedRun {
        dir,
        expected,
        states,
        segments,
        record_ends,
        total_bytes: base,
    }
}

impl PersistedRun {
    /// Epochs surviving a crash at global WAL offset `cut`: records whose
    /// frames end at or before the cut.
    fn surviving_epoch(&self, cut: u64) -> u64 {
        self.record_ends
            .iter()
            .take_while(|(end, _)| *end <= cut)
            .map(|(_, epoch)| *epoch)
            .last()
            .unwrap_or(0)
    }

    /// Materializes the post-crash directory: the genesis snapshot plus
    /// the WAL bytes strictly below `cut`.
    fn crash_dir(&self, cut: u64, scratch: &Path) -> PathBuf {
        let _ = std::fs::remove_dir_all(scratch);
        std::fs::create_dir_all(scratch).unwrap();
        std::fs::copy(
            self.dir.join(nemo_store::snapshot_file_name(0)),
            scratch.join(nemo_store::snapshot_file_name(0)),
        )
        .unwrap();
        let mut remaining = cut;
        for (path, bytes) in &self.segments {
            if remaining == 0 {
                break;
            }
            let keep = (bytes.len() as u64).min(remaining) as usize;
            std::fs::write(scratch.join(path.file_name().unwrap()), &bytes[..keep]).unwrap();
            remaining -= keep as u64;
        }
        scratch.to_path_buf()
    }
}

#[test]
fn recovery_from_a_crash_at_every_byte_offset_matches_the_epoch_prefix() {
    let traffic = TrafficConfig {
        nodes: 8,
        edges: 10,
        prefixes: 2,
        seed: 4,
    };
    let run = persisted_run("sweep", &traffic, 12, 31);
    assert!(
        run.segments.len() >= 2,
        "sweep must cross a segment boundary"
    );
    let scratch = temp_dir("sweep-scratch");
    let mut prev_epoch = u64::MAX;
    for cut in 0..=run.total_bytes {
        let crash = run.crash_dir(cut, &scratch);
        let (recovered, _, report) = Persistence::recover(&crash, &options())
            .unwrap_or_else(|e| panic!("recovery failed at cut {cut}: {e}"));
        let epoch = run.surviving_epoch(cut);
        assert_eq!(recovered.epoch(), epoch, "cut at byte {cut}");
        assert_eq!(
            write_snapshot(&recovered),
            run.expected[epoch as usize],
            "state diverged from the in-memory epoch prefix at cut {cut}"
        );
        assert_eq!(report.snapshot_epoch, 0);
        assert_eq!(report.replayed_records, epoch);
        // Probe answers across all three backends, once per distinct
        // surviving epoch (they are a function of the state, which the
        // snapshot bytes already pin byte-for-byte).
        if epoch != prev_epoch {
            prev_epoch = epoch;
            assert_eq!(
                probe_answers(&recovered),
                probe_answers(&run.states[epoch as usize]),
                "probe answers diverged at cut {cut}"
            );
        }
    }
    std::fs::remove_dir_all(&run.dir).unwrap();
    std::fs::remove_dir_all(&scratch).unwrap();
}

proptest! {
    /// The same crash property over random streams and random cuts.
    #[test]
    fn recovery_matches_epoch_prefix_on_random_streams(
        seed in 0u64..500,
        events in 1usize..30,
        cut_frac in 0u64..10_000,
    ) {
        let traffic = TrafficConfig { nodes: 10, edges: 12, prefixes: 2, seed: 6 };
        let run = persisted_run("prop", &traffic, events, seed);
        let cut = (run.total_bytes * cut_frac) / 10_000;
        let scratch = temp_dir("prop-scratch");
        let crash = run.crash_dir(cut, &scratch);
        let (recovered, _, _) = Persistence::recover(&crash, &options())
            .map_err(|e| format!("recovery failed at cut {cut}: {e}"))?;
        let epoch = run.surviving_epoch(cut);
        prop_assert_eq!(recovered.epoch(), epoch);
        prop_assert_eq!(&write_snapshot(&recovered), &run.expected[epoch as usize]);
        std::fs::remove_dir_all(&run.dir).unwrap();
        std::fs::remove_dir_all(&scratch).unwrap();
    }

    /// A single-bit flip in any complete record's checksum or payload
    /// region fails recovery loudly — corruption is never misread as a
    /// crash tail, and never yields a wrong state.
    #[test]
    fn single_bit_flips_fail_recovery_loudly(
        seed in 0u64..500,
        pick in 0usize..10_000,
        bit in 0u8..8,
    ) {
        let traffic = TrafficConfig { nodes: 10, edges: 12, prefixes: 2, seed: 6 };
        let run = persisted_run("flip", &traffic, 14, seed);
        // Choose a byte inside some frame's CRC or payload (offset >= 4
        // within the frame, i.e. skipping only the 4-byte length field,
        // whose large-growth flips are indistinguishable from a tear —
        // see nemo_store::record).
        let mut flippable: Vec<(usize, u64)> = Vec::new(); // (segment, global byte)
        let mut base = 0u64;
        for (i, (path, bytes)) in run.segments.iter().enumerate() {
            let scan = scan_segment(path, nemo_serve::codec::WAL_MAGIC).unwrap();
            for frame in &scan.frames {
                for b in frame.offset + 4..frame.offset + frame.len {
                    flippable.push((i, b as u64));
                }
            }
            base += bytes.len() as u64;
        }
        let _ = base;
        let (segment, offset) = flippable[pick % flippable.len()];
        let scratch = temp_dir("flip-scratch");
        let _ = std::fs::remove_dir_all(&scratch);
        std::fs::create_dir_all(&scratch).unwrap();
        std::fs::copy(
            run.dir.join(nemo_store::snapshot_file_name(0)),
            scratch.join(nemo_store::snapshot_file_name(0)),
        )
        .unwrap();
        for (i, (path, bytes)) in run.segments.iter().enumerate() {
            let mut bytes = bytes.clone();
            if i == segment {
                bytes[offset as usize] ^= 1 << bit;
            }
            std::fs::write(scratch.join(path.file_name().unwrap()), &bytes).unwrap();
        }
        match Persistence::recover(&scratch, &options()) {
            Err(ServeError::Corrupt(_)) => {}
            Err(other) => return Err(format!("wrong error kind: {other}")),
            Ok((recovered, _, _)) => {
                return Err(format!(
                    "recovery silently succeeded at epoch {} despite a flipped bit",
                    recovered.epoch()
                ));
            }
        }
        std::fs::remove_dir_all(&run.dir).unwrap();
        std::fs::remove_dir_all(&scratch).unwrap();
    }
}

#[test]
fn deleted_middle_segment_fails_recovery_loudly() {
    let traffic = TrafficConfig {
        nodes: 10,
        edges: 12,
        prefixes: 2,
        seed: 6,
    };
    let run = persisted_run("gap", &traffic, 25, 9);
    assert!(run.segments.len() >= 3, "need a middle segment to delete");
    std::fs::remove_file(&run.segments[1].0).unwrap();
    match Persistence::recover(&run.dir, &options()) {
        Err(ServeError::Corrupt(msg)) => assert!(msg.contains("gap"), "{msg}"),
        other => panic!("expected a loud gap failure, got {other:?}"),
    }
    std::fs::remove_dir_all(&run.dir).unwrap();
}

#[test]
fn missing_every_snapshot_fails_recovery_loudly() {
    let traffic = TrafficConfig {
        nodes: 10,
        edges: 12,
        prefixes: 2,
        seed: 6,
    };
    let run = persisted_run("nosnap", &traffic, 8, 3);
    std::fs::remove_file(run.dir.join(nemo_store::snapshot_file_name(0))).unwrap();
    match Persistence::recover(&run.dir, &options()) {
        Err(ServeError::Corrupt(msg)) => assert!(msg.contains("no usable snapshot"), "{msg}"),
        other => panic!("expected a loud failure, got {other:?}"),
    }
    std::fs::remove_dir_all(&run.dir).unwrap();
}
