//! Offline stand-in for the `criterion` crate (API subset, see
//! `vendor/README.md`).
//!
//! Implements a real wall-clock measurement loop (warm-up, then N timed
//! samples, reporting min/mean/max per iteration) behind the familiar
//! `Criterion` / `BenchmarkGroup` / `criterion_group!` / `criterion_main!`
//! surface. No statistical analysis, plotting, or saved baselines.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark configuration and entry point.
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(1),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Sets how long each benchmark warms up before measuring.
    pub fn warm_up_time(mut self, t: Duration) -> Self {
        self.warm_up_time = t;
        self
    }

    /// Sets the target total measurement time per benchmark.
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    /// Runs a single benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) {
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            report: None,
        };
        f(&mut bencher);
        print_report(id, &bencher);
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }
}

/// A named group of related benchmarks (`group/bench_id` reporting).
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs a benchmark inside this group.
    pub fn bench_function<I: Into<BenchmarkId>, F: FnMut(&mut Bencher)>(&mut self, id: I, f: F) {
        let full = format!("{}/{}", self.name, id.into());
        self.criterion.bench_function(&full, f);
    }

    /// Runs a benchmark parameterised by `input`.
    pub fn bench_with_input<I, D, F>(&mut self, id: D, input: &I, mut f: F)
    where
        D: Into<BenchmarkId>,
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input));
    }

    /// Finishes the group. (No-op here; the real crate emits summary output.)
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter, rendered `name/param`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id that is just the parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing statistics for one benchmark, in nanoseconds per iteration.
struct Report {
    min: f64,
    mean: f64,
    max: f64,
    samples: usize,
}

/// Drives the measurement loop for one benchmark.
pub struct Bencher {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    report: Option<Report>,
}

impl Bencher {
    /// Times `routine`: warm-up for the configured duration, then
    /// `sample_size` timed samples (stopping early if the measurement-time
    /// budget runs out after at least one sample).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let warm_up_start = Instant::now();
        while warm_up_start.elapsed() < self.warm_up_time {
            black_box(routine());
        }

        let mut samples: Vec<f64> = Vec::with_capacity(self.sample_size);
        let measurement_start = Instant::now();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            black_box(routine());
            samples.push(t0.elapsed().as_nanos() as f64);
            if measurement_start.elapsed() > self.measurement_time {
                break;
            }
        }

        let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
        let max = samples.iter().copied().fold(0.0_f64, f64::max);
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        self.report = Some(Report {
            min,
            mean,
            max,
            samples: samples.len(),
        });
    }
}

fn print_report(id: &str, bencher: &Bencher) {
    match &bencher.report {
        Some(r) => println!(
            "{:<50} time: [{} {} {}] ({} samples)",
            id,
            format_ns(r.min),
            format_ns(r.mean),
            format_ns(r.max),
            r.samples
        ),
        None => println!("{id:<50} (no measurement: Bencher::iter never called)"),
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// Declares a group of benchmark functions, mirroring the real macro's two
/// forms (`name/config/targets` and positional).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Generates `fn main` running each group, for `harness = false` bench targets.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Criterion {
        Criterion::default()
            .sample_size(5)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(10))
    }

    #[test]
    fn bench_function_measures() {
        let mut c = quick();
        c.bench_function("smoke", |b| b.iter(|| (0..100u64).sum::<u64>()));
    }

    #[test]
    fn groups_and_ids_compose() {
        let mut c = quick();
        let mut group = c.benchmark_group("g");
        group.bench_function("plain", |b| b.iter(|| 1 + 1));
        group.bench_with_input(BenchmarkId::new("with_input", 3), &3u64, |b, &n| {
            b.iter(|| n * n)
        });
        group.bench_with_input(BenchmarkId::from_parameter(7), &7u64, |b, &n| {
            b.iter(|| n + n)
        });
        group.finish();
    }

    #[test]
    fn benchmark_id_renders() {
        assert_eq!(BenchmarkId::new("f", 10).to_string(), "f/10");
        assert_eq!(BenchmarkId::from_parameter(10).to_string(), "10");
    }

    criterion_group!(positional_form, noop_bench);
    criterion_group! {
        name = named_form;
        config = Criterion::default().sample_size(2).warm_up_time(Duration::from_millis(1)).measurement_time(Duration::from_millis(5));
        targets = noop_bench
    }

    fn noop_bench(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| ()));
    }

    #[test]
    fn group_macros_expand_and_run() {
        positional_form();
        named_form();
    }
}
