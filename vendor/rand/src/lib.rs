//! Offline stand-in for the `rand` crate (API subset, see `vendor/README.md`).
//!
//! Provides a deterministic [`rngs::StdRng`] built on SplitMix64 plus the
//! `Rng`/`SeedableRng` traits with the `gen_range`/`gen_bool` surface the
//! workspace uses. Not cryptographically secure, and the value streams do
//! not match the real crate — only the API shape and determinism contract
//! (same seed ⇒ same stream) do.

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of an RNG from a seed.
pub trait SeedableRng: Sized {
    /// Creates an RNG whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly from a range by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from `self`.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (start as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let unit = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}

impl_float_sample_range!(f32, f64);

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws one value uniformly from `range` (half-open or inclusive).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p outside [0, 1]");
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic RNG (SplitMix64). Stand-in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1_000 {
            let v = rng.gen_range(10i64..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(1u32..=64);
            assert!((1..=64).contains(&w));
            let f = rng.gen_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
    }

    #[test]
    fn negative_int_ranges() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1_000 {
            let v = rng.gen_range(-50i32..-10);
            assert!((-50..-10).contains(&v));
        }
    }
}
