//! Offline stand-in for the `proptest` crate (API subset, see
//! `vendor/README.md`).
//!
//! Supports the surface this workspace's property tests use: the
//! [`proptest!`] macro, `prop_assert!`/`prop_assert_eq!`/`prop_assume!`,
//! range strategies for integers and floats, simple character-class string
//! patterns (`"[a-z]{1,6}"`), tuples, `prop::collection::vec`, and
//! [`strategy::Strategy::prop_map`].
//!
//! Unlike the real crate there is no shrinking: a failing case reports its
//! case index, and the run is deterministic (fixed seed), so re-running
//! reproduces it exactly. Case count defaults to 64; override with the
//! `PROPTEST_CASES` environment variable.

use rand::rngs::StdRng;
use rand::SeedableRng;

pub mod strategy;

pub mod collection {
    //! Strategies for collections (`vec` only).

    use super::strategy::{Strategy, VecStrategy};

    /// Strategy producing a `Vec` whose length is drawn from `size` and
    /// whose elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }
}

pub mod prelude {
    //! Everything a property-test module needs, mirroring
    //! `proptest::prelude`.

    pub use crate as prop;
    pub use crate::strategy::Strategy;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
}

/// Number of cases each property runs (`PROPTEST_CASES` env var, default 64).
pub fn cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

/// Deterministic per-case RNG: fixed base seed mixed with the case index.
pub fn case_rng(case: u32) -> StdRng {
    StdRng::seed_from_u64(0x5eed_cafe_f00d_0000 ^ u64::from(case).wrapping_mul(0x9e37_79b9))
}

/// Defines property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over [`cases`] generated inputs.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cases = $crate::cases();
                for case in 0..cases {
                    let mut prop_rng = $crate::case_rng(case);
                    $(let $arg = $crate::strategy::Strategy::generate(&$strat, &mut prop_rng);)+
                    let result: ::core::result::Result<(), ::std::string::String> = (move || {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                    if let ::core::result::Result::Err(msg) = result {
                        panic!(
                            "property '{}' failed at case {}/{} (deterministic; rerun reproduces): {}",
                            stringify!($name), case, cases, msg
                        );
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a [`proptest!`] body, failing the case (not
/// panicking directly) so the harness can report the case index.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(format!($($fmt)+));
        }
    };
}

/// Asserts two expressions are equal inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(
                    l == r,
                    "assertion failed: `{} == {}` (left: {:?}, right: {:?})",
                    stringify!($left),
                    stringify!($right),
                    l,
                    r
                )
            }
        }
    };
}

/// Skips the current case when its precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Ok(());
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        /// Range strategies stay inside their bounds.
        #[test]
        fn int_range_in_bounds(x in -50i64..50) {
            prop_assert!((-50..50).contains(&x));
        }

        /// Vec strategies respect the size range.
        #[test]
        fn vec_len_in_bounds(xs in prop::collection::vec(0i64..10, 2..7)) {
            prop_assert!(xs.len() >= 2 && xs.len() < 7);
            for x in &xs {
                prop_assert!((0..10).contains(x));
            }
        }

        /// Character-class patterns produce matching strings.
        #[test]
        fn pattern_matches_class(s in "[a-c]{1,4}") {
            prop_assert!(!s.is_empty() && s.len() <= 4, "len {}", s.len());
            prop_assert!(s.chars().all(|c| ('a'..='c').contains(&c)), "got {:?}", s);
        }

        /// Tuples and prop_map compose.
        #[test]
        fn tuple_and_map(pair in (0i64..10, 10i64..20).prop_map(|(a, b)| a + b)) {
            prop_assert!((10..30).contains(&pair));
        }

        /// prop_assume skips cases without failing them.
        #[test]
        fn assume_skips(x in 0i64..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    fn runs_are_deterministic() {
        use crate::strategy::Strategy;
        let s = crate::collection::vec(0i64..1_000, 0..20);
        let a: Vec<Vec<i64>> = (0..10)
            .map(|c| s.generate(&mut crate::case_rng(c)))
            .collect();
        let b: Vec<Vec<i64>> = (0..10)
            .map(|c| s.generate(&mut crate::case_rng(c)))
            .collect();
        assert_eq!(a, b);
    }
}
