//! The [`Strategy`] trait and the strategy combinators the workspace uses.

use rand::rngs::StdRng;
use rand::Rng;

/// A recipe for generating values of one type.
///
/// Unlike the real proptest there is no value tree / shrinking: `generate`
/// draws one value directly from the RNG.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Transforms every generated value with `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { source: self, f }
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut StdRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

impl Strategy for core::ops::Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut StdRng) -> f32 {
        rng.gen_range(self.clone())
    }
}

/// String pattern strategy. Supports a practical subset of the regex
/// syntax the real crate accepts: sequences of literal characters or
/// character classes (`[a-z0-9_]`), each optionally repeated with `{n}` or
/// `{m,n}`.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut StdRng) -> String {
        sample_pattern(self, rng)
    }
}

fn sample_pattern(pattern: &str, rng: &mut StdRng) -> String {
    let mut out = String::new();
    let mut chars = pattern.chars().peekable();
    while let Some(c) = chars.next() {
        let choices: Vec<char> = if c == '[' {
            let mut class = Vec::new();
            let mut prev: Option<char> = None;
            for c in chars.by_ref() {
                match c {
                    ']' => break,
                    '-' if prev.is_some() => {
                        // Range like `a-z`: expand from the previous char.
                        prev = Some('-');
                    }
                    c => {
                        if prev == Some('-') {
                            let lo = *class.last().expect("range start") as u32;
                            for v in (lo + 1)..=(c as u32) {
                                class.push(char::from_u32(v).expect("valid char"));
                            }
                            prev = None;
                        } else {
                            class.push(c);
                            prev = Some(c);
                        }
                    }
                }
            }
            class
        } else {
            vec![c]
        };
        assert!(!choices.is_empty(), "empty character class in {pattern:?}");

        // Optional repetition suffix `{n}` or `{m,n}`.
        let (lo, hi) = if chars.peek() == Some(&'{') {
            chars.next();
            let spec: String = chars.by_ref().take_while(|&c| c != '}').collect();
            match spec.split_once(',') {
                Some((m, n)) => (
                    m.parse().expect("repeat lower bound"),
                    n.parse().expect("repeat upper bound"),
                ),
                None => {
                    let n: usize = spec.parse().expect("repeat count");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };

        let count = rng.gen_range(lo..=hi);
        for _ in 0..count {
            out.push(choices[rng.gen_range(0..choices.len())]);
        }
    }
    out
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    pub(crate) source: S,
    pub(crate) f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut StdRng) -> U {
        (self.f)(self.source.generate(rng))
    }
}

/// Strategy returned by [`crate::collection::vec`].
pub struct VecStrategy<S> {
    pub(crate) element: S,
    pub(crate) size: core::ops::Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.clone());
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}
