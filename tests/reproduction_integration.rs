//! Integration tests of the reproduced evaluation: the regenerated tables
//! and figures must show the paper's qualitative findings (who wins, by
//! roughly what factor, where the crossovers fall).

use nemo_bench::runner::{
    accuracy, cost_comparison, error_breakdown, run_accuracy_benchmark_for, run_case_study,
    scalability_sweep, DEFAULT_SEED,
};
use nemo_bench::{report, BenchmarkSuite, SuiteConfig};
use nemo_core::llm::{all_profiles, profiles};
use nemo_core::{Application, Backend, Complexity, FaultKind};

fn suite() -> BenchmarkSuite {
    BenchmarkSuite::build(&SuiteConfig::small())
}

#[test]
fn table2_shape_codegen_beats_strawman_and_networkx_beats_other_backends() {
    let suite = suite();
    let logger = run_accuracy_benchmark_for(&suite, &all_profiles(), DEFAULT_SEED);

    let mut networkx_sum = 0.0;
    let mut strawman_sum = 0.0;
    for profile in all_profiles() {
        let nx = accuracy(
            &logger,
            &suite,
            profile.name,
            Application::TrafficAnalysis,
            Backend::NetworkX,
            None,
        );
        let sql = accuracy(
            &logger,
            &suite,
            profile.name,
            Application::TrafficAnalysis,
            Backend::Sql,
            None,
        );
        let strawman = accuracy(
            &logger,
            &suite,
            profile.name,
            Application::TrafficAnalysis,
            Backend::Strawman,
            None,
        );
        networkx_sum += nx;
        strawman_sum += strawman;
        // Paper finding 2: the graph library beats SQL for every model.
        assert!(nx > sql, "{}: networkx {nx} <= sql {sql}", profile.name);
        // Paper finding 1: code generation beats the strawman for every model.
        assert!(
            nx > strawman,
            "{}: networkx {nx} <= strawman {strawman}",
            profile.name
        );
    }
    // Paper headline: NetworkX averages ~68% on traffic analysis vs ~23% for
    // the strawman (an improvement of ~45 percentage points).
    let networkx_avg = networkx_sum / 4.0;
    let strawman_avg = strawman_sum / 4.0;
    assert!(
        networkx_avg > 0.55 && networkx_avg < 0.85,
        "networkx avg {networkx_avg}"
    );
    assert!(strawman_avg < 0.40, "strawman avg {strawman_avg}");
    assert!(
        networkx_avg - strawman_avg > 0.30,
        "improvement {networkx_avg} - {strawman_avg} should be large"
    );

    // Paper finding 3: GPT-4 + NetworkX is the best cell (≈0.88 traffic, ≈0.78 MALT).
    let gpt4_traffic = accuracy(
        &logger,
        &suite,
        "GPT-4",
        Application::TrafficAnalysis,
        Backend::NetworkX,
        None,
    );
    let gpt4_malt = accuracy(
        &logger,
        &suite,
        "GPT-4",
        Application::MaltLifecycle,
        Backend::NetworkX,
        None,
    );
    assert!(gpt4_traffic >= 0.8, "GPT-4 traffic networkx {gpt4_traffic}");
    assert!(gpt4_malt >= 0.6, "GPT-4 MALT networkx {gpt4_malt}");
}

#[test]
fn tables3_and_4_accuracy_decreases_with_complexity() {
    let suite = suite();
    let logger = run_accuracy_benchmark_for(&suite, &[profiles::gpt4()], DEFAULT_SEED);
    for app in Application::ALL {
        let easy = accuracy(
            &logger,
            &suite,
            "GPT-4",
            app,
            Backend::NetworkX,
            Some(Complexity::Easy),
        );
        let hard = accuracy(
            &logger,
            &suite,
            "GPT-4",
            app,
            Backend::NetworkX,
            Some(Complexity::Hard),
        );
        assert!(easy >= hard, "{app}: easy {easy} should be >= hard {hard}");
        assert_eq!(
            easy, 1.0,
            "{app}: GPT-4 NetworkX easy queries are all correct in Table 3/4"
        );
    }
}

#[test]
fn table5_failures_are_dominated_by_syntax_and_imaginary_attributes_for_traffic() {
    let suite = suite();
    let logger = run_accuracy_benchmark_for(&suite, &all_profiles(), DEFAULT_SEED);
    let traffic = error_breakdown(&logger, &suite, Application::TrafficAnalysis);
    let malt = error_breakdown(&logger, &suite, Application::MaltLifecycle);
    let traffic_total: usize = traffic.values().sum();
    let malt_total: usize = malt.values().sum();
    // The paper observed 35 and 17 failures; the reproduction should land in
    // the same neighbourhood.
    assert!(
        (20..=50).contains(&traffic_total),
        "traffic NetworkX failures {traffic_total}"
    );
    assert!(
        (8..=26).contains(&malt_total),
        "MALT NetworkX failures {malt_total}"
    );
    // MALT produced no syntax errors in the paper's Table 5.
    assert_eq!(malt.get(&FaultKind::Syntax).copied().unwrap_or(0), 0);
    // Rendering includes every category row.
    let table5 = report::format_table5(&suite, &logger);
    for kind in FaultKind::ALL {
        assert!(table5.contains(kind.label()));
    }
}

#[test]
fn table6_pass_at_5_and_self_debug_improve_bard() {
    let suite = suite();
    let result = run_case_study(&suite, &profiles::bard(), 5, DEFAULT_SEED);
    // Paper: 0.44 -> 1.0 (pass@5) and 0.67 (self-debug).
    assert!(
        result.pass_at_1 >= 0.3 && result.pass_at_1 <= 0.6,
        "pass@1 {}",
        result.pass_at_1
    );
    assert!(result.pass_at_k >= 0.95, "pass@5 {}", result.pass_at_k);
    assert!(
        result.self_debug > result.pass_at_1 && result.self_debug < result.pass_at_k,
        "self-debug {} should land between pass@1 {} and pass@5 {}",
        result.self_debug,
        result.pass_at_1,
        result.pass_at_k
    );
}

#[test]
fn figure4_cost_shape_strawman_expensive_and_unscalable() {
    let profile = profiles::gpt4();
    // Figure 4a: at 80 nodes+edges the strawman is ~3x more expensive.
    let at_80 = cost_comparison(&profile, 80, DEFAULT_SEED);
    let ratio = at_80.strawman_mean() / at_80.codegen_mean();
    assert!(ratio > 2.0, "strawman/codegen ratio {ratio}");
    assert!(
        at_80.codegen_mean() < 0.2,
        "codegen cost {}",
        at_80.codegen_mean()
    );

    // Figure 4b: strawman grows with size and eventually exceeds the window;
    // code-gen stays flat.
    let sweep = scalability_sweep(&profile, &[20, 80, 150, 300, 400], DEFAULT_SEED);
    assert!(sweep.last().unwrap().strawman_over_window);
    assert!(!sweep.first().unwrap().strawman_over_window);
    let codegen_costs: Vec<f64> = sweep.iter().map(|p| p.codegen_mean).collect();
    let spread = codegen_costs.iter().cloned().fold(f64::MIN, f64::max)
        - codegen_costs.iter().cloned().fold(f64::MAX, f64::min);
    assert!(
        spread < 0.01,
        "codegen cost should be flat, spread {spread}"
    );
    let strawman_costs: Vec<f64> = sweep.iter().map(|p| p.strawman_mean).collect();
    assert!(
        strawman_costs.windows(2).all(|w| w[1] >= w[0]),
        "strawman cost should grow"
    );
}

#[test]
fn full_report_renders_every_artifact() {
    let suite = suite();
    let logger =
        run_accuracy_benchmark_for(&suite, &[profiles::gpt4(), profiles::bard()], DEFAULT_SEED);
    assert!(report::format_table2(&suite, &logger).contains("Google Bard"));
    assert!(report::format_table3(&suite, &logger).contains("strawman"));
    assert!(report::format_table4(&suite, &logger).contains("networkx"));
    let case = run_case_study(&suite, &profiles::bard(), 5, DEFAULT_SEED);
    assert!(report::format_table6("Google Bard", &case).contains("Self-debug"));
    let cmp = cost_comparison(&profiles::gpt4(), 80, DEFAULT_SEED);
    assert!(report::format_figure4a(&cmp).contains("cumulative"));
    let sweep = scalability_sweep(&profiles::gpt4(), &[20, 40], DEFAULT_SEED);
    assert!(report::format_figure4b(&sweep).contains("nodes+edges"));
}
