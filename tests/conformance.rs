//! Cross-backend differential test: the same traffic query answered via
//! the SQL, dataframe and property-graph substrates must agree — the three
//! engines act as mutual oracles for each other (and for the golden
//! programs themselves).

use nemo_bench::conformance::{check_traffic_conformance, check_traffic_conformance_with_threads};
use nemo_bench::{BenchmarkSuite, SuiteConfig};
use nemo_core::{Application, Backend};

#[test]
fn all_24_traffic_goldens_agree_across_sql_pandas_and_networkx() {
    let suite = BenchmarkSuite::build(&SuiteConfig::small());
    let report = check_traffic_conformance(&suite);
    assert_eq!(report.checked, 24, "every traffic query is checked");
    assert!(
        report.is_conformant(),
        "cross-backend divergences:\n{}",
        report
            .divergences
            .iter()
            .map(|d| format!("  {d}"))
            .collect::<Vec<String>>()
            .join("\n")
    );
}

#[test]
fn conformance_is_insensitive_to_the_worker_thread_count() {
    // The harness's verdict is a pure function of the suite, so any
    // worker count reports the same.
    let suite = BenchmarkSuite::build(&SuiteConfig::small());
    for threads in [1, 4] {
        let report = check_traffic_conformance_with_threads(&suite, threads);
        assert_eq!(report.checked, 24);
        assert!(report.is_conformant(), "divergence at {threads} threads");
    }
}

#[test]
fn a_corrupted_golden_is_detected_as_a_divergence() {
    // Sanity-check the harness has teeth: swap one query's SQL golden
    // outcome for another query's and the divergence must surface.
    let mut suite = BenchmarkSuite::build(&SuiteConfig::small());
    let borrowed = suite
        .queries
        .iter()
        .find(|q| q.spec.id == "T02")
        .expect("T02 exists")
        .goldens[&Backend::Sql]
        .clone();
    let victim = suite
        .queries
        .iter_mut()
        .find(|q| q.spec.id == "T03")
        .expect("T03 exists");
    assert_eq!(victim.spec.application, Application::TrafficAnalysis);
    victim.goldens.insert(Backend::Sql, borrowed);

    let report = check_traffic_conformance(&suite);
    assert!(
        report.divergences.iter().any(|d| d.query == "T03"),
        "swapped SQL golden not detected: {:?}",
        report.divergences
    );
}
