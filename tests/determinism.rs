//! Determinism regression tests for the parallel benchmark runner: the
//! results log must be bit-for-bit identical at any worker-thread count,
//! which is what makes `NEMO_THREADS` a pure performance knob.

use nemo_bench::runner::{
    run_accuracy_benchmark_with_threads, run_case_study_with_threads, DEFAULT_SEED,
};
use nemo_bench::{BenchmarkSuite, SuiteConfig};
use nemo_core::llm::profiles;

#[test]
fn accuracy_benchmark_is_identical_across_thread_counts() {
    let suite = BenchmarkSuite::build(&SuiteConfig::small());
    let models = [profiles::gpt4(), profiles::bard()];
    let sequential = run_accuracy_benchmark_with_threads(&suite, &models, DEFAULT_SEED, 1);
    assert!(!sequential.is_empty());

    for threads in [2, 4, 7] {
        let parallel = run_accuracy_benchmark_with_threads(&suite, &models, DEFAULT_SEED, threads);
        // Record-by-record equality covers order, verdicts, responses,
        // extracted code, token counts and dollar costs.
        assert_eq!(
            sequential, parallel,
            "results diverged at {threads} threads"
        );
        // The stronger byte-level claim: the full debug rendering of both
        // logs is identical.
        assert_eq!(
            format!("{sequential:?}"),
            format!("{parallel:?}"),
            "debug rendering diverged at {threads} threads"
        );
    }
}

#[test]
fn accuracy_benchmark_is_reproducible_within_one_thread_count() {
    let suite = BenchmarkSuite::build(&SuiteConfig::small());
    let models = [profiles::gpt4()];
    let first = run_accuracy_benchmark_with_threads(&suite, &models, DEFAULT_SEED, 4);
    let second = run_accuracy_benchmark_with_threads(&suite, &models, DEFAULT_SEED, 4);
    assert_eq!(first, second);
}

#[test]
fn different_seeds_change_the_log_same_seed_repeats_it() {
    let suite = BenchmarkSuite::build(&SuiteConfig::small());
    let models = [profiles::bard()];
    let a = run_accuracy_benchmark_with_threads(&suite, &models, 1, 4);
    let b = run_accuracy_benchmark_with_threads(&suite, &models, 2, 4);
    // The seed steers which tasks each simulated model fails, so two seeds
    // should not produce byte-identical logs (lengths still match).
    assert_eq!(a.len(), b.len());
    assert_ne!(format!("{a:?}"), format!("{b:?}"));
}

#[test]
fn case_study_is_identical_across_thread_counts() {
    let suite = BenchmarkSuite::build(&SuiteConfig::small());
    let sequential = run_case_study_with_threads(&suite, &profiles::bard(), 5, DEFAULT_SEED, 1);
    let parallel = run_case_study_with_threads(&suite, &profiles::bard(), 5, DEFAULT_SEED, 4);
    assert_eq!(sequential, parallel);
}
