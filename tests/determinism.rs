//! Determinism regression tests for the parallel benchmark runner: the
//! results log must be bit-for-bit identical at any worker-thread count,
//! which is what makes `NEMO_THREADS` a pure performance knob.

use nemo_bench::runner::{
    run_accuracy_benchmark_with_threads, run_case_study_with_threads, DEFAULT_SEED,
};
use nemo_bench::{report, BenchmarkSuite, SuiteConfig};
use nemo_core::llm::profiles;

#[test]
fn accuracy_benchmark_is_identical_across_thread_counts() {
    let suite = BenchmarkSuite::build(&SuiteConfig::small());
    let models = [profiles::gpt4(), profiles::bard()];
    let sequential = run_accuracy_benchmark_with_threads(&suite, &models, DEFAULT_SEED, 1);
    assert!(!sequential.is_empty());

    for threads in [2, 4, 7] {
        let parallel = run_accuracy_benchmark_with_threads(&suite, &models, DEFAULT_SEED, threads);
        // Record-by-record equality covers order, verdicts, responses,
        // extracted code, token counts and dollar costs.
        assert_eq!(
            sequential, parallel,
            "results diverged at {threads} threads"
        );
        // The stronger byte-level claim: the full debug rendering of both
        // logs is identical.
        assert_eq!(
            format!("{sequential:?}"),
            format!("{parallel:?}"),
            "debug rendering diverged at {threads} threads"
        );
    }
}

#[test]
fn accuracy_benchmark_is_reproducible_within_one_thread_count() {
    let suite = BenchmarkSuite::build(&SuiteConfig::small());
    let models = [profiles::gpt4()];
    let first = run_accuracy_benchmark_with_threads(&suite, &models, DEFAULT_SEED, 4);
    let second = run_accuracy_benchmark_with_threads(&suite, &models, DEFAULT_SEED, 4);
    assert_eq!(first, second);
}

#[test]
fn different_seeds_change_the_log_same_seed_repeats_it() {
    let suite = BenchmarkSuite::build(&SuiteConfig::small());
    let models = [profiles::bard()];
    let a = run_accuracy_benchmark_with_threads(&suite, &models, 1, 4);
    let b = run_accuracy_benchmark_with_threads(&suite, &models, 2, 4);
    // The seed steers which tasks each simulated model fails, so two seeds
    // should not produce byte-identical logs (lengths still match).
    assert_eq!(a.len(), b.len());
    assert_ne!(format!("{a:?}"), format!("{b:?}"));
}

#[test]
fn case_study_is_identical_across_thread_counts() {
    let suite = BenchmarkSuite::build(&SuiteConfig::small());
    let sequential = run_case_study_with_threads(&suite, &profiles::bard(), 5, DEFAULT_SEED, 1);
    let parallel = run_case_study_with_threads(&suite, &profiles::bard(), 5, DEFAULT_SEED, 4);
    assert_eq!(sequential, parallel);
}

#[test]
fn sql_fast_paths_are_deterministic_across_repeated_runs() {
    // The compiled executor routes equi-joins, GROUP BY and DISTINCT
    // through hash tables. Hash-map iteration order must never leak into
    // results: executing every traffic golden SQL script twice on fresh
    // databases has to produce byte-identical result renderings.
    use trafficgen::{export, generate, TrafficConfig};
    let workload = generate(&TrafficConfig::default());
    let run = || {
        let mut db = export::to_database(&workload);
        let mut transcript = String::new();
        for spec in nemo_bench::traffic_queries() {
            let results = db
                .execute_script(spec.sql)
                .unwrap_or_else(|e| panic!("golden SQL for {} failed: {e}", spec.id));
            transcript.push_str(&format!("{}: {results:?}\n", spec.id));
        }
        transcript
    };
    assert_eq!(run(), run(), "SQL fast paths leaked nondeterminism");
}

#[test]
fn rendered_tables_are_identical_across_thread_counts() {
    // Golden-log regression at the report level: the full Table 2
    // rendering — which flows through the interned graph core and the
    // compiled SQL executor in every cell — must be byte-identical whether
    // the matrix ran on one worker or four.
    let suite = BenchmarkSuite::build(&SuiteConfig::small());
    let models = [profiles::gpt4(), profiles::bard()];
    let sequential = run_accuracy_benchmark_with_threads(&suite, &models, DEFAULT_SEED, 1);
    let parallel = run_accuracy_benchmark_with_threads(&suite, &models, DEFAULT_SEED, 4);
    assert_eq!(
        report::format_table2(&suite, &sequential),
        report::format_table2(&suite, &parallel)
    );
    assert_eq!(
        report::format_table3(&suite, &sequential),
        report::format_table3(&suite, &parallel)
    );
    assert_eq!(
        report::format_table5(&suite, &sequential),
        report::format_table5(&suite, &parallel)
    );
}
