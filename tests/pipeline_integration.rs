//! Cross-crate integration tests of the pipeline: natural-language query →
//! prompt → (scripted or simulated) LLM → sandbox → evaluator, across all
//! three execution substrates.

use nemo_bench::{golden_of, BenchmarkSuite, SuiteConfig};
use nemo_core::llm::profiles;
use nemo_core::{Application, Backend, FaultKind, NetworkManager, ScriptedLlm, SimulatedLlm};

fn suite() -> BenchmarkSuite {
    BenchmarkSuite::build(&SuiteConfig::small())
}

#[test]
fn every_golden_program_passes_its_own_evaluation() {
    // The golden program, executed and compared against itself, must pass
    // for every query and every code-generation backend — this exercises
    // lexer/parser/interpreter, SQL engine, both workload generators and the
    // evaluator in one sweep.
    let suite = suite();
    for query in &suite.queries {
        for backend in Backend::CODEGEN {
            let program = query.spec.golden_program(backend).unwrap();
            let response = format!(
                "```{}\n{}\n```",
                if backend == Backend::Sql {
                    "sql"
                } else {
                    "graphscript"
                },
                program
            );
            let mut llm = ScriptedLlm::new("golden-replay", vec![response]);
            let app = suite.app(query.spec.application);
            let mut manager = NetworkManager::new(app, &mut llm);
            let record = manager.run_query(backend, query.spec.text, golden_of(query, backend));
            assert!(
                record.passed(),
                "golden replay failed for {} on {}: {}",
                query.spec.id,
                backend,
                record.verdict
            );
        }
    }
}

#[test]
fn injected_faults_fail_and_classify_correctly() {
    let suite = suite();
    let query = suite
        .queries_for(Application::TrafficAnalysis)
        .into_iter()
        .find(|q| q.spec.id == "T03")
        .unwrap();
    let golden_program = query.spec.golden_program(Backend::NetworkX).unwrap();
    let cases = [
        (FaultKind::Syntax, FaultKind::Syntax),
        (FaultKind::ImaginaryAttribute, FaultKind::ImaginaryAttribute),
        (FaultKind::ImaginaryFunction, FaultKind::ImaginaryFunction),
        (FaultKind::ArgumentError, FaultKind::ArgumentError),
        (FaultKind::OperationError, FaultKind::OperationError),
        (FaultKind::WrongCalculation, FaultKind::WrongCalculation),
        (FaultKind::WrongManipulation, FaultKind::WrongManipulation),
    ];
    for (injected, expected) in cases {
        let bad = nemo_core::llm::inject_fault(golden_program, Backend::NetworkX, injected);
        let response = format!("```graphscript\n{bad}\n```");
        let mut llm = ScriptedLlm::new("faulty", vec![response]);
        let mut manager = NetworkManager::new(&suite.traffic_app, &mut llm);
        let record = manager.run_query(
            Backend::NetworkX,
            query.spec.text,
            golden_of(query, Backend::NetworkX),
        );
        assert!(!record.passed(), "{injected:?} should fail");
        assert_eq!(
            record.verdict.category(),
            Some(expected),
            "fault {injected:?} classified as {:?}",
            record.verdict.category()
        );
    }
}

#[test]
fn simulated_gpt4_beats_simulated_bard_on_networkx() {
    let suite = suite();
    let seed = 7;
    let accuracy = |profile: nemo_core::llm::ModelProfile| -> f64 {
        let mut llm = SimulatedLlm::new(profile, suite.knowledge(), seed);
        let queries = suite.queries_for(Application::TrafficAnalysis);
        let mut passes = 0usize;
        let total = queries.len();
        for query in queries {
            let mut manager = NetworkManager::new(&suite.traffic_app, &mut llm);
            let record = manager.run_query(
                Backend::NetworkX,
                query.spec.text,
                golden_of(query, Backend::NetworkX),
            );
            if record.passed() {
                passes += 1;
            }
        }
        passes as f64 / total as f64
    };
    let gpt4 = accuracy(profiles::gpt4());
    let bard = accuracy(profiles::bard());
    assert!(
        gpt4 > bard,
        "GPT-4 ({gpt4}) should outperform Bard ({bard})"
    );
    assert!(
        gpt4 >= 0.8,
        "GPT-4 NetworkX accuracy should be high, got {gpt4}"
    );
}

#[test]
fn malt_manipulation_query_round_trips_through_all_backends() {
    // The hard MALT query (remove a switch and rebalance) actually mutates
    // the network state in each representation, and each backend's golden
    // replay reproduces exactly that state.
    let suite = suite();
    let query = suite
        .queries_for(Application::MaltLifecycle)
        .into_iter()
        .find(|q| q.spec.id == "M7")
        .unwrap();
    for backend in Backend::CODEGEN {
        let golden = golden_of(query, backend);
        // The golden state must differ from the initial state (the program
        // really removed the switch).
        let initial = suite.app(Application::MaltLifecycle).initial_state(backend);
        assert!(
            !golden.state.approx_eq(&initial),
            "{backend}: golden state should differ from the initial state"
        );
    }
}
